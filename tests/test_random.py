"""Tests for the stand-in generators (banded regular + power law)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sparse.random import (
    banded_regular,
    degree_sequence_matrix,
    power_law,
    uniform_random,
)
from repro.sparse.stats import degree_stats


class TestUniformRandom:
    def test_shape_and_bounds(self):
        m = uniform_random(50, 30, 200, seed=1)
        assert m.shape == (50, 30)
        m.validate()

    def test_nnz_range_check(self):
        with pytest.raises(DatasetError, match="out of range"):
            uniform_random(3, 3, 100, seed=1)

    def test_deterministic(self):
        assert uniform_random(40, 40, 150, seed=2).allclose(uniform_random(40, 40, 150, seed=2))


class TestBandedRegular:
    def test_regular_degrees(self):
        m = banded_regular(400, 10, seed=3)
        st = degree_stats(m.to_csr().row_nnz())
        assert not st.skewed
        assert abs(st.mean - 10) < 2.0

    def test_band_structure(self):
        m = banded_regular(400, 10, seed=4, bandwidth_factor=3.0)
        off = np.abs(m.rows - m.cols)
        assert off.max() <= 3.0 * 10 / 2 + 1

    def test_bad_degree(self):
        with pytest.raises(DatasetError, match="positive"):
            banded_regular(10, 0, seed=0)

    def test_deterministic(self):
        assert banded_regular(100, 5, seed=5).allclose(banded_regular(100, 5, seed=5))


class TestDegreeSequence:
    def test_respects_degrees_before_dedup(self):
        degrees = np.array([5, 0, 3, 1])
        m = degree_sequence_matrix(degrees, 100, seed=6)
        realised = m.to_csr().row_nnz()
        assert np.all(realised <= degrees)
        assert realised[1] == 0

    def test_degree_out_of_range(self):
        with pytest.raises(DatasetError, match="degree"):
            degree_sequence_matrix(np.array([5]), 3, seed=0)

    def test_col_bias_concentrates(self):
        degrees = np.full(200, 20)
        mild = degree_sequence_matrix(degrees, 2000, seed=7, col_bias=1.0)
        hard = degree_sequence_matrix(degrees, 2000, seed=7, col_bias=4.0)
        g_mild = degree_stats(mild.to_csc().col_nnz()).gini
        g_hard = degree_stats(hard.to_csc().col_nnz()).gini
        assert g_hard > g_mild


class TestPowerLaw:
    def test_nnz_accuracy(self):
        m = power_law(2000, 30_000, seed=8)
        assert abs(m.nnz - 30_000) < 0.03 * 30_000

    def test_skewed(self):
        m = power_law(2000, 30_000, seed=9)
        assert degree_stats(m.to_csr().row_nnz()).skewed

    def test_alpha_controls_concentration(self):
        # Larger alpha = steeper Zipf decay = more of the mass on the top
        # ranks (with the cap disabled).
        flat = power_law(1500, 15_000, seed=10, alpha=1.1, max_degree_fraction=1.0)
        steep = power_law(1500, 15_000, seed=10, alpha=2.5, max_degree_fraction=1.0)
        assert (
            degree_stats(steep.to_csr().row_nnz()).top1_share
            > degree_stats(flat.to_csr().row_nnz()).top1_share
        )

    def test_degree_cap_respected(self):
        m = power_law(1000, 20_000, seed=11, max_degree_fraction=0.05)
        assert m.to_csr().row_nnz().max() <= 50

    def test_invalid_nnz(self):
        with pytest.raises(DatasetError, match="positive"):
            power_law(10, 0, seed=0)

    def test_capacity(self):
        with pytest.raises(DatasetError, match="capacity"):
            power_law(3, 100, seed=0)

    def test_deterministic(self):
        assert power_law(500, 4000, seed=12).allclose(power_law(500, 4000, seed=12))
