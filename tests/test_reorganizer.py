"""Block Reorganizer pipeline tests."""

import numpy as np
import pytest

from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.errors import ConfigurationError
from repro.gpusim.config import TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.base import MultiplyContext
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.reference import reference_spgemm


@pytest.fixture
def skewed_ctx(skewed_csr):
    return MultiplyContext.build(skewed_csr)


@pytest.fixture
def regular_ctx(regular_csr):
    return MultiplyContext.build(regular_csr)


@pytest.fixture(scope="module")
def perf_skewed_ctx():
    """A skewed matrix big enough that kernel work dominates launch overhead
    (the paper notes the Block Reorganizer loses on tiny inputs, where its
    preprocessing and extra kernel launches dominate — that regime is covered
    by the Figure 16 s1 bench instead)."""
    from repro.sparse.random import power_law

    ctx = MultiplyContext.build(power_law(4000, 60_000, seed=21).to_csr())
    ctx.c_row_nnz
    return ctx


class TestOptions:
    def test_defaults_match_paper(self):
        opts = ReorganizerOptions()
        assert opts.beta == 10.0
        assert opts.limiting_factor == 4
        assert opts.enable_splitting and opts.enable_gathering and opts.enable_limiting

    def test_invalid_max_threads(self):
        with pytest.raises(ConfigurationError):
            ReorganizerOptions(max_threads=100)


class TestNumericPlane:
    @pytest.mark.parametrize(
        "opts",
        [
            ReorganizerOptions(),
            ReorganizerOptions(enable_splitting=False),
            ReorganizerOptions(enable_gathering=False),
            ReorganizerOptions(enable_limiting=False),
            ReorganizerOptions(splitting_factor=8),
            ReorganizerOptions(alpha=0.5),
        ],
        ids=["all", "no-split", "no-gather", "no-limit", "factor8", "alpha.5"],
    )
    def test_matches_reference_on_skewed(self, opts, skewed_ctx, skewed_csr):
        algo = BlockReorganizer(options=opts)
        assert algo.multiply(skewed_ctx).allclose(reference_spgemm(skewed_csr))

    def test_matches_reference_on_regular(self, regular_ctx, regular_csr):
        assert BlockReorganizer().multiply(regular_ctx).allclose(
            reference_spgemm(regular_csr)
        )


class TestTrace:
    def test_phase_structure_on_skewed(self, skewed_ctx):
        trace = BlockReorganizer(options=ReorganizerOptions(alpha=0.5)).build_trace(
            skewed_ctx, TITAN_XP
        )
        names = [p.name for p in trace.phases]
        assert "expansion-gathered" in names
        assert any(n.startswith("merge") for n in names)

    def test_expansion_ops_conserved(self, skewed_ctx):
        trace = BlockReorganizer().build_trace(skewed_ctx, TITAN_XP)
        total = sum(
            p.blocks.total_ops for p in trace.phases if p.stage == "expansion"
        )
        assert total == skewed_ctx.total_work

    def test_merge_ops_conserved(self, skewed_ctx):
        trace = BlockReorganizer().build_trace(skewed_ctx, TITAN_XP)
        total = sum(p.blocks.total_ops for p in trace.phases if p.stage == "merge")
        assert total == skewed_ctx.total_work

    def test_split_host_cost_charged(self, skewed_ctx):
        with_split = BlockReorganizer(options=ReorganizerOptions(alpha=0.5))
        trace = with_split.build_trace(skewed_ctx, TITAN_XP)
        if trace.meta["n_dominators"]:
            assert trace.host_seconds > 0

    def test_limited_phase_has_extra_smem(self, skewed_ctx):
        trace = BlockReorganizer().build_trace(skewed_ctx, TITAN_XP)
        limited = [p for p in trace.phases if p.name == "merge-limited"]
        normal = [p for p in trace.phases if p.name == "merge"]
        if limited and len(limited[0].blocks) and normal and len(normal[0].blocks):
            assert limited[0].blocks.smem_bytes[0] > normal[0].blocks.smem_bytes[0]

    def test_gathered_blocks_are_warp_sized(self, skewed_ctx):
        trace = BlockReorganizer().build_trace(skewed_ctx, TITAN_XP)
        gathered = [p for p in trace.phases if p.name == "expansion-gathered"]
        if gathered and len(gathered[0].blocks):
            assert np.all(gathered[0].blocks.threads == 32)

    def test_meta_counts(self, skewed_ctx):
        trace = BlockReorganizer().build_trace(skewed_ctx, TITAN_XP)
        assert "n_dominators" in trace.meta
        assert "n_underloaded" in trace.meta
        active = int(np.count_nonzero(skewed_ctx.pair_work))
        assert (
            trace.meta["n_dominators"]
            + trace.meta["n_underloaded"]
            + trace.meta["n_normal"]
            == active
        )


class TestPerformanceShape:
    def test_beats_outer_baseline_on_skewed(self, perf_skewed_ctx):
        sim = GPUSimulator(TITAN_XP)
        outer = OuterProductSpGEMM().simulate(perf_skewed_ctx, sim).total_seconds
        br = BlockReorganizer().simulate(perf_skewed_ctx, sim).total_seconds
        assert br < outer

    def test_improves_expansion_lbi_on_skewed(self, perf_skewed_ctx):
        sim = GPUSimulator(TITAN_XP)
        outer = OuterProductSpGEMM().simulate(perf_skewed_ctx, sim)
        br = BlockReorganizer().simulate(perf_skewed_ctx, sim)
        assert br.lbi("expansion") >= outer.lbi("expansion")

    def test_splitting_factor_sweep_monotone_lbi(self, perf_skewed_ctx):
        sim = GPUSimulator(TITAN_XP)
        lbis = []
        for factor in (1, 8, 64):
            algo = BlockReorganizer(
                options=ReorganizerOptions(splitting_factor=factor, alpha=0.5)
            )
            stats = algo.simulate(perf_skewed_ctx, sim)
            dom = [p for p in stats.phases if p.name == "expansion-dominator"]
            if not dom:
                pytest.skip("no dominators in this draw")
            lbis.append(stats.lbi("expansion"))
        assert lbis[-1] >= lbis[0] - 0.05
