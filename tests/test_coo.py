"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert np.allclose(coo.to_dense(), small_dense)

    def test_from_dense_drops_zeros(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert coo.nnz == np.count_nonzero(small_dense)
        assert np.all(coo.vals != 0.0)

    def test_empty(self):
        coo = COOMatrix.empty((5, 7))
        assert coo.nnz == 0
        assert coo.shape == (5, 7)
        assert coo.to_dense().shape == (5, 7)

    def test_component_length_mismatch_raises(self):
        with pytest.raises(SparseFormatError, match="lengths differ"):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_non_1d_raises(self):
        with pytest.raises(SparseFormatError, match="1-D"):
            COOMatrix((2, 2), np.zeros((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)))

    def test_from_dense_rejects_1d(self):
        with pytest.raises(SparseFormatError, match="2-D"):
            COOMatrix.from_dense(np.ones(4))

    def test_dtype_normalisation(self):
        coo = COOMatrix((2, 2), np.array([0], np.int32), np.array([1], np.int16),
                        np.array([2], np.float32))
        assert coo.rows.dtype == np.int64
        assert coo.cols.dtype == np.int64
        assert coo.vals.dtype == np.float64


class TestValidation:
    def test_validate_ok(self, small_coo):
        small_coo.validate()

    def test_row_out_of_range(self):
        coo = COOMatrix((2, 2), np.array([2]), np.array([0]), np.array([1.0]))
        with pytest.raises(SparseFormatError, match="row index"):
            coo.validate()

    def test_negative_col(self):
        coo = COOMatrix((2, 2), np.array([0]), np.array([-1]), np.array([1.0]))
        with pytest.raises(SparseFormatError, match="column index"):
            coo.validate()

    def test_non_finite_value(self):
        coo = COOMatrix((2, 2), np.array([0]), np.array([0]), np.array([np.nan]))
        with pytest.raises(SparseFormatError, match="non-finite"):
            coo.validate()

    def test_negative_shape(self):
        with pytest.raises(SparseFormatError, match="negative"):
            COOMatrix((-1, 2), np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0))


class TestCoalesce:
    def test_sums_duplicates(self):
        coo = COOMatrix(
            (3, 3),
            np.array([1, 1, 0]),
            np.array([2, 2, 0]),
            np.array([1.0, 2.5, 4.0]),
        )
        out = coo.coalesce()
        assert out.nnz == 2
        dense = out.to_dense()
        assert dense[1, 2] == pytest.approx(3.5)
        assert dense[0, 0] == pytest.approx(4.0)

    def test_sorted_output(self, rng):
        n = 50
        coo = COOMatrix(
            (20, 20),
            rng.integers(0, 20, n),
            rng.integers(0, 20, n),
            rng.random(n),
        )
        out = coo.coalesce()
        keys = out.rows * 20 + out.cols
        assert np.all(np.diff(keys) > 0)

    def test_drop_zeros(self):
        coo = COOMatrix((2, 2), np.array([0, 0]), np.array([1, 1]), np.array([1.0, -1.0]))
        assert coo.coalesce(drop_zeros=True).nnz == 0
        assert coo.coalesce(drop_zeros=False).nnz == 1

    def test_empty_coalesce(self):
        assert COOMatrix.empty((3, 3)).coalesce().nnz == 0

    def test_preserves_total_sum(self, rng):
        n = 200
        coo = COOMatrix(
            (15, 15), rng.integers(0, 15, n), rng.integers(0, 15, n), rng.random(n)
        )
        assert coo.coalesce(drop_zeros=False).vals.sum() == pytest.approx(coo.vals.sum())


class TestTransforms:
    def test_transpose(self, small_coo, small_dense):
        assert np.allclose(small_coo.transpose().to_dense(), small_dense.T)

    def test_transpose_shape(self):
        coo = COOMatrix.empty((3, 7))
        assert coo.transpose().shape == (7, 3)

    def test_allclose_self(self, small_coo):
        assert small_coo.allclose(small_coo)

    def test_allclose_detects_difference(self, small_coo):
        other = COOMatrix(
            small_coo.shape, small_coo.rows.copy(), small_coo.cols.copy(),
            small_coo.vals * 1.001,
        )
        assert not small_coo.allclose(other)

    def test_allclose_shape_mismatch(self, small_coo):
        with pytest.raises(ShapeMismatchError):
            small_coo.allclose(COOMatrix.empty((1, 1)))

    def test_allclose_ignores_entry_order(self, small_coo):
        perm = np.random.default_rng(0).permutation(small_coo.nnz)
        shuffled = COOMatrix(
            small_coo.shape, small_coo.rows[perm], small_coo.cols[perm], small_coo.vals[perm]
        )
        assert small_coo.allclose(shuffled)
