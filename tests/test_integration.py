"""End-to-end integration tests on catalog stand-ins.

One regular and one irregular dataset go through the complete pipeline:
generation -> context -> every algorithm's numeric plane (equality against
SciPy) -> simulation -> the paper's headline orderings.
"""

import numpy as np
import pytest

from repro.bench.runner import get_context
from repro.core.reorganizer import BlockReorganizer
from repro.gpusim.config import TESLA_V100, TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.rowproduct import RowProductSpGEMM


@pytest.fixture(scope="module")
def caida_ctx():
    return get_context("as_caida")


@pytest.fixture(scope="module")
def poisson_ctx():
    return get_context("poisson3da")


class TestNumericAgainstScipy:
    @pytest.mark.parametrize("dataset", ["poisson3da", "as_caida"])
    def test_reference_matches_scipy(self, dataset):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        ctx = get_context(dataset)
        a = scipy_sparse.csr_matrix(
            (ctx.a_csr.data, ctx.a_csr.indices, ctx.a_csr.indptr), shape=ctx.a_csr.shape
        )
        expected = (a @ a).sorted_indices()
        ours = ctx.reference_c
        assert np.array_equal(expected.indptr, ours.indptr)
        assert np.array_equal(expected.indices, ours.indices)
        assert np.allclose(expected.data, ours.data)

    def test_all_algorithms_agree_on_caida(self, caida_ctx):
        ref = caida_ctx.reference_c
        for algo in (RowProductSpGEMM(), OuterProductSpGEMM(), BlockReorganizer()):
            assert algo.multiply(caida_ctx).allclose(ref)


class TestHeadlineOrderings:
    def test_reorganizer_wins_on_skewed(self, caida_ctx):
        sim = GPUSimulator(TITAN_XP)
        row = RowProductSpGEMM().simulate(caida_ctx, sim).total_seconds
        outer = OuterProductSpGEMM().simulate(caida_ctx, sim).total_seconds
        br = BlockReorganizer().simulate(caida_ctx, sim).total_seconds
        assert br < row < outer  # paper Fig 8: as-caida ordering

    def test_reorganizer_wins_on_regular(self, poisson_ctx):
        sim = GPUSimulator(TITAN_XP)
        row = RowProductSpGEMM().simulate(poisson_ctx, sim).total_seconds
        br = BlockReorganizer().simulate(poisson_ctx, sim).total_seconds
        assert br < row

    def test_sm_utilization_recovers_on_skewed(self, caida_ctx):
        sim = GPUSimulator(TITAN_XP)
        outer = OuterProductSpGEMM().simulate(caida_ctx, sim)
        br = BlockReorganizer().simulate(caida_ctx, sim)
        assert outer.sm_utilization("expansion") < 0.45  # paper: < 20% on as-caida
        assert br.sm_utilization("expansion") > 2 * outer.sm_utilization("expansion")

    def test_bigger_gpu_runs_faster(self, caida_ctx):
        br = BlockReorganizer()
        t_small = br.simulate(caida_ctx, GPUSimulator(TITAN_XP)).kernel_seconds
        t_big = br.simulate(caida_ctx, GPUSimulator(TESLA_V100)).kernel_seconds
        assert t_big < t_small

    def test_gflops_in_paper_band(self, caida_ctx, poisson_ctx):
        sim = GPUSimulator(TITAN_XP)
        for ctx in (caida_ctx, poisson_ctx):
            for algo in (RowProductSpGEMM(), BlockReorganizer()):
                gf = algo.simulate(ctx, sim).gflops
                assert 0.1 < gf < 40.0


class TestCrossDatasetConsistency:
    def test_ab_pair_multiplication(self):
        ctx = get_context("ab15")
        ref = ctx.reference_c
        assert BlockReorganizer().multiply(ctx).allclose(ref)
        scipy_sparse = pytest.importorskip("scipy.sparse")
        a = scipy_sparse.csr_matrix(
            (ctx.a_csr.data, ctx.a_csr.indices, ctx.a_csr.indptr), shape=ctx.a_csr.shape
        )
        b = scipy_sparse.csr_matrix(
            (ctx.b_csr.data, ctx.b_csr.indices, ctx.b_csr.indptr), shape=ctx.b_csr.shape
        )
        expected = (a @ b).sorted_indices()
        assert np.array_equal(expected.indptr, ref.indptr)
        assert np.allclose(expected.data, ref.data)
