"""Tests for structural operations (workload precalculation etc.)."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    add,
    check_multipliable,
    expansion_work_per_pair,
    row_expansion_work,
    scale,
    spmv,
    total_expansion_work,
)


class TestShapeChecks:
    def test_compatible(self):
        check_multipliable((3, 4), (4, 5))

    def test_incompatible(self):
        with pytest.raises(ShapeMismatchError):
            check_multipliable((3, 4), (5, 4))


class TestExpansionWork:
    def test_pair_work_matches_definition(self, square_csr):
        a_csc = square_csr.to_csc()
        work = expansion_work_per_pair(a_csc, square_csr)
        expected = a_csc.col_nnz() * square_csr.row_nnz()
        assert np.array_equal(work, expected)

    def test_total_equals_expansion_size(self, square_csr):
        """nnz(C-hat) must equal the number of triplets expansion generates."""
        from repro.spgemm.expansion import expand_outer

        a_csc = square_csr.to_csc()
        rows, _, _ = expand_outer(a_csc, square_csr)
        assert total_expansion_work(a_csc, square_csr) == len(rows)

    def test_row_work_sums_to_total(self, square_csr):
        total = total_expansion_work(square_csr.to_csc(), square_csr)
        assert row_expansion_work(square_csr, square_csr).sum() == total

    def test_row_work_per_row(self):
        # A = [[1, 1], [0, 1]]; B rows have 2 and 1 entries.
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))
        work = row_expansion_work(a, a)
        # row 0 of C: uses B rows 0 (2 entries) and 1 (1 entry) -> 3.
        assert work[0] == 3
        # row 1 of C: uses B row 1 -> 1.
        assert work[1] == 1


class TestArithmetic:
    def test_scale(self, small_csr):
        assert np.allclose(scale(small_csr, 2.5).to_dense(), 2.5 * small_csr.to_dense())

    def test_spmv(self, square_csr, rng):
        x = rng.random(square_csr.n_cols)
        assert np.allclose(spmv(square_csr, x), square_csr.to_dense() @ x)

    def test_spmv_shape_mismatch(self, square_csr):
        with pytest.raises(ShapeMismatchError):
            spmv(square_csr, np.ones(square_csr.n_cols + 1))

    def test_add(self, small_csr):
        out = add(small_csr, small_csr)
        assert np.allclose(out.to_dense(), 2.0 * small_csr.to_dense())

    def test_add_shape_mismatch(self, small_csr):
        with pytest.raises(ShapeMismatchError):
            add(small_csr, CSRMatrix.empty((1, 1)))
