"""Error-hierarchy tests: one base class catches everything."""

import pytest

from repro.errors import (
    ConfigurationError,
    DatasetError,
    ReproError,
    ShapeMismatchError,
    SimulationError,
    SparseFormatError,
)


@pytest.mark.parametrize(
    "exc",
    [SparseFormatError, ShapeMismatchError, DatasetError, SimulationError, ConfigurationError],
)
def test_all_derive_from_base(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_base_catches_library_errors():
    from repro.sparse.coo import COOMatrix
    import numpy as np

    bad = COOMatrix((2, 2), np.array([5]), np.array([0]), np.array([1.0]))
    with pytest.raises(ReproError):
        bad.validate()
