"""Unit tests for the CSC format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.csc import CSCMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        assert np.allclose(CSCMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_empty(self):
        m = CSCMatrix.empty((4, 6))
        assert m.nnz == 0
        assert len(m.indptr) == 7
        m.validate()

    def test_col_access(self, small_dense):
        m = CSCMatrix.from_dense(small_dense)
        for j in range(m.n_cols):
            rows, vals = m.col(j)
            dense_col = np.zeros(m.n_rows)
            dense_col[rows] = vals
            assert np.allclose(dense_col, small_dense[:, j])

    def test_col_nnz(self, small_dense):
        m = CSCMatrix.from_dense(small_dense)
        assert np.array_equal(m.col_nnz(), (small_dense != 0).sum(axis=0))


class TestValidation:
    def test_bad_indptr_length(self):
        m = CSCMatrix((3, 3), np.zeros(3, np.int64), np.zeros(0, np.int64), np.zeros(0))
        with pytest.raises(SparseFormatError, match="indptr length"):
            m.validate()

    def test_row_out_of_range(self):
        m = CSCMatrix((2, 1), np.array([0, 1]), np.array([7]), np.array([1.0]))
        with pytest.raises(SparseFormatError, match="row index"):
            m.validate()

    def test_end_mismatch(self):
        m = CSCMatrix((3, 1), np.array([0, 5]), np.array([0]), np.array([1.0]))
        with pytest.raises(SparseFormatError, match="indptr\\[-1\\]"):
            m.validate()

    def test_non_finite(self):
        m = CSCMatrix((2, 1), np.array([0, 1]), np.array([0]), np.array([-np.inf]))
        with pytest.raises(SparseFormatError, match="non-finite"):
            m.validate()

    def test_duplicate_rows_rejected(self):
        m = CSCMatrix((3, 2), np.array([0, 3, 4]), np.array([0, 1, 1, 2]), np.ones(4))
        with pytest.raises(SparseFormatError, match="duplicate row indices within column 0"):
            m.validate()

    def test_sum_duplicates_canonicalises(self):
        m = CSCMatrix(
            (3, 2), np.array([0, 3, 4]), np.array([1, 0, 1, 2]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        dense = m.to_dense()  # np.add.at sums the duplicates
        s = m.sum_duplicates()
        s.validate()
        assert s.nnz == 3
        assert np.allclose(s.to_dense(), dense)


class TestTransforms:
    def test_transpose(self, small_dense):
        m = CSCMatrix.from_dense(small_dense)
        assert np.allclose(m.transpose().to_dense(), small_dense.T)

    def test_to_coo_roundtrip(self, small_dense):
        m = CSCMatrix.from_dense(small_dense)
        assert np.allclose(m.to_coo().to_dense(), small_dense)

    def test_to_csr_roundtrip(self, small_dense):
        m = CSCMatrix.from_dense(small_dense)
        assert np.allclose(m.to_csr().to_dense(), small_dense)

    def test_allclose(self, small_dense):
        a = CSCMatrix.from_dense(small_dense)
        b = CSCMatrix.from_dense(small_dense)
        assert a.allclose(b)

    def test_allclose_shape_mismatch(self, small_dense):
        a = CSCMatrix.from_dense(small_dense)
        with pytest.raises(ShapeMismatchError):
            a.allclose(CSCMatrix.empty((1, 1)))
