"""Deeper tests for the library comparator cost models."""

import numpy as np
import pytest

from repro.gpusim.config import TITAN_XP
from repro.gpusim.costs import DEFAULT_COSTS
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.base import MultiplyContext
from repro.spgemm.libraries import BhSparseSpGEMM, CuspSpGEMM, CuSparseSpGEMM, MklSpGEMM
from repro.spgemm.traceutil import row_chunk_blocks


@pytest.fixture
def ctx(square_csr):
    return MultiplyContext.build(square_csr)


class TestRowChunkBlocks:
    def test_warp_per_row_balances_within_warp(self):
        work = np.array([320, 320, 320, 320])
        blocks = row_chunk_blocks(work, np.full(4, 5), DEFAULT_COSTS,
                                  threads=128, work_granularity=32)
        assert len(blocks) == 1
        assert blocks.iters[0] == pytest.approx(10.0)  # 320/32 per warp

    def test_thread_per_row_suffers_imbalance(self):
        work = np.concatenate([np.full(127, 1), [1000]])
        scalar = row_chunk_blocks(work, np.ones(128, np.int64), DEFAULT_COSTS,
                                  threads=128, work_granularity=1)
        vector = row_chunk_blocks(work, np.ones(128, np.int64), DEFAULT_COSTS,
                                  threads=128, work_granularity=32)
        # Scalar: one thread walks 1000 products; vector: a warp splits them.
        assert scalar.iters[0] > 4 * vector.iters.max()

    def test_instr_scale(self):
        work = np.full(128, 32)
        plain = row_chunk_blocks(work, np.ones(128, np.int64), DEFAULT_COSTS)
        scaled = row_chunk_blocks(work, np.ones(128, np.int64), DEFAULT_COSTS,
                                  instr_scale=3.0)
        assert scaled.iters[0] == pytest.approx(3.0 * plain.iters[0])

    def test_traffic_scale(self):
        work = np.full(128, 32)
        plain = row_chunk_blocks(work, np.ones(128, np.int64), DEFAULT_COSTS)
        scaled = row_chunk_blocks(work, np.ones(128, np.int64), DEFAULT_COSTS,
                                  traffic_scale=2.0)
        assert scaled.unique_bytes[0] == pytest.approx(2.0 * plain.unique_bytes[0])
        assert scaled.transactions[0] == pytest.approx(2.0 * plain.transactions[0])

    def test_rows_per_thread_coarsening(self):
        work = np.full(256, 8)
        blocks = row_chunk_blocks(work, np.ones(256, np.int64), DEFAULT_COSTS,
                                  threads=128, rows_per_thread=2)
        assert len(blocks) == 1
        assert blocks.iters[0] == pytest.approx(16.0)  # two rows per thread


class TestCuSparseModel:
    def test_two_passes(self, ctx):
        trace = CuSparseSpGEMM().build_trace(ctx, TITAN_XP)
        assert [p.name for p in trace.phases] == ["symbolic", "numeric"]

    def test_no_preprocessing_overhead(self, ctx):
        trace = CuSparseSpGEMM().build_trace(ctx, TITAN_XP)
        assert trace.host_seconds == 0.0
        assert trace.device_setup_cycles == 0.0


class TestCuspModel:
    def test_three_phases(self, ctx):
        trace = CuspSpGEMM().build_trace(ctx, TITAN_XP)
        assert [p.name for p in trace.phases] == ["expand", "sort", "compress"]

    def test_sort_traffic_scales_with_radix_passes(self, ctx):
        from repro.spgemm.libraries import cusp

        trace = CuspSpGEMM().build_trace(ctx, TITAN_XP)
        sort = next(p.blocks for p in trace.phases if p.name == "sort")
        expand = next(p.blocks for p in trace.phases if p.name == "expand")
        def total(b):
            return float(b.unique_bytes.sum() + b.write_bytes.sum())

        assert total(sort) == pytest.approx(
            2.0 * cusp._RADIX_PASSES * total(expand), rel=0.01
        )

    def test_balanced_blocks(self, ctx):
        trace = CuspSpGEMM().build_trace(ctx, TITAN_XP)
        for phase in trace.phases:
            util = phase.blocks.lane_utilization()
            assert util.mean() > 0.2  # flat-index blocks are never underloaded


class TestBhSparseModel:
    def test_bins_partition_rows(self, ctx):
        trace = BhSparseSpGEMM().build_trace(ctx, TITAN_XP)
        expansion_ops = sum(
            p.blocks.total_ops for p in trace.phases if p.stage == "expansion"
        )
        assert expansion_ops == ctx.total_work

    def test_binning_setup_charged(self, ctx):
        trace = BhSparseSpGEMM().build_trace(ctx, TITAN_XP)
        assert trace.device_setup_cycles > 0


class TestMklModel:
    def test_memory_bound_for_huge_traffic(self, ctx):
        algo = MklSpGEMM()
        t = algo.cpu_seconds(ctx)
        memory_floor = ctx.total_work * algo.bytes_per_product / (
            algo.cpu.dram_bandwidth_gbs * 1e9
        )
        assert t >= memory_floor

    def test_straggler_row_bounds_time(self, skewed_csr):
        ctx = MultiplyContext.build(skewed_csr)
        algo = MklSpGEMM()
        heaviest = float(ctx.row_work.max())
        straggler = heaviest * algo.cycles_per_product / algo.cpu.clock_hz
        assert algo.cpu_seconds(ctx) >= straggler

    def test_stats_report_work(self, ctx):
        sim = GPUSimulator(TITAN_XP)
        stats = MklSpGEMM().simulate(ctx, sim)
        assert stats.total_ops == ctx.total_work
        assert stats.kernel_seconds == 0.0
        assert stats.total_seconds == pytest.approx(stats.host_seconds)
