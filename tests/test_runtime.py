"""Tests for the repro.runtime layer: config, facade, pooling, lifecycle.

Covers the concurrency contract the serve front-end depends on — two
interleaved request streams against one :class:`Runtime` (same and
different structure fingerprints, same and different tenants) must stay
bit-identical to serial execution with no PlanCache cross-contamination —
and the graceful-shutdown path: a SIGTERM against a process with a warm
exec pool must not leak ``multiprocessing.shared_memory`` segments.
"""

from __future__ import annotations

import argparse
import glob
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.runtime import Runtime, RuntimeConfig, gpu_by_name, lifecycle
from repro.spgemm.base import MultiplyContext
from repro.spgemm.rowproduct import RowProductSpGEMM

from .conftest import random_csr


def _direct(a, b):
    """The plain one-shot engine path, the bit-identity reference."""
    return RowProductSpGEMM().multiply(MultiplyContext.build(a, b))


def _pair(rng, n=40, density=0.12):
    return random_csr(rng, n, n, density), random_csr(rng, n, n, density)


class TestRuntimeConfig:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.resolved_workers == 1
        assert config.resolved_exec_workers == 1
        assert config.plan_cache_entries == 64
        assert config.sessions_per_tenant == 32

    def test_from_args_maps_flags(self):
        args = argparse.Namespace(
            gpu="TeslaV100", workers=3, no_cache=True, exec_workers=2,
            exec_partitioner="lpt", kernel_backend=None,
            plan_cache_entries=5, sessions_per_tenant=2,
        )
        config = RuntimeConfig.from_args(args)
        assert config.gpu.name == "Tesla V100"
        assert config.workers == 3
        assert config.use_result_cache is False
        assert config.exec_workers == 2
        assert config.exec_partitioner == "lpt"
        assert config.plan_cache_entries == 5
        assert config.sessions_per_tenant == 2

    def test_from_args_ignores_missing_flags(self):
        config = RuntimeConfig.from_args(argparse.Namespace())
        assert config == RuntimeConfig()

    def test_invalid_partitioner_rejected(self):
        with pytest.raises(ConfigurationError, match="partitioner"):
            RuntimeConfig(exec_partitioner="nope")

    def test_invalid_session_quota_rejected(self):
        with pytest.raises(ConfigurationError, match="sessions_per_tenant"):
            RuntimeConfig(sessions_per_tenant=0)

    def test_unknown_gpu_is_repro_error(self):
        with pytest.raises(ReproError, match="unknown GPU"):
            gpu_by_name("nope")


class TestRuntimeFacade:
    def test_multiply_matches_direct_algorithm(self, rng):
        a, b = _pair(rng)
        direct = _direct(a, b)
        with Runtime(RuntimeConfig()) as rt:
            outcome = rt.multiply("row-product", a, b)
        assert outcome.result.data.tobytes() == direct.data.tobytes()
        assert (outcome.result.indptr == direct.indptr).all()
        assert (outcome.result.indices == direct.indices).all()

    def test_repeat_structure_is_replayed(self, rng):
        a, b = _pair(rng)
        with Runtime(RuntimeConfig()) as rt:
            first = rt.multiply("row-product", a, b)
            second = rt.multiply("row-product", a, b)
        assert not first.replayed
        assert second.replayed
        assert first.fingerprint == second.fingerprint
        assert first.result.data.tobytes() == second.result.data.tobytes()

    def test_unknown_algorithm_raises(self, rng):
        a, b = _pair(rng)
        with Runtime(RuntimeConfig()) as rt:
            with pytest.raises(ReproError, match="unknown algorithm"):
                rt.multiply("nope", a, b)

    def test_session_pool_keyed_by_structure_and_tenant(self, rng):
        a, b = _pair(rng)
        c, d = _pair(rng, n=23)
        with Runtime(RuntimeConfig()) as rt:
            rt.multiply("row-product", a, b, tenant="alice")
            rt.multiply("row-product", a, b, tenant="alice")
            rt.multiply("row-product", c, d, tenant="alice")
            rt.multiply("row-product", a, b, tenant="bob")
            stats = rt.stats()
        assert stats.sessions == 3
        assert stats.tenants == {"alice": 2, "bob": 1}
        assert stats.requests == 4

    def test_per_tenant_lru_eviction(self, rng):
        pairs = [_pair(rng, n=20 + 3 * i) for i in range(3)]
        with Runtime(RuntimeConfig(sessions_per_tenant=2)) as rt:
            for a, b in pairs:
                rt.multiply("row-product", a, b, tenant="alice")
            stats = rt.stats()
            assert stats.sessions == 2
            assert stats.sessions_evicted == 1
            # Evicted sessions keep counting: retired counters are folded in.
            assert stats.plan_cache.lowers == 3
            # The evicted structure re-lowers on return (its plans are gone).
            outcome = rt.multiply("row-product", *pairs[0], tenant="alice")
            assert not outcome.replayed
            assert rt.stats().sessions_evicted == 2

    def test_eviction_is_scoped_to_one_tenant(self, rng):
        pairs = [_pair(rng, n=20 + 3 * i) for i in range(3)]
        with Runtime(RuntimeConfig(sessions_per_tenant=2)) as rt:
            rt.multiply("row-product", *pairs[0], tenant="bob")
            for a, b in pairs:
                rt.multiply("row-product", a, b, tenant="alice")
            # bob's single session survived alice's churn: replay, not lower.
            assert rt.multiply("row-product", *pairs[0], tenant="bob").replayed

    def test_closed_runtime_rejects_work(self, rng):
        a, b = _pair(rng)
        rt = Runtime(RuntimeConfig())
        rt.close()
        rt.close()  # idempotent
        with pytest.raises(ReproError, match="closed"):
            rt.multiply("row-product", a, b)

    def test_apps_match_direct_calls(self, rng):
        from repro.apps.pagerank import pagerank_spgemm
        from repro.apps.reachability import k_hop_reachability
        from repro.apps.similarity import cosine_similarity

        adj = random_csr(rng, 35, 35, 0.1)
        algo = RowProductSpGEMM()
        with Runtime(RuntimeConfig()) as rt:
            scores = rt.pagerank("row-product", adj).scores
            reach = rt.reachability("row-product", adj, 3)
            sim = rt.similarity("row-product", adj, "cosine")
        assert scores.tobytes() == pagerank_spgemm(adj, algo).scores.tobytes()
        assert reach.data.tobytes() == k_hop_reachability(adj, 3, algo).data.tobytes()
        assert sim.data.tobytes() == cosine_similarity(adj, algo).data.tobytes()

    def test_unknown_similarity_metric(self, rng):
        adj = random_csr(rng, 10, 10, 0.2)
        with Runtime(RuntimeConfig()) as rt:
            with pytest.raises(ReproError, match="unknown similarity metric"):
                rt.similarity("row-product", adj, "nope")


class TestConcurrentSessions:
    """Satellite: interleaved request streams must equal serial execution."""

    def test_interleaved_streams_bit_identical_to_serial(self, rng):
        same = _pair(rng, n=45)
        other = _pair(rng, n=45, density=0.08)
        serial_same = _direct(*same)
        serial_other = _direct(*other)
        rounds = 6
        with Runtime(RuntimeConfig()) as rt:
            results: dict[str, list] = {"same": [], "other": []}
            errors: list[BaseException] = []
            barrier = threading.Barrier(2)

            def stream(name: str, pair) -> None:
                try:
                    barrier.wait()
                    for _ in range(rounds):
                        results[name].append(rt.multiply("row-product", *pair).result)
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=stream, args=("same", same)),
                threading.Thread(target=stream, args=("other", other)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = rt.stats()
        for result in results["same"]:
            assert result.data.tobytes() == serial_same.data.tobytes()
            assert (result.indices == serial_same.indices).all()
        for result in results["other"]:
            assert result.data.tobytes() == serial_other.data.tobytes()
            assert (result.indices == serial_other.indices).all()
        # Two structures, one lowering each — replay served the remainder.
        assert stats.plan_cache.lowers == 2
        assert stats.plan_cache.numeric_replays == 2 * (rounds - 1)

    def test_same_structure_streams_share_one_session(self, rng):
        pair = _pair(rng, n=40)
        serial = _direct(*pair)
        with Runtime(RuntimeConfig()) as rt:
            outputs: list = []
            errors: list[BaseException] = []
            barrier = threading.Barrier(4)

            def stream() -> None:
                try:
                    barrier.wait()
                    for _ in range(3):
                        outputs.append(rt.multiply("row-product", *pair).result)
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=stream) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = rt.stats()
        assert len(outputs) == 12
        for result in outputs:
            assert result.data.tobytes() == serial.data.tobytes()
        assert stats.sessions == 1
        assert stats.plan_cache.lowers == 1  # 11 of 12 replayed

    def test_tenants_do_not_cross_contaminate(self, rng):
        pair = _pair(rng, n=30)
        with Runtime(RuntimeConfig()) as rt:
            errors: list[BaseException] = []
            barrier = threading.Barrier(2)

            def stream(tenant: str) -> None:
                try:
                    barrier.wait()
                    for _ in range(4):
                        rt.multiply("row-product", *pair, tenant=tenant)
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=stream, args=(t,)) for t in ("alice", "bob")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = rt.stats()
        # Same structure, different tenants: separate sessions, separate
        # caches — each tenant pays its own lowering (quota isolation).
        assert stats.tenants == {"alice": 1, "bob": 1}
        assert stats.plan_cache.lowers == 2


_SHUTDOWN_SCRIPT = """
import sys
import numpy as np
from repro.runtime import Runtime, RuntimeConfig, lifecycle
from repro.sparse.csr import CSRMatrix

rng = np.random.default_rng(0)
dense = (rng.random((200, 200)) < 0.1) * rng.random((200, 200))
a = CSRMatrix.from_dense(dense)
rt = Runtime(RuntimeConfig(exec_workers=2))
lifecycle.install(rt)
rt.multiply("row-product", a, a)   # spin up the pool + shm segments
print("ready", flush=True)
import time
time.sleep(60)
"""


class TestLifecycle:
    def test_install_uninstall_tracking(self):
        rt = Runtime(RuntimeConfig())
        try:
            before = lifecycle.installed_count()
            lifecycle.install(rt)
            lifecycle.install(rt)  # idempotent
            assert lifecycle.installed_count() == before + 1
        finally:
            lifecycle.uninstall(rt)
        assert rt.closed
        assert lifecycle.installed_count() == before

    def test_close_all_swallows_and_closes(self):
        rt = Runtime(RuntimeConfig())
        lifecycle.install(rt)
        try:
            lifecycle.close_all()
            assert rt.closed
        finally:
            lifecycle.uninstall(rt)

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs POSIX shared memory"
    )
    def test_sigterm_does_not_leak_shared_memory(self, tmp_path):
        """Satellite: SIGTERM with a warm exec pool leaves no shm segments."""
        before = set(glob.glob("/dev/shm/repro-exec-*"))
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", _SHUTDOWN_SCRIPT],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready", proc.stderr.read()
            live = set(glob.glob("/dev/shm/repro-exec-*")) - before
            assert live, "exec pool should have published shm segments"
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=10)
        assert code == -signal.SIGTERM  # conventional signal death, post-sweep
        leaked = set(glob.glob("/dev/shm/repro-exec-*")) - before
        assert not leaked, f"leaked segments: {sorted(leaked)}"
