"""R-MAT generator tests."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sparse.rmat import RMATParams, UNIFORM, rmat, rmat_general, rmat_graph500
from repro.sparse.stats import degree_stats


class TestParams:
    def test_must_sum_to_one(self):
        with pytest.raises(DatasetError, match="sum to 1"):
            RMATParams(0.5, 0.5, 0.5, 0.5)

    def test_non_negative(self):
        with pytest.raises(DatasetError, match="non-negative"):
            RMATParams(1.3, -0.1, -0.1, -0.1)

    def test_skew_measure(self):
        assert UNIFORM.skew == pytest.approx(0.0)
        assert RMATParams(0.57, 0.19, 0.19, 0.05).skew > 0.3


class TestRmat:
    def test_shape(self):
        m = rmat(8, 1000, UNIFORM, seed=1)
        assert m.shape == (256, 256)
        m.validate()

    def test_deterministic(self):
        a = rmat(8, 500, UNIFORM, seed=3)
        b = rmat(8, 500, UNIFORM, seed=3)
        assert a.allclose(b)

    def test_seed_changes_output(self):
        a = rmat(8, 500, UNIFORM, seed=3)
        b = rmat(8, 500, UNIFORM, seed=4)
        assert not a.allclose(b)

    def test_dedup_reduces_nnz(self):
        raw = rmat(6, 2000, UNIFORM, seed=5, deduplicate=False)
        dedup = rmat(6, 2000, UNIFORM, seed=5, deduplicate=True)
        assert raw.nnz == 2000
        assert dedup.nnz < raw.nnz

    def test_skewed_params_make_skewed_degrees(self):
        uniform = rmat(11, 30_000, UNIFORM, seed=6)
        skewed = rmat(11, 30_000, RMATParams(0.57, 0.19, 0.19, 0.05), seed=6)
        g_u = degree_stats(uniform.to_csr().row_nnz()).gini
        g_s = degree_stats(skewed.to_csr().row_nnz()).gini
        assert g_s > g_u + 0.15

    def test_ones_values(self):
        m = rmat(6, 200, UNIFORM, seed=7, values="ones", deduplicate=False)
        assert np.all(m.vals == 1.0)

    def test_bad_values_mode(self):
        with pytest.raises(DatasetError, match="values"):
            rmat(6, 10, UNIFORM, seed=0, values="bogus")

    def test_bad_scale(self):
        with pytest.raises(DatasetError, match="scale"):
            rmat(0, 10, UNIFORM, seed=0)

    def test_negative_edges(self):
        with pytest.raises(DatasetError, match="n_edges"):
            rmat(4, -1, UNIFORM, seed=0)


class TestRmatGeneral:
    def test_non_power_of_two_dimension(self):
        m = rmat_general(1000, 5000, UNIFORM, seed=9)
        assert m.shape == (1000, 1000)
        m.validate()
        assert m.rows.max() < 1000 and m.cols.max() < 1000

    def test_edge_count_close_to_request(self):
        m = rmat_general(1000, 5000, UNIFORM, seed=10)
        assert abs(m.nnz - 5000) <= 0.02 * 5000

    def test_exact_trim(self):
        m = rmat_general(500, 2000, UNIFORM, seed=11)
        assert m.nnz <= 2000

    def test_capacity_check(self):
        with pytest.raises(DatasetError, match="capacity"):
            rmat_general(3, 100, UNIFORM, seed=0)

    def test_deterministic(self):
        a = rmat_general(700, 3000, UNIFORM, seed=12)
        b = rmat_general(700, 3000, UNIFORM, seed=12)
        assert a.allclose(b)


class TestGraph500:
    def test_sizes(self):
        m = rmat_graph500(10, 4, seed=13)
        assert m.shape == (1024, 1024)
        # Deduplication loses some of the 4096 draws but not most.
        assert 2000 < m.nnz <= 4096

    def test_is_skewed(self):
        m = rmat_graph500(11, 8, seed=14)
        assert degree_stats(m.to_csr().row_nnz()).skewed
