"""Tests for B-Splitting (Section IV-C1)."""

import numpy as np
import pytest

from repro.core.classify import classify_pairs
from repro.core.splitting import choose_split_factors, plan_splitting, split_csc_columns
from repro.errors import ConfigurationError
from repro.spgemm.base import MultiplyContext
from repro.spgemm.expansion import expand_outer
from repro.spgemm.merge import merge_triplets
from repro.spgemm.reference import reference_spgemm


class TestFactors:
    def test_power_of_two(self):
        factors = choose_split_factors(np.array([10_000, 5_000]), n_sms=30)
        assert np.all((factors & (factors - 1)) == 0)

    def test_exceeds_sm_count(self):
        factors = choose_split_factors(np.array([100_000]), n_sms=30)
        assert factors[0] >= 2 * 30

    def test_capped_by_vector_length(self):
        factors = choose_split_factors(np.array([5]), n_sms=30)
        assert factors[0] <= 5

    def test_override(self):
        factors = choose_split_factors(np.array([10_000]), n_sms=30, factor_override=8)
        assert factors[0] == 8

    def test_invalid_override(self):
        with pytest.raises(ConfigurationError):
            choose_split_factors(np.array([10]), 30, factor_override=0)


class TestPlan:
    def test_no_dominators(self):
        plan = plan_splitting(np.array([5]), np.array([5]), np.array([False]), 30)
        assert plan.n_blocks == 0
        assert plan.split_entries == 0

    def test_work_conserved(self):
        na = np.array([1000, 7, 3000])
        nb = np.array([500, 7, 200])
        mask = np.array([True, False, True])
        plan = plan_splitting(na, nb, mask, n_sms=30)
        # Split blocks of each dominator sum to the original column length.
        for pair, expected in ((0, 1000), (2, 3000)):
            assert plan.na[plan.pair_ids == pair].sum() == expected
        # nb is never split.
        assert np.all(plan.nb[plan.pair_ids == 0] == 500)
        assert np.all(plan.nb[plan.pair_ids == 2] == 200)

    def test_pieces_balanced(self):
        plan = plan_splitting(
            np.array([1001]), np.array([10]), np.array([True]), n_sms=30
        )
        assert plan.na.max() - plan.na.min() <= 1

    def test_no_empty_pieces(self):
        plan = plan_splitting(np.array([70]), np.array([9]), np.array([True]), n_sms=30)
        assert np.all(plan.na > 0)

    def test_split_entries_counts_both_vectors(self):
        plan = plan_splitting(np.array([100]), np.array([40]), np.array([True]), 30)
        assert plan.split_entries == 140


class TestNumericSplitting:
    def test_split_columns_reproduce_dominator_products(self, skewed_csr):
        """The paper's Figure 5 claim: split vector pairs produce exactly the
        same results as the original pairs."""
        ctx = MultiplyContext.build(skewed_csr)
        nb = ctx.b_csr.row_nnz()
        classes = classify_pairs(ctx.pair_work, nb, alpha=0.5)
        if not classes.n_dominators:
            pytest.skip("no dominators in this draw")
        na = ctx.a_csc.col_nnz()
        plan = plan_splitting(na, nb, classes.dominator, n_sms=30)

        # Expand split blocks through the mapper (the numeric kernel the
        # SplitPass attaches to the dominator phase).
        from repro.plan.ir import NumericState
        from repro.plan.passes import expand_split_kernel

        state = NumericState(ctx)
        expand_split_kernel(plan)(state)
        rows_s, cols_s, vals_s = state.pending()

        # Expand the original dominator pairs directly.
        rows_o, cols_o, vals_o = expand_outer(ctx.a_csc, ctx.b_csr)
        keep = np.repeat(classes.dominator, ctx.pair_work)
        shape = ctx.out_shape
        direct = merge_triplets(rows_o[keep], cols_o[keep], vals_o[keep], shape)
        via_split = merge_triplets(rows_s, cols_s, vals_s, shape)
        assert direct.allclose(via_split)

    def test_mapper_points_at_dominators(self, skewed_csr):
        ctx = MultiplyContext.build(skewed_csr)
        nb = ctx.b_csr.row_nnz()
        classes = classify_pairs(ctx.pair_work, nb, alpha=0.5)
        if not classes.n_dominators:
            pytest.skip("no dominators in this draw")
        plan = plan_splitting(ctx.a_csc.col_nnz(), nb, classes.dominator, 30)
        a_split, mapper = split_csc_columns(ctx.a_csc, plan)
        assert set(mapper.tolist()) == set(np.flatnonzero(classes.dominator).tolist())
        a_split.validate()

    def test_full_reorganizer_numeric_with_forced_split(self, skewed_csr):
        from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions

        ctx = MultiplyContext.build(skewed_csr)
        algo = BlockReorganizer(options=ReorganizerOptions(alpha=0.5, splitting_factor=4))
        assert algo.multiply(ctx).allclose(reference_spgemm(skewed_csr))
