"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.csr import CSRMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        assert np.allclose(CSRMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_empty(self):
        m = CSRMatrix.empty((4, 6))
        assert m.nnz == 0
        assert len(m.indptr) == 5
        m.validate()

    def test_identity(self):
        eye = CSRMatrix.identity(5)
        assert np.allclose(eye.to_dense(), np.eye(5))
        eye.validate()

    def test_row_access(self, small_dense):
        m = CSRMatrix.from_dense(small_dense)
        for i in range(m.n_rows):
            cols, vals = m.row(i)
            dense_row = np.zeros(m.n_cols)
            dense_row[cols] = vals
            assert np.allclose(dense_row, small_dense[i])

    def test_row_nnz(self, small_dense):
        m = CSRMatrix.from_dense(small_dense)
        assert np.array_equal(m.row_nnz(), (small_dense != 0).sum(axis=1))


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(SparseFormatError, match="indptr length"):
            CSRMatrix((3, 3), np.zeros(3, np.int64), np.zeros(0, np.int64), np.zeros(0)).validate()

    def test_indptr_not_starting_at_zero(self):
        m = CSRMatrix((1, 3), np.array([1, 1]), np.zeros(0, np.int64), np.zeros(0))
        with pytest.raises(SparseFormatError, match="indptr\\[0\\]"):
            m.validate()

    def test_indptr_end_mismatch(self):
        m = CSRMatrix((1, 3), np.array([0, 2]), np.array([0]), np.array([1.0]))
        with pytest.raises(SparseFormatError, match="indptr\\[-1\\]"):
            m.validate()

    def test_decreasing_indptr(self):
        m = CSRMatrix(
            (3, 3), np.array([0, 2, 1, 2]), np.array([0, 1]), np.array([1.0, 2.0])
        )
        with pytest.raises(SparseFormatError, match="non-decreasing"):
            m.validate()

    def test_column_out_of_range(self):
        m = CSRMatrix((1, 2), np.array([0, 1]), np.array([5]), np.array([1.0]))
        with pytest.raises(SparseFormatError, match="column index"):
            m.validate()

    def test_non_finite(self):
        m = CSRMatrix((1, 2), np.array([0, 1]), np.array([0]), np.array([np.inf]))
        with pytest.raises(SparseFormatError, match="non-finite"):
            m.validate()

    def test_duplicate_columns_rejected(self):
        m = CSRMatrix((2, 3), np.array([0, 3, 4]), np.array([0, 1, 1, 2]), np.ones(4))
        with pytest.raises(SparseFormatError, match="duplicate column indices within row 0"):
            m.validate()

    def test_duplicate_reports_offending_row(self):
        m = CSRMatrix((3, 3), np.array([0, 1, 1, 3]), np.array([2, 0, 0]), np.ones(3))
        with pytest.raises(SparseFormatError, match="row 2"):
            m.validate()

    def test_sum_duplicates_canonicalises(self):
        m = CSRMatrix(
            (2, 3), np.array([0, 3, 4]), np.array([1, 0, 1, 2]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        dense = m.to_dense()  # np.add.at sums the duplicates
        s = m.sum_duplicates()
        s.validate()
        assert s.nnz == 3
        assert np.allclose(s.to_dense(), dense)


class TestSorting:
    def test_sorted_after_conversion(self, small_csr):
        assert small_csr.has_sorted_indices()

    def test_unsorted_detected_and_fixed(self):
        m = CSRMatrix((1, 4), np.array([0, 3]), np.array([2, 0, 1]), np.array([1.0, 2.0, 3.0]))
        assert not m.has_sorted_indices()
        s = m.sort_indices()
        assert s.has_sorted_indices()
        assert np.allclose(s.to_dense(), m.to_dense())

    def test_trailing_empty_rows(self):
        # Regression: boundary handling when the last rows are empty.
        m = CSRMatrix((3, 3), np.array([0, 2, 2, 2]), np.array([0, 1]), np.array([1.0, 2.0]))
        assert m.has_sorted_indices()

    def test_single_entry(self):
        m = CSRMatrix((1, 1), np.array([0, 1]), np.array([0]), np.array([1.0]))
        assert m.has_sorted_indices()


class TestTransforms:
    def test_transpose(self, small_csr, small_dense):
        assert np.allclose(small_csr.transpose().to_dense(), small_dense.T)

    def test_transpose_twice_identity(self, small_csr):
        assert small_csr.transpose().transpose().allclose(small_csr)

    def test_to_coo_roundtrip(self, small_csr):
        assert small_csr.to_coo().to_csr().allclose(small_csr)

    def test_to_csc_roundtrip(self, small_csr):
        assert small_csr.to_csc().to_csr().allclose(small_csr)

    def test_allclose_shape_mismatch(self, small_csr):
        with pytest.raises(ShapeMismatchError):
            small_csr.allclose(CSRMatrix.empty((1, 1)))

    def test_allclose_tolerance(self, small_csr):
        near = CSRMatrix(small_csr.shape, small_csr.indptr.copy(),
                       small_csr.indices.copy(), small_csr.data * (1 + 1e-12))
        assert small_csr.allclose(near)
