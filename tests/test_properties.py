"""Property-based tests (hypothesis) on the core invariants.

Strategies generate small random sparse matrices; the invariants cover the
format layer (round-trips), the numeric engine (all schemes agree with a
dense reference), the Block Reorganizer's transformations (splitting and
gathering are result-preserving / work-conserving) and the scheduler.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classify import classify_pairs
from repro.core.gathering import plan_gathering
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.core.splitting import plan_splitting
from repro.gpusim.scheduler import list_schedule
from repro.metrics.lbi import load_balancing_index
from repro.sparse.coo import COOMatrix
from repro.spgemm.base import MultiplyContext
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.rowproduct import RowProductSpGEMM


@st.composite
def sparse_matrices(draw, max_dim=24, square=True):
    """Random small COO matrices, possibly with duplicate coordinates."""
    n_rows = draw(st.integers(1, max_dim))
    n_cols = n_rows if square else draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, n_rows * n_cols))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(
        (n_rows, n_cols),
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=np.float64),
    )


class TestFormatProperties:
    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_csr_roundtrip(self, coo):
        assert np.allclose(coo.to_csr().to_dense(), coo.to_dense())

    @given(sparse_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_csc_roundtrip(self, coo):
        assert np.allclose(coo.to_csc().to_dense(), coo.to_dense())

    @given(sparse_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_csr_csc_agree(self, coo):
        assert np.allclose(coo.to_csr().to_csc().to_dense(), coo.to_csc().to_dense())

    @given(sparse_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, coo):
        csr = coo.to_csr()
        assert csr.transpose().transpose().allclose(csr)

    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_coalesce_idempotent(self, coo):
        once = coo.coalesce()
        twice = once.coalesce()
        assert once.allclose(twice)


class TestSpGEMMProperties:
    @given(sparse_matrices())
    @settings(max_examples=40, deadline=None)
    def test_all_schemes_match_dense(self, coo):
        a = coo.to_csr()
        dense = a.to_dense() @ a.to_dense()
        ctx = MultiplyContext.build(a)
        for algo in (RowProductSpGEMM(), OuterProductSpGEMM(), BlockReorganizer()):
            assert np.allclose(algo.multiply(ctx).to_dense(), dense, atol=1e-9)

    @given(sparse_matrices(), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_reorganizer_invariant_to_splitting_factor(self, coo, factor):
        a = coo.to_csr()
        ctx = MultiplyContext.build(a)
        opts = ReorganizerOptions(splitting_factor=factor, alpha=1.0)
        c = BlockReorganizer(options=opts).multiply(ctx)
        dense = a.to_dense() @ a.to_dense()
        assert np.allclose(c.to_dense(), dense, atol=1e-9)

    @given(sparse_matrices())
    @settings(max_examples=30, deadline=None)
    def test_trace_conserves_work(self, coo):
        from repro.gpusim.config import TITAN_XP

        ctx = MultiplyContext.build(coo.to_csr())
        trace = BlockReorganizer().build_trace(ctx, TITAN_XP)
        exp_ops = sum(p.blocks.total_ops for p in trace.phases if p.stage == "expansion")
        assert exp_ops == ctx.total_work


class TestReorganizerPlanProperties:
    @given(
        st.lists(st.integers(1, 2000), min_size=1, max_size=100),
        st.lists(st.integers(1, 2000), min_size=1, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_classification_partitions_active_pairs(self, na, nb):
        n = min(len(na), len(nb))
        na = np.array(na[:n], dtype=np.int64)
        nb = np.array(nb[:n], dtype=np.int64)
        classes = classify_pairs(na * nb, nb)
        combined = (
            classes.dominator.astype(int)
            + classes.underloaded.astype(int)
            + classes.normal.astype(int)
        )
        assert np.array_equal(combined, (na * nb > 0).astype(int))

    @given(
        st.lists(st.integers(1, 5000), min_size=1, max_size=50),
        st.integers(1, 128),
    )
    @settings(max_examples=60, deadline=None)
    def test_splitting_conserves_column_entries(self, na, n_sms):
        na = np.array(na, dtype=np.int64)
        nb = np.full(len(na), 64, dtype=np.int64)
        mask = np.ones(len(na), dtype=bool)
        plan = plan_splitting(na, nb, mask, n_sms)
        for i in range(len(na)):
            assert plan.na[plan.pair_ids == i].sum() == na[i]
        assert np.all(plan.na > 0)

    @given(
        st.lists(st.integers(1, 100), min_size=1, max_size=200),
        st.lists(st.integers(1, 31), min_size=1, max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_gathering_conserves_ops(self, na, nb):
        n = min(len(na), len(nb))
        na = np.array(na[:n], dtype=np.int64)
        nb = np.array(nb[:n], dtype=np.int64)
        plan = plan_gathering(na, nb, np.ones(n, dtype=bool))
        assert plan.ops.sum() == (na * nb).sum()
        assert plan.partitions.sum() == n
        assert np.all(plan.effective_threads <= 32)


class TestSchedulerProperties:
    @given(
        st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=0, max_size=300),
        st.integers(1, 64),
        st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_work_conservation_and_bounds(self, durations, n_sms, residency):
        d = np.array(durations, dtype=np.float64)
        result = list_schedule(d, n_sms, residency)
        assert result.sm_busy.sum() == pytest.approx(d.sum(), rel=1e-9, abs=1e-6)
        if len(d):
            lower = max(d.max(), d.sum() / (n_sms * residency))
            assert result.makespan >= lower - 1e-6
            assert result.makespan <= 2.0 * lower + 1e-6
        # (>= 0: denormal durations can underflow the mean to exactly 0.)
        assert 0.0 <= load_balancing_index(result.sm_busy) <= 1.0
