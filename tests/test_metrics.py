"""Metrics tests: LBI, GFLOPS, profiling reports."""

import numpy as np
import pytest

from repro.gpusim.config import TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.metrics.gflops import FLOPS_PER_PRODUCT, gflops
from repro.metrics.lbi import load_balancing_index
from repro.metrics.profiling import profile_report
from repro.spgemm.base import MultiplyContext
from repro.spgemm.outerproduct import OuterProductSpGEMM


class TestLBI:
    def test_balanced(self):
        assert load_balancing_index(np.full(30, 100.0)) == pytest.approx(1.0)

    def test_single_busy_sm(self):
        cycles = np.zeros(30)
        cycles[0] = 100.0
        assert load_balancing_index(cycles) == pytest.approx(1 / 30)

    def test_idle_gpu(self):
        assert load_balancing_index(np.zeros(30)) == 1.0

    def test_empty(self):
        assert load_balancing_index(np.zeros(0)) == 1.0

    def test_range(self, rng):
        for _ in range(20):
            lbi = load_balancing_index(rng.random(30) * 100)
            assert 0.0 < lbi <= 1.0

    def test_equation3_definition(self, rng):
        cycles = rng.random(16) * 50 + 1
        expected = (cycles / cycles.max()).sum() / 16
        assert load_balancing_index(cycles) == pytest.approx(expected)


class TestGflops:
    def test_definition(self):
        assert gflops(1_000_000, 1e-3) == pytest.approx(FLOPS_PER_PRODUCT * 1e9 / 1e9 / 1.0 * 1e-3 * 1e3)
        assert gflops(500_000_000, 1.0) == pytest.approx(1.0)

    def test_zero_time(self):
        assert gflops(100, 0.0) == 0.0


class TestProfileReport:
    def test_report_fields(self, square_csr):
        ctx = MultiplyContext.build(square_csr)
        stats = OuterProductSpGEMM().simulate(ctx, GPUSimulator(TITAN_XP))
        report = profile_report(stats)
        assert report.algorithm == "outer-product"
        assert report.gpu == "TITAN Xp"
        assert report.total_seconds > 0
        names = {s.stage for s in report.stages}
        assert names == {"expansion", "merge"}
        exp = report.stage("expansion")
        assert 0 < exp.lbi <= 1.0
        assert 0 <= exp.sync_stall_pct <= 100.0
        assert exp.l2_read_gbs >= 0

    def test_unknown_stage_raises(self, square_csr):
        ctx = MultiplyContext.build(square_csr)
        stats = OuterProductSpGEMM().simulate(ctx, GPUSimulator(TITAN_XP))
        with pytest.raises(KeyError):
            profile_report(stats).stage("bogus")
