"""Formatting tests for the experiment modules (small dataset slices).

The bench suite exercises full runs; these verify each module's
``format_result`` renders the paper-style rows without touching the big
dataset matrix.
"""

SMALL = ["poisson3da", "as_caida"]
SKEWED = ["as_caida"]


def test_fig03_format():
    from repro.bench.experiments import fig03_motivation

    rows = fig03_motivation.run(datasets=SMALL)
    text = fig03_motivation.format_result(rows)
    assert "Fig 3(a)" in text and "Fig 3(b)" in text and "Fig 3(c)" in text
    assert "as_caida" in text


def test_fig09_format():
    from repro.bench.experiments import fig09_gflops

    result = fig09_gflops.run(datasets=SMALL)
    text = fig09_gflops.format_result(result)
    assert "GFLOPS" in text
    assert "block-reorganizer" in text


def test_fig10_format():
    from repro.bench.experiments import fig10_techniques

    result = fig10_techniques.run(datasets=SMALL)
    text = fig10_techniques.format_result(result)
    assert "B-Gathering" in text and "GEOMEAN" in text and "paper" in text


def test_fig11_format():
    from repro.bench.experiments import fig11_lbi

    result = fig11_lbi.run(datasets=SKEWED)
    text = fig11_lbi.format_result(result)
    assert "x64" in text and "LBI" in text


def test_fig12_format():
    from repro.bench.experiments import fig12_l2_split

    result = fig12_l2_split.run(datasets=SKEWED)
    text = fig12_l2_split.format_result(result)
    assert "improvement" in text


def test_fig13_format():
    from repro.bench.experiments import fig13_sync_stalls

    result = fig13_sync_stalls.run(datasets=SMALL)
    text = fig13_sync_stalls.format_result(result)
    assert "stall% before" in text


def test_fig14_format():
    from repro.bench.experiments import fig14_l2_limit

    result = fig14_l2_limit.run(datasets=SKEWED)
    text = fig14_l2_limit.format_result(result)
    assert "limiting factor" in text and "f=4" in text


def test_fig15_format():
    from repro.bench.experiments import fig15_scalability
    from repro.gpusim.config import TITAN_XP

    result = fig15_scalability.run(datasets=SMALL, gpus=(TITAN_XP,))
    text = fig15_scalability.format_result(result)
    assert "TITAN Xp" in text


def test_fig16_format():
    from repro.bench.experiments import fig16_synthetic

    result = fig16_synthetic.run(a_datasets=["s1"], b_datasets=[])
    text = fig16_synthetic.format_result(result)
    assert "Fig 16(a)" in text and "s1" in text


def test_fig16_b_only():
    from repro.bench.experiments import fig16_synthetic

    result = fig16_synthetic.run(a_datasets=[], b_datasets=["ab15"])
    text = fig16_synthetic.format_result(result)
    assert "Fig 16(b)" in text and "ab15" in text


def test_sec4e_format():
    from repro.bench.experiments import sec4e_youtube

    row = sec4e_youtube.run(dataset="as_caida")
    text = sec4e_youtube.format_result(row)
    assert "walkthrough" in text and "B-Splitting" in text


def test_table2_format():
    from repro.bench.experiments import table2_datasets

    rows = table2_datasets.run(datasets=SMALL)
    text = table2_datasets.format_result(rows)
    assert "paper dim" in text and "gini" in text


def test_table3_format():
    from repro.bench.experiments import table3_datasets

    rows = table3_datasets.run(datasets=["s1", "ab15"])
    text = table3_datasets.format_result(rows)
    assert "A@B" in text and "parameters" in text
