"""Unit tests for the multicore execution plane's building blocks.

Covers the deterministic partitioners, the shared-memory registry, the
ambient install/scope plumbing, and the engine's serial-threshold and
broken-pool degradation.  End-to-end bit-identity across all seven schemes
lives in ``test_exec_equivalence``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import exec as rexec
from repro.errors import ConfigurationError
from repro.exec.partition import (
    contiguous_blocks,
    group_aligned_blocks,
    lpt_order,
    merge_path_blocks,
    merge_path_group_blocks,
    stream_blocks,
    weight_blocks,
)
from repro.exec.shm import SharedArrayRegistry, attach
from repro.metrics.execprof import format_exec_stats
from repro.plan.estimate import estimate_output_nnz, row_nnz_upper_bound
from repro.spgemm.expansion import expand_row_indices
from repro.spgemm.merge import plan_merge


def _assert_covers(blocks, n):
    assert blocks[0][0] == 0
    assert blocks[-1][1] == n
    for (_, hi), (lo, _) in zip(blocks[:-1], blocks[1:]):
        assert hi == lo
    for lo, hi in blocks:
        assert lo < hi


class TestContiguousBlocks:
    def test_covers_range_contiguously(self, rng):
        weights = rng.integers(0, 50, size=137)
        blocks = contiguous_blocks(weights, 8)
        _assert_covers(blocks, 137)

    def test_deterministic(self, rng):
        weights = rng.integers(0, 50, size=200)
        assert contiguous_blocks(weights, 6) == contiguous_blocks(weights, 6)

    def test_zero_weights_fall_back_to_even_counts(self):
        blocks = contiguous_blocks(np.zeros(12, dtype=np.int64), 4)
        _assert_covers(blocks, 12)
        assert len(blocks) == 4
        assert all(hi - lo == 3 for lo, hi in blocks)

    def test_hub_item_gets_isolated(self):
        # One item holds ~all the weight: it must not drag half the range
        # with it into a single mega-block.
        weights = np.ones(100, dtype=np.int64)
        weights[50] = 10_000
        blocks = contiguous_blocks(weights, 4)
        _assert_covers(blocks, 100)
        hub_block = next((lo, hi) for lo, hi in blocks if lo <= 50 < hi)
        assert hub_block[1] - hub_block[0] <= 52

    def test_more_blocks_than_items_clamps(self):
        blocks = contiguous_blocks(np.ones(3), 16)
        _assert_covers(blocks, 3)
        assert len(blocks) <= 3

    def test_empty(self):
        assert contiguous_blocks(np.zeros(0), 4) == []


class TestGroupAlignedBlocks:
    def test_never_splits_a_group(self, rng):
        group = np.sort(rng.integers(0, 40, size=300))
        blocks = group_aligned_blocks(group, 8)
        _assert_covers(blocks, 300)
        for lo, hi in blocks:
            if lo > 0:
                assert group[lo] != group[lo - 1]

    def test_single_group_collapses_to_one_block(self):
        blocks = group_aligned_blocks(np.zeros(50, dtype=np.int64), 4)
        assert blocks == [(0, 50)]

    def test_empty(self):
        assert group_aligned_blocks(np.zeros(0, dtype=np.int64), 4) == []


class TestMergePathBlocks:
    def test_covers_range_contiguously(self, rng):
        weights = rng.integers(0, 50, size=137)
        _assert_covers(merge_path_blocks(weights, 8), 137)

    def test_deterministic(self, rng):
        weights = rng.integers(0, 50, size=200)
        assert merge_path_blocks(weights, 6) == merge_path_blocks(weights, 6)

    def test_zero_weights_spread_evenly(self):
        # All-empty rows carry no work, but the item axis of the diagonal
        # still spreads them across blocks (LPT would need its explicit
        # zero-total fallback for the same outcome).
        blocks = merge_path_blocks(np.zeros(12, dtype=np.int64), 4)
        _assert_covers(blocks, 12)
        assert len(blocks) == 4
        assert all(hi - lo == 3 for lo, hi in blocks)

    def test_hub_item_gets_isolated(self):
        # One row holds >90% of the flops: the cut lands right after it, so
        # the hub cannot drag a long tail of light rows into its block.
        weights = np.ones(100, dtype=np.int64)
        weights[50] = 10_000
        blocks = merge_path_blocks(weights, 4)
        _assert_covers(blocks, 100)
        hub_block = next((lo, hi) for lo, hi in blocks if lo <= 50 < hi)
        assert hub_block[1] == 51

    def test_uniform_weights_balance_items(self):
        blocks = merge_path_blocks(np.full(96, 7, dtype=np.int64), 4)
        sizes = [hi - lo for lo, hi in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_items_bounded_even_when_weights_skewed(self, rng):
        # The property LPT lacks: per-block item counts stay bounded by the
        # diagonal share even when nearly all weight sits in a few items.
        weights = np.zeros(1000, dtype=np.int64)
        weights[::97] = 5000
        blocks = merge_path_blocks(weights, 8)
        _assert_covers(blocks, 1000)
        assert max(hi - lo for lo, hi in blocks) < 1000

    def test_more_blocks_than_items_clamps(self):
        blocks = merge_path_blocks(np.ones(3), 16)
        _assert_covers(blocks, 3)
        assert len(blocks) <= 3

    def test_empty(self):
        assert merge_path_blocks(np.zeros(0), 4) == []


class TestMergePathGroupBlocks:
    def test_never_splits_a_group(self, rng):
        group = np.sort(rng.integers(0, 40, size=300))
        blocks = merge_path_group_blocks(group, 8)
        _assert_covers(blocks, 300)
        for lo, hi in blocks:
            if lo > 0:
                assert group[lo] != group[lo - 1]

    def test_single_group_collapses_to_one_block(self):
        blocks = merge_path_group_blocks(np.zeros(50, dtype=np.int64), 4)
        assert blocks == [(0, 50)]

    def test_giant_group_among_singletons(self):
        # One group holds >90% of the stream; cuts inside it snap left to
        # its boundary, so the singleton run splits off and the giant group
        # stays whole (a group is never divisible).
        group = np.concatenate(
            [np.arange(40, dtype=np.int64), np.full(900, 40, dtype=np.int64)]
        )
        blocks = merge_path_group_blocks(group, 4)
        assert blocks == [(0, 40), (40, 940)]

    def test_empty(self):
        assert merge_path_group_blocks(np.zeros(0, dtype=np.int64), 4) == []


class TestPartitionerDispatch:
    def test_weight_blocks_dispatches_both_names(self, rng):
        weights = rng.integers(0, 50, size=80)
        assert weight_blocks(weights, 4, partitioner="merge-path") == (
            merge_path_blocks(weights, 4)
        )
        assert weight_blocks(weights, 4, partitioner="lpt") == (
            contiguous_blocks(weights, 4)
        )

    def test_stream_blocks_dispatches_both_names(self, rng):
        group = np.sort(rng.integers(0, 30, size=200))
        assert stream_blocks(group, 4, partitioner="merge-path") == (
            merge_path_group_blocks(group, 4)
        )
        assert stream_blocks(group, 4, partitioner="lpt") == (
            group_aligned_blocks(group, 4)
        )

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            weight_blocks(np.ones(4), 2, partitioner="bogus")
        with pytest.raises(ValueError, match="unknown partitioner"):
            stream_blocks(np.zeros(4, dtype=np.int64), 2, partitioner="bogus")

    def test_engine_validates_partitioner_names(self):
        with pytest.raises(ConfigurationError, match="unknown partitioner"):
            rexec.ExecEngine(2, partitioner="bogus")
        with pytest.raises(ConfigurationError, match="unknown partitioner"):
            rexec.ExecEngine(2, partitioner_overrides={"merge": "bogus"})

    def test_engine_per_op_override(self):
        engine = rexec.ExecEngine(
            2, partitioner="merge-path", partitioner_overrides={"merge": "lpt"}
        )
        try:
            assert engine._partitioner_for("merge") == "lpt"
            assert engine._partitioner_for("expand_row") == "merge-path"
        finally:
            engine.close()

    def test_default_partitioner_is_merge_path(self):
        assert rexec.DEFAULT_PARTITIONER == "merge-path"
        assert rexec.DEFAULT_PARTITIONER in rexec.PARTITIONER_NAMES


class TestEstimatedMergeSizing:
    def test_row_nnz_upper_bound_caps_at_n_cols(self):
        row_work = np.array([0, 3, 500, 12], dtype=np.int64)
        bound = row_nnz_upper_bound(row_work, 40)
        np.testing.assert_array_equal(bound, [0, 3, 40, 12])
        assert bound.dtype == np.int64
        assert estimate_output_nnz(row_work, 40) == 55

    def test_estimated_merge_matches_exact(self, square_csr):
        rows, cols, _, _ = expand_row_indices(square_csr, square_csr)
        shape = (square_csr.n_rows, square_csr.n_rows)
        exact = plan_merge(rows, cols, shape)
        est = row_nnz_upper_bound(
            np.bincount(rows, minlength=shape[0]), shape[1]
        )
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            recipe = engine.merge(rows, cols, shape, est_row_nnz=est)
            assert recipe is not None
            assert engine.stats.estimate_overflows == 0
            np.testing.assert_array_equal(recipe.order, exact.order)
            np.testing.assert_array_equal(recipe.group, exact.group)
            assert recipe.n_groups == exact.n_groups
            np.testing.assert_array_equal(recipe.indptr, exact.indptr)
            np.testing.assert_array_equal(recipe.indices, exact.indices)
        finally:
            engine.close()

    def test_underestimate_falls_back_and_counts(self, square_csr):
        # A bound that is not an upper bound must abort the estimated pass
        # (None -> caller's exact serial path), never mis-size the output.
        rows, cols, _, _ = expand_row_indices(square_csr, square_csr)
        shape = (square_csr.n_rows, square_csr.n_rows)
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            out = engine.merge(
                rows, cols, shape,
                est_row_nnz=np.zeros(shape[0], dtype=np.int64),
            )
            assert out is None
            assert engine.stats.estimate_overflows == 1
        finally:
            engine.close()


class TestLptOrder:
    def test_heaviest_first_stable_ties(self):
        assert lpt_order([3.0, 9.0, 3.0, 1.0]) == [1, 0, 2, 3]

    def test_empty(self):
        assert lpt_order([]) == []


class TestSharedArrayRegistry:
    def test_publish_roundtrip_and_identity_reuse(self, rng):
        registry = SharedArrayRegistry()
        try:
            array = rng.standard_normal(100)
            ref = registry.publish(array)
            assert registry.publish_misses == 1
            np.testing.assert_array_equal(attach(ref), array)
            assert registry.publish(array) == ref
            assert registry.publish_hits == 1
            # An equal-valued but distinct object is a fresh copy.
            registry.publish(array.copy())
            assert registry.publish_misses == 2
        finally:
            registry.close()

    def test_scratch_roundtrip_and_release(self):
        registry = SharedArrayRegistry()
        try:
            ref, view = registry.scratch((8,), np.int64)
            view[...] = np.arange(8)
            np.testing.assert_array_equal(attach(ref), np.arange(8))
            registry.release_scratch()
            assert registry._scratch == []
        finally:
            registry.close()

    def test_publish_budget_evicts_lru(self):
        registry = SharedArrayRegistry(publish_budget=3 * 800)
        try:
            arrays = [np.zeros(100) for _ in range(5)]
            for array in arrays:
                registry.publish(array)
            assert len(registry._published) <= 3
            # The most recent array is still cached (identity hit).
            hits = registry.publish_hits
            registry.publish(arrays[-1])
            assert registry.publish_hits == hits + 1
        finally:
            registry.close()


class TestAmbientScope:
    def test_noop_scopes_install_nothing(self):
        for workers in (None, 0, 1):
            with rexec.engine_scope(workers) as engine:
                assert engine is None
                assert rexec.active() is None

    def test_int_scope_creates_and_closes(self):
        with rexec.engine_scope(2, min_items=0) as engine:
            assert rexec.active() is engine
            assert engine.workers == 2
            assert engine.min_items == 0
        assert rexec.active() is None

    def test_engine_scope_leaves_provided_engine_open(self):
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            with rexec.engine_scope(engine) as installed:
                assert installed is engine
            assert rexec.active() is None
            # Still usable after the scope: the caller owns its lifetime.
            assert engine.workers == 2
        finally:
            engine.close()

    def test_scopes_nest_and_restore(self):
        outer = rexec.ExecEngine(2, min_items=0)
        inner = rexec.ExecEngine(3, min_items=0)
        try:
            with rexec.engine_scope(outer):
                with rexec.engine_scope(inner):
                    assert rexec.active() is inner
                assert rexec.active() is outer
            assert rexec.active() is None
        finally:
            outer.close()
            inner.close()

    def test_install_uninstall(self):
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            rexec.install(engine)
            assert rexec.active() is engine
            assert rexec.uninstall() is engine
            assert rexec.active() is None
        finally:
            engine.close()


class TestEngineDegradation:
    def test_below_threshold_returns_none_and_counts(self, square_csr):
        engine = rexec.ExecEngine(2, min_items=1 << 30)
        try:
            out = engine.expand_row_indices(square_csr, square_csr)
            assert out is None
            assert engine.stats.serial_calls == 1
            assert engine.stats.parallel_calls == 0
        finally:
            engine.close()

    def test_broken_engine_returns_none(self, square_csr):
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            engine._broken = True
            assert engine.expand_row_indices(square_csr, square_csr) is None
            assert (
                engine.segmented_sum(
                    np.ones(4), np.arange(4), np.zeros(4, dtype=np.int64), 1
                )
                is None
            )
        finally:
            engine.close()

    def test_workers_one_never_parallelises(self, square_csr):
        engine = rexec.ExecEngine(1, min_items=0)
        try:
            assert engine.expand_row_indices(square_csr, square_csr) is None
            assert engine.stats.parallel_calls == 0
        finally:
            engine.close()


def test_stats_as_dict_and_formatting():
    stats = rexec.ExecStats(parallel_calls=3, partitions=12, items=1000, publish_hits=2)
    stats.note_op(
        "merge", partitions=4, items=600, partitioner="merge-path", backend="numpy"
    )
    stats.note_op(
        "merge", partitions=8, items=400, partitioner="merge-path", backend="numpy"
    )
    snapshot = stats.as_dict()
    assert snapshot["parallel_calls"] == 3
    assert snapshot["partitions"] == 12
    assert snapshot["per_op"]["merge"] == {
        "calls": 2,
        "partitions": 12,
        "items": 1000,
        "partitioner": "merge-path",
        "backend": "numpy",
    }
    # The snapshot is a copy: mutating it must not write back into stats.
    snapshot["per_op"]["merge"]["calls"] = 99
    assert stats.per_op["merge"]["calls"] == 2
    text = format_exec_stats(stats)
    assert "3 parallel calls" in text
    assert "12 partitions" in text
    assert "2 reused" in text
    assert "0 estimate overflows" in text
    assert "merge: 2 calls" in text
    assert "[partitioner=merge-path, backend=numpy]" in text


def test_default_exec_workers_positive():
    assert rexec.default_exec_workers() >= 1
