"""Unit tests for the multicore execution plane's building blocks.

Covers the deterministic partitioners, the shared-memory registry, the
ambient install/scope plumbing, and the engine's serial-threshold and
broken-pool degradation.  End-to-end bit-identity across all seven schemes
lives in ``test_exec_equivalence``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import exec as rexec
from repro.exec.partition import contiguous_blocks, group_aligned_blocks, lpt_order
from repro.exec.shm import SharedArrayRegistry, attach
from repro.metrics.execprof import format_exec_stats


def _assert_covers(blocks, n):
    assert blocks[0][0] == 0
    assert blocks[-1][1] == n
    for (_, hi), (lo, _) in zip(blocks[:-1], blocks[1:]):
        assert hi == lo
    for lo, hi in blocks:
        assert lo < hi


class TestContiguousBlocks:
    def test_covers_range_contiguously(self, rng):
        weights = rng.integers(0, 50, size=137)
        blocks = contiguous_blocks(weights, 8)
        _assert_covers(blocks, 137)

    def test_deterministic(self, rng):
        weights = rng.integers(0, 50, size=200)
        assert contiguous_blocks(weights, 6) == contiguous_blocks(weights, 6)

    def test_zero_weights_fall_back_to_even_counts(self):
        blocks = contiguous_blocks(np.zeros(12, dtype=np.int64), 4)
        _assert_covers(blocks, 12)
        assert len(blocks) == 4
        assert all(hi - lo == 3 for lo, hi in blocks)

    def test_hub_item_gets_isolated(self):
        # One item holds ~all the weight: it must not drag half the range
        # with it into a single mega-block.
        weights = np.ones(100, dtype=np.int64)
        weights[50] = 10_000
        blocks = contiguous_blocks(weights, 4)
        _assert_covers(blocks, 100)
        hub_block = next((lo, hi) for lo, hi in blocks if lo <= 50 < hi)
        assert hub_block[1] - hub_block[0] <= 52

    def test_more_blocks_than_items_clamps(self):
        blocks = contiguous_blocks(np.ones(3), 16)
        _assert_covers(blocks, 3)
        assert len(blocks) <= 3

    def test_empty(self):
        assert contiguous_blocks(np.zeros(0), 4) == []


class TestGroupAlignedBlocks:
    def test_never_splits_a_group(self, rng):
        group = np.sort(rng.integers(0, 40, size=300))
        blocks = group_aligned_blocks(group, 8)
        _assert_covers(blocks, 300)
        for lo, hi in blocks:
            if lo > 0:
                assert group[lo] != group[lo - 1]

    def test_single_group_collapses_to_one_block(self):
        blocks = group_aligned_blocks(np.zeros(50, dtype=np.int64), 4)
        assert blocks == [(0, 50)]

    def test_empty(self):
        assert group_aligned_blocks(np.zeros(0, dtype=np.int64), 4) == []


class TestLptOrder:
    def test_heaviest_first_stable_ties(self):
        assert lpt_order([3.0, 9.0, 3.0, 1.0]) == [1, 0, 2, 3]

    def test_empty(self):
        assert lpt_order([]) == []


class TestSharedArrayRegistry:
    def test_publish_roundtrip_and_identity_reuse(self, rng):
        registry = SharedArrayRegistry()
        try:
            array = rng.standard_normal(100)
            ref = registry.publish(array)
            assert registry.publish_misses == 1
            np.testing.assert_array_equal(attach(ref), array)
            assert registry.publish(array) == ref
            assert registry.publish_hits == 1
            # An equal-valued but distinct object is a fresh copy.
            registry.publish(array.copy())
            assert registry.publish_misses == 2
        finally:
            registry.close()

    def test_scratch_roundtrip_and_release(self):
        registry = SharedArrayRegistry()
        try:
            ref, view = registry.scratch((8,), np.int64)
            view[...] = np.arange(8)
            np.testing.assert_array_equal(attach(ref), np.arange(8))
            registry.release_scratch()
            assert registry._scratch == []
        finally:
            registry.close()

    def test_publish_budget_evicts_lru(self):
        registry = SharedArrayRegistry(publish_budget=3 * 800)
        try:
            arrays = [np.zeros(100) for _ in range(5)]
            for array in arrays:
                registry.publish(array)
            assert len(registry._published) <= 3
            # The most recent array is still cached (identity hit).
            hits = registry.publish_hits
            registry.publish(arrays[-1])
            assert registry.publish_hits == hits + 1
        finally:
            registry.close()


class TestAmbientScope:
    def test_noop_scopes_install_nothing(self):
        for workers in (None, 0, 1):
            with rexec.engine_scope(workers) as engine:
                assert engine is None
                assert rexec.active() is None

    def test_int_scope_creates_and_closes(self):
        with rexec.engine_scope(2, min_items=0) as engine:
            assert rexec.active() is engine
            assert engine.workers == 2
            assert engine.min_items == 0
        assert rexec.active() is None

    def test_engine_scope_leaves_provided_engine_open(self):
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            with rexec.engine_scope(engine) as installed:
                assert installed is engine
            assert rexec.active() is None
            # Still usable after the scope: the caller owns its lifetime.
            assert engine.workers == 2
        finally:
            engine.close()

    def test_scopes_nest_and_restore(self):
        outer = rexec.ExecEngine(2, min_items=0)
        inner = rexec.ExecEngine(3, min_items=0)
        try:
            with rexec.engine_scope(outer):
                with rexec.engine_scope(inner):
                    assert rexec.active() is inner
                assert rexec.active() is outer
            assert rexec.active() is None
        finally:
            outer.close()
            inner.close()

    def test_install_uninstall(self):
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            rexec.install(engine)
            assert rexec.active() is engine
            assert rexec.uninstall() is engine
            assert rexec.active() is None
        finally:
            engine.close()


class TestEngineDegradation:
    def test_below_threshold_returns_none_and_counts(self, square_csr):
        engine = rexec.ExecEngine(2, min_items=1 << 30)
        try:
            out = engine.expand_row_indices(square_csr, square_csr)
            assert out is None
            assert engine.stats.serial_calls == 1
            assert engine.stats.parallel_calls == 0
        finally:
            engine.close()

    def test_broken_engine_returns_none(self, square_csr):
        engine = rexec.ExecEngine(2, min_items=0)
        try:
            engine._broken = True
            assert engine.expand_row_indices(square_csr, square_csr) is None
            assert (
                engine.segmented_sum(
                    np.ones(4), np.arange(4), np.zeros(4, dtype=np.int64), 1
                )
                is None
            )
        finally:
            engine.close()

    def test_workers_one_never_parallelises(self, square_csr):
        engine = rexec.ExecEngine(1, min_items=0)
        try:
            assert engine.expand_row_indices(square_csr, square_csr) is None
            assert engine.stats.parallel_calls == 0
        finally:
            engine.close()


def test_stats_as_dict_and_formatting():
    stats = rexec.ExecStats(parallel_calls=3, partitions=12, items=1000, publish_hits=2)
    snapshot = stats.as_dict()
    assert snapshot["parallel_calls"] == 3
    assert snapshot["partitions"] == 12
    line = format_exec_stats(stats)
    assert "3 parallel calls" in line
    assert "12 partitions" in line
    assert "2 reused" in line


def test_default_exec_workers_positive():
    assert rexec.default_exec_workers() >= 1
