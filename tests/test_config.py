"""GPU/CPU configuration tests (Table I constants)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.config import (
    ALL_GPUS,
    GPUConfig,
    RTX_2080TI,
    TESLA_V100,
    TITAN_XP,
    XEON_E5_2640V4,
)


def test_table1_sm_counts():
    assert TITAN_XP.n_sms == 30
    assert TESLA_V100.n_sms == 80
    assert RTX_2080TI.n_sms == 68


def test_table1_clocks():
    assert TITAN_XP.clock_mhz == pytest.approx(1582.0)
    assert TESLA_V100.clock_mhz == pytest.approx(1380.0)
    assert RTX_2080TI.clock_mhz == pytest.approx(1545.0)


def test_compute_capabilities():
    assert TITAN_XP.compute_capability == "6.1"
    assert TESLA_V100.compute_capability == "7.0"
    assert RTX_2080TI.compute_capability == "7.5"


def test_bytes_per_cycle_sane():
    for gpu in ALL_GPUS:
        bpc = gpu.bytes_per_cycle_dram()
        assert 50 < bpc < 1000
        assert gpu.bytes_per_cycle_l2() > bpc  # L2 faster than DRAM


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        GPUConfig(name="bad", n_sms=0, clock_mhz=1000.0, compute_capability="0.0")


def test_frozen():
    with pytest.raises(AttributeError):
        TITAN_XP.n_sms = 1


def test_cpu_clock():
    assert XEON_E5_2640V4.clock_hz == pytest.approx(3.4e9)
