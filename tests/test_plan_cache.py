"""Plan cache and IterativeSession: reuse must be invisible except in speed.

The contract under test: a structure hit replays the numeric phase
*bit-identically* to a cold execution (same float64 summation order), a
structure change misses, and the amortisation counters account for exactly
the work performed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import pagerank, pagerank_spgemm
from repro.apps.shortestpaths import k_hop_shortest_paths
from repro.core.adaptive import AdaptiveBlockReorganizer
from repro.core.reorganizer import BlockReorganizer
from repro.plan.cache import PlanCache, structure_fingerprint
from repro.sparse.csr import CSRMatrix
from repro.spgemm.base import MultiplyContext
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.rowproduct import RowProductSpGEMM
from repro.spgemm.semiring import MIN_PLUS, OR_AND, semiring_spgemm
from repro.spgemm.session import IterativeSession

from .conftest import random_csr


def _same_structure_new_values(m: CSRMatrix, rng) -> CSRMatrix:
    return CSRMatrix(
        m.shape, m.indptr.copy(), m.indices.copy(), rng.standard_normal(m.nnz)
    )


def _assert_bit_identical(x: CSRMatrix, y: CSRMatrix) -> None:
    assert x.shape == y.shape
    np.testing.assert_array_equal(x.indptr, y.indptr)
    np.testing.assert_array_equal(x.indices, y.indices)
    np.testing.assert_array_equal(x.data, y.data)


class TestStructureFingerprint:
    def test_values_do_not_matter(self, rng):
        a = random_csr(rng, 30, 30, 0.1)
        a2 = _same_structure_new_values(a, rng)
        assert structure_fingerprint(a, a) == structure_fingerprint(a2, a2)

    def test_structure_change_changes_fingerprint(self, rng):
        a = random_csr(rng, 30, 30, 0.1)
        b = random_csr(rng, 30, 30, 0.1)
        while np.array_equal(a.indices, b.indices) and np.array_equal(
            a.indptr, b.indptr
        ):  # pragma: no cover - astronomically unlikely
            b = random_csr(rng, 30, 30, 0.1)
        assert structure_fingerprint(a, a) != structure_fingerprint(b, b)

    def test_operand_order_matters(self, rng):
        a = random_csr(rng, 30, 30, 0.1)
        b = random_csr(rng, 30, 30, 0.15)
        assert structure_fingerprint(a, b) != structure_fingerprint(b, a)


ALL_SCHEMES = [
    RowProductSpGEMM,
    OuterProductSpGEMM,
    BlockReorganizer,
]


class TestReplayBitIdentical:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_same_structure_new_values(self, scheme, rng):
        algo = scheme()
        cache = PlanCache()
        a = random_csr(rng, 50, 50, 0.12)
        b = random_csr(rng, 50, 50, 0.12)
        cache.multiply(algo, a, b)

        a2 = _same_structure_new_values(a, rng)
        b2 = _same_structure_new_values(b, rng)
        warm = cache.multiply(algo, a2, b2)
        cold = algo.multiply(MultiplyContext.build(a2, b2))
        _assert_bit_identical(warm, cold)
        assert cache.stats.hits == 1
        assert cache.stats.lowers == 1

    def test_all_paper_algorithms_replay(self, rng):
        from repro.bench.runner import paper_algorithms

        a = random_csr(rng, 60, 60, 0.1)
        b = random_csr(rng, 60, 60, 0.1)
        a2 = _same_structure_new_values(a, rng)
        b2 = _same_structure_new_values(b, rng)
        for algo in paper_algorithms():
            cache = PlanCache()
            cache.multiply(algo, a, b)
            warm = cache.multiply(algo, a2, b2)
            assert cache.stats.hits == 1, algo.name
            cold = algo.multiply(MultiplyContext.build(a2, b2))
            _assert_bit_identical(warm, cold)

    def test_skewed_structure_exercises_split_provenance(self, rng, skewed_csr):
        # Power-law operands classify dominators, so the reorganizer's split
        # kernel (gather-composed provenance) is on the replay path.
        algo = BlockReorganizer()
        cache = PlanCache()
        a = skewed_csr
        cache.multiply(algo, a, a)
        a2 = CSRMatrix(
            a.shape, a.indptr.copy(), a.indices.copy(),
            rng.random(a.nnz) + 0.5,
        )
        warm = cache.multiply(algo, a2, a2)
        assert cache.stats.hits == 1
        cold = algo.multiply(MultiplyContext.build(a2, a2))
        _assert_bit_identical(warm, cold)

    def test_structure_change_invalidates(self, rng):
        algo = RowProductSpGEMM()
        cache = PlanCache()
        a = random_csr(rng, 40, 40, 0.1)
        cache.multiply(algo, a, a)
        b = random_csr(rng, 40, 40, 0.2)
        out = cache.multiply(algo, b, b)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert cache.stats.lowers == 2
        cold = algo.multiply(MultiplyContext.build(b, b))
        _assert_bit_identical(out, cold)

    def test_different_algorithms_do_not_collide(self, rng):
        cache = PlanCache()
        a = random_csr(rng, 40, 40, 0.1)
        row, outer = RowProductSpGEMM(), OuterProductSpGEMM()
        cache.multiply(row, a, a)
        out = cache.multiply(outer, a, a)
        assert cache.stats.hits == 0  # same structure, different scheme key
        _assert_bit_identical(out, outer.multiply(MultiplyContext.build(a, a)))

    def test_empty_product_replays(self, rng):
        algo = RowProductSpGEMM()
        cache = PlanCache()
        left = CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        right = CSRMatrix.from_dense(np.array([[0.0, 0.0], [0.0, 0.0]]))
        # right has no stored entries at all -> empty expansion stream.
        first = cache.multiply(algo, left, right)
        second = cache.multiply(algo, left, right)
        assert first.nnz == 0 and second.nnz == 0
        assert cache.stats.hits == 1


class TestSemiringReplay:
    @pytest.mark.parametrize("semiring", [MIN_PLUS, OR_AND])
    def test_same_structure_new_values(self, semiring, rng):
        cache = PlanCache()
        a = random_csr(rng, 40, 40, 0.15)
        b = random_csr(rng, 40, 40, 0.15)
        cache.semiring_multiply(a, b, semiring)
        a2 = CSRMatrix(
            a.shape, a.indptr.copy(), a.indices.copy(), rng.random(a.nnz) + 0.1
        )
        b2 = CSRMatrix(
            b.shape, b.indptr.copy(), b.indices.copy(), rng.random(b.nnz) + 0.1
        )
        warm = cache.semiring_multiply(a2, b2, semiring)
        assert cache.stats.hits == 1
        cold = semiring_spgemm(a2, b2, semiring)
        _assert_bit_identical(warm, cold)

    def test_identity_dropping_recomputed_per_replay(self, rng):
        # The kept-entry set depends on values, so replay must rebuild the
        # output structure, not reuse the fill-time one.
        cache = PlanCache()
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))
        cache.semiring_multiply(a, a, OR_AND)
        # Same structure, but values that make some products vanish under
        # or-and (zeros are combine-annihilators kept as stored entries).
        a2 = CSRMatrix(a.shape, a.indptr.copy(), a.indices.copy(),
                       np.array([1.0, 0.0, 1.0]))
        warm = cache.semiring_multiply(a2, a2, OR_AND)
        assert cache.stats.hits == 1
        cold = semiring_spgemm(a2, a2, OR_AND)
        _assert_bit_identical(warm, cold)


class TestIterativeSession:
    def test_counters_and_reuse(self, rng):
        session = IterativeSession(RowProductSpGEMM())
        a = random_csr(rng, 40, 40, 0.1)
        for _ in range(5):
            session.multiply(a, a)
        stats = session.stats
        assert stats.lookups == 5
        assert stats.lowers == 1
        assert stats.symbolic_expansions == 1
        assert stats.numeric_replays == 4
        assert stats.hit_rate == pytest.approx(0.8)

    def test_wrap_passes_sessions_through(self):
        session = IterativeSession(RowProductSpGEMM())
        assert IterativeSession.wrap(session) is session
        wrapped = IterativeSession.wrap(RowProductSpGEMM())
        assert isinstance(wrapped, IterativeSession)

    def test_shared_cache_across_sessions(self, rng):
        cache = PlanCache()
        a = random_csr(rng, 40, 40, 0.1)
        IterativeSession(RowProductSpGEMM(), cache=cache).multiply(a, a)
        IterativeSession(RowProductSpGEMM(), cache=cache).multiply(a, a)
        assert cache.stats.hits == 1

    def test_base_multiply_accepts_cache(self, rng):
        algo = RowProductSpGEMM()
        cache = PlanCache()
        a = random_csr(rng, 40, 40, 0.1)
        ctx = MultiplyContext.build(a, a)
        first = algo.multiply(ctx, plan_cache=cache)
        second = algo.multiply(ctx, plan_cache=cache)
        assert cache.stats.hits == 1
        _assert_bit_identical(first, second)


class TestIterativeApps:
    def test_pagerank_spgemm_lowering_amortised(self):
        # Acceptance criterion: a 20-iteration PageRank run on a catalog
        # dataset performs lowering + symbolic expansion exactly once.
        from repro.datasets.loader import load

        adj = load("poisson3da").a
        session = IterativeSession(RowProductSpGEMM())
        result = pagerank_spgemm(adj, session, max_iter=20, tol=0.0)
        assert result.iterations == 20
        stats = session.stats
        assert stats.lookups == 20
        assert stats.lowers == 1
        assert stats.symbolic_expansions == 1
        assert stats.numeric_replays == 19

        reference = pagerank(adj, max_iter=20, tol=0.0)
        np.testing.assert_allclose(
            result.scores, reference.scores, rtol=1e-9, atol=1e-12
        )

    def test_pagerank_spgemm_matches_pagerank(self, rng):
        a = random_csr(rng, 50, 50, 0.1)
        mine = pagerank_spgemm(a, RowProductSpGEMM(), max_iter=60)
        ref = pagerank(a, max_iter=60)
        np.testing.assert_allclose(mine.scores, ref.scores, rtol=1e-8, atol=1e-12)

    def test_shortest_paths_session_reuses_converged_structure(self, rng):
        weights = random_csr(rng, 30, 30, 0.2)
        weights = CSRMatrix(
            weights.shape, weights.indptr, weights.indices, weights.data + 0.1
        )
        session = IterativeSession(RowProductSpGEMM())
        with_session = k_hop_shortest_paths(weights, 6, session=session)
        without = k_hop_shortest_paths(weights, 6)
        _assert_bit_identical(with_session, without)
        # On a 30-node graph the distance structure converges within a few
        # relaxations; the remaining ones must be structure hits.
        assert session.stats.hits > 0

    def test_adaptive_tuning_memoised_per_structure(self, rng, skewed_csr):
        algo = AdaptiveBlockReorganizer()
        ctx = MultiplyContext.build(skewed_csr, skewed_csr)
        first = algo.tune(ctx)
        assert algo.tune(ctx) is first  # same structure: memoized object
        other = MultiplyContext.build(*[random_csr(rng, 40, 40, 0.1)] * 2)
        assert algo.tune(other) is not first


class TestBenchGridUnaffected:
    def test_smoke_grid_identical_with_plan_cache(self):
        # The golden grid is the performance plane; running the numeric plane
        # through a PlanCache (including warm replays) must not perturb it.
        import json as jsonlib

        from repro.bench.cache import result_to_dict
        from repro.bench.runner import get_context, paper_algorithms, run_matrix

        datasets = ["poisson3da", "as_caida"]

        def canonical():
            results = run_matrix(datasets, paper_algorithms(), workers=1, cache=None)
            return {
                f"{d}/{a}": jsonlib.dumps(result_to_dict(r), sort_keys=True)
                for (d, a), r in results.items()
            }

        baseline = canonical()
        cache = PlanCache()
        for dataset in datasets:
            ctx = get_context(dataset)
            for algo in paper_algorithms():
                cold = algo.multiply(ctx, plan_cache=cache)
                warm = algo.multiply(ctx, plan_cache=cache)
                _assert_bit_identical(cold, warm)
        assert cache.stats.hits == len(datasets) * len(paper_algorithms())
        assert canonical() == baseline


class TestBoundedCache:
    """LRU bounding: a long-lived cache must not grow without limit."""

    def _fill(self, cache, rng, n, shape=(10, 10)):
        """Run n distinct-structure multiplies through the cache."""
        algo = RowProductSpGEMM()
        matrices = []
        for _ in range(n):
            m = random_csr(rng, *shape, 0.3)
            cache.multiply(algo, m, m)
            matrices.append(m)
        return algo, matrices

    def test_unbounded_by_default(self, rng):
        cache = PlanCache()
        self._fill(cache, rng, 5)
        assert len(cache) == 5
        assert cache.stats.evictions == 0

    def test_max_entries_evicts_lru(self, rng):
        cache = PlanCache(max_entries=3)
        algo, matrices = self._fill(cache, rng, 5)
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        # The two oldest structures were evicted: multiplying them again
        # re-lowers (miss); the three newest replay (hit).
        lowers = cache.stats.lowers
        for m in matrices[:2]:
            cache.multiply(algo, m, m)
        assert cache.stats.lowers == lowers + 2
        hits = cache.stats.hits
        for m in matrices[-1:]:
            cache.multiply(algo, m, m)
        assert cache.stats.hits == hits + 1

    def test_hit_refreshes_recency(self, rng):
        cache = PlanCache(max_entries=2)
        algo, matrices = self._fill(cache, rng, 2)
        cache.multiply(algo, matrices[0], matrices[0])  # refresh oldest
        m3 = random_csr(rng, 10, 10, 0.3)
        cache.multiply(algo, m3, m3)  # evicts matrices[1], not matrices[0]
        hits = cache.stats.hits
        cache.multiply(algo, matrices[0], matrices[0])
        assert cache.stats.hits == hits + 1
        lowers = cache.stats.lowers
        cache.multiply(algo, matrices[1], matrices[1])
        assert cache.stats.lowers == lowers + 1

    def test_byte_budget_evicts_and_counts(self, rng):
        cache = PlanCache(max_bytes=1)  # every entry overflows the budget
        self._fill(cache, rng, 3)
        assert len(cache) <= 1
        assert cache.stats.evictions >= 2
        assert cache.stats.evicted_bytes > 0
        assert cache.nbytes <= max(e.nbytes for e in cache._entries.values()) if len(cache) else True

    def test_results_identical_under_eviction(self, rng):
        bounded = PlanCache(max_entries=1)
        unbounded = PlanCache()
        algo = RowProductSpGEMM()
        matrices = [random_csr(rng, 12, 12, 0.3) for _ in range(3)]
        for _ in range(2):  # second round: bounded cache re-lowers every time
            for m in matrices:
                _assert_bit_identical(
                    bounded.multiply(algo, m, m), unbounded.multiply(algo, m, m)
                )
        assert bounded.stats.evictions > 0

    def test_semiring_entries_bounded_too(self, rng):
        cache = PlanCache(max_entries=2)
        for _ in range(4):
            m = random_csr(rng, 8, 8, 0.4)
            cache.semiring_multiply(m, m, OR_AND)
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)
        with pytest.raises(ValueError):
            PlanCache(max_bytes=-1)

    def test_eviction_counters_in_dict_and_rendering(self, rng):
        from repro.metrics.planprof import format_cache_stats

        cache = PlanCache(max_entries=1)
        self._fill(cache, rng, 2)
        d = cache.stats.as_dict()
        assert d["evictions"] == 1
        assert d["evicted_bytes"] > 0
        assert "evictions" in format_cache_stats(cache.stats)
