"""Tests for repro.serve: protocol codecs, micro-batching, the HTTP server.

The server tests run a real :class:`ServerThread` over a real
:class:`Runtime` and talk HTTP through urllib — the same path a client
takes — asserting the serving invariants: responses bit-identical to the
batch path, same-structure concurrency amortised into few symbolic
lowerings, admission control and error mapping.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.runtime import Runtime, RuntimeConfig
from repro.serve import (
    AdmissionConfig,
    BadRequest,
    MicroBatcher,
    Overloaded,
    ServeConfig,
    ServerThread,
    csr_from_wire,
    csr_to_wire,
)
from repro.spgemm.base import MultiplyContext
from repro.spgemm.rowproduct import RowProductSpGEMM

from .conftest import random_csr


def identical(x, y):
    return (
        x.shape == y.shape
        and x.indptr.tobytes() == y.indptr.tobytes()
        and x.indices.tobytes() == y.indices.tobytes()
        and x.data.tobytes() == y.data.tobytes()
    )


class TestProtocol:
    def test_wire_roundtrip_is_bit_identical(self, rng):
        m = random_csr(rng, 17, 23, 0.2)
        # Through actual JSON text, as on the wire.
        wire = json.loads(json.dumps(csr_to_wire(m)))
        back = csr_from_wire(wire)
        assert identical(m, back)

    def test_missing_keys_rejected(self):
        with pytest.raises(BadRequest, match="missing"):
            csr_from_wire({"shape": [1, 1], "indptr": [0, 0], "indices": []})

    def test_non_object_rejected(self):
        with pytest.raises(BadRequest, match="must be a JSON object"):
            csr_from_wire([1, 2, 3])

    def test_bad_shape_rejected(self):
        with pytest.raises(BadRequest, match="shape"):
            csr_from_wire(
                {"shape": [1], "indptr": [0, 0], "indices": [], "data": []}
            )

    def test_invalid_structure_rejected(self):
        with pytest.raises(BadRequest, match="not a valid CSR"):
            csr_from_wire(
                {"shape": [2, 2], "indptr": [0, 5, 1], "indices": [0], "data": [1.0]}
            )

    def test_non_numeric_arrays_rejected(self):
        with pytest.raises(BadRequest):
            csr_from_wire(
                {"shape": [1, 1], "indptr": [0, 1], "indices": ["x"], "data": [1.0]}
            )


class TestMicroBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_same_key_requests_share_a_batch(self):
        batcher = MicroBatcher(
            AdmissionConfig(max_inflight=1, batch_window=0.05, max_batch=8)
        )

        async def scenario():
            jobs = [
                asyncio.create_task(batcher.submit(("k",), lambda i=i: i * 10))
                for i in range(4)
            ]
            return await asyncio.gather(*jobs)

        try:
            assert self._run(scenario()) == [0, 10, 20, 30]
            assert batcher.stats.batches == 1
            assert batcher.stats.batched_requests == 4
            assert batcher.stats.largest_batch == 4
        finally:
            batcher.close()

    def test_distinct_keys_do_not_batch(self):
        batcher = MicroBatcher(AdmissionConfig(max_inflight=2, batch_window=0.02))

        async def scenario():
            jobs = [
                asyncio.create_task(batcher.submit((f"k{i}",), lambda i=i: i))
                for i in range(3)
            ]
            return await asyncio.gather(*jobs)

        try:
            assert self._run(scenario()) == [0, 1, 2]
            assert batcher.stats.batches == 3
        finally:
            batcher.close()

    def test_max_batch_dispatches_immediately(self):
        batcher = MicroBatcher(
            AdmissionConfig(max_inflight=1, batch_window=5.0, max_batch=2)
        )

        async def scenario():
            # window is 5s: only the size cap can dispatch these in time.
            jobs = [
                asyncio.create_task(batcher.submit(("k",), lambda i=i: i))
                for i in range(2)
            ]
            return await asyncio.wait_for(asyncio.gather(*jobs), timeout=2.0)

        try:
            assert self._run(scenario()) == [0, 1]
        finally:
            batcher.close()

    def test_overload_rejected(self):
        batcher = MicroBatcher(
            AdmissionConfig(max_inflight=1, max_queue=0, batch_window=0.0)
        )
        release = threading.Event()

        async def scenario():
            first = asyncio.create_task(
                batcher.submit(("a",), lambda: release.wait(5))
            )
            await asyncio.sleep(0.1)  # first is admitted and running
            with pytest.raises(Overloaded):
                await batcher.submit(("b",), lambda: None)
            assert batcher.stats.rejected == 1
            release.set()
            assert (await first) is True

        try:
            self._run(scenario())
        finally:
            batcher.close()

    def test_request_timeout(self):
        batcher = MicroBatcher(
            AdmissionConfig(max_inflight=1, batch_window=0.0, request_timeout=0.1)
        )
        release = threading.Event()

        async def scenario():
            with pytest.raises(TimeoutError):
                await batcher.submit(("a",), lambda: release.wait(5))
            assert batcher.stats.timeouts == 1
            release.set()

        try:
            self._run(scenario())
        finally:
            batcher.close()

    def test_worker_exception_propagates(self):
        batcher = MicroBatcher(AdmissionConfig(batch_window=0.0))

        def boom():
            raise ValueError("exploded")

        async def scenario():
            with pytest.raises(ValueError, match="exploded"):
                await batcher.submit(("a",), boom)

        try:
            self._run(scenario())
        finally:
            batcher.close()

    def test_invalid_admission_config_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(request_timeout=0)


@pytest.fixture
def serve_url():
    """A live server over a fresh runtime; yields its base URL."""
    runtime = Runtime(RuntimeConfig(plan_cache_entries=16, sessions_per_tenant=4))
    thread = ServerThread(
        runtime,
        ServeConfig(port=0, admission=AdmissionConfig(max_inflight=2, batch_window=0.01)),
    )
    host, port = thread.start()
    yield f"http://{host}:{port}"
    thread.stop()
    assert runtime.closed


def _post(base, path, body, tenant=None):
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Tenant"] = tenant
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), headers=headers
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestServer:
    def test_healthz(self, serve_url):
        assert _get(serve_url, "/healthz") == (200, {"ok": True})

    def test_unknown_route_and_method(self, serve_url):
        status, body = _get(serve_url, "/nope")
        assert status == 404 and "error" in body
        status, body = _get(serve_url, "/v1/multiply")
        assert status == 405 and "error" in body

    def test_multiply_bit_identical_and_replayed(self, serve_url, rng):
        a = random_csr(rng, 30, 30, 0.15)
        b = random_csr(rng, 30, 30, 0.15)
        expected = RowProductSpGEMM().multiply(MultiplyContext.build(a, b))
        body = {"algorithm": "row-product", "a": csr_to_wire(a), "b": csr_to_wire(b)}
        status, first = _post(serve_url, "/v1/multiply", body)
        assert status == 200
        assert identical(csr_from_wire(first["result"]), expected)
        assert first["replayed"] is False
        status, second = _post(serve_url, "/v1/multiply", body)
        assert status == 200
        assert second["replayed"] is True
        assert identical(csr_from_wire(second["result"]), expected)

    def test_concurrent_shared_structure_amortises(self, serve_url, rng):
        a = random_csr(rng, 30, 30, 0.15)
        body = {"algorithm": "row-product", "a": csr_to_wire(a)}
        expected = RowProductSpGEMM().multiply(MultiplyContext.build(a, a))
        outcomes = []
        errors = []

        def client():
            try:
                outcomes.append(_post(serve_url, "/v1/multiply", body))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(outcomes) == 8
        for status, reply in outcomes:
            assert status == 200
            assert identical(csr_from_wire(reply["result"]), expected)
        _, stats = _get(serve_url, "/stats")
        # 8 same-structure requests, one symbolic lowering: amortised.
        assert stats["runtime"]["plan_cache"]["lowers"] == 1
        assert stats["requests_per_lowering"] > 1
        assert stats["batching"]["admitted"] == 8

    def test_pagerank_matches_runtime_path(self, serve_url, rng):
        adj = random_csr(rng, 35, 35, 0.1)
        with Runtime(RuntimeConfig()) as local:
            want = local.pagerank("row-product", adj)
        status, reply = _post(
            serve_url,
            "/v1/pagerank",
            {"algorithm": "row-product", "adjacency": csr_to_wire(adj)},
        )
        assert status == 200
        assert np.asarray(reply["scores"]).tobytes() == want.scores.tobytes()
        assert reply["iterations"] == want.iterations
        assert reply["converged"] == want.converged

    def test_reachability_and_similarity_routes(self, serve_url, rng):
        adj = random_csr(rng, 25, 25, 0.12)
        with Runtime(RuntimeConfig()) as local:
            want_reach = local.reachability("row-product", adj, 2)
            want_sim = local.similarity("row-product", adj, "jaccard")
        status, reply = _post(
            serve_url,
            "/v1/reachability",
            {"algorithm": "row-product", "adjacency": csr_to_wire(adj), "k": 2},
        )
        assert status == 200
        assert identical(csr_from_wire(reply["result"]), want_reach)
        status, reply = _post(
            serve_url,
            "/v1/similarity",
            {"algorithm": "row-product", "adjacency": csr_to_wire(adj),
             "metric": "jaccard"},
        )
        assert status == 200
        assert identical(csr_from_wire(reply["result"]), want_sim)

    def test_tenant_header_scopes_sessions(self, serve_url, rng):
        a = random_csr(rng, 20, 20, 0.2)
        body = {"algorithm": "row-product", "a": csr_to_wire(a)}
        assert _post(serve_url, "/v1/multiply", body, tenant="alice")[0] == 200
        assert _post(serve_url, "/v1/multiply", body, tenant="bob")[0] == 200
        _, stats = _get(serve_url, "/stats")
        tenants = stats["runtime"]["tenants"]
        assert tenants["alice"] == 1 and tenants["bob"] == 1
        # Separate per-tenant caches: same structure lowered once per tenant.
        assert stats["runtime"]["plan_cache"]["lowers"] == 2

    def test_error_mapping(self, serve_url, rng):
        a = random_csr(rng, 10, 10, 0.3)
        status, body = _post(
            serve_url, "/v1/multiply", {"algorithm": "nope", "a": csr_to_wire(a)}
        )
        assert status == 400 and "unknown algorithm" in body["error"]
        status, body = _post(serve_url, "/v1/multiply", {"algorithm": "row-product"})
        assert status == 400 and "missing required field" in body["error"]
        status, body = _post(
            serve_url,
            "/v1/pagerank",
            {"algorithm": "row-product", "adjacency": csr_to_wire(a),
             "damping": "high"},
        )
        assert status == 400 and "damping" in body["error"]

    def test_malformed_json_is_400(self, serve_url):
        req = urllib.request.Request(
            serve_url + "/v1/multiply", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_mismatched_operands_are_400(self, serve_url, rng):
        a = random_csr(rng, 10, 10, 0.3)
        c = random_csr(rng, 7, 7, 0.3)
        status, body = _post(
            serve_url,
            "/v1/multiply",
            {"algorithm": "row-product", "a": csr_to_wire(a), "b": csr_to_wire(c)},
        )
        assert status == 400 and "error" in body


def _get_text(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, resp.read().decode("utf-8")


def _post_full(base, path, body, tenant=None):
    """Like _post but also returns the response headers."""
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Tenant"] = tenant
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), headers=headers
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestCostAdmission:
    @pytest.fixture
    def budget_url(self):
        """A server with a tiny flop budget (sheds anything sizeable)."""
        runtime = Runtime(RuntimeConfig())
        thread = ServerThread(
            runtime,
            ServeConfig(
                port=0,
                admission=AdmissionConfig(
                    max_inflight=2, batch_window=0.0, max_inflight_flops=50
                ),
            ),
        )
        host, port = thread.start()
        yield f"http://{host}:{port}"
        thread.stop()

    def test_oversized_request_shed_small_request_served(self, budget_url, rng):
        big = random_csr(rng, 40, 40, 0.3)  # flops far beyond the 50 budget
        status, body, headers = _post_full(
            budget_url,
            "/v1/multiply",
            {"algorithm": "row-product", "a": csr_to_wire(big)},
        )
        assert status == 503
        assert body["reason"] == "cost"
        assert int(headers["Retry-After"]) >= 1
        assert body["retry_after"] == int(headers["Retry-After"])
        small = random_csr(rng, 4, 4, 0.2)  # a handful of flops: admitted
        status, body, _ = _post_full(
            budget_url,
            "/v1/multiply",
            {"algorithm": "row-product", "a": csr_to_wire(small)},
        )
        assert status == 200
        _, stats = _get(budget_url, "/stats")
        assert stats["batching"]["shed_cost"] == 1
        assert stats["serving"]["routes"]["multiply"]["sheds"] == 1
        # The shed did not count as a served request.
        assert stats["serving"]["routes"]["multiply"]["requests"] == 1

    def test_zero_flop_request_always_admitted(self, budget_url, rng):
        empty = random_csr(rng, 30, 30, 0.0)  # no stored entries: 0 flops
        status, body, _ = _post_full(
            budget_url,
            "/v1/multiply",
            {"algorithm": "row-product", "a": csr_to_wire(empty)},
        )
        assert status == 200

    def test_estimate_overflow_falls_back_to_full_budget(
        self, budget_url, rng, monkeypatch
    ):
        import repro.serve.server as server_mod

        def explode(a, b):
            raise OverflowError("estimate out of range")

        monkeypatch.setattr(server_mod, "multiply_flops", explode)
        small = random_csr(rng, 5, 5, 0.2)
        # Admitted at full budget: the ledger is otherwise idle.
        status, body, _ = _post_full(
            budget_url,
            "/v1/multiply",
            {"algorithm": "row-product", "a": csr_to_wire(small)},
        )
        assert status == 200
        _, stats = _get(budget_url, "/stats")
        assert stats["serving"]["estimate_fallbacks"] == 1

    def test_retry_after_monotone_under_sustained_overload(self):
        batcher = MicroBatcher(
            AdmissionConfig(
                max_inflight=1, max_queue=8, batch_window=0.0,
                max_inflight_flops=100,
            )
        )
        release = threading.Event()

        async def scenario():
            # Prime the drain-rate estimate with one quick completed job...
            await batcher.submit(("warm",), lambda: None, 10)
            await asyncio.sleep(0.05)  # let its drain callback land
            # ...then wedge the budget with work that never finishes.
            blocked = asyncio.get_running_loop().create_task(
                batcher.submit(("big",), lambda: release.wait(10), 95)
            )
            await asyncio.sleep(0.05)
            hints = []
            for _ in range(4):
                with pytest.raises(Overloaded) as excinfo:
                    await batcher.submit(("more",), lambda: None, 50)
                assert excinfo.value.reason == "cost"
                hints.append(excinfo.value.retry_after)
                await asyncio.sleep(0.05)
            # Nothing drained meanwhile, so the observed drain rate only
            # decays and the advised back-off can never shrink.
            assert hints == sorted(hints)
            assert batcher.stats.shed_cost == 4
            assert batcher.stats.retry_after_last == hints[-1]
            release.set()
            await blocked

        try:
            asyncio.run(scenario())
        finally:
            batcher.close()

    def test_ledger_drains_after_completion(self):
        batcher = MicroBatcher(
            AdmissionConfig(max_inflight=1, batch_window=0.0, max_inflight_flops=100)
        )

        async def scenario():
            await batcher.submit(("a",), lambda: None, 60)
            await asyncio.sleep(0.05)  # let the drain callback land
            assert batcher.inflight_flops == 0
            assert batcher.stats.drained_flops == 60
            assert batcher.stats.completed == 1
            # Budget is free again: the next 60-flop request is admitted.
            await batcher.submit(("b",), lambda: None, 60)

        try:
            asyncio.run(scenario())
        finally:
            batcher.close()


class TestServingObservability:
    def test_stats_reports_route_latency_and_tenants(self, serve_url, rng):
        a = random_csr(rng, 20, 20, 0.2)
        body = {"algorithm": "row-product", "a": csr_to_wire(a)}
        for _ in range(3):
            assert _post(serve_url, "/v1/multiply", body, tenant="alice")[0] == 200
        _, stats = _get(serve_url, "/stats")
        route = stats["serving"]["routes"]["multiply"]
        assert route["requests"] == 3
        assert route["errors"] == 0
        latency = route["latency_ms"]
        assert latency["count"] == 3
        assert latency["p50"] is not None and latency["p99"] >= latency["p50"]
        assert stats["serving"]["tenants"]["alice"]["requests"] == 3
        assert stats["serving"]["coalescence_factor"] >= 1.0
        assert stats["serving"]["queue_depth"] == 0
        assert stats["serving"]["inflight_flops"] == 0

    def test_errors_counted_in_histograms(self, serve_url, rng):
        a = random_csr(rng, 10, 10, 0.3)
        status, _ = _post(
            serve_url, "/v1/multiply", {"algorithm": "nope", "a": csr_to_wire(a)}
        )
        assert status == 400
        _, stats = _get(serve_url, "/stats")
        route = stats["serving"]["routes"]["multiply"]
        assert route["requests"] == 1 and route["errors"] == 1

    def test_metrics_scrape_is_valid_prometheus(self, serve_url, rng):
        from repro.metrics.promtext import validate_exposition

        a = random_csr(rng, 15, 15, 0.2)
        body = {"algorithm": "row-product", "a": csr_to_wire(a)}
        assert _post(serve_url, "/v1/multiply", body)[0] == 200
        status, text = _get_text(serve_url, "/metrics")
        assert status == 200
        samples = validate_exposition(text)
        requests = {
            labels["route"]: value
            for labels, value in samples["repro_requests_total"]
        }
        assert requests["multiply"] == 1
        _, stats = _get(serve_url, "/stats")
        assert requests["multiply"] == (
            stats["serving"]["routes"]["multiply"]["requests"]
        )

    def test_stats_field_names_covers_live_payload(self, serve_url, rng):
        from repro.serve.server import _DYNAMIC_KEY_SECTIONS, stats_field_names

        a = random_csr(rng, 15, 15, 0.2)
        body = {"algorithm": "row-product", "a": csr_to_wire(a)}
        assert _post(serve_url, "/v1/multiply", body)[0] == 200
        _, stats = _get(serve_url, "/stats")
        live: set[str] = set()

        def walk(node):
            for key, value in node.items():
                live.add(key)
                if not isinstance(value, dict):
                    continue
                if key in _DYNAMIC_KEY_SECTIONS:
                    for child in value.values():
                        if isinstance(child, dict):
                            walk(child)
                else:
                    walk(value)

        walk(stats)
        missing = live - stats_field_names()
        assert not missing, f"undocumentable live /stats keys: {sorted(missing)}"

    def test_trace_dir_exports_slow_requests(self, rng, tmp_path):
        runtime = Runtime(RuntimeConfig())
        trace_dir = tmp_path / "traces"
        thread = ServerThread(
            runtime,
            ServeConfig(port=0, trace_dir=str(trace_dir), trace_slow_ms=0.0),
        )
        host, port = thread.start()
        try:
            a = random_csr(rng, 15, 15, 0.2)
            body = {"algorithm": "row-product", "a": csr_to_wire(a)}
            base = f"http://{host}:{port}"
            assert _post(base, "/v1/multiply", body)[0] == 200
            _, stats = _get(base, "/stats")
            assert stats["serving"]["traces_written"] == 1
        finally:
            thread.stop()
        files = sorted(trace_dir.glob("*.trace.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "request[multiply]" in names
        # The full lifecycle made it into the span tree.
        for stage in ("request.parse", "request.validate", "request.admission",
                      "request.batch_wait", "request.session", "request.numeric",
                      "request.serialize"):
            assert stage in names, f"missing stage {stage}"
        assert payload["otherData"]["status"] == 200

    def test_histograms_deterministic_across_dispatch_modes(self, rng):
        """Serial vs exec-pool dispatch: same requests, same counts, and the
        served results stay bit-identical to the serial batch path."""
        a = random_csr(rng, 30, 30, 0.15)
        b = random_csr(rng, 30, 30, 0.15)
        expected = RowProductSpGEMM().multiply(MultiplyContext.build(a, b))
        body = {"algorithm": "row-product", "a": csr_to_wire(a), "b": csr_to_wire(b)}
        counts = {}
        for label, workers in (("serial", 1), ("pooled", 2)):
            runtime = Runtime(RuntimeConfig(exec_workers=workers))
            thread = ServerThread(runtime, ServeConfig(port=0))
            host, port = thread.start()
            try:
                base = f"http://{host}:{port}"
                for _ in range(4):
                    status, reply = _post(base, "/v1/multiply", body)
                    assert status == 200
                    assert identical(csr_from_wire(reply["result"]), expected)
                _, stats = _get(base, "/stats")
                route = stats["serving"]["routes"]["multiply"]
                counts[label] = (
                    route["requests"], route["errors"], route["sheds"],
                    route["latency_ms"]["count"],
                )
                if workers > 1:
                    # The shared exec engine's counters surface in /stats.
                    assert stats["runtime"]["exec"] is not None
            finally:
                thread.stop()
        assert counts["serial"] == counts["pooled"] == (4, 0, 0, 4)


class TestServeShutdown:
    def test_thread_stop_closes_runtime_and_frees_port(self, rng):
        runtime = Runtime(RuntimeConfig())
        thread = ServerThread(runtime, ServeConfig(port=0))
        host, port = thread.start()
        a = random_csr(rng, 15, 15, 0.2)
        status, _ = _post(
            f"http://{host}:{port}", "/v1/multiply",
            {"algorithm": "row-product", "a": csr_to_wire(a)},
        )
        assert status == 200
        thread.stop()
        assert runtime.closed
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                urllib.request.urlopen(f"http://{host}:{port}/healthz", timeout=1)
            except urllib.error.URLError:
                break  # refused: listener is gone
            time.sleep(0.05)
        else:  # pragma: no cover
            pytest.fail("server still accepting after stop()")
