"""Shared fixtures for the test suite.

All fixtures build *small* matrices (tests never touch the big bench
datasets) and are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.random import banded_regular, power_law


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng):
    """A 12x9 dense array with ~35% fill, including a zero row and column."""
    dense = (rng.random((12, 9)) < 0.35) * rng.random((12, 9))
    dense[3, :] = 0.0
    dense[:, 5] = 0.0
    return dense


@pytest.fixture
def small_coo(small_dense):
    return COOMatrix.from_dense(small_dense)


@pytest.fixture
def small_csr(small_dense):
    return CSRMatrix.from_dense(small_dense)


@pytest.fixture
def square_csr(rng):
    """A 60x60 sparse square matrix for multiplication tests."""
    dense = (rng.random((60, 60)) < 0.12) * rng.random((60, 60))
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def skewed_csr():
    """A small power-law matrix with pronounced hub rows."""
    return power_law(300, 3000, seed=7).to_csr()


@pytest.fixture
def regular_csr():
    """A small banded matrix with near-uniform degrees."""
    return banded_regular(300, 8, seed=8).to_csr()


def random_csr(rng, n_rows: int, n_cols: int, density: float) -> CSRMatrix:
    """Helper used by several test modules."""
    dense = (rng.random((n_rows, n_cols)) < density) * rng.random((n_rows, n_cols))
    return CSRMatrix.from_dense(dense)
