"""List-scheduler tests: work conservation, bounds, determinism."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.scheduler import list_schedule


class TestBasics:
    def test_empty(self):
        r = list_schedule(np.zeros(0), n_sms=4, residency=2)
        assert r.makespan == 0.0
        assert np.all(r.sm_busy == 0)

    def test_single_block(self):
        r = list_schedule(np.array([100.0]), n_sms=4, residency=2)
        assert r.makespan == 100.0
        assert r.sm_busy.sum() == 100.0

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            list_schedule(np.array([1.0]), n_sms=0, residency=1)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            list_schedule(np.array([-1.0]), n_sms=1, residency=1)


class TestWorkConservation:
    def test_busy_equals_total_work(self, rng):
        d = rng.random(500) * 100
        r = list_schedule(d, n_sms=8, residency=4)
        assert r.sm_busy.sum() == pytest.approx(d.sum())

    def test_fewer_blocks_than_slots(self, rng):
        d = rng.random(10) * 100
        r = list_schedule(d, n_sms=8, residency=4)
        assert r.makespan == pytest.approx(d.max())
        assert r.sm_busy.sum() == pytest.approx(d.sum())


class TestBounds:
    def test_makespan_lower_bounds(self, rng):
        d = rng.random(300) * 50 + 1
        n_sms, res = 6, 4
        r = list_schedule(d, n_sms, res)
        assert r.makespan >= d.max() - 1e-9
        assert r.makespan >= d.sum() / (n_sms * res) - 1e-9

    def test_greedy_two_approximation(self, rng):
        d = rng.random(300) * 50 + 1
        n_sms, res = 6, 4
        r = list_schedule(d, n_sms, res)
        lower = max(d.max(), d.sum() / (n_sms * res))
        assert r.makespan <= 2.0 * lower

    def test_straggler_dominates(self):
        d = np.concatenate([np.full(100, 1.0), [1000.0]])
        r = list_schedule(d, n_sms=4, residency=2)
        assert r.makespan >= 1000.0

    def test_finish_ge_busy_share(self, rng):
        d = rng.random(200) * 10
        r = list_schedule(d, n_sms=4, residency=4)
        # Per-SM finish time is at least its busy time divided by residency.
        assert np.all(r.sm_finish >= r.sm_busy / 4 - 1e-9)


class TestDeterminism:
    def test_same_input_same_output(self, rng):
        d = rng.random(200)
        a = list_schedule(d, 8, 2)
        b = list_schedule(d, 8, 2)
        assert a.makespan == b.makespan
        assert np.array_equal(a.sm_busy, b.sm_busy)

    def test_more_slots_never_slower(self, rng):
        d = rng.random(400) * 20
        slow = list_schedule(d, 4, 2).makespan
        fast = list_schedule(d, 8, 4).makespan
        assert fast <= slow + 1e-9


class TestSkewVisibility:
    def test_balanced_load_high_lbi(self):
        d = np.full(960, 10.0)
        r = list_schedule(d, 30, 8)
        assert r.sm_busy.mean() / r.sm_busy.max() > 0.95

    def test_skewed_load_low_lbi(self):
        d = np.concatenate([np.full(50, 1.0), [5000.0]])
        r = list_schedule(d, 30, 8)
        assert r.sm_busy.mean() / r.sm_busy.max() < 0.3
