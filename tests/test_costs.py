"""Cost-model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.costs import CostModel, DEFAULT_COSTS


def test_defaults_positive():
    c = DEFAULT_COSTS
    assert c.instr_per_product > 0
    assert c.mem_latency > c.l2_latency > 0
    assert c.tb_launch_cycles > 0


def test_with_overrides_returns_copy():
    c = DEFAULT_COSTS.with_overrides(mem_latency=1000.0)
    assert c.mem_latency == 1000.0
    assert DEFAULT_COSTS.mem_latency != 1000.0


def test_negative_cost_rejected():
    with pytest.raises(ConfigurationError):
        CostModel(instr_per_product=-1.0)


def test_frozen():
    with pytest.raises(AttributeError):
        DEFAULT_COSTS.mem_latency = 0.0


def test_row_merge_cheaper_than_matrix_merge():
    """The paper's claim: row-wise accumulation beats full-matrix accumulation."""
    assert DEFAULT_COSTS.instr_per_merge_elem_row < DEFAULT_COSTS.instr_per_merge_elem
    assert (
        DEFAULT_COSTS.merge_row_sectors_per_elem
        <= DEFAULT_COSTS.merge_matrix_sectors_per_elem
    )
