"""Tests for the adaptive tuner, stats export and CLI."""

import json

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveBlockReorganizer, heuristic_options
from repro.gpusim.config import TITAN_XP
from repro.gpusim.export import stats_to_dict, stats_to_json, write_stats_json
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.base import MultiplyContext
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.reference import reference_spgemm


@pytest.fixture
def skewed_ctx(skewed_csr):
    return MultiplyContext.build(skewed_csr)


@pytest.fixture
def regular_ctx(regular_csr):
    return MultiplyContext.build(regular_csr)


class TestHeuristic:
    def test_skewed_gets_strict_alpha(self, skewed_ctx):
        options, diag = heuristic_options(skewed_ctx)
        assert diag["gini"] > 0.5
        assert options.alpha <= 0.2
        assert options.enable_splitting

    def test_regular_keeps_paper_defaults(self, regular_ctx):
        from repro.core.reorganizer import ReorganizerOptions

        options, diag = heuristic_options(regular_ctx)
        assert diag["gini"] < 0.5
        assert options == ReorganizerOptions()


class TestAdaptive:
    def test_numeric_correctness(self, skewed_ctx, skewed_csr):
        algo = AdaptiveBlockReorganizer()
        assert algo.multiply(skewed_ctx).allclose(reference_spgemm(skewed_csr))

    def test_report_recorded(self, skewed_ctx):
        algo = AdaptiveBlockReorganizer()
        algo.tune(skewed_ctx)
        assert algo.last_report is not None
        assert algo.last_report.candidates_tried == 1

    def test_search_mode_tries_candidates(self, skewed_ctx):
        sim = GPUSimulator(TITAN_XP)
        algo = AdaptiveBlockReorganizer(search=True, simulator=sim)
        report = algo.tune(skewed_ctx)
        assert report.candidates_tried > 1
        assert report.simulated_seconds is not None

    def test_search_never_worse_than_heuristic(self, skewed_ctx):
        sim = GPUSimulator(TITAN_XP)
        heuristic = AdaptiveBlockReorganizer()
        searched = AdaptiveBlockReorganizer(search=True, simulator=sim)
        t_h = heuristic.simulate(skewed_ctx, sim).total_seconds
        t_s = searched.simulate(skewed_ctx, sim).total_seconds
        assert t_s <= t_h * 1.0001

    def test_simulation_runs(self, regular_ctx):
        sim = GPUSimulator(TITAN_XP)
        stats = AdaptiveBlockReorganizer().simulate(regular_ctx, sim)
        assert stats.total_seconds > 0


class TestExport:
    def _stats(self, ctx):
        return OuterProductSpGEMM().simulate(ctx, GPUSimulator(TITAN_XP))

    def test_dict_fields(self, regular_ctx):
        d = stats_to_dict(self._stats(regular_ctx))
        assert d["algorithm"] == "outer-product"
        assert d["gpu"] == "TITAN Xp"
        assert len(d["phases"]) == 2
        assert len(d["phases"][0]["sm_busy_cycles"]) == TITAN_XP.n_sms

    def test_json_round_trip(self, regular_ctx):
        text = stats_to_json(self._stats(regular_ctx))
        back = json.loads(text)
        assert back["total_seconds"] > 0

    def test_write_file(self, regular_ctx, tmp_path):
        path = tmp_path / "stats.json"
        write_stats_json(self._stats(regular_ctx), path)
        assert json.loads(path.read_text())["gflops"] > 0

    def test_non_jsonable_meta_dropped(self, regular_ctx):
        stats = self._stats(regular_ctx)
        stats.meta["array"] = np.zeros(3)
        stats.meta["ok"] = 5
        d = stats_to_dict(stats)
        assert "array" not in d["meta"]
        assert d["meta"]["ok"] == 5


class TestCli:
    def test_datasets(self, capsys):
        from repro.cli import main

        assert main(["datasets", "--collection", "florida"]) == 0
        out = capsys.readouterr().out
        assert "filter3d" in out

    def test_run_json(self, capsys):
        from repro.cli import main

        assert main(["run", "poisson3da", "--algorithm", "row-product", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "row-product"

    def test_compare(self, capsys):
        from repro.cli import main

        assert main(["compare", "poisson3da"]) == 0
        assert "block-reorganizer" in capsys.readouterr().out

    def test_unknown_algorithm_is_error(self, capsys):
        from repro.cli import main

        assert main(["run", "poisson3da", "--algorithm", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_unknown_gpu_is_error(self, capsys):
        from repro.cli import main

        assert main(["run", "poisson3da", "--gpu", "nope"]) == 2
        assert "unknown GPU" in capsys.readouterr().err

    def test_experiment_table1(self, capsys):
        from repro.cli import main

        assert main(["experiment", "table1_systems"]) == 0
        assert "Table I" in capsys.readouterr().out
