"""Tests for the shared trace builders."""

import numpy as np
import pytest

from repro.gpusim.costs import DEFAULT_COSTS
from repro.spgemm.traceutil import (
    ceil_div,
    entry_chunk_blocks,
    group_by_budget,
    merge_blocks,
    outer_pair_blocks,
    round_up_warp,
)


class TestHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert np.array_equal(ceil_div(np.array([1, 32, 33]), 32), [1, 1, 2])

    def test_round_up_warp(self):
        assert round_up_warp(1) == 32
        assert round_up_warp(32) == 32
        assert round_up_warp(33) == 64

    def test_group_by_budget(self):
        groups = group_by_budget(np.array([10, 10, 10, 10]), budget=20)
        assert groups[0] == groups[1]
        assert groups[2] == groups[3]
        assert groups[1] != groups[2]

    def test_group_by_budget_large_item_own_group(self):
        groups = group_by_budget(np.array([100, 1, 1]), budget=10)
        assert groups[0] != groups[1]

    def test_group_by_budget_empty(self):
        assert len(group_by_budget(np.zeros(0, np.int64), 10)) == 0


class TestOuterPairBlocks:
    def test_ops_and_iters(self):
        blocks = outer_pair_blocks(np.array([10]), np.array([20]), DEFAULT_COSTS)
        assert blocks.ops[0] == 200
        assert blocks.iters[0] == 10.0
        assert blocks.effective_threads[0] == 20
        assert blocks.threads[0] == 32  # warp-rounded

    def test_fixed_threads(self):
        blocks = outer_pair_blocks(
            np.array([10, 10]), np.array([3, 500]), DEFAULT_COSTS, fixed_threads=256
        )
        assert np.all(blocks.threads == 256)
        assert blocks.effective_threads[0] == 3
        assert blocks.effective_threads[1] == 256

    def test_wide_rows_coarsen(self):
        blocks = outer_pair_blocks(
            np.array([10]), np.array([1000]), DEFAULT_COSTS, max_threads=256
        )
        # 1000 columns over 256 threads -> 4 iterations per a-element.
        assert blocks.iters[0] == 40.0

    def test_shared_b_moves_traffic_to_reuse(self):
        plain = outer_pair_blocks(np.array([16]), np.array([64]), DEFAULT_COSTS)
        shared = outer_pair_blocks(
            np.array([16]), np.array([64]), DEFAULT_COSTS, shared_b_fraction=0.75
        )
        assert shared.unique_bytes[0] < plain.unique_bytes[0]
        assert shared.reuse_bytes[0] > plain.reuse_bytes[0]
        total_p = plain.unique_bytes[0] + plain.reuse_bytes[0]
        total_s = shared.unique_bytes[0] + shared.reuse_bytes[0]
        assert total_p == pytest.approx(total_s)

    def test_empty(self):
        assert len(outer_pair_blocks(np.zeros(0), np.zeros(0), DEFAULT_COSTS)) == 0


class TestEntryChunkBlocks:
    def test_imbalance_visible_in_iters(self):
        work = np.concatenate([np.full(127, 2), [1000]])
        blocks = entry_chunk_blocks(work, DEFAULT_COSTS, threads=128)
        assert len(blocks) == 1
        assert blocks.iters[0] >= 1000  # critical path = heaviest thread
        assert blocks.ops[0] == 127 * 2 + 1000

    def test_chunking(self):
        blocks = entry_chunk_blocks(np.full(300, 5), DEFAULT_COSTS, threads=128)
        assert len(blocks) == 3

    def test_zero_work_blocks_dropped(self):
        blocks = entry_chunk_blocks(np.zeros(256, np.int64), DEFAULT_COSTS, threads=128)
        assert len(blocks) == 0

    def test_empty(self):
        assert len(entry_chunk_blocks(np.zeros(0, np.int64), DEFAULT_COSTS)) == 0


class TestMergeBlocks:
    def test_heavy_row_gets_own_block(self):
        work = np.array([100, 10_000, 50])
        u = np.array([80, 5_000, 40])
        blocks = merge_blocks(work, u, DEFAULT_COSTS, chunk_target=4096)
        assert len(blocks) == 2  # heavy block + one packed light block
        assert blocks.ops.sum() == work.sum()

    def test_collisions_accounted(self):
        work = np.array([10_000])
        u = np.array([6_000])
        blocks = merge_blocks(work, u, DEFAULT_COSTS, chunk_target=4096)
        assert blocks.collisions[0] == 4_000
        assert blocks.atomics[0] == 10_000

    def test_row_mask_restricts(self):
        work = np.array([5_000, 6_000, 7_000])
        u = work // 2
        mask = np.array([True, False, True])
        blocks = merge_blocks(work, u, DEFAULT_COSTS, row_mask=mask, chunk_target=4096)
        assert blocks.ops.sum() == 12_000

    def test_row_form_cheaper_transactions(self):
        work = np.array([10_000])
        u = np.array([8_000])
        matrix = merge_blocks(work, u, DEFAULT_COSTS, row_form=False, chunk_target=4096)
        row = merge_blocks(work, u, DEFAULT_COSTS, row_form=True, chunk_target=4096)
        assert row.transactions[0] < matrix.transactions[0]

    def test_smem_passthrough(self):
        work = np.array([10_000])
        u = np.array([8_000])
        blocks = merge_blocks(work, u, DEFAULT_COSTS, smem_bytes=30_000, chunk_target=4096)
        assert blocks.smem_bytes[0] == 30_000

    def test_all_empty_rows(self):
        blocks = merge_blocks(np.zeros(5, np.int64), np.zeros(5, np.int64), DEFAULT_COSTS)
        assert len(blocks) == 0
