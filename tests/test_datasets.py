"""Dataset catalog and loader tests.

These avoid the largest stand-ins; loading a handful verifies the catalog's
wiring, determinism and the regular/irregular class contract.
"""

import pytest

from repro.datasets.catalog import DatasetSpec, get_spec, list_names, list_specs
from repro.datasets.loader import clear_cache, load
from repro.errors import DatasetError
from repro.sparse.stats import degree_stats


class TestCatalog:
    def test_28_real_world(self):
        assert len(list_names("florida")) + len(list_names("stanford")) == 28

    def test_16_synthetic(self):
        assert len(list_names("synthetic")) == 16

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_spec("nope")

    def test_specs_complete(self):
        for spec in list_specs():
            assert spec.seed != 0 or spec.collection == "synthetic"
            assert spec.generator
            assert spec.paper_dim > 0

    def test_bad_collection_rejected(self):
        with pytest.raises(DatasetError, match="collection"):
            DatasetSpec(
                name="x", collection="bogus", operation="A@A",
                generator="banded_regular", params={}, seed=1,
            )

    def test_bad_operation_rejected(self):
        with pytest.raises(DatasetError, match="operation"):
            DatasetSpec(
                name="x", collection="florida", operation="A@C",
                generator="banded_regular", params={}, seed=1,
            )

    def test_florida_paper_stats_recorded(self):
        spec = get_spec("filter3d")
        assert spec.paper_dim == 106_000
        assert spec.paper_nnz_a == 2_700_000
        assert spec.paper_nnz_c == 20_100_000


class TestLoader:
    def test_load_regular_class(self):
        ds = load("poisson3da")
        assert not degree_stats(ds.a.row_nnz()).skewed
        assert ds.b is ds.a  # C = A^2

    def test_load_irregular_class(self):
        ds = load("as_caida")
        assert degree_stats(ds.a.row_nnz()).skewed

    def test_degree_matches_paper(self):
        ds = load("harbor")
        spec = ds.spec
        paper_degree = spec.paper_nnz_a / spec.paper_dim
        realised = ds.a.nnz / ds.a.n_rows
        # Coalescing of duplicate draws loses some entries; the stand-in
        # keeps the paper's degree within ~20%.
        assert abs(realised - paper_degree) / paper_degree < 0.20

    def test_ab_pair_distinct(self):
        ds = load("ab15")
        assert ds.b is not ds.a
        assert ds.a.shape == ds.b.shape

    def test_cache_returns_same_object(self):
        a = load("poisson3da")
        b = load("poisson3da")
        assert a is b

    def test_clear_cache(self):
        a = load("poisson3da")
        clear_cache()
        b = load("poisson3da")
        assert a is not b
        assert a.a.allclose(b.a)  # still deterministic

    def test_csc_consistent(self):
        ds = load("poisson3da")
        assert ds.a_csc.to_csr().allclose(ds.a)

    def test_expansion_work_positive(self):
        assert load("poisson3da").expansion_work > 0
