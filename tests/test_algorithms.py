"""Algorithm-level tests: numeric equivalence and trace sanity for every
spGEMM scheme (baselines, libraries, Block Reorganizer)."""

import numpy as np
import pytest

from repro.core.reorganizer import BlockReorganizer
from repro.gpusim.config import TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.base import MultiplyContext
from repro.spgemm.libraries import BhSparseSpGEMM, CuspSpGEMM, CuSparseSpGEMM, MklSpGEMM
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.reference import reference_spgemm
from repro.spgemm.rowproduct import RowProductSpGEMM

ALL_ALGORITHMS = [
    RowProductSpGEMM,
    OuterProductSpGEMM,
    CuSparseSpGEMM,
    CuspSpGEMM,
    BhSparseSpGEMM,
    MklSpGEMM,
    BlockReorganizer,
]


@pytest.fixture
def ctx(square_csr):
    return MultiplyContext.build(square_csr)


@pytest.fixture
def skewed_ctx(skewed_csr):
    return MultiplyContext.build(skewed_csr)


class TestContext:
    def test_pair_work(self, ctx, square_csr):
        expected = square_csr.to_csc().col_nnz() * square_csr.row_nnz()
        assert np.array_equal(ctx.pair_work, expected)

    def test_row_work_sums_to_total(self, ctx):
        assert ctx.row_work.sum() == ctx.total_work

    def test_c_row_nnz_matches_reference(self, ctx, square_csr):
        ref = reference_spgemm(square_csr)
        assert np.array_equal(ctx.c_row_nnz, ref.row_nnz())

    def test_b_defaults_to_a(self, square_csr):
        ctx = MultiplyContext.build(square_csr)
        assert ctx.b_csr is square_csr

    def test_incompatible_shapes(self, square_csr, small_csr):
        from repro.errors import ShapeMismatchError

        with pytest.raises(ShapeMismatchError):
            MultiplyContext.build(square_csr, small_csr)

    def test_single_expansion_for_symbolic_and_numeric(self, square_csr, monkeypatch):
        """``c_row_nnz`` before ``reference_c`` must not expand twice: the
        symbolic counts derive from the cached reference product."""
        import repro.spgemm.base as base

        calls = []
        real = base.expand_outer

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(base, "expand_outer", counting)
        ctx = MultiplyContext.build(square_csr)
        ctx.c_row_nnz
        ctx.reference_c
        ctx.nnz_c
        assert len(calls) == 1


class TestReference:
    def test_against_dense(self, square_csr):
        dense = square_csr.to_dense()
        assert np.allclose(reference_spgemm(square_csr).to_dense(), dense @ dense)

    def test_against_scipy(self, square_csr):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        a = scipy_sparse.csr_matrix(
            (square_csr.data, square_csr.indices, square_csr.indptr), shape=square_csr.shape
        )
        expected = (a @ a).sorted_indices()
        ours = reference_spgemm(square_csr)
        assert np.array_equal(expected.indptr, ours.indptr)
        assert np.allclose(expected.data, ours.data)

    def test_identity(self, square_csr):
        from repro.sparse.csr import CSRMatrix

        eye = CSRMatrix.identity(square_csr.n_rows)
        assert reference_spgemm(square_csr, eye).allclose(square_csr)


@pytest.mark.parametrize("algo_cls", ALL_ALGORITHMS, ids=lambda c: c.name)
class TestEveryAlgorithm:
    def test_numeric_equals_reference(self, algo_cls, ctx, square_csr):
        c = algo_cls().multiply(ctx)
        assert c.allclose(reference_spgemm(square_csr))

    def test_numeric_on_skewed(self, algo_cls, skewed_ctx, skewed_csr):
        c = algo_cls().multiply(skewed_ctx)
        assert c.allclose(reference_spgemm(skewed_csr))

    def test_simulation_runs(self, algo_cls, ctx):
        sim = GPUSimulator(TITAN_XP)
        stats = algo_cls().simulate(ctx, sim)
        assert stats.total_seconds > 0
        assert stats.gflops > 0

    def test_trace_work_conserved(self, algo_cls, ctx):
        """Expansion phases of GPU schemes account for every product."""
        algo = algo_cls()
        trace = algo.build_trace(ctx, TITAN_XP)
        if not trace.phases:  # the CPU (MKL) scheme has no GPU trace
            return
        total = trace.total_ops()
        assert total >= ctx.total_work * 0.99  # binning may double-count a little

    def test_planes_are_shared_executors(self, algo_cls):
        """Schemes customise ``lower`` only; both planes run through the
        shared plan executors in the base class."""
        assert "multiply" not in algo_cls.__dict__
        assert "build_trace" not in algo_cls.__dict__
        assert "lower" in algo_cls.__dict__


class TestTraceShapes:
    def test_outer_one_block_per_nonempty_pair(self, ctx):
        trace = OuterProductSpGEMM().build_trace(ctx, TITAN_XP)
        n_pairs = int(np.count_nonzero(ctx.pair_work))
        assert len(trace.phases[0].blocks) == n_pairs

    def test_outer_fixed_block_size(self, ctx):
        trace = OuterProductSpGEMM(fixed_block_size=128).build_trace(ctx, TITAN_XP)
        assert np.all(trace.phases[0].blocks.threads == 128)

    def test_row_trace_has_merge_override(self, ctx):
        trace = RowProductSpGEMM().build_trace(ctx, TITAN_XP)
        merge = [p for p in trace.phases if p.stage == "merge"][0]
        assert merge.instr_override is not None

    def test_mkl_all_host_time(self, ctx):
        trace = MklSpGEMM().build_trace(ctx, TITAN_XP)
        assert trace.phases == []
        assert trace.host_seconds > 0

    def test_mkl_bigger_cpu_is_faster(self, ctx):
        from repro.gpusim.config import XEON_E5_2698V4

        small = MklSpGEMM().cpu_seconds(ctx)
        big = MklSpGEMM(cpu=XEON_E5_2698V4).cpu_seconds(ctx)
        assert big <= small

    def test_cusp_sort_dominates_traffic(self, ctx):
        trace = CuspSpGEMM().build_trace(ctx, TITAN_XP)
        by_name = {p.name: p.blocks for p in trace.phases}
        sort_bytes = by_name["sort"].unique_bytes.sum() + by_name["sort"].write_bytes.sum()
        exp_bytes = by_name["expand"].unique_bytes.sum() + by_name["expand"].write_bytes.sum()
        assert sort_bytes > 3.0 * exp_bytes
