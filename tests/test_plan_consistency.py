"""Cross-plane consistency: for every scheme, the plan's block-accounted work
must equal the numeric plane's op counts, on fixtures and on a catalog
dataset."""

import pytest

from repro.bench.runner import get_context
from repro.gpusim.config import TITAN_XP
from repro.metrics import plan_profile
from repro.spgemm.base import MultiplyContext

from tests.test_algorithms import ALL_ALGORITHMS


@pytest.fixture(params=["square", "skewed"])
def any_ctx(request, square_csr, skewed_csr):
    return MultiplyContext.build(
        square_csr if request.param == "square" else skewed_csr
    )


@pytest.fixture(scope="module")
def catalog_ctx():
    return get_context("poisson3da")


@pytest.mark.parametrize("algo_cls", ALL_ALGORITHMS, ids=lambda c: c.name)
class TestPlanMatchesNumericPlane:
    def test_block_work_equals_numeric_ops(self, algo_cls, any_ctx):
        """Every product the kernels emit is accounted for by some expansion
        phase's blocks, and vice versa."""
        algo = algo_cls()
        plan = algo.lower(any_ctx, TITAN_XP)
        result, records = algo.profile_plan(any_ctx)
        emitted = sum(r.ops for r in records if r.stage == "expansion")
        assert emitted == any_ctx.total_work
        if plan.total_ops():  # device schemes; the CPU scheme has no blocks
            assert plan.total_ops() == emitted
        assert result.allclose(any_ctx.reference_c)

    def test_catalog_sample(self, algo_cls, catalog_ctx):
        algo = algo_cls()
        plan = algo.lower(catalog_ctx, TITAN_XP)
        result, records = algo.profile_plan(catalog_ctx)
        emitted = sum(r.ops for r in records if r.stage == "expansion")
        assert emitted == catalog_ctx.total_work
        if plan.total_ops():
            assert plan.total_ops() == emitted
        assert result.allclose(catalog_ctx.reference_c)


def test_plan_profile_rollup(square_csr):
    ctx = MultiplyContext.build(square_csr)
    algo = ALL_ALGORITHMS[0]()
    _, records = algo.profile_plan(ctx)
    profile = plan_profile(algo.name, records)
    assert profile.total_ops == ctx.total_work
    assert profile.stage("expansion").ops == ctx.total_work
    assert profile.stage("merge").n_phases >= 1
    with pytest.raises(KeyError):
        profile.stage("setup")
