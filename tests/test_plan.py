"""ExecutionPlan IR mechanics, the executor's consistency invariant, and the
reorganizer's pass-pipeline round trip."""

import numpy as np
import pytest

from repro.core.reorganizer import (
    BlockReorganizer,
    ReorganizerOptions,
    options_from_pipeline,
    plan_pipeline,
)
from repro.errors import ConfigurationError, PlanError
from repro.gpusim.block import BlockArray
from repro.gpusim.config import TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.plan.ir import ExecutionPlan, NumericState, PlanPhase
from repro.plan.passes import ClassifyPass, GatherPass, LimitPass, SplitPass
from repro.spgemm.base import MultiplyContext
from repro.spgemm.libraries import MklSpGEMM
from repro.spgemm.outerproduct import OuterProductSpGEMM


@pytest.fixture
def ctx(square_csr):
    return MultiplyContext.build(square_csr)


@pytest.fixture
def skewed_ctx(skewed_csr):
    return MultiplyContext.build(skewed_csr)


class TestPlanPhase:
    def test_rejects_unknown_stage(self):
        with pytest.raises(PlanError):
            PlanPhase("bogus", "transmogrify", BlockArray.empty())


class TestExecutionPlanStructure:
    def test_phase_lookup(self, ctx):
        plan = OuterProductSpGEMM().lower(ctx, TITAN_XP)
        assert plan.phase("expansion").stage == "expansion"
        with pytest.raises(PlanError):
            plan.phase("nonexistent")

    def test_replace_phase_splices(self, ctx):
        plan = OuterProductSpGEMM().lower(ctx, TITAN_XP)
        merge = plan.phase("merge")
        a = PlanPhase("merge-a", "merge", merge.blocks, kernel=merge.kernel)
        b = PlanPhase("merge-b", "merge", BlockArray.empty())
        plan.replace_phase("merge", a, b)
        assert [p.name for p in plan.phases] == ["expansion", "merge-a", "merge-b"]
        with pytest.raises(PlanError):
            plan.replace_phase("merge", a)

    def test_shape_digest_reflects_structure(self, ctx):
        algo = OuterProductSpGEMM()
        plan = algo.lower(ctx, TITAN_XP)
        again = algo.lower(ctx, TITAN_XP)
        assert plan.shape_digest() == again.shape_digest()
        again.replace_phase("merge")  # drop the merge phase entirely
        assert plan.shape_digest() != again.shape_digest()

    def test_trace_carries_plan_shape(self, ctx):
        plan = OuterProductSpGEMM().lower(ctx, TITAN_XP)
        trace = plan.to_trace()
        assert trace.meta["plan_shape"] == plan.shape_digest()

    def test_plan_shape_reaches_simulated_stats(self, ctx):
        stats = OuterProductSpGEMM().simulate(ctx, GPUSimulator(TITAN_XP))
        assert "plan_shape" in stats.meta


class TestExecutorInvariant:
    def test_underemitting_kernel_raises(self, ctx):
        plan = OuterProductSpGEMM().lower(ctx, TITAN_XP)
        plan.phase("expansion").kernel = lambda state: 0  # emits nothing
        with pytest.raises(PlanError):
            plan.execute(ctx)

    def test_tampered_blocks_raise(self, ctx):
        plan = OuterProductSpGEMM().lower(ctx, TITAN_XP)
        exp = plan.phase("expansion")
        exp.blocks = exp.blocks.select(np.arange(len(exp.blocks)) < len(exp.blocks) - 1)
        with pytest.raises(PlanError):
            plan.execute(ctx)

    def test_instrumented_execution_records_all_phases(self, ctx):
        result, records = OuterProductSpGEMM().profile_plan(ctx)
        assert result.allclose(ctx.reference_c)
        assert [r.name for r in records] == ["expansion", "merge"]
        assert records[0].ops == ctx.total_work
        assert all(r.seconds >= 0.0 for r in records)


class TestHostPlans:
    def test_mkl_phases_are_host_side(self, ctx):
        plan = MklSpGEMM().lower(ctx, TITAN_XP)
        assert all(not p.device for p in plan.phases)
        assert plan.total_ops() == 0  # device ops only
        trace = plan.to_trace()
        assert trace.phases == []
        assert trace.host_seconds > 0
        assert plan.execute(ctx).allclose(ctx.reference_c)


OPTION_SETS = [
    ReorganizerOptions(),
    ReorganizerOptions(enable_splitting=False),
    ReorganizerOptions(enable_gathering=False),
    ReorganizerOptions(enable_limiting=False),
    ReorganizerOptions(
        enable_splitting=False, enable_gathering=False, enable_limiting=False
    ),
    ReorganizerOptions(alpha=0.3, beta=5.0, splitting_factor=4, limiting_factor=2),
    ReorganizerOptions(max_threads=128, baseline_threads=512),
]


class TestPassPipeline:
    @pytest.mark.parametrize("options", OPTION_SETS)
    def test_options_round_trip(self, options):
        assert options_from_pipeline(plan_pipeline(options)) == options

    @pytest.mark.parametrize("options", OPTION_SETS)
    def test_round_trip_preserves_fingerprint(self, options):
        original = BlockReorganizer(options=options)
        rebuilt = BlockReorganizer(
            options=options_from_pipeline(plan_pipeline(options))
        )
        assert rebuilt.fingerprint() == original.fingerprint()

    def test_pipeline_shape_matches_options(self):
        passes = plan_pipeline(ReorganizerOptions(enable_gathering=False))
        assert [type(p) for p in passes] == [ClassifyPass, SplitPass, LimitPass]
        assert isinstance(plan_pipeline(ReorganizerOptions())[2], GatherPass)

    def test_rejects_headless_pipeline(self):
        with pytest.raises(ConfigurationError):
            options_from_pipeline([GatherPass()])

    def test_ablation_is_pass_removal(self, skewed_ctx):
        """Dropping a pass yields the same plan as disabling its option."""
        full = BlockReorganizer(options=ReorganizerOptions())
        ablated = BlockReorganizer(options=ReorganizerOptions(enable_splitting=False))
        assert len(full.pipeline()) == len(ablated.pipeline()) + 1
        assert (
            full.lower(skewed_ctx, TITAN_XP).shape_digest()
            != ablated.lower(skewed_ctx, TITAN_XP).shape_digest()
        )

    def test_plan_signature_lists_passes(self):
        sig = BlockReorganizer(options=ReorganizerOptions()).plan_signature()
        assert sig["lowering"] == "outer-product"
        assert [p["pass"] for p in sig["passes"]] == [
            "classify", "split", "gather", "limit",
        ]

    def test_technique_pass_requires_classification(self, skewed_ctx):
        plan = OuterProductSpGEMM().lower(skewed_ctx, TITAN_XP)
        with pytest.raises(PlanError):
            GatherPass().run(plan, skewed_ctx, TITAN_XP, OuterProductSpGEMM().costs)


class TestCustomPass:
    def test_external_pass_composes(self, skewed_ctx):
        """A pass defined outside the repo's pipeline slots straight in."""

        class TagPass:
            def signature(self):
                return {"pass": "tag"}

            def run(self, plan, ctx, config, costs):
                plan.meta["tagged"] = True
                return plan

        algo = BlockReorganizer()
        plan = algo.lower(skewed_ctx, TITAN_XP)
        plan = TagPass().run(plan, skewed_ctx, TITAN_XP, algo.costs)
        assert plan.meta["tagged"] is True
        assert plan.execute(skewed_ctx).allclose(skewed_ctx.reference_c)


class TestNumericState:
    def test_expansions_cached(self, ctx):
        state = NumericState(ctx)
        assert state.outer_expansion() is state.outer_expansion()
        assert state.row_expansion() is state.row_expansion()

    def test_sort_then_coalesce_matches_direct(self, ctx):
        direct = NumericState(ctx)
        direct.emit(*direct.row_expansion())
        sorted_state = NumericState(ctx)
        sorted_state.emit(*sorted_state.row_expansion())
        sorted_state.sort_pending()
        a = direct.coalesce()
        b = sorted_state.coalesce()
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)

    def test_empty_plan_coalesces_to_empty(self, ctx):
        plan = ExecutionPlan(algorithm="noop")
        c = plan.execute(ctx)
        assert c.nnz == 0
