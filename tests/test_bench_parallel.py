"""Parallel bench engine: serial/parallel equivalence, deterministic merge
order, labelled rosters, and graceful degradation when the pool dies."""

import json

import pytest

from repro.bench import parallel
from repro.bench.cache import result_to_dict
from repro.bench.runner import (
    ablation_algorithms,
    configure,
    paper_algorithms,
    run_matrix,
)
from repro.gpusim.config import TITAN_XP

SMALL = ["poisson3da", "as_caida"]


def _explode(name, cells, gpu, costs, trace=False):
    # Module-level so the process pool can pickle it by reference.
    raise ValueError("a real bug, not a pool failure")


def _blobs(results):
    return {cell: json.dumps(result_to_dict(res), sort_keys=True) for cell, res in results.items()}


class TestParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_matrix(SMALL, paper_algorithms(), workers=1, cache=None)
        par = run_matrix(SMALL, paper_algorithms(), workers=2, cache=None)
        assert list(serial) == list(par)
        assert _blobs(serial) == _blobs(par)

    def test_merge_order_is_grid_order(self):
        algos = paper_algorithms()
        results = run_matrix(SMALL, algos, workers=2, cache=None)
        expected = [(d, a.name) for d in SMALL for a in algos]
        assert list(results) == expected

    def test_labelled_mapping_roster(self):
        algos = ablation_algorithms()
        results = run_matrix(SMALL[:1], algos, workers=1, cache=None)
        assert list(results) == [(SMALL[0], label) for label in algos]
        for (_, label), res in results.items():
            assert res.algorithm == label


class TestDegradation:
    def test_workers_one_never_touches_the_pool(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("workers=1 must not shard")

        monkeypatch.setattr(parallel, "run_sharded", boom)
        results = run_matrix(SMALL[:1], paper_algorithms(), workers=1, cache=None)
        assert len(results) == 7

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        class DeadPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no more processes")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", DeadPool)
        with pytest.warns(RuntimeWarning, match="finishing 2 shard"):
            results = run_matrix(SMALL, paper_algorithms(), workers=2, cache=None)
        assert len(results) == len(SMALL) * 7
        serial = run_matrix(SMALL, paper_algorithms(), workers=1, cache=None)
        assert _blobs(results) == _blobs(serial)

    def test_simulation_errors_propagate(self, monkeypatch):
        monkeypatch.setattr(parallel, "_simulate_shard", _explode)
        with pytest.raises(ValueError, match="a real bug"):
            parallel.run_sharded(
                {"poisson3da": [("row", paper_algorithms()[0])]}, TITAN_XP, None, 2
            )


class TestDefaults:
    def test_default_workers_positive(self):
        assert parallel.default_workers() >= 1

    def test_configure_sets_and_clamps(self):
        from repro.bench import runner

        saved = (runner._DEFAULTS.workers, runner._DEFAULTS.cache)
        try:
            configure(workers=0)
            assert runner._DEFAULTS.workers == 1
            configure(workers=3)
            assert runner._DEFAULTS.workers == 3
        finally:
            configure(workers=saved[0], cache=saved[1])
