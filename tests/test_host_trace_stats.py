"""Tests for the host cost model, kernel traces and stats containers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.block import BlockArrayBuilder
from repro.gpusim.config import TITAN_XP, XEON_E5_2640V4, XEON_E5_2698V4
from repro.gpusim.costs import DEFAULT_COSTS
from repro.gpusim.host import (
    device_precalc_cycles,
    host_classification_seconds,
    host_split_seconds,
)
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats
from repro.gpusim.trace import KernelPhase, KernelTrace


def _blocks(n=4):
    b = BlockArrayBuilder()
    b.add_blocks(
        threads=64,
        effective_threads=np.full(n, 64),
        iters=np.full(n, 5.0),
        ops=np.full(n, 320),
        unique_bytes=np.full(n, 100.0),
        write_bytes=np.full(n, 100.0),
        working_set=np.full(n, 100.0),
        transactions=np.full(n, 5.0),
    )
    return b.build()


class TestHostCosts:
    def test_classification_linear_in_pairs(self):
        one = host_classification_seconds(DEFAULT_COSTS, 1000)
        two = host_classification_seconds(DEFAULT_COSTS, 2000)
        assert two == pytest.approx(2 * one)

    def test_split_linear_in_entries(self):
        one = host_split_seconds(DEFAULT_COSTS, 10_000)
        two = host_split_seconds(DEFAULT_COSTS, 20_000)
        assert two == pytest.approx(2 * one)

    def test_faster_cpu_is_faster(self):
        slow = host_split_seconds(DEFAULT_COSTS, 10_000, cpu=XEON_E5_2640V4)
        fast = host_split_seconds(DEFAULT_COSTS, 10_000, cpu=XEON_E5_2698V4)
        assert fast < slow

    def test_precalc_includes_extra_elements(self):
        base = device_precalc_cycles(DEFAULT_COSTS, 1000, 1000)
        more = device_precalc_cycles(DEFAULT_COSTS, 1000, 1000, extra_elements=5000)
        assert more > base


class TestTrace:
    def test_phase_stage_validated(self):
        with pytest.raises(SimulationError, match="stage"):
            KernelPhase("x", "bogus", _blocks())

    def test_n_blocks(self):
        trace = KernelTrace(
            "t",
            [KernelPhase("a", "expansion", _blocks(3)), KernelPhase("b", "merge", _blocks(2))],
        )
        assert trace.n_blocks == 5

    def test_total_ops_counts_expansion_only(self):
        trace = KernelTrace(
            "t",
            [KernelPhase("a", "expansion", _blocks(3)), KernelPhase("b", "merge", _blocks(2))],
        )
        assert trace.total_ops() == 3 * 320


class TestKernelStats:
    def _stats(self):
        sim = GPUSimulator(TITAN_XP)
        trace = KernelTrace(
            "t",
            [
                KernelPhase("e", "expansion", _blocks(30)),
                KernelPhase("m", "merge", _blocks(10)),
            ],
            host_seconds=1e-6,
            device_setup_cycles=500.0,
        )
        return sim.run(trace)

    def test_kernel_cycles_includes_setup(self):
        stats = self._stats()
        phase_sum = sum(p.makespan_cycles for p in stats.phases)
        assert stats.kernel_cycles == pytest.approx(phase_sum + 500.0)

    def test_total_seconds_includes_host(self):
        stats = self._stats()
        assert stats.total_seconds == pytest.approx(stats.kernel_seconds + 1e-6)

    def test_stage_filtering(self):
        stats = self._stats()
        total = stats.stage_cycles("expansion") + stats.stage_cycles("merge")
        assert stats.kernel_cycles == pytest.approx(total + 500.0)

    def test_sm_busy_stage_filter(self):
        stats = self._stats()
        both = stats.sm_busy_cycles()
        exp = stats.sm_busy_cycles("expansion")
        mrg = stats.sm_busy_cycles("merge")
        assert np.allclose(both, exp + mrg)

    def test_lbi_bounds(self):
        stats = self._stats()
        assert 0.0 < stats.lbi() <= 1.0

    def test_empty_stats(self):
        stats = KernelStats(algorithm="x", config=TITAN_XP)
        assert stats.total_ops == 0
        assert stats.gflops == 0.0
        assert stats.lbi() == 1.0
        assert stats.sync_stall_pct == 0.0
        assert stats.l2_read_gbs() == 0.0

    def test_phase_throughput_getters(self):
        stats = self._stats()
        p = stats.phases[0]
        assert p.seconds(TITAN_XP) > 0
        assert p.l2_read_gbs(TITAN_XP) >= 0
        assert p.l2_write_gbs(TITAN_XP) >= 0
