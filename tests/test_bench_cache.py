"""Persistent result cache and fingerprinting: hit/miss, invalidation,
corruption recovery, and the context-cache keying audit."""

import dataclasses
import json

import numpy as np
import pytest

from repro.bench.cache import ResultCache, result_from_dict, result_to_dict
from repro.bench.fingerprint import SCHEMA_VERSION, canonical, cell_key, context_key
from repro.bench.runner import clear_context_cache, get_context, run_matrix
from repro.core.adaptive import AdaptiveBlockReorganizer
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.datasets import catalog
from repro.datasets import loader
from repro.errors import FingerprintError
from repro.gpusim.config import TESLA_V100, TITAN_XP
from repro.gpusim.costs import DEFAULT_COSTS, CostModel
from repro.spgemm.rowproduct import RowProductSpGEMM

SMALL = "poisson3da"


def _one_cell(cache=None, costs=None, gpu=TITAN_XP):
    results = run_matrix([SMALL], [RowProductSpGEMM()], gpu, costs, cache=cache)
    return results[(SMALL, "row-product")]


@pytest.fixture
def spec():
    return catalog.get_spec(SMALL)


class TestFingerprint:
    def test_canonical_rejects_exotic_types(self):
        with pytest.raises(FingerprintError):
            canonical(object())

    def test_cell_key_is_stable(self, spec):
        a = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        b = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_gpu_config_invalidates(self, spec):
        algo = RowProductSpGEMM()
        a = cell_key(spec, algo, "row", TITAN_XP, DEFAULT_COSTS)
        b = cell_key(spec, algo, "row", TESLA_V100, DEFAULT_COSTS)
        c = cell_key(
            spec, algo, "row",
            dataclasses.replace(TITAN_XP, l2_size=TITAN_XP.l2_size * 2),
            DEFAULT_COSTS,
        )
        assert len({a, b, c}) == 3

    def test_cost_model_invalidates(self, spec):
        algo = RowProductSpGEMM()
        a = cell_key(spec, algo, "row", TITAN_XP, DEFAULT_COSTS)
        b = cell_key(
            spec, algo, "row", TITAN_XP, CostModel().with_overrides(mem_latency=123.0)
        )
        assert a != b

    def test_algorithm_options_invalidate(self, spec):
        a = cell_key(spec, BlockReorganizer(), "BR", TITAN_XP, DEFAULT_COSTS)
        b = cell_key(
            spec,
            BlockReorganizer(options=ReorganizerOptions(beta=5.0)),
            "BR", TITAN_XP, DEFAULT_COSTS,
        )
        assert a != b

    def test_algorithm_costs_invalidate(self, spec):
        a = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        b = cell_key(
            spec,
            RowProductSpGEMM(CostModel().with_overrides(instr_per_product=9.0)),
            "row", TITAN_XP, DEFAULT_COSTS,
        )
        assert a != b

    def test_dataset_recipe_invalidates(self, spec):
        algo = RowProductSpGEMM()
        a = cell_key(spec, algo, "row", TITAN_XP, DEFAULT_COSTS)
        b = cell_key(
            dataclasses.replace(spec, seed=spec.seed + 1),
            algo, "row", TITAN_XP, DEFAULT_COSTS,
        )
        assert a != b

    def test_label_participates(self, spec):
        algo = RowProductSpGEMM()
        a = cell_key(spec, algo, "row", TITAN_XP, DEFAULT_COSTS)
        b = cell_key(spec, algo, "baseline", TITAN_XP, DEFAULT_COSTS)
        assert a != b

    def test_stateful_scheme_is_not_fingerprintable(self):
        with pytest.raises(FingerprintError):
            AdaptiveBlockReorganizer().fingerprint()


class TestResultCacheStore:
    def test_roundtrip_is_lossless(self, tmp_path):
        res = _one_cell()
        blob = result_to_dict(res)
        back = result_from_dict(json.loads(json.dumps(blob)))
        assert result_to_dict(back) == blob
        assert back.seconds == res.seconds
        assert back.gflops == res.gflops
        assert back.stats.total_seconds == res.stats.total_seconds
        assert back.stats.lbi() == res.stats.lbi()
        for p_a, p_b in zip(res.stats.phases, back.stats.phases):
            assert np.array_equal(p_a.sm_busy_cycles, p_b.sm_busy_cycles)

    def test_get_put_counters(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        key = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, _one_cell())
        assert len(cache) == 1
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupted_entry_is_a_miss_and_evicted(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        key = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        cache.put(key, _one_cell())
        cache.path_for(key).write_text("{ not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_truncated_payload_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        key = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        cache.put(key, _one_cell())
        path = cache.path_for(key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        del payload["result"]["stats"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        key = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        cache.put(key, _one_cell())
        path = cache.path_for(key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(key) is None

    def test_unwritable_dir_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        cache = ResultCache(blocker)
        cache.put("ab" * 32, _one_cell())
        assert cache.write_errors == 1

    def test_clear(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        key = cell_key(spec, RowProductSpGEMM(), "row", TITAN_XP, DEFAULT_COSTS)
        cache.put(key, _one_cell())
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunMatrixWithCache:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_matrix([SMALL], [RowProductSpGEMM(), BlockReorganizer()], cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        warm = run_matrix([SMALL], [RowProductSpGEMM(), BlockReorganizer()], cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)
        for cell in cold:
            assert result_to_dict(cold[cell]) == result_to_dict(warm[cell])

    def test_warm_run_never_simulates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        run_matrix([SMALL], [RowProductSpGEMM()], cache=cache)

        def boom(self, ctx, simulator):
            raise AssertionError("cache should have answered this cell")

        monkeypatch.setattr(RowProductSpGEMM, "simulate", boom)
        warm = run_matrix([SMALL], [RowProductSpGEMM()], cache=cache)
        assert warm[(SMALL, "row-product")].seconds > 0

    def test_changed_costs_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_matrix([SMALL], [RowProductSpGEMM()], cache=cache)
        run_matrix(
            [SMALL], [RowProductSpGEMM()],
            costs=CostModel().with_overrides(mem_latency=500.0),
            cache=cache,
        )
        assert cache.hits == 0
        assert cache.misses == 2
        assert len(cache) == 2

    def test_unfingerprintable_scheme_bypasses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        algos = {"adaptive": AdaptiveBlockReorganizer()}
        run_matrix([SMALL], algos, cache=cache)
        run_matrix([SMALL], algos, cache=cache)
        assert (cache.hits, cache.misses) == (0, 0)
        assert len(cache) == 0


class TestContextCacheAudit:
    """The in-process context/dataset caches must key on the full generation
    recipe — a respecified dataset under the same name is a different
    dataset (regression guard for name-only keying)."""

    def test_same_recipe_reuses_context(self):
        clear_context_cache()
        assert get_context(SMALL) is get_context(SMALL)

    def test_respecified_dataset_invalidates(self, monkeypatch):
        clear_context_cache()
        loader.clear_cache()
        before = get_context(SMALL)
        spec = catalog.get_spec(SMALL)
        monkeypatch.setitem(
            catalog._REGISTRY, SMALL, dataclasses.replace(spec, seed=spec.seed + 1)
        )
        after = get_context(SMALL)
        assert after is not before
        assert not np.array_equal(before.a_csr.data, after.a_csr.data)

    def test_respecified_params_invalidate(self, monkeypatch):
        clear_context_cache()
        loader.clear_cache()
        before = get_context(SMALL)
        spec = catalog.get_spec(SMALL)
        params = {**spec.params, "nnz_per_row": spec.params["nnz_per_row"] // 2}
        monkeypatch.setitem(
            catalog._REGISTRY, SMALL, dataclasses.replace(spec, params=params)
        )
        assert context_key(spec) != context_key(catalog.get_spec(SMALL))
        after = get_context(SMALL)
        assert after is not before
        assert after.a_csr.nnz < before.a_csr.nnz
