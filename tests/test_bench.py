"""Bench-harness tests: runner, tables and experiment plumbing (small inputs).

These use the two smallest catalog datasets so the whole module stays fast;
the full-suite runs live in benchmarks/.
"""

import math

import pytest

from repro.bench.runner import (
    ablation_algorithms,
    clear_context_cache,
    get_context,
    paper_algorithms,
    run_matrix,
)
from repro.bench.tables import format_table, geomean
from repro.gpusim.config import TITAN_XP

SMALL = ["poisson3da", "as_caida"]


class TestTables:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert math.isnan(geomean([]))

    def test_geomean_nonpositive(self):
        assert math.isnan(geomean([1.0, 0.0]))

    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["a", 1.5], ["bb", 2.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.50" in out and "2.25" in out

    def test_format_table_mixed_types(self):
        out = format_table(["name", "n", "f"], [["row", 7, 0.123]])
        assert "7" in out and "0.12" in out


class TestRunner:
    def test_context_cached(self):
        clear_context_cache()
        a = get_context("poisson3da")
        b = get_context("poisson3da")
        assert a is b

    def test_paper_algorithms_roster(self):
        names = [a.name for a in paper_algorithms()]
        assert names == [
            "row-product",
            "outer-product",
            "cusparse",
            "cusp",
            "bhsparse",
            "mkl",
            "block-reorganizer",
        ]

    def test_ablation_roster(self):
        variants = ablation_algorithms()
        assert set(variants) == {
            "B-Limiting",
            "B-Splitting",
            "B-Gathering",
            "Block-Reorganizer",
        }
        assert not variants["B-Limiting"].options.enable_splitting
        assert not variants["B-Splitting"].options.enable_gathering
        assert not variants["B-Gathering"].options.enable_limiting

    def test_run_matrix(self):
        results = run_matrix(SMALL, paper_algorithms(), TITAN_XP)
        assert len(results) == len(SMALL) * 7
        for (name, algo), res in results.items():
            assert res.seconds > 0
            assert res.dataset == name
            assert res.algorithm == algo

    def test_speedup_over(self):
        results = run_matrix(SMALL[:1], paper_algorithms(), TITAN_XP)
        base = results[(SMALL[0], "row-product")]
        assert base.speedup_over(base) == pytest.approx(1.0)


class TestExperimentsSmoke:
    def test_fig08_on_small_subset(self):
        from repro.bench.experiments import fig08_speedup

        result = fig08_speedup.run(datasets=SMALL)
        text = fig08_speedup.format_result(result)
        assert "GEOMEAN" in text
        assert all(result.speedups[(d, "row-product")] == 1.0 for d in SMALL)

    def test_fig10_on_small_subset(self):
        from repro.bench.experiments import fig10_techniques

        result = fig10_techniques.run(datasets=SMALL)
        assert set(result.geomeans()) == set(fig10_techniques.TECHNIQUES)

    def test_fig11_on_skewed_subset(self):
        from repro.bench.experiments import fig11_lbi

        result = fig11_lbi.run(datasets=["as_caida"])
        assert result.datasets == ["as_caida"]
        assert result.speedup[("as_caida", 1)] == pytest.approx(1.0)

    def test_fig13_on_small_subset(self):
        from repro.bench.experiments import fig13_sync_stalls

        result = fig13_sync_stalls.run(datasets=SMALL)
        for d in SMALL:
            assert 0 <= result.after_pct[d] <= 100

    def test_table1(self):
        from repro.bench.experiments import table1_systems

        rows = table1_systems.run()
        assert rows[0]["gpu"] == "TITAN Xp"

    def test_sec4e_on_alternative_dataset(self):
        from repro.bench.experiments import sec4e_youtube

        row = sec4e_youtube.run(dataset="as_caida")
        assert row.dataset == "as_caida"
        assert row.n_pairs > 0
