"""Mechanism-isolation tests: degenerate cost models single out one effect.

The cost-model docstring promises that tests can isolate mechanisms by
zeroing everything else; these do exactly that, pinning each paper technique
to the specific simulator term it exploits.
"""

import numpy as np
import pytest

from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.gpusim.block import BlockArrayBuilder
from repro.gpusim.config import TITAN_XP
from repro.gpusim.costs import CostModel
from repro.gpusim.simulator import GPUSimulator
from repro.sparse.random import power_law
from repro.spgemm.base import MultiplyContext

ZERO_MEMORY = CostModel().with_overrides(
    mem_latency=0.0, l2_latency=0.0, mem_ops_per_product=0.0
)
ZERO_LAUNCH = CostModel().with_overrides(tb_launch_cycles=0.0, warp_setup_cycles=0.0,
                                         kernel_launch_cycles=0.0)


def _block(threads, eff, iters, *, trans=1.0, bytes_=100.0, n=1):
    b = BlockArrayBuilder()
    b.add_blocks(
        threads=threads,
        effective_threads=np.full(n, eff),
        iters=np.full(n, float(iters)),
        ops=np.full(n, int(iters * eff)),
        unique_bytes=np.full(n, bytes_),
        write_bytes=np.full(n, bytes_),
        working_set=np.full(n, bytes_),
        transactions=np.full(n, trans),
    )
    return b.build()


class TestComputeTermIsolated:
    """With memory free, duration is pure issue work + launch."""

    def test_duration_linear_in_iters(self):
        sim = GPUSimulator(TITAN_XP, ZERO_MEMORY)
        d1 = sim.block_durations("expansion", _block(32, 32, 100))[0]
        d2 = sim.block_durations("expansion", _block(32, 32, 200))[0]
        launch = ZERO_MEMORY.tb_launch_cycles + ZERO_MEMORY.warp_setup_cycles
        assert (d2 - launch) == pytest.approx(2 * (d1 - launch))

    def test_empty_warps_cost_issue_slots(self):
        """A 256-thread block with 2 effective lanes pays more issue pressure
        than a compacted 32-thread block doing identical work."""
        sim = GPUSimulator(TITAN_XP, ZERO_MEMORY.with_overrides(
            tb_launch_cycles=0.0, warp_setup_cycles=0.0))
        fat = sim.block_durations("expansion", _block(256, 2, 1000, n=64))
        slim = sim.block_durations("expansion", _block(32, 2, 1000, n=64))
        assert fat[0] > slim[0]


class TestLatencyTermIsolated:
    """With bandwidth and issue negligible, the warp pool decides."""

    def test_deeper_pool_is_faster(self):
        costs = ZERO_LAUNCH.with_overrides(instr_per_product=0.001)
        sim = GPUSimulator(TITAN_XP, costs)
        # n large enough that the block-scarcity clamp does not bind.
        # 256-thread blocks: 8 resident, 1 effective warp each -> pool 8.
        shallow = sim.block_durations("expansion", _block(256, 32, 100, n=2000))[0]
        # 32-thread blocks: 32 resident -> pool 32.
        deep = sim.block_durations("expansion", _block(32, 32, 100, n=2000))[0]
        assert deep < shallow

    def test_latency_linear_in_mem_latency(self):
        lo = GPUSimulator(TITAN_XP, ZERO_LAUNCH.with_overrides(mem_latency=200.0))
        hi = GPUSimulator(TITAN_XP, ZERO_LAUNCH.with_overrides(mem_latency=800.0))
        # Single resident block (n=1): pool = 1 warp -> exposure ~= latency.
        b = _block(32, 32, 1000, bytes_=1.0, trans=0.001)
        assert hi.block_durations("expansion", b)[0] > 2.0 * lo.block_durations("expansion", b)[0]


class TestBandwidthTermIsolated:
    def test_duration_linear_in_bytes(self):
        costs = ZERO_LAUNCH.with_overrides(
            mem_latency=0.0, l2_latency=0.0, instr_per_product=0.001
        )
        sim = GPUSimulator(TITAN_XP, costs)
        small = sim.block_durations("expansion", _block(256, 256, 1, bytes_=1e6, trans=1.0))[0]
        large = sim.block_durations("expansion", _block(256, 256, 1, bytes_=2e6, trans=1.0))[0]
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_sector_floor_penalises_sparse_transactions(self):
        costs = ZERO_LAUNCH.with_overrides(
            mem_latency=0.0, l2_latency=0.0, instr_per_product=0.001
        )
        sim = GPUSimulator(TITAN_XP, costs)
        dense = sim.block_durations("expansion", _block(32, 32, 1, bytes_=100.0, trans=3.0))[0]
        wasteful = sim.block_durations("expansion", _block(32, 32, 1, bytes_=100.0, trans=300.0))[0]
        assert wasteful > dense


class TestAtomicTermIsolated:
    def test_collisions_add_serialisation(self):
        sim = GPUSimulator(TITAN_XP, ZERO_MEMORY)
        builder = BlockArrayBuilder()
        for collisions in (0, 32_000):
            builder.add_blocks(
                threads=256,
                effective_threads=np.array([256]),
                iters=np.array([10.0]),
                ops=np.array([2560]),
                unique_bytes=np.array([100.0]),
                working_set=np.array([100.0]),
                atomics=np.array([2560]),
                collisions=np.array([collisions]),
                transactions=np.array([1.0]),
            )
        d = sim.block_durations("merge", builder.build())
        assert d[1] - d[0] == pytest.approx(
            32_000 * ZERO_MEMORY.atomic_conflict_cycles / 32.0
        )


class TestTechniqueMechanismBinding:
    """Disable a technique's mechanism and its benefit must disappear."""

    @pytest.fixture(scope="class")
    def ctx(self):
        ctx = MultiplyContext.build(power_law(4000, 60_000, seed=21).to_csr())
        ctx.c_row_nnz
        return ctx

    def test_gathering_gain_needs_launch_or_pool_costs(self, ctx):
        """Gathering's per-block win over fixed-256 micro-blocks comes from
        launch amortisation + issue/latency packing: with those costs off,
        the aggregate advantage shrinks."""
        from repro.core.gathering import plan_gathering
        from repro.plan.passes import gathered_blocks
        from repro.spgemm.traceutil import outer_pair_blocks

        rng = np.random.default_rng(5)
        na = rng.integers(1, 8, 3000)
        nb = rng.integers(1, 9, 3000)
        mask = np.ones(3000, dtype=bool)
        gains = {}
        for label, costs in (
            ("normal", CostModel()),
            ("neutered", ZERO_LAUNCH.with_overrides(mem_latency=0.0, l2_latency=0.0)),
        ):
            sim = GPUSimulator(TITAN_XP, costs)
            micro = outer_pair_blocks(na, nb, costs, fixed_threads=256)
            gathered = gathered_blocks(plan_gathering(na, nb, mask), costs)
            t_micro = sim.block_durations("expansion", micro).sum() / 240.0
            t_gather = sim.block_durations("expansion", gathered).sum() / 960.0
            gains[label] = t_micro / max(t_gather, 1e-12)
        assert gains["normal"] > 1.2
        assert gains["normal"] > gains["neutered"] * 1.05

    def test_limiting_gain_needs_finite_l2(self, ctx):
        """With an effectively infinite L2, B-Limiting has nothing to relieve."""
        import dataclasses

        sim_small = GPUSimulator(TITAN_XP)
        sim_huge = GPUSimulator(
            dataclasses.replace(TITAN_XP, l2_size=1 << 40, l1_size=1 << 40)
        )
        gains = {}
        for label, sim in (("small", sim_small), ("huge", sim_huge)):
            base = BlockReorganizer(
                options=ReorganizerOptions(enable_splitting=False,
                                           enable_gathering=False,
                                           enable_limiting=False)
            ).simulate(ctx, sim)
            limited = BlockReorganizer(
                options=ReorganizerOptions(enable_splitting=False,
                                           enable_gathering=False)
            ).simulate(ctx, sim)
            def merge(s):
                return s.stage_seconds("merge")

            gains[label] = merge(base) / max(merge(limited), 1e-12)
        assert gains["small"] >= gains["huge"] - 0.02
