"""Unit tests for serving-plane observability primitives.

Covers the pieces under the server: streaming latency histograms
(:mod:`repro.obs.serving`), per-request span trees, the Prometheus text
renderer/validator (:mod:`repro.metrics.promtext`), and the admission-side
flop estimator (:func:`repro.plan.estimate.multiply_flops`).
"""

from __future__ import annotations

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.metrics.promtext import (
    parse_exposition,
    render_metrics,
    validate_exposition,
)
from repro.obs.serving import (
    BUCKET_BOUNDS,
    MAX_TRACKED_TENANTS,
    NULL_REQUEST_TRACE,
    RequestTrace,
    ServingMetrics,
    StreamingHistogram,
)
from repro.plan.estimate import multiply_flops
from repro.spgemm.base import MultiplyContext

from .conftest import random_csr


class TestStreamingHistogram:
    def test_empty_histogram_reports_none(self):
        h = StreamingHistogram()
        assert h.quantile(0.5) is None
        latency = h.latency_ms()
        assert latency["count"] == 0
        assert latency["p50"] is None and latency["max"] is None

    def test_quantiles_are_bucket_bounds(self):
        h = StreamingHistogram()
        for _ in range(99):
            h.observe(1e-4)
        h.observe(1.0)
        # p50 falls in the bucket containing 1e-4; the reported value is
        # that bucket's upper bound, within one sqrt(2) step of the sample.
        p50 = h.quantile(0.50)
        assert 1e-4 <= p50 <= 1e-4 * math.sqrt(2)
        assert h.quantile(1.0) == 1.0  # exact max
        assert h.count == 100

    def test_observation_order_does_not_matter(self):
        samples = [1e-5, 3e-4, 0.002, 0.002, 0.5, 1e-4, 0.03] * 13
        a, b = StreamingHistogram(), StreamingHistogram()
        for s in samples:
            a.observe(s)
        for s in reversed(samples):
            b.observe(s)
        assert a.counts == b.counts
        assert a.latency_ms() == b.latency_ms()
        assert a.buckets() == b.buckets()

    def test_overflow_bucket_reports_exact_max(self):
        h = StreamingHistogram()
        huge = BUCKET_BOUNDS[-1] * 10
        h.observe(huge)
        assert h.quantile(0.5) == huge
        assert h.buckets()[-1] == (float("inf"), 1)

    def test_buckets_are_cumulative(self):
        h = StreamingHistogram()
        for s in (1e-5, 1e-3, 1e-1, 10.0, 1e9):
            h.observe(s)
        buckets = h.buckets()
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == (float("inf"), 5)

    def test_negative_and_zero_clamp_to_first_bucket(self):
        h = StreamingHistogram()
        h.observe(0.0)
        h.observe(-1.0)
        assert h.count == 2
        assert h.counts[0] == 2
        assert h.max_seconds == 0.0


class TestServingMetrics:
    def test_observe_aggregates_routes_and_tenants(self):
        m = ServingMetrics()
        m.observe("multiply", "alice", 0.01, 200)
        m.observe("multiply", "alice", 0.02, 400)
        m.observe("pagerank", "bob", 0.03, 200)
        snap = m.snapshot()
        assert snap["routes"]["multiply"]["requests"] == 2
        assert snap["routes"]["multiply"]["errors"] == 1
        assert snap["routes"]["pagerank"]["requests"] == 1
        assert snap["tenants"]["alice"]["requests"] == 2
        assert snap["tenants"]["bob"]["requests"] == 1
        assert snap["routes"]["multiply"]["latency_ms"]["count"] == 2

    def test_sheds_tracked_separately_from_requests(self):
        m = ServingMetrics()
        m.shed("multiply", "alice")
        snap = m.snapshot()
        assert snap["routes"]["multiply"]["sheds"] == 1
        assert snap["routes"]["multiply"]["requests"] == 0

    def test_tenant_cardinality_is_capped(self):
        m = ServingMetrics()
        for i in range(MAX_TRACKED_TENANTS + 10):
            m.observe("multiply", f"tenant-{i}", 0.001, 200)
        snap = m.snapshot()
        assert len(snap["tenants"]) == MAX_TRACKED_TENANTS + 1  # + "_other"
        assert snap["tenants"]["_other"]["requests"] == 10

    def test_snapshot_buckets_flag(self):
        m = ServingMetrics()
        m.observe("multiply", "default", 0.001, 200)
        assert "buckets" not in m.snapshot()["routes"]["multiply"]
        with_buckets = m.snapshot(include_buckets=True)
        assert with_buckets["routes"]["multiply"]["buckets"][-1][1] == 1


class TestRequestTrace:
    def test_stage_tree_roundtrip(self):
        trace = RequestTrace("multiply", "alice")
        with trace.stage("parse", body_bytes=10):
            pass
        with trace.stage("numeric"):
            pass
        trace.add(status=200)
        (root,) = trace.to_spans()
        assert root.name == "request[multiply]"
        assert [c.name for c in root.children] == [
            "request.parse",
            "request.numeric",
        ]
        assert root.counters["status"] == 200
        assert root.children[0].counters["body_bytes"] == 10

    def test_record_with_explicit_timestamps(self):
        trace = RequestTrace("multiply")
        trace.record("batch_wait", 0.5, 0.25)
        trace.record("parse", 0.0, 0.1)
        (root,) = trace.to_spans()
        # Children sorted by start time regardless of recording order.
        assert [c.name for c in root.children] == [
            "request.parse",
            "request.batch_wait",
        ]
        assert root.children[1].t0 == 0.5
        assert root.children[1].dur == 0.25

    def test_write_produces_chrome_trace(self, tmp_path):
        trace = RequestTrace("multiply", "alice")
        with trace.stage("numeric"):
            pass
        out = tmp_path / "req.trace.json"
        trace.write(str(out), meta={"status": 200})
        payload = json.loads(out.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "request[multiply]" in names
        assert "request.numeric" in names
        assert payload["otherData"]["route"] == "multiply"
        assert payload["otherData"]["status"] == 200

    def test_null_trace_is_inert(self):
        with NULL_REQUEST_TRACE.stage("anything", x=1):
            NULL_REQUEST_TRACE.record("x", 0, 1)
            NULL_REQUEST_TRACE.add(status=500)
        assert NULL_REQUEST_TRACE.elapsed() == 0.0


def _sample_stats() -> dict:
    metrics = ServingMetrics()
    metrics.observe("multiply", "alice", 0.004, 200)
    metrics.observe("multiply", "alice", 0.3, 200)
    metrics.observe("pagerank", "bob", 0.02, 400)
    metrics.shed("multiply", "alice")
    serving = metrics.snapshot(include_buckets=True)
    serving.update(queue_depth=1, inflight_flops=12345, coalescence_factor=1.5)
    return {
        "runtime": {
            "sessions": 2,
            "sessions_evicted": 0,
            "tenants": {"alice": 1, "bob": 1},
            "plan_cache": {"lookups": 3, "hits": 1, "lowers": 2},
            "requests": 3,
            "exec": {"parallel_calls": 1, "serial_calls": 2, "fallbacks": 0,
                     "partitions": 4},
        },
        "batching": {
            "admitted": 3, "rejected": 1, "shed_queue": 0, "shed_cost": 1,
            "timeouts": 0, "batches": 2, "batched_requests": 3,
            "largest_batch": 2, "completed": 3, "drained_flops": 999,
            "retry_after_last": 7,
        },
        "serving": serving,
        "requests_per_lowering": 1.5,
    }


class TestPromText:
    def test_render_and_validate_roundtrip(self):
        text = render_metrics(_sample_stats())
        samples = validate_exposition(text)
        requests = dict(
            (labels["route"], value)
            for labels, value in samples["repro_requests_total"]
        )
        assert requests == {"multiply": 2, "pagerank": 1}
        sheds = dict(
            (labels["route"], value)
            for labels, value in samples["repro_request_sheds_total"]
        )
        assert sheds["multiply"] == 1
        (gauge,) = samples["repro_inflight_flops"]
        assert gauge[1] == 12345

    def test_histogram_bucket_invariants_hold(self):
        samples = validate_exposition(render_metrics(_sample_stats()))
        buckets = [
            (labels, value)
            for labels, value in samples["repro_request_latency_seconds_bucket"]
            if labels["route"] == "multiply"
        ]
        assert buckets[-1][0]["le"] == "+Inf"
        assert buckets[-1][1] == 2

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="not a valid sample"):
            parse_exposition("# TYPE x counter\nx{oops 3\n")

    def test_untyped_sample_rejected(self):
        with pytest.raises(ValueError, match="no TYPE declaration"):
            parse_exposition("mystery_metric 1\n")

    def test_missing_required_metric_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            validate_exposition("# TYPE repro_requests_total counter\n"
                                'repro_requests_total{route="x"} 1\n')

    def test_non_cumulative_histogram_rejected(self):
        text = render_metrics(_sample_stats())
        broken = text.replace(
            'repro_request_latency_seconds_bucket{route="multiply",le="+Inf"} 2',
            'repro_request_latency_seconds_bucket{route="multiply",le="+Inf"} 0',
        )
        with pytest.raises(ValueError):
            validate_exposition(broken)


class TestMultiplyFlops:
    def test_matches_product_count(self, rng):
        a = random_csr(rng, 30, 25, 0.2)
        b = random_csr(rng, 25, 20, 0.2)
        # Reference: the paper's workload sum via the multiply context.
        ctx = MultiplyContext.build(a, b)
        assert multiply_flops(a, b) == int(ctx.row_work.sum())

    def test_zero_for_empty_operand(self, rng):
        a = random_csr(rng, 10, 10, 0.0)
        b = random_csr(rng, 10, 10, 0.3)
        assert multiply_flops(a, b) == 0

    def test_zero_for_shape_mismatch(self, rng):
        a = random_csr(rng, 10, 7, 0.3)
        b = random_csr(rng, 9, 5, 0.3)
        assert multiply_flops(a, b) == 0

    def test_overflow_raises(self):
        # Synthetic CSR-shaped stand-ins: one stored entry in A pointing at
        # a B "row" whose indptr step is astronomically large.
        a = SimpleNamespace(
            shape=(1, 1),
            indptr=np.array([0, 1], dtype=np.int64),
            indices=np.array([0], dtype=np.int64),
        )
        b = SimpleNamespace(
            shape=(1, 1),
            indptr=np.array([0, 1 << 62], dtype=np.int64),
            indices=np.array([0], dtype=np.int64),
        )
        with pytest.raises(OverflowError):
            multiply_flops(a, b)
