"""Tests for B-Gathering (Section IV-C2)."""

import numpy as np
import pytest

from repro.core.gathering import gathering_factor, plan_gathering
from repro.errors import ConfigurationError


class TestFactor:
    def test_paper_example(self):
        """2 effective threads -> factor 16 fills a 32-lane warp."""
        assert gathering_factor(np.array([2]))[0] == 16

    def test_bins(self):
        nb = np.array([1, 2, 3, 4, 5, 8, 9, 16, 17, 32])
        factors = gathering_factor(nb)
        assert list(factors) == [32, 16, 8, 8, 4, 4, 2, 2, 1, 1]

    def test_factor_times_bin_fills_warp(self):
        for nb in range(1, 33):
            f = gathering_factor(np.array([nb]))[0]
            bin_top = 1 << int(np.ceil(np.log2(nb)))
            assert f * bin_top == 32 or (nb > 16 and f == 1)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            gathering_factor(np.array([0]))
        with pytest.raises(ConfigurationError):
            gathering_factor(np.array([33]))


class TestPlan:
    def _plan(self, na, nb):
        na = np.asarray(na, dtype=np.int64)
        nb = np.asarray(nb, dtype=np.int64)
        mask = np.ones(len(na), dtype=bool)
        return plan_gathering(na, nb, mask)

    def test_empty(self):
        plan = plan_gathering(np.zeros(0), np.zeros(0), np.zeros(0, dtype=bool))
        assert plan.n_blocks == 0

    def test_ops_conserved(self):
        na = np.array([3, 5, 2, 7, 1, 9])
        nb = np.array([2, 2, 2, 2, 2, 2])
        plan = self._plan(na, nb)
        assert plan.ops.sum() == (na * nb).sum()

    def test_every_pair_in_exactly_one_group(self):
        rng = np.random.default_rng(1)
        na = rng.integers(1, 50, 300)
        nb = rng.integers(1, 33, 300)
        plan = self._plan(na, nb)
        assert len(plan.group_of_pair) == 300
        assert plan.partitions.sum() == 300

    def test_gathering_factor_respected(self):
        """A combined block never holds more micro-blocks than its factor."""
        rng = np.random.default_rng(2)
        na = rng.integers(1, 20, 500)
        nb = rng.integers(1, 33, 500)
        plan = self._plan(na, nb)
        factors = gathering_factor(nb[np.argsort(gathering_factor(nb), kind="stable")])
        # partition count per group bounded by 32 (factor for nb = 1).
        assert plan.partitions.max() <= 32

    def test_effective_threads_fill_warp(self):
        """Gathering factor-many same-bin micro-blocks pack at most 32 lanes."""
        na = np.full(64, 4)
        nb = np.full(64, 2)  # factor 16, bins of 2 -> 32 lanes
        plan = self._plan(na, nb)
        assert np.all(plan.effective_threads <= 32)
        full_groups = plan.partitions == 16
        assert np.all(plan.effective_threads[full_groups] == 32)

    def test_iters_is_max_partition(self):
        na = np.array([3, 9, 5, 1])
        nb = np.array([2, 2, 2, 2])  # single bin, factor 16 -> one group
        plan = self._plan(na, nb)
        assert plan.n_blocks == 1
        assert plan.iters[0] == 9.0

    def test_17_to_32_not_gathered(self):
        na = np.full(10, 5)
        nb = np.full(10, 20)  # bin (16, 32] -> factor 1
        plan = self._plan(na, nb)
        assert plan.n_blocks == 10
        assert np.all(plan.partitions == 1)

    def test_block_count_reduction(self):
        na = np.full(320, 3)
        nb = np.full(320, 2)  # factor 16
        plan = self._plan(na, nb)
        assert plan.n_blocks == 20
