"""Property-style equivalence: the execution plane must be invisible.

Random synthetic matrices x all seven paper schemes x several pool widths:
every numeric product computed through :mod:`repro.exec` must be
**bit-identical** (indptr, indices, data — exact, not approximate) to the
serial result, including plan-cache recipe replays, and structurally valid
(duplicate-free, sorted).  Engines are module-scoped with ``min_items=0`` so
every kernel truly goes through the pool even on test-size matrices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import exec as rexec
from repro.bench.runner import paper_algorithms
from repro.plan.cache import PlanCache
from repro.sparse.csr import CSRMatrix
from repro.sparse.random import power_law
from repro.spgemm.base import MultiplyContext
from repro.spgemm.expansion import expand_outer_indices, expand_row_indices
from repro.spgemm.merge import plan_merge
from repro.spgemm.rowproduct import RowProductSpGEMM
from repro.spgemm.semiring import MIN_PLUS
from repro.spgemm.session import IterativeSession

from .conftest import random_csr

WORKER_WIDTHS = [2, 4]


@pytest.fixture(scope="module", params=WORKER_WIDTHS)
def engine(request):
    """A live pool of the parametrised width, threshold forced to zero."""
    engine = rexec.ExecEngine(request.param, min_items=0)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def matrices():
    rng = np.random.default_rng(2024)
    return {
        "uniform": random_csr(rng, 70, 70, 0.10),
        "rect": (random_csr(rng, 40, 90, 0.15), random_csr(rng, 90, 25, 0.15)),
        "skewed": power_law(200, 2400, seed=11).to_csr(),
    }


def _assert_bit_identical(serial: CSRMatrix, parallel: CSRMatrix) -> None:
    assert serial.shape == parallel.shape
    np.testing.assert_array_equal(serial.indptr, parallel.indptr)
    np.testing.assert_array_equal(serial.indices, parallel.indices)
    assert serial.data.dtype == parallel.data.dtype
    np.testing.assert_array_equal(serial.data, parallel.data)


class TestSchemeEquivalence:
    @pytest.mark.parametrize("algo_index", range(7))
    def test_square_product_all_schemes(self, engine, matrices, algo_index):
        algo = paper_algorithms()[algo_index]
        for a in (matrices["uniform"], matrices["skewed"]):
            ctx = MultiplyContext.build(a)
            serial = algo.multiply(ctx)
            with rexec.engine_scope(engine):
                parallel = algo.multiply(ctx)
            _assert_bit_identical(serial, parallel)
            parallel.validate()

    def test_rectangular_product(self, engine, matrices):
        a, b = matrices["rect"]
        ctx = MultiplyContext.build(a, b)
        algo = RowProductSpGEMM()
        serial = algo.multiply(ctx)
        with rexec.engine_scope(engine):
            parallel = algo.multiply(ctx)
        _assert_bit_identical(serial, parallel)
        parallel.validate()


class TestPrimitiveEquivalence:
    def test_expand_outer(self, engine, matrices):
        a = matrices["skewed"]
        ctx = MultiplyContext.build(a)
        serial = expand_outer_indices(ctx.a_csc, ctx.b_csr)
        with rexec.engine_scope(engine):
            parallel = expand_outer_indices(ctx.a_csc, ctx.b_csr)
        for s, p in zip(serial, parallel):
            assert s.dtype == p.dtype
            np.testing.assert_array_equal(s, p)
        assert engine.stats.parallel_calls > 0

    def test_expand_row(self, engine, matrices):
        a = matrices["uniform"]
        serial = expand_row_indices(a, a)
        with rexec.engine_scope(engine):
            parallel = expand_row_indices(a, a)
        for s, p in zip(serial, parallel):
            assert s.dtype == p.dtype
            np.testing.assert_array_equal(s, p)

    def test_plan_merge_recipe_and_apply(self, engine, matrices):
        a = matrices["skewed"]
        rows, cols, _, _ = expand_row_indices(a, a)
        serial = plan_merge(rows, cols, (a.n_rows, a.n_cols))
        with rexec.engine_scope(engine):
            parallel = plan_merge(rows, cols, (a.n_rows, a.n_cols))
        assert serial.n_groups == parallel.n_groups
        np.testing.assert_array_equal(serial.order, parallel.order)
        np.testing.assert_array_equal(serial.group, parallel.group)
        np.testing.assert_array_equal(serial.indptr, parallel.indptr)
        np.testing.assert_array_equal(serial.indices, parallel.indices)
        vals = np.random.default_rng(5).standard_normal(len(rows))
        applied_serial = serial.apply(vals)
        with rexec.engine_scope(engine):
            applied_parallel = serial.apply(vals)
        _assert_bit_identical(applied_serial, applied_parallel)


class TestReplayEquivalence:
    def test_plan_cache_replay_matches_serial(self, engine, matrices):
        """A structure-hit replay through the pool is the serial replay."""
        rng = np.random.default_rng(99)
        a = matrices["uniform"]
        algo = RowProductSpGEMM()
        serial_cache, parallel_cache = PlanCache(), PlanCache()
        serial_cache.multiply(algo, a)  # cold fills capture the recipes
        with rexec.engine_scope(engine):
            parallel_cache.multiply(algo, a)
        for _ in range(3):
            fresh = CSRMatrix(
                a.shape, a.indptr.copy(), a.indices.copy(),
                rng.standard_normal(a.nnz),
            )
            serial = serial_cache.multiply(algo, fresh)
            with rexec.engine_scope(engine):
                parallel = parallel_cache.multiply(algo, fresh)
            _assert_bit_identical(serial, parallel)
        assert parallel_cache.stats.numeric_replays >= 3

    def test_session_with_persistent_engine(self, matrices):
        """IterativeSession(exec_workers=N) equals a serial session, bitwise."""
        rng = np.random.default_rng(7)
        a = matrices["uniform"]
        serial_session = IterativeSession(RowProductSpGEMM())
        parallel_session = IterativeSession(RowProductSpGEMM(), exec_workers=2)
        assert parallel_session.exec_engine is not None
        parallel_session.exec_engine.min_items = 0
        try:
            for _ in range(3):
                fresh = CSRMatrix(
                    a.shape, a.indptr.copy(), a.indices.copy(),
                    rng.standard_normal(a.nnz),
                )
                _assert_bit_identical(
                    serial_session.multiply(fresh), parallel_session.multiply(fresh)
                )
        finally:
            parallel_session.close()

    def test_session_semiring_unaffected(self, matrices):
        """An installed engine must not disturb semiring products."""
        a = matrices["uniform"]
        serial_session = IterativeSession(RowProductSpGEMM())
        parallel_session = IterativeSession(RowProductSpGEMM(), exec_workers=2)
        assert parallel_session.exec_engine is not None
        parallel_session.exec_engine.min_items = 0
        try:
            _assert_bit_identical(
                serial_session.semiring_multiply(a, semiring=MIN_PLUS),
                parallel_session.semiring_multiply(a, semiring=MIN_PLUS),
            )
        finally:
            parallel_session.close()


def test_exec_workers_one_is_plain_serial(matrices):
    """exec_workers=1 must not even construct an engine."""
    session = IterativeSession(RowProductSpGEMM(), exec_workers=1)
    try:
        assert session.exec_engine is None
    finally:
        session.close()


@pytest.fixture(scope="module")
def partitioner_engines():
    """One pool per cut discipline, same width, threshold forced to zero."""
    engines = {
        name: rexec.ExecEngine(2, min_items=0, partitioner=name)
        for name in rexec.PARTITIONER_NAMES
    }
    yield engines
    for engine in engines.values():
        engine.close()


class TestPartitionerEquivalence:
    """merge-path and lpt cut differently but must compute identically."""

    @pytest.mark.parametrize("algo_index", range(7))
    def test_all_schemes_identical_across_partitioners(
        self, partitioner_engines, matrices, algo_index
    ):
        algo = paper_algorithms()[algo_index]
        for a in (matrices["uniform"], matrices["skewed"]):
            ctx = MultiplyContext.build(a)
            outputs = {}
            for name, engine in partitioner_engines.items():
                with rexec.engine_scope(engine):
                    outputs[name] = algo.multiply(ctx)
            _assert_bit_identical(outputs["merge-path"], outputs["lpt"])
            outputs["merge-path"].validate()

    def test_partitioners_record_their_name(self, partitioner_engines, matrices):
        a = matrices["skewed"]
        for name, engine in partitioner_engines.items():
            with rexec.engine_scope(engine):
                plan_merge(*expand_row_indices(a, a)[:2], (a.n_rows, a.n_rows))
            assert engine.stats.per_op["merge"]["partitioner"] == name
