"""The kernel-backend layer: registry semantics and bit-identity.

Covers the always-available NumPy reference (parity with the serial spgemm
bodies it was extracted from), the selection-time verification harness (a
corrupted backend must be refused), environment/flag resolution, and — when
numba wheels are installed (CI's dedicated leg) — the full bit-identity
suite for the compiled backend, primitive by primitive and end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.bench.runner import paper_algorithms
from repro.errors import KernelBackendError
from repro.kernels import numpy_backend
from repro.sparse.convert import csr_to_csc
from repro.sparse.random import power_law
from repro.spgemm.base import MultiplyContext
from repro.spgemm.expansion import expand_outer_indices, expand_row_indices
from repro.spgemm.merge import plan_merge

from .conftest import random_csr

NUMBA_MISSING = not kernels.available("numba")


@pytest.fixture(autouse=True)
def _fresh_registry(monkeypatch):
    """Each test resolves backends from a clean slate (no env leakage)."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels._reset()
    yield
    kernels._reset()


@pytest.fixture()
def matrices():
    rng = np.random.default_rng(321)
    a = random_csr(rng, 50, 40, 0.12)
    b = random_csr(rng, 40, 35, 0.15)
    skew = power_law(150, 1800, seed=13).to_csr()
    return a, b, skew


class TestRegistry:
    def test_default_is_numpy(self):
        assert kernels.active_name() == "numpy"
        assert kernels.active().verified

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        kernels._reset()
        assert kernels.active_name() == "numpy"

    def test_env_unknown_backend_raises_lazily(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        kernels._reset()
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            kernels.active()

    def test_unknown_name(self):
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            kernels.get_backend("bogus")

    def test_available(self):
        assert kernels.available("numpy")
        assert not kernels.available("bogus")

    def test_select_installs_process_wide(self):
        backend = kernels.select("numpy")
        assert kernels.active() is backend

    def test_use_scopes_and_restores(self):
        before = kernels.active()
        with kernels.use("numpy") as backend:
            assert kernels.active() is backend
        assert kernels.active() is before

    def test_use_none_is_noop(self):
        with kernels.use(None) as backend:
            assert backend is kernels.active()

    @pytest.mark.skipif(not NUMBA_MISSING, reason="numba installed on this host")
    def test_numba_unavailable_message(self):
        with pytest.raises(KernelBackendError, match="numba is not installed"):
            kernels.get_backend("numba")


class TestVerification:
    def test_reference_verifies_against_itself(self):
        kernels.verify_backend(kernels.NUMPY_BACKEND)

    @pytest.mark.parametrize(
        "primitive",
        [
            "expand_outer_indices",
            "expand_row_indices",
            "merge_symbolic",
            "segmented_sum",
            "gather_multiply_sum",
            "kway_merge",
        ],
    )
    def test_corrupted_backend_is_refused(self, primitive):
        """A backend whose output differs in any primitive must not install."""

        def corrupt(*args, **kwargs):
            good = getattr(numpy_backend, primitive)(*args, **kwargs)
            if isinstance(good, tuple):
                bad = list(good)
                bad[0] = np.asarray(bad[0]).copy()
                bad[0][0] += 1
                return tuple(bad)
            bad = good.copy()
            bad[0] += 1.0
            return bad

        table = {
            name: getattr(numpy_backend, name)
            for name in (
                "expand_outer_indices",
                "expand_row_indices",
                "merge_symbolic",
                "segmented_sum",
                "gather_multiply_sum",
                "kway_merge",
            )
        }
        table[primitive] = corrupt
        backend = kernels.KernelBackend(name="corrupt", **table)
        with pytest.raises(KernelBackendError, match=primitive):
            kernels.verify_backend(backend)


class TestNumpyBackendParity:
    """The extracted reference equals the serial spgemm bodies, bit for bit."""

    def test_expansions_match_spgemm(self, matrices):
        a, b, _ = matrices
        a_csc = csr_to_csc(a)
        ref = expand_outer_indices(a_csc, b)
        got = numpy_backend.expand_outer_indices(
            a_csc.indptr, a_csc.indices, b.indptr, b.indices
        )
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(np.asarray(r), np.asarray(g))
        ref = expand_row_indices(a, b)
        got = numpy_backend.expand_row_indices(
            a.indptr, a.indices, b.indptr, b.indices
        )
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(np.asarray(r), np.asarray(g))

    def test_merge_and_sums_match_spgemm(self, matrices):
        a, b, _ = matrices
        rows, cols, a_idx, b_idx = expand_row_indices(a, b)
        recipe = plan_merge(rows, cols, (a.n_rows, b.n_cols))
        order, group, n_groups, indptr, indices = numpy_backend.merge_symbolic(
            rows, cols, a.n_rows, b.n_cols
        )
        np.testing.assert_array_equal(recipe.order, order)
        np.testing.assert_array_equal(recipe.group, group)
        assert recipe.n_groups == n_groups
        np.testing.assert_array_equal(recipe.indptr, indptr)
        np.testing.assert_array_equal(recipe.indices, indices)

        vals = a.data[a_idx] * b.data[b_idx]
        np.testing.assert_array_equal(
            numpy_backend.segmented_sum(vals, order, group, n_groups),
            recipe.apply(vals).data,
        )
        np.testing.assert_array_equal(
            numpy_backend.gather_multiply_sum(
                a.data, b.data, a_idx[order], b_idx[order], group, n_groups
            ),
            recipe.apply(vals).data,
        )

    def test_empty_stream_merge(self):
        order, group, n_groups, indptr, indices = numpy_backend.merge_symbolic(
            np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64), 3, 3
        )
        assert n_groups == 1
        np.testing.assert_array_equal(indptr, [0, 1, 1, 1])


@pytest.mark.skipif(NUMBA_MISSING, reason="numba wheels not installed")
class TestNumbaBackend:
    """The compiled backend's bit-identity suite (CI's dedicated leg)."""

    def test_selection_verifies(self):
        backend = kernels.select("numba")
        assert backend.name == "numba"
        assert backend.verified

    def test_primitive_parity(self, matrices):
        a, b, skew = matrices
        ref = kernels.NUMPY_BACKEND
        cand = kernels.get_backend("numba")
        for left, right in ((a, b), (skew, skew)):
            left_csc = csr_to_csc(left)
            got = cand.expand_outer_indices(
                left_csc.indptr, left_csc.indices, right.indptr, right.indices
            )
            want = ref.expand_outer_indices(
                left_csc.indptr, left_csc.indices, right.indptr, right.indices
            )
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)
            got = cand.expand_row_indices(
                left.indptr, left.indices, right.indptr, right.indices
            )
            want = ref.expand_row_indices(
                left.indptr, left.indices, right.indptr, right.indices
            )
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)
            rows, cols, a_idx, b_idx = want
            gm = cand.merge_symbolic(rows, cols, left.n_rows, right.n_cols)
            wm = ref.merge_symbolic(rows, cols, left.n_rows, right.n_cols)
            for g, w in zip(gm, wm):
                np.testing.assert_array_equal(np.asarray(g), np.asarray(w))
            order, group, n_groups = wm[0], wm[1], wm[2]
            vals = left.data[a_idx] * right.data[b_idx]
            np.testing.assert_array_equal(
                cand.segmented_sum(vals, order, group, n_groups),
                ref.segmented_sum(vals, order, group, n_groups),
            )
            np.testing.assert_array_equal(
                cand.gather_multiply_sum(
                    left.data, right.data, a_idx[order], b_idx[order], group, n_groups
                ),
                ref.gather_multiply_sum(
                    left.data, right.data, a_idx[order], b_idx[order], group, n_groups
                ),
            )

    @pytest.mark.parametrize("algo_index", range(7))
    def test_all_schemes_bit_identical(self, matrices, algo_index):
        """Every paper scheme produces byte-identical CSR under numba."""
        _, _, skew = matrices
        ctx = MultiplyContext.build(skew)
        algo = paper_algorithms()[algo_index]
        serial = algo.multiply(ctx)
        with kernels.use("numba"):
            compiled = algo.multiply(MultiplyContext.build(skew))
        assert serial.shape == compiled.shape
        np.testing.assert_array_equal(serial.indptr, compiled.indptr)
        np.testing.assert_array_equal(serial.indices, compiled.indices)
        np.testing.assert_array_equal(serial.data, compiled.data)
