"""Tests for degree statistics and skewness diagnostics."""

import numpy as np
import pytest

from repro.sparse.stats import degree_stats, gini, is_skewed, top_share


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_near_one(self):
        values = np.zeros(1000)
        values[0] = 1000.0
        assert gini(values) > 0.99

    def test_empty(self):
        assert gini(np.zeros(0)) == 0.0

    def test_all_zero(self):
        assert gini(np.zeros(10)) == 0.0

    def test_invariant_to_scaling(self, rng):
        v = rng.random(200)
        assert gini(v) == pytest.approx(gini(v * 42.0))

    def test_known_value_two_point(self):
        # one holder of everything among two -> gini = 1/2 for n=2.
        assert gini(np.array([0.0, 1.0])) == pytest.approx(0.5)


class TestTopShare:
    def test_uniform(self):
        assert top_share(np.ones(100), 0.01) == pytest.approx(0.01)

    def test_single_hub(self):
        v = np.ones(100)
        v[0] = 100.0
        assert top_share(v, 0.01) == pytest.approx(100.0 / 199.0)

    def test_empty(self):
        assert top_share(np.zeros(0)) == 0.0


class TestDegreeStats:
    def test_fields(self):
        st = degree_stats(np.array([0, 1, 2, 3, 4]))
        assert st.n == 5
        assert st.nnz == 10
        assert st.mean == pytest.approx(2.0)
        assert st.max == 4
        assert st.zero_fraction == pytest.approx(0.2)

    def test_regular_not_skewed(self, regular_csr):
        assert not degree_stats(regular_csr.row_nnz()).skewed

    def test_power_law_skewed(self, skewed_csr):
        assert degree_stats(skewed_csr.row_nnz()).skewed

    def test_empty_degrees(self):
        st = degree_stats(np.zeros(0, dtype=np.int64))
        assert st.n == 0 and st.nnz == 0 and st.max == 0

    def test_is_skewed_wrappers(self, regular_csr, skewed_csr):
        assert is_skewed(skewed_csr)
        assert not is_skewed(regular_csr)

    def test_frozen(self):
        st = degree_stats(np.array([1, 2]))
        with pytest.raises(AttributeError):
            st.n = 7
