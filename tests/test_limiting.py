"""Tests for B-Limiting (Section IV-D)."""

import numpy as np
import pytest

from repro.core.limiting import LIMIT_SMEM_STEP, limited_row_mask, limiting_smem_bytes
from repro.errors import ConfigurationError
from repro.gpusim.config import TITAN_XP
from repro.gpusim.occupancy import resident_blocks_per_sm


class TestRowMask:
    def test_heavy_rows_selected(self):
        work = np.concatenate([np.full(1000, 10), [100_000]])
        mask = limited_row_mask(work, beta=10.0)
        assert mask[-1]
        assert mask.sum() < 20

    def test_empty_rows_never_selected(self):
        work = np.array([0, 0, 100])
        mask = limited_row_mask(work)
        assert not mask[0] and not mask[1]

    def test_all_zero(self):
        assert not limited_row_mask(np.zeros(5, np.int64)).any()

    def test_beta_selectivity(self):
        rng = np.random.default_rng(3)
        work = (rng.pareto(1.2, 5000) * 50).astype(np.int64) + 1
        few = limited_row_mask(work, beta=1.0)   # high threshold
        many = limited_row_mask(work, beta=100.0)  # low threshold
        assert few.sum() <= many.sum()

    def test_invalid_beta(self):
        with pytest.raises(ConfigurationError):
            limited_row_mask(np.array([1]), beta=0.0)


class TestSmem:
    def test_step_size_matches_paper(self):
        assert LIMIT_SMEM_STEP == 6144

    def test_paper_default_allocation(self):
        """The paper fixes the limiting factor at 4 => 4 x 6144 extra bytes."""
        out = limiting_smem_bytes(4096, 4, TITAN_XP.smem_per_sm)
        assert out == 4096 + 4 * 6144

    def test_clamped_to_sm_capacity(self):
        out = limiting_smem_bytes(4096, 1000, TITAN_XP.smem_per_sm)
        assert out == TITAN_XP.smem_per_sm

    def test_zero_factor_identity(self):
        assert limiting_smem_bytes(4096, 0, TITAN_XP.smem_per_sm) == 4096

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            limiting_smem_bytes(4096, -1, TITAN_XP.smem_per_sm)

    def test_limiting_actually_reduces_residency(self):
        """The whole point: extra shared memory caps co-resident blocks."""
        base = resident_blocks_per_sm(TITAN_XP, 256, 4096)
        limited = resident_blocks_per_sm(
            TITAN_XP, 256, limiting_smem_bytes(4096, 4, TITAN_XP.smem_per_sm)
        )
        assert limited < base
