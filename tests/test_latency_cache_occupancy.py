"""Tests for latency hiding, the cache model and occupancy rules."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.block import BlockArrayBuilder
from repro.gpusim.cache import build_memory_model
from repro.gpusim.config import TITAN_XP
from repro.gpusim.costs import DEFAULT_COSTS
from repro.gpusim.latency import exposed_latency
from repro.gpusim.occupancy import phase_residency, resident_blocks_per_sm


class TestLatency:
    def test_single_warp_sees_full_latency(self):
        assert exposed_latency(400.0, 4.0, 1.0) == pytest.approx(400.0)

    def test_deep_pool_hides_everything(self):
        assert exposed_latency(400.0, 4.0, 256.0) == pytest.approx(0.0, abs=2.0)

    def test_monotone_in_pool(self):
        vals = [exposed_latency(400.0, 4.0, w) for w in (1, 2, 4, 8, 16, 32)]
        assert all(b <= a for a, b in zip(vals, vals[1:]))

    def test_never_negative(self):
        assert exposed_latency(10.0, 100.0, 50.0) == 0.0


class TestOccupancy:
    def test_thread_limit(self):
        assert resident_blocks_per_sm(TITAN_XP, 256, 0) == 8

    def test_block_cap(self):
        assert resident_blocks_per_sm(TITAN_XP, 32, 0) == 32

    def test_smem_limit(self):
        # 24KB blocks: 96KB/24KB = 4 co-resident.
        assert resident_blocks_per_sm(TITAN_XP, 32, 24 * 1024) == 4

    def test_oversized_block_still_runs(self):
        assert resident_blocks_per_sm(TITAN_XP, 4096, 200 * 1024) == 1

    def test_invalid_threads(self):
        with pytest.raises(SimulationError):
            resident_blocks_per_sm(TITAN_XP, 0, 0)

    def test_phase_residency_empty(self):
        b = BlockArrayBuilder().build()
        assert phase_residency(TITAN_XP, b) == 1


def _blocks(ws, reuse=1000.0, unique=500.0, write=200.0, trans=10.0, n=4):
    b = BlockArrayBuilder()
    b.add_blocks(
        threads=256,
        effective_threads=np.full(n, 256),
        iters=np.full(n, 10.0),
        ops=np.full(n, 2560),
        unique_bytes=np.full(n, unique),
        reuse_bytes=np.full(n, reuse),
        write_bytes=np.full(n, write),
        working_set=np.full(n, ws),
        transactions=np.full(n, trans),
    )
    return b.build()


class TestCacheModel:
    def test_small_working_set_hits_l1(self):
        blocks = _blocks(ws=512.0)
        mem = build_memory_model(TITAN_XP, DEFAULT_COSTS, blocks, np.full(4, 8))
        assert mem.l1_hit[0] == pytest.approx(1.0)
        # Reuse traffic never reaches DRAM.
        assert mem.dram_bytes[0] <= 500.0 + 200.0 + 10.0 * 32

    def test_huge_working_set_misses(self):
        blocks = _blocks(ws=10e6)
        mem = build_memory_model(TITAN_XP, DEFAULT_COSTS, blocks, np.full(4, 8))
        assert mem.l1_hit[0] < 0.01
        assert mem.l2_hit[0] < 0.01
        assert mem.dram_bytes[0] >= 500.0 + 200.0 + 1000.0 * 0.9

    def test_residency_increases_pressure(self):
        blocks = _blocks(ws=30_000.0)
        low = build_memory_model(TITAN_XP, DEFAULT_COSTS, blocks, np.full(4, 2))
        high = build_memory_model(TITAN_XP, DEFAULT_COSTS, blocks, np.full(4, 16))
        assert low.l2_hit[0] > high.l2_hit[0]
        assert low.dram_bytes[0] <= high.dram_bytes[0]

    def test_effective_latency_between_l2_and_dram(self):
        blocks = _blocks(ws=30_000.0)
        mem = build_memory_model(TITAN_XP, DEFAULT_COSTS, blocks, np.full(4, 8))
        assert 0 < mem.effective_latency[0] <= DEFAULT_COSTS.mem_latency

    def test_transaction_floor_applies_to_dram_share(self):
        # All traffic unique (DRAM): the sector floor binds fully.
        blocks = _blocks(ws=10e6, reuse=0.0, unique=10.0, write=0.0, trans=100.0)
        mem = build_memory_model(TITAN_XP, DEFAULT_COSTS, blocks, np.full(4, 8))
        assert mem.dram_bytes[0] == pytest.approx(100.0 * 32, rel=0.01)

    def test_empty_blocks(self):
        b = BlockArrayBuilder().build()
        mem = build_memory_model(TITAN_XP, DEFAULT_COSTS, b, np.zeros(0))
        assert len(mem.dram_bytes) == 0
