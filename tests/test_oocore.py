"""Out-of-core chunked executor: budgets, panels, spills, bit-identity.

The load-bearing guarantee is that :func:`repro.oocore.chunked_multiply`
is *bit-identical* to the in-memory path on every scheme — row panels of A
produce disjoint row slices of C, each panel's product stream is the full
stream's restriction in the same relative order, and the merge tree only
concatenates coalesced groups with globally disjoint keys.  These tests
assert that end to end (tiny budgets forcing real panel splits and real
disk spills), plus the supporting pieces: budget parsing, the greedy panel
planner, the crash-safe spill store (including the SIGTERM-mid-spill leak
check mirroring the exec plane's /dev/shm test), the ``kway_merge`` kernel
primitive, the ``@full`` catalog derivation and the runtime/CLI wiring.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.bench.runner import paper_algorithms
from repro.datasets.catalog import (
    FULL_SCALE_SUFFIX,
    full_scale_spec,
    get_spec,
    list_names,
)
from repro.errors import ConfigurationError, DatasetError, OutOfCoreError
from repro.kernels import active as active_kernels
from repro.oocore import (
    BYTES_PER_PRODUCT,
    OocStats,
    SpillStore,
    chunked_multiply,
    parse_mem_budget,
    plan_panels,
    products_for_budget,
    slice_rows,
    sweep_stale,
)
from repro.oocore.spill import SPILL_PREFIX
from repro.plan.estimate import row_flops
from repro.runtime import Runtime, RuntimeConfig
from repro.sparse.csr import CSRMatrix
from repro.spgemm.base import MultiplyContext
from repro.spgemm.rowproduct import RowProductSpGEMM
from repro.spgemm.session import IterativeSession


def _random_csr(rng, n_rows=80, n_cols=80, density=0.08) -> CSRMatrix:
    dense = (rng.random((n_rows, n_cols)) < density) * rng.random((n_rows, n_cols))
    dense[n_rows // 3, :] = 0.0  # an empty row exercises zero-product panels
    return CSRMatrix.from_dense(dense)


def _assert_identical(chunked: CSRMatrix, reference: CSRMatrix) -> None:
    assert chunked.shape == reference.shape
    assert np.array_equal(chunked.indptr, reference.indptr)
    assert np.array_equal(chunked.indices, reference.indices)
    assert np.array_equal(chunked.data, reference.data)


class TestParseMemBudget:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("64", 64),
            ("64B", 64),
            ("4K", 4 << 10),
            ("4KB", 4 << 10),
            ("512M", 512 << 20),
            ("2G", 2 << 30),
            ("1T", 1 << 40),
            ("1.5K", 1536),
            ("  8m ", 8 << 20),  # whitespace and case both tolerated
        ],
    )
    def test_spellings(self, text, expected):
        assert parse_mem_budget(text) == expected

    def test_int_passes_through_as_bytes(self):
        assert parse_mem_budget(4096) == 4096

    @pytest.mark.parametrize("bad", ["", "abc", "4X", "-5", "G4", "4 G B"])
    def test_unparseable_raises(self, bad):
        with pytest.raises(OutOfCoreError, match="unparseable"):
            parse_mem_budget(bad)

    @pytest.mark.parametrize("bad", ["0", "0K", 0, -1])
    def test_non_positive_raises(self, bad):
        with pytest.raises(OutOfCoreError, match="positive"):
            parse_mem_budget(bad)

    def test_products_for_budget(self):
        assert products_for_budget(BYTES_PER_PRODUCT) == 1
        assert products_for_budget(10 * BYTES_PER_PRODUCT) == 10
        assert products_for_budget(1) == 1  # floor of one product


class TestPlanPanels:
    def test_unbounded_budget_gives_one_panel(self, rng):
        a = _random_csr(rng)
        panels = plan_panels(a, a, max_products=1 << 60)
        assert len(panels) == 1
        assert (panels[0].row_start, panels[0].row_stop) == (0, a.n_rows)
        assert not panels[0].oversized
        assert panels[0].products == int(row_flops(a, a).sum())

    def test_panels_partition_rows_in_order(self, rng):
        a = _random_csr(rng)
        work = row_flops(a, a)
        panels = plan_panels(a, a, max_products=int(work.sum()) // 7 + 1)
        assert len(panels) > 1
        assert panels[0].row_start == 0
        assert panels[-1].row_stop == a.n_rows
        for prev, cur in zip(panels, panels[1:]):
            assert prev.row_stop == cur.row_start  # contiguous, no gaps
        assert [p.index for p in panels] == list(range(len(panels)))
        assert sum(p.products for p in panels) == int(work.sum())

    def test_oversized_rows_become_flagged_singletons(self, rng):
        a = _random_csr(rng)
        panels = plan_panels(a, a, max_products=1)
        work = row_flops(a, a)
        for p in panels:
            if p.oversized:
                assert p.n_rows == 1  # never splits a row, flags it instead
                assert p.products > 1
        assert sum(p.oversized for p in panels) == int((work > 1).sum())

    def test_empty_matrix_yields_one_empty_panel(self):
        a = CSRMatrix(
            (0, 5),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        b = CSRMatrix(
            (5, 5),
            np.zeros(6, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        panels = plan_panels(a, b, max_products=10)
        assert len(panels) == 1
        assert panels[0].n_rows == 0
        assert panels[0].products == 0

    def test_bad_budget_raises(self, rng):
        a = _random_csr(rng)
        with pytest.raises(ValueError, match="max_products"):
            plan_panels(a, a, max_products=0)

    def test_slice_rows_matches_dense_slice(self, rng):
        a = _random_csr(rng, n_rows=20, n_cols=13)
        dense = a.to_dense()
        panel = slice_rows(a, 5, 12)
        assert panel.shape == (7, 13)
        assert np.array_equal(panel.to_dense(), dense[5:12])
        # Copied arrays: mutating the slice must not alias the parent.
        if panel.data.size:
            panel.data[0] += 1.0
            assert np.array_equal(a.to_dense(), dense)


class TestSpillStore:
    def test_roundtrip_and_content_addressing(self, tmp_path):
        keys = np.array([3, 7, 7, 9], dtype=np.int64)
        vals = np.array([1.0, 2.5, -2.5, 0.0])
        with SpillStore(tmp_path) as store:
            ticket = store.spill(keys, vals)
            again = store.spill(keys, vals)
            assert ticket == again  # identical payload, one file
            assert store.spill_count == 2
            got_keys, got_vals = store.read(ticket)
            assert np.array_equal(got_keys, keys)
            assert np.array_equal(got_vals, vals)
            assert len(list(store.path.glob("*.npz"))) == 1

    def test_read_verifies_digest(self, tmp_path):
        store = SpillStore(tmp_path)
        try:
            ticket = store.spill(
                np.array([1], dtype=np.int64), np.array([1.0])
            )
            target = store.path / f"{ticket}.npz"
            target.write_bytes(target.read_bytes() + b"x")
            with pytest.raises(OutOfCoreError, match="content check"):
                store.read(ticket)
        finally:
            store.close()

    def test_close_removes_directory_idempotently(self, tmp_path):
        store = SpillStore(tmp_path)
        spill_dir = store.path
        store.spill(np.array([1], dtype=np.int64), np.array([1.0]))
        assert spill_dir.is_dir()
        store.close()
        store.close()
        assert not spill_dir.exists()
        with pytest.raises(OutOfCoreError, match="closed"):
            store.spill(np.array([1], dtype=np.int64), np.array([1.0]))

    def test_sweep_stale_reclaims_dead_pid_dirs_only(self, tmp_path):
        # An orphan from a "dead" process: pid far beyond pid_max.
        dead = tmp_path / f"{SPILL_PREFIX}-99999999-deadbeef"
        dead.mkdir()
        alive = tmp_path / f"{SPILL_PREFIX}-{os.getpid()}-cafecafe"
        alive.mkdir()
        unrelated = tmp_path / "somebody-elses-dir"
        unrelated.mkdir()
        unparseable = tmp_path / f"{SPILL_PREFIX}-notapid-x"
        unparseable.mkdir()
        removed = sweep_stale(tmp_path)
        assert removed == [dead.name]
        assert not dead.exists()
        assert alive.is_dir() and unrelated.is_dir() and unparseable.is_dir()

    def test_new_store_sweeps_its_base(self, tmp_path):
        orphan = tmp_path / f"{SPILL_PREFIX}-99999999-feedface"
        orphan.mkdir()
        with SpillStore(tmp_path) as store:
            assert store.swept_stale == [orphan.name]
        assert not orphan.exists()

    def test_unwritable_base_raises(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory write bits")
        locked = tmp_path / "locked"
        locked.mkdir(mode=0o555)
        with pytest.raises(OutOfCoreError, match="not writable"):
            SpillStore(locked)


class TestKwayMerge:
    def test_merges_and_sums_duplicates(self):
        kernels = active_kernels()
        # Two ascending streams with overlapping keys.
        keys = np.array([1, 4, 9, 2, 4, 9], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 10.0, 20.0, 30.0])
        starts = np.array([0, 3, 6], dtype=np.int64)
        out_keys, out_vals = kernels.kway_merge(keys, vals, starts)
        assert np.array_equal(out_keys, [1, 2, 4, 9])
        assert np.array_equal(out_vals, [1.0, 10.0, 22.0, 33.0])

    def test_empty_input(self):
        kernels = active_kernels()
        out_keys, out_vals = kernels.kway_merge(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.zeros(1, dtype=np.int64),
        )
        assert out_keys.size == 0 and out_vals.size == 0

    def test_sums_in_stream_order(self):
        # Float addition is order-sensitive; the contract is (key, stream,
        # position) order — the same left fold a stable argsort produces.
        kernels = active_kernels()
        vals = np.array([1e16, 1.0, 1.0])
        keys = np.array([5, 5, 5], dtype=np.int64)
        starts = np.array([0, 1, 2, 3], dtype=np.int64)
        _, out_vals = kernels.kway_merge(keys, vals, starts)
        assert out_vals[0] == ((1e16 + 1.0) + 1.0)  # not 1e16 + (1+1)


class TestChunkedMultiply:
    def test_bit_identical_on_every_scheme_with_spills(self, rng, tmp_path):
        a = _random_csr(rng)
        ctx = MultiplyContext.build(a, a)
        for algo in paper_algorithms():
            reference = algo.multiply(ctx)
            chunked, stats = chunked_multiply(
                algo, a, mem_budget="4K", spill_dir=str(tmp_path)
            )
            _assert_identical(chunked, reference)
            assert stats.n_panels > 1, algo.name
            assert stats.spill_count >= 1, algo.name
            assert stats.merge_rounds >= 1, algo.name
        # Every store closed behind itself: base dir left empty.
        assert list(tmp_path.iterdir()) == []

    def test_large_budget_single_panel_no_spill(self, rng, tmp_path):
        a = _random_csr(rng)
        algo = RowProductSpGEMM()
        reference = algo.multiply(MultiplyContext.build(a, a))
        chunked, stats = chunked_multiply(
            algo, a, mem_budget="1G", spill_dir=str(tmp_path)
        )
        _assert_identical(chunked, reference)
        assert stats.n_panels == 1
        assert stats.spill_count == 0
        assert stats.bytes_spilled == 0
        assert list(tmp_path.iterdir()) == []  # store never created

    def test_stats_counters(self, rng, tmp_path):
        a = _random_csr(rng)
        _, stats = chunked_multiply(
            RowProductSpGEMM(), a, mem_budget="4K", spill_dir=str(tmp_path)
        )
        assert stats.budget_bytes == 4 << 10
        assert stats.max_products == (4 << 10) // BYTES_PER_PRODUCT
        assert stats.total_products == int(row_flops(a, a).sum())
        assert stats.resident_peak_bytes > 0
        assert stats.peak_rss_bytes > 0
        assert stats.bytes_spilled > 0
        d = stats.as_dict()
        assert d["panel_rows"][0][0] == 0
        assert d["panel_rows"][-1][1] == a.n_rows
        assert d["spill_count"] == stats.spill_count

    def test_rectangular_a_times_b(self, rng, tmp_path):
        dense_a = (rng.random((40, 25)) < 0.15) * rng.random((40, 25))
        dense_b = (rng.random((25, 31)) < 0.15) * rng.random((25, 31))
        a, b = CSRMatrix.from_dense(dense_a), CSRMatrix.from_dense(dense_b)
        algo = RowProductSpGEMM()
        reference = algo.multiply(MultiplyContext.build(a, b))
        chunked, stats = chunked_multiply(
            algo, a, b, mem_budget="2K", spill_dir=str(tmp_path)
        )
        _assert_identical(chunked, reference)
        assert stats.n_panels > 1

    def test_all_zero_matrix(self):
        a = CSRMatrix(
            (6, 6),
            np.zeros(7, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        chunked, stats = chunked_multiply(RowProductSpGEMM(), a, mem_budget="1K")
        assert chunked.nnz == 0
        assert chunked.shape == (6, 6)
        assert np.array_equal(chunked.indptr, np.zeros(7, dtype=np.int64))
        assert stats.spill_count == 0

    def test_bad_arguments_raise(self, rng):
        a = _random_csr(rng, n_rows=10, n_cols=10)
        with pytest.raises(OutOfCoreError):
            chunked_multiply(RowProductSpGEMM(), a, mem_budget="nonsense")
        with pytest.raises(ValueError, match="fan_in"):
            chunked_multiply(RowProductSpGEMM(), a, mem_budget="1M", fan_in=1)

    def test_oocstats_is_jsonable(self):
        import json

        stats = OocStats(budget_bytes=1024, max_products=21)
        json.dumps(stats.as_dict())  # must not raise


class TestFullScaleCatalog:
    def test_full_scale_rescales_to_paper_dim(self):
        base = get_spec("loc_gowalla")
        full = get_spec("loc_gowalla" + FULL_SCALE_SUFFIX)
        assert full.name == "loc_gowalla@full"
        assert full.params["n"] == base.paper_dim
        assert full.seed == base.seed
        assert full_scale_spec("loc_gowalla") is full  # cached

    def test_full_scale_never_listed(self):
        assert not any(FULL_SCALE_SUFFIX in name for name in list_names(None))

    def test_synthetic_families_refuse_full_scale(self):
        with pytest.raises(DatasetError):
            get_spec("s1" + FULL_SCALE_SUFFIX)

    def test_unknown_base_raises(self):
        with pytest.raises(DatasetError):
            get_spec("no_such_dataset" + FULL_SCALE_SUFFIX)


class TestRuntimeWiring:
    def test_config_from_cli_args(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run",
                "harbor",
                "--mem-budget",
                "4M",
                "--spill-dir",
                str(tmp_path),
                "--full-scale",
            ]
        )
        config = RuntimeConfig.from_args(args)
        assert config.mem_budget == 4 << 20
        assert config.spill_dir == str(tmp_path)
        assert config.full_scale is True

    def test_flags_registered_on_all_chunkable_commands(self):
        from repro.cli import OOCORE_FLAGS, build_parser

        parser = build_parser()
        for command in ("run", "compare", "bench"):
            argv = [command, "harbor"]
            for flag in OOCORE_FLAGS:
                argv += [flag, "1M"] if flag != "--full-scale" else [flag]
            args = parser.parse_args(argv)
            assert args.mem_budget == "1M"

    def test_config_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError, match="mem_budget"):
            RuntimeConfig(mem_budget=0)

    def test_runtime_multiply_routes_through_chunked(self, rng, tmp_path):
        a = _random_csr(rng)
        reference = RowProductSpGEMM().multiply(MultiplyContext.build(a, a))
        with Runtime(
            RuntimeConfig(mem_budget=4 << 10, spill_dir=str(tmp_path))
        ) as rt:
            outcome = rt.multiply("row-product", a, a)
            _assert_identical(outcome.result, reference)
            assert outcome.replayed is False
            stats = rt.ooc_stats()
            assert stats is not None and stats.spill_count >= 1
        assert list(tmp_path.iterdir()) == []

    def test_resolve_dataset_appends_full_suffix(self):
        with Runtime(RuntimeConfig(full_scale=True)) as rt:
            assert rt.resolve_dataset("harbor") == "harbor" + FULL_SCALE_SUFFIX
        with Runtime(RuntimeConfig()) as rt:
            assert rt.resolve_dataset("harbor") == "harbor"

    def test_session_multiply_chunked(self, rng, tmp_path):
        a = _random_csr(rng)
        session = IterativeSession(RowProductSpGEMM())
        reference = session.multiply(a, a)
        chunked, stats = session.multiply_chunked(
            a, a, mem_budget="4K", spill_dir=str(tmp_path)
        )
        _assert_identical(chunked, reference)
        assert stats.n_panels > 1
        # The plan cache is bypassed: chunked runs add no cached structures.
        assert session.cache.stats.lowers == 1


_SPILL_SIGTERM_SCRIPT = """
import sys
import numpy as np
from repro.oocore.spill import SpillStore

store = SpillStore(sys.argv[1])
store.spill(np.arange(1000, dtype=np.int64), np.ones(1000))
print("ready", flush=True)
import time
time.sleep(60)
"""


class TestSpillLifecycle:
    def test_sigterm_mid_spill_leaves_no_temp_files(self, tmp_path):
        """Satellite: SIGTERM with spilled partials on disk leaks nothing."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", _SPILL_SIGTERM_SCRIPT, str(tmp_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready", proc.stderr.read()
            live = list(tmp_path.glob(f"{SPILL_PREFIX}-*"))
            assert live, "store should have created its spill directory"
            assert list(live[0].glob("*.npz")), "partial should be on disk"
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=10)
        assert code == -signal.SIGTERM  # conventional signal death, post-sweep
        leaked = list(tmp_path.glob(f"{SPILL_PREFIX}-*"))
        assert not leaked, f"leaked spill dirs: {leaked}"
