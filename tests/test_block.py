"""Tests for thread-block descriptors (BlockArray)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.block import BlockArray, BlockArrayBuilder, concatenate


def _family(n, threads=64, eff=10, iters=3.0, ops=30):
    b = BlockArrayBuilder()
    b.add_blocks(
        threads=threads,
        effective_threads=np.full(n, eff),
        iters=np.full(n, iters),
        ops=np.full(n, ops),
        unique_bytes=np.full(n, 100.0),
        reuse_bytes=np.full(n, 50.0),
        write_bytes=np.full(n, 200.0),
        working_set=np.full(n, 100.0),
        transactions=np.full(n, 5.0),
    )
    return b.build()


class TestBuilder:
    def test_empty_build(self):
        assert len(BlockArrayBuilder().build()) == 0

    def test_scalar_broadcast(self):
        blocks = _family(4)
        assert np.all(blocks.threads == 64)
        assert len(blocks) == 4

    def test_multiple_families_concatenate_in_order(self):
        b = BlockArrayBuilder()
        b.add_blocks(threads=32, effective_threads=np.array([1, 2]),
                     iters=np.array([1.0, 1.0]), ops=np.array([1, 2]),
                     unique_bytes=np.array([1.0, 1.0]))
        b.add_blocks(threads=256, effective_threads=np.array([100]),
                     iters=np.array([9.0]), ops=np.array([900]),
                     unique_bytes=np.array([9.0]))
        blocks = b.build()
        assert list(blocks.threads) == [32, 32, 256]

    def test_empty_family_skipped(self):
        b = BlockArrayBuilder()
        b.add_blocks(threads=32, effective_threads=np.zeros(0, np.int64),
                     iters=np.zeros(0), ops=np.zeros(0, np.int64),
                     unique_bytes=np.zeros(0))
        assert len(b.build()) == 0

    def test_defaults_zero(self):
        b = BlockArrayBuilder()
        b.add_blocks(threads=32, effective_threads=np.array([4]),
                     iters=np.array([1.0]), ops=np.array([4]),
                     unique_bytes=np.array([48.0]))
        blocks = b.build()
        assert blocks.atomics[0] == 0
        assert blocks.collisions[0] == 0


class TestBlockArray:
    def test_column_length_check(self):
        with pytest.raises(SimulationError, match="length"):
            BlockArray(
                np.array([32]), np.array([1, 2]), np.array([1.0]), np.array([1]),
                np.array([1.0]), np.array([0.0]), np.array([0.0]), np.array([0]),
                np.array([1.0]), np.array([0]), np.array([0]), np.array([0.0]),
            )

    def test_warps(self):
        blocks = _family(1, threads=33)
        assert blocks.warps[0] == 2

    def test_total_ops(self):
        assert _family(5, ops=7).total_ops == 35

    def test_lane_utilization_full(self):
        # 32 effective threads of 32, ops == warps*32*iters -> utilization 1.
        b = BlockArrayBuilder()
        b.add_blocks(threads=32, effective_threads=np.array([32]),
                     iters=np.array([4.0]), ops=np.array([128]),
                     unique_bytes=np.array([1.0]))
        assert b.build().lane_utilization()[0] == pytest.approx(1.0)

    def test_lane_utilization_underloaded(self):
        # 2 of 32 lanes busy -> 1/16 utilization.
        b = BlockArrayBuilder()
        b.add_blocks(threads=32, effective_threads=np.array([2]),
                     iters=np.array([4.0]), ops=np.array([8]),
                     unique_bytes=np.array([1.0]))
        assert b.build().lane_utilization()[0] == pytest.approx(1 / 16)

    def test_select(self):
        blocks = _family(6)
        mask = np.array([True, False, True, False, False, True])
        assert len(blocks.select(mask)) == 3

    def test_concatenate(self):
        out = concatenate([_family(2), _family(3)])
        assert len(out) == 5

    def test_concatenate_skips_empty(self):
        out = concatenate([BlockArray.empty(), _family(2)])
        assert len(out) == 2

    def test_concatenate_all_empty(self):
        assert len(concatenate([BlockArray.empty()])) == 0
