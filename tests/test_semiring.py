"""Semiring spGEMM tests, including the shortest-paths application."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.apps import k_hop_shortest_paths, single_source_distances
from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.spgemm.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    semiring_spgemm,
)
from tests.test_properties import sparse_matrices


class TestPlusTimes:
    def test_matches_ordinary_product(self, square_csr):
        c = semiring_spgemm(square_csr, semiring=PLUS_TIMES)
        dense = square_csr.to_dense()
        assert np.allclose(c.to_dense(), dense @ dense)

    @given(sparse_matrices())
    @settings(max_examples=30, deadline=None)
    def test_property_matches_dense(self, coo):
        a = coo.to_csr()
        c = semiring_spgemm(a)
        assert np.allclose(c.to_dense(), a.to_dense() @ a.to_dense(), atol=1e-9)


class TestOrAnd:
    def test_boolean_reachability(self):
        d = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float)
        a = CSRMatrix.from_dense(d)
        c = semiring_spgemm(a, semiring=OR_AND)
        # Only 0 -> 2 is reachable in exactly two steps.
        expected = np.zeros((3, 3))
        expected[0, 2] = 1.0
        assert np.allclose(c.to_dense(), expected)

    def test_values_are_binary(self, square_csr):
        c = semiring_spgemm(square_csr, semiring=OR_AND)
        assert set(np.unique(c.data)).issubset({1.0})

    def test_weights_ignored(self):
        d = np.array([[0.0, 7.5], [3.25, 0.0]])
        a = CSRMatrix.from_dense(d)
        c = semiring_spgemm(a, semiring=OR_AND).to_dense()
        assert c[0, 0] == 1.0 and c[1, 1] == 1.0


class TestMinPlus:
    def test_two_leg_costs(self):
        d = np.array([[0, 2, 0], [0, 0, 3], [0, 0, 0]], dtype=float)
        a = CSRMatrix.from_dense(d)
        c = semiring_spgemm(a, semiring=MIN_PLUS).to_dense()
        # inf-identity entries are dropped; stored 0->2 cost is 5.
        assert c[0, 2] == 5.0

    def test_picks_cheaper_path(self):
        # 0 -> 2 via 1 costs 2 + 1; via 3 costs 1 + 1.5.
        d = np.zeros((4, 4))
        d[0, 1], d[1, 2] = 2.0, 1.0
        d[0, 3], d[3, 2] = 1.0, 1.5
        c = semiring_spgemm(CSRMatrix.from_dense(d), semiring=MIN_PLUS).to_dense()
        assert c[0, 2] == pytest.approx(2.5)


class TestMaxTimes:
    def test_most_reliable_two_hop(self):
        d = np.zeros((3, 3))
        d[0, 1], d[1, 2] = 0.5, 0.5  # reliability 0.25
        d[0, 2] = 0.0  # no direct edge
        c = semiring_spgemm(CSRMatrix.from_dense(d), semiring=MAX_TIMES).to_dense()
        assert c[0, 2] == pytest.approx(0.25)


class TestSemiringClass:
    def test_bad_reduce_rejected(self):
        with pytest.raises(ConfigurationError):
            Semiring("bad", np.multiply, sum, 0.0)  # type: ignore[arg-type]


class TestShortestPaths:
    @pytest.fixture
    def weighted_graph(self):
        d = np.zeros((5, 5))
        d[0, 1] = 1.0
        d[1, 2] = 2.0
        d[0, 2] = 5.0
        d[2, 3] = 1.0
        d[3, 4] = 1.0
        return CSRMatrix.from_dense(d)

    def test_k1_is_direct_edges_plus_diagonal(self, weighted_graph):
        dist = k_hop_shortest_paths(weighted_graph, 1).to_dense()
        assert dist[0, 1] == 1.0
        assert dist[0, 2] == 5.0

    def test_k2_finds_cheaper_route(self, weighted_graph):
        d = single_source_distances(weighted_graph, 0, 2)
        assert d[2] == 3.0  # 0->1->2 beats the direct 5.0

    def test_converges_to_bellman_ford(self, weighted_graph):
        d = single_source_distances(weighted_graph, 0, 4)
        assert list(d) == [0.0, 1.0, 3.0, 4.0, 5.0]

    def test_unreachable_is_inf(self, weighted_graph):
        d = single_source_distances(weighted_graph, 4, 4)
        assert d[0] == np.inf

    def test_monotone_in_k(self, rng):
        dense = (rng.random((20, 20)) < 0.15) * (rng.random((20, 20)) + 0.1)
        w = CSRMatrix.from_dense(dense)
        d2 = k_hop_shortest_paths(w, 2).to_dense()
        d4 = k_hop_shortest_paths(w, 4).to_dense()
        stored2 = d2 != 0
        # Once reachable, distances never increase with a larger hop budget.
        assert np.all(d4[stored2] <= d2[stored2] + 1e-12)

    def test_negative_weights_rejected(self):
        w = CSRMatrix.from_dense(np.array([[0.0, -1.0], [0.0, 0.0]]))
        with pytest.raises(ConfigurationError):
            k_hop_shortest_paths(w, 2)

    def test_invalid_k(self, weighted_graph):
        with pytest.raises(ConfigurationError):
            k_hop_shortest_paths(weighted_graph, 0)

    def test_invalid_source(self, weighted_graph):
        with pytest.raises(ConfigurationError):
            single_source_distances(weighted_graph, 99, 2)

    def test_matches_networkx_when_available(self, rng):
        nx = pytest.importorskip("networkx")
        dense = (rng.random((15, 15)) < 0.25) * (rng.random((15, 15)) + 0.1)
        np.fill_diagonal(dense, 0.0)
        w = CSRMatrix.from_dense(dense)
        ours = single_source_distances(w, 0, 14)
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)
        lengths = nx.single_source_dijkstra_path_length(g, 0)
        for node in range(15):
            expected = lengths.get(node, np.inf)
            assert ours[node] == pytest.approx(expected)
