"""Tests for the graph-analytics applications (repro.apps)."""

import numpy as np
import pytest

from repro.apps import (
    batched_personalized_pagerank,
    common_neighbors,
    cosine_similarity,
    jaccard_similarity,
    k_hop_reachability,
    k_hop_walks,
    pagerank,
    recommend_by_paths,
    top_similar_pairs,
    transition_matrix,
)
from repro.core import BlockReorganizer
from repro.errors import ConfigurationError
from repro.sparse import CSRMatrix, rmat_graph500


@pytest.fixture
def ring():
    """A directed 5-cycle: 0 -> 1 -> 2 -> 3 -> 4 -> 0."""
    dense = np.zeros((5, 5))
    for i in range(5):
        dense[i, (i + 1) % 5] = 1.0
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def star():
    """Node 0 points at nodes 1..4 (and nothing points back)."""
    dense = np.zeros((5, 5))
    dense[0, 1:] = 1.0
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def graph():
    return rmat_graph500(8, 8, seed=3).to_csr()


@pytest.fixture
def engine():
    return BlockReorganizer()


class TestPageRank:
    def test_uniform_on_ring(self, ring):
        result = pagerank(ring)
        assert result.converged
        assert np.allclose(result.scores, 0.2, atol=1e-6)

    def test_scores_sum_to_one(self, graph):
        result = pagerank(graph)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(result.scores > 0)

    def test_dangling_nodes_handled(self, star):
        result = pagerank(star)
        assert result.converged
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-6)
        # Leaves all receive equal rank, greater than a no-inlink hub's base.
        assert np.allclose(result.scores[1:], result.scores[1])

    def test_transition_matrix_column_stochastic(self, graph):
        p = transition_matrix(graph)
        col_sums = np.zeros(p.n_cols)
        coo = p.to_coo()
        np.add.at(col_sums, coo.cols, coo.vals)
        has_out = graph.row_nnz() > 0
        assert np.allclose(col_sums[has_out], 1.0)

    def test_invalid_damping(self, ring):
        with pytest.raises(ConfigurationError):
            pagerank(ring, damping=1.5)

    def test_hub_ranks_high(self):
        # Everyone links to node 0.
        dense = np.zeros((6, 6))
        dense[1:, 0] = 1.0
        dense[0, 1] = 1.0
        result = pagerank(CSRMatrix.from_dense(dense))
        assert result.scores[0] == result.scores.max()

    def test_batched_personalized(self, graph, engine):
        n = graph.n_rows
        seeds = CSRMatrix(
            (2, n),
            np.array([0, 1, 2]),
            np.array([3, 7], dtype=np.int64),
            np.array([1.0, 1.0]),
        )
        scores = batched_personalized_pagerank(graph, seeds, engine, n_steps=2)
        assert scores.shape == (2, n)
        assert scores.nnz > 0

    def test_batched_shape_check(self, graph, engine):
        bad = CSRMatrix.empty((2, graph.n_rows + 1))
        with pytest.raises(ConfigurationError):
            batched_personalized_pagerank(graph, bad, engine)


class TestSimilarity:
    def test_common_neighbors_definition(self, engine):
        dense = np.array(
            [
                [0.0, 1.0, 1.0, 0.0],
                [0.0, 1.0, 1.0, 1.0],
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0],
            ]
        )
        a = CSRMatrix.from_dense(dense)
        cn = common_neighbors(a, engine).to_dense()
        expected = dense @ dense.T
        assert np.allclose(cn, expected)

    def test_cosine_bounds(self, graph, engine):
        cos = cosine_similarity(graph, engine)
        assert cos.nnz > 0
        assert cos.data.max() <= 1.0 + 1e-9
        assert cos.data.min() >= 0.0

    def test_cosine_self_similarity_one(self, graph, engine):
        cos = cosine_similarity(graph, engine).to_dense()
        has_edges = graph.row_nnz() > 0
        assert np.allclose(np.diag(cos)[has_edges], 1.0)

    def test_jaccard_bounds_and_self(self, graph, engine):
        jac = jaccard_similarity(graph, engine)
        assert jac.data.max() <= 1.0 + 1e-9
        dense = jac.to_dense()
        has_edges = graph.row_nnz() > 0
        assert np.allclose(np.diag(dense)[has_edges], 1.0)

    def test_jaccard_known_value(self, engine):
        # rows {0,1} and {1,2}: intersection 1, union 3.
        dense = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [0.0, 0.0, 0.0]])
        jac = jaccard_similarity(CSRMatrix.from_dense(dense), engine).to_dense()
        assert jac[0, 1] == pytest.approx(1.0 / 3.0)

    def test_top_similar_pairs(self, graph, engine):
        cos = cosine_similarity(graph, engine)
        pairs = top_similar_pairs(cos, 10)
        assert len(pairs) <= 10
        scores = [s for _, _, s in pairs]
        assert scores == sorted(scores, reverse=True)
        assert all(i < j for i, j, _ in pairs)


class TestReachability:
    def test_walk_counts_match_dense_powers(self, graph, engine):
        walks = k_hop_walks(graph, 3, engine)
        dense = graph.to_dense()
        assert np.allclose(walks.at(2).to_dense(), dense @ dense)
        assert np.allclose(walks.at(3).to_dense(), dense @ dense @ dense)

    def test_reachability_on_ring(self, ring, engine):
        reach2 = k_hop_reachability(ring, 2, engine).to_dense()
        # From node 0 within 2 hops: nodes 1 and 2.
        assert reach2[0, 1] == 1.0 and reach2[0, 2] == 1.0
        assert reach2[0, 3] == 0.0
        reach5 = k_hop_reachability(ring, 5, engine).to_dense()
        assert reach5[0].sum() == 5.0  # the full cycle, self included via 5 hops

    def test_reachability_values_boolean(self, graph, engine):
        reach = k_hop_reachability(graph, 2, engine)
        assert np.all(reach.data == 1.0)

    def test_invalid_k(self, ring, engine):
        with pytest.raises(ConfigurationError):
            k_hop_walks(ring, 0, engine)
        with pytest.raises(ConfigurationError):
            k_hop_reachability(ring, 0, engine)

    def test_recommendation_excludes_known(self, engine):
        # 0 - {1,2}; 1 - {3}; 2 - {3,4}: best 2-path endpoint for 0 is 3.
        dense = np.zeros((5, 5))
        dense[0, [1, 2]] = 1.0
        dense[1, 3] = 1.0
        dense[2, [3, 4]] = 1.0
        recs = recommend_by_paths(CSRMatrix.from_dense(dense), 0, engine)
        assert recs[0][0] == 3
        assert recs[0][1] == pytest.approx(2.0)
        assert all(node not in (0, 1, 2) for node, _ in recs)

    def test_recommendation_user_bounds(self, ring, engine):
        with pytest.raises(ConfigurationError):
            recommend_by_paths(ring, 99, engine)
