"""Simulator tests: mechanisms the paper's techniques rely on must emerge."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.block import BlockArrayBuilder
from repro.gpusim.config import TESLA_V100, TITAN_XP
from repro.gpusim.costs import DEFAULT_COSTS
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.trace import KernelPhase, KernelTrace


def _uniform_blocks(n, *, threads=256, eff=None, iters=10.0, ops=None,
                    smem=2048, ws=2000.0, trans=None):
    eff = threads if eff is None else eff
    ops = int(iters * eff) if ops is None else ops
    b = BlockArrayBuilder()
    b.add_blocks(
        threads=threads,
        effective_threads=np.full(n, eff),
        iters=np.full(n, iters),
        ops=np.full(n, ops),
        unique_bytes=np.full(n, 600.0),
        reuse_bytes=np.full(n, 300.0),
        write_bytes=np.full(n, 1200.0),
        smem_bytes=smem,
        working_set=np.full(n, ws),
        transactions=np.full(n, trans if trans is not None else iters),
    )
    return b.build()


def _run(blocks, stage="expansion", gpu=TITAN_XP):
    sim = GPUSimulator(gpu)
    return sim.run(KernelTrace("t", [KernelPhase("p", stage, blocks)]))


class TestBasics:
    def test_empty_phase(self):
        stats = _run(BlockArrayBuilder().build())
        assert stats.phases[0].n_blocks == 0
        assert stats.kernel_cycles == DEFAULT_COSTS.kernel_launch_cycles

    def test_unknown_stage_rejected(self):
        with pytest.raises(SimulationError, match="stage"):
            GPUSimulator(TITAN_XP).block_durations("bogus", _uniform_blocks(1))

    def test_deterministic(self):
        blocks = _uniform_blocks(100)
        a = _run(blocks)
        b = _run(blocks)
        assert a.kernel_cycles == b.kernel_cycles

    def test_durations_positive(self):
        d = GPUSimulator(TITAN_XP).block_durations("expansion", _uniform_blocks(10))
        assert np.all(d > 0)

    def test_total_ops_accounted(self):
        stats = _run(_uniform_blocks(10, ops=77))
        assert stats.total_ops == 770

    def test_meta_passthrough(self):
        sim = GPUSimulator(TITAN_XP)
        stats = sim.run(KernelTrace("t", [], meta={"x": 1}))
        assert stats.meta == {"x": 1}


class TestMechanisms:
    def test_more_work_takes_longer(self):
        fast = _run(_uniform_blocks(50, iters=5.0)).kernel_cycles
        slow = _run(_uniform_blocks(50, iters=50.0)).kernel_cycles
        assert slow > fast

    def test_more_blocks_take_longer(self):
        few = _run(_uniform_blocks(100)).kernel_cycles
        many = _run(_uniform_blocks(1000)).kernel_cycles
        assert many > few

    def test_more_sms_faster(self):
        blocks = _uniform_blocks(2000)
        small_gpu = _run(blocks, gpu=TITAN_XP).kernel_seconds
        big_gpu = _run(blocks, gpu=TESLA_V100).kernel_seconds
        assert big_gpu < small_gpu

    def test_straggler_lowers_lbi(self):
        balanced = _uniform_blocks(960)
        b = BlockArrayBuilder()
        b.add_blocks(
            threads=256, effective_threads=np.array([256]),
            iters=np.array([50_000.0]), ops=np.array([1_000_000]),
            unique_bytes=np.array([1e6]), reuse_bytes=np.array([0.0]),
            write_bytes=np.array([1e7]), working_set=np.array([1e6]),
            transactions=np.array([300_000.0]),
        )
        from repro.gpusim.block import concatenate

        skewed = concatenate([balanced, b.build()])
        assert _run(skewed).lbi("expansion") < _run(balanced).lbi("expansion")

    def test_underloaded_blocks_less_efficient(self):
        """Same useful ops: full 32-lane warps beat 2-effective-lane warps."""
        full = _uniform_blocks(64, threads=32, eff=32, iters=10.0, ops=320)
        under = _uniform_blocks(64 * 16, threads=32, eff=2, iters=10.0, ops=20)
        t_full = _run(full).kernel_cycles
        t_under = _run(under).kernel_cycles
        assert t_under > 1.3 * t_full

    def test_fixed_256_worse_than_sized_for_tiny_work(self):
        """The paper's fixed-block-size waste: same micro-work, fixed 256-thread
        allocation loses to 32-thread compacted blocks."""
        fixed = _uniform_blocks(2000, threads=256, eff=5, iters=4.0, ops=20)
        sized = _uniform_blocks(2000, threads=32, eff=5, iters=4.0, ops=20)
        assert _run(fixed).kernel_cycles > _run(sized).kernel_cycles

    def test_sync_stalls_reflect_lane_waste(self):
        full = _run(_uniform_blocks(50, threads=32, eff=32, iters=4.0, ops=128 * 4 // 4 * 32))
        under = _run(_uniform_blocks(50, threads=32, eff=2, iters=4.0, ops=8))
        assert under.sync_stall_pct > full.sync_stall_pct

    def test_big_smem_reduces_residency_and_parallelism(self):
        light = _uniform_blocks(960, smem=2048)
        heavy = _uniform_blocks(960, smem=48 * 1024)
        sim = GPUSimulator(TITAN_XP)
        assert sim.residency(heavy)[0] < sim.residency(light)[0]

    def test_chip_bandwidth_floor(self):
        """A phase can never finish faster than its traffic divided by peak
        achievable DRAM bandwidth."""
        blocks = _uniform_blocks(5000)
        stats = _run(blocks)
        dram = stats.phases[0].dram_bytes
        floor = dram / TITAN_XP.bytes_per_cycle_dram()
        assert stats.phases[0].makespan_cycles >= floor

    def test_instr_override_scales_compute(self):
        blocks = _uniform_blocks(100, iters=1000.0, trans=1.0)
        sim = GPUSimulator(TITAN_XP)
        cheap = sim.block_durations("merge", blocks, instr_override=1.0)
        costly = sim.block_durations("merge", blocks, instr_override=50.0)
        assert np.all(costly >= cheap)
        assert costly[0] > cheap[0]


class TestStats:
    def test_stage_accounting(self):
        exp = _uniform_blocks(100)
        mrg = _uniform_blocks(50)
        sim = GPUSimulator(TITAN_XP)
        stats = sim.run(
            KernelTrace("t", [KernelPhase("e", "expansion", exp), KernelPhase("m", "merge", mrg)])
        )
        assert stats.stage_cycles("expansion") > 0
        assert stats.stage_cycles("merge") > 0
        assert stats.kernel_cycles == pytest.approx(
            stats.stage_cycles("expansion") + stats.stage_cycles("merge")
        )

    def test_host_seconds_added(self):
        sim = GPUSimulator(TITAN_XP)
        stats = sim.run(KernelTrace("t", [], host_seconds=0.5))
        assert stats.total_seconds >= 0.5

    def test_gflops_positive(self):
        stats = _run(_uniform_blocks(100))
        assert stats.gflops > 0

    def test_sm_utilization_bounds(self):
        stats = _run(_uniform_blocks(500))
        assert 0.0 < stats.sm_utilization() <= 1.0
