"""Numeric engine tests: expansion orders and merge correctness."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.sparse.csr import CSRMatrix
from repro.spgemm.expansion import expand_outer, expand_row
from repro.spgemm.merge import merge_triplets, row_nnz_of_triplets


class TestExpandOuter:
    def test_triplet_count(self, square_csr):
        a_csc = square_csr.to_csc()
        rows, cols, vals = expand_outer(a_csc, square_csr)
        expected = int((a_csc.col_nnz() * square_csr.row_nnz()).sum())
        assert len(rows) == len(cols) == len(vals) == expected

    def test_matches_dense_product(self, square_csr):
        rows, cols, vals = expand_outer(square_csr.to_csc(), square_csr)
        c = merge_triplets(rows, cols, vals, (square_csr.n_rows, square_csr.n_cols))
        dense = square_csr.to_dense()
        assert np.allclose(c.to_dense(), dense @ dense)

    def test_pair_grouping_order(self):
        """Triplets come out grouped by inner index k."""
        a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        rows, cols, vals = expand_outer(a.to_csc(), a)
        # First 4 products come from k=0 (column 0 x row 0), etc.
        assert len(rows) == 8
        k0 = set(zip(rows[:4].tolist(), cols[:4].tolist()))
        assert k0 == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_empty_matrix(self):
        empty = CSRMatrix.empty((4, 4))
        rows, cols, vals = expand_outer(empty.to_csc(), empty)
        assert len(rows) == 0

    def test_rectangular(self, rng):
        a = CSRMatrix.from_dense((rng.random((6, 9)) < 0.4) * rng.random((6, 9)))
        b = CSRMatrix.from_dense((rng.random((9, 5)) < 0.4) * rng.random((9, 5)))
        rows, cols, vals = expand_outer(a.to_csc(), b)
        c = merge_triplets(rows, cols, vals, (6, 5))
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())


class TestExpandRow:
    def test_same_multiset_as_outer(self, square_csr):
        ro, co, vo = expand_outer(square_csr.to_csc(), square_csr)
        rr, cr, vr = expand_row(square_csr, square_csr)
        assert len(ro) == len(rr)
        # Same multiset of triplets in different order.
        def key(r, c, v):
            return np.lexsort((v, c, r))

        oo, orr = key(ro, co, vo), key(rr, cr, vr)
        assert np.array_equal(ro[oo], rr[orr])
        assert np.array_equal(co[oo], cr[orr])
        assert np.allclose(vo[oo], vr[orr])

    def test_row_grouping_order(self, square_csr):
        rows, _, _ = expand_row(square_csr, square_csr)
        assert np.all(np.diff(rows) >= 0)  # grouped by output row

    def test_matches_dense_product(self, square_csr):
        rows, cols, vals = expand_row(square_csr, square_csr)
        c = merge_triplets(rows, cols, vals, square_csr.shape)
        dense = square_csr.to_dense()
        assert np.allclose(c.to_dense(), dense @ dense)


class TestMerge:
    def test_coalesces_duplicates(self):
        rows = np.array([0, 0, 1])
        cols = np.array([1, 1, 0])
        vals = np.array([2.0, 3.0, 4.0])
        c = merge_triplets(rows, cols, vals, (2, 2))
        assert c.nnz == 2
        assert c.to_dense()[0, 1] == pytest.approx(5.0)

    def test_keeps_explicit_zeros_by_default(self):
        rows = np.array([0, 0])
        cols = np.array([0, 0])
        vals = np.array([1.0, -1.0])
        assert merge_triplets(rows, cols, vals, (1, 1)).nnz == 1
        assert merge_triplets(rows, cols, vals, (1, 1), drop_zeros=True).nnz == 0

    def test_empty(self):
        z = np.zeros(0, dtype=np.int64)
        c = merge_triplets(z, z, np.zeros(0), (3, 3))
        assert c.nnz == 0
        c.validate()

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeMismatchError):
            merge_triplets(np.array([5]), np.array([0]), np.array([1.0]), (2, 2))

    def test_output_canonical(self, square_csr):
        rows, cols, vals = expand_outer(square_csr.to_csc(), square_csr)
        c = merge_triplets(rows, cols, vals, square_csr.shape)
        c.validate()
        assert c.has_sorted_indices()

    def test_row_nnz_of_triplets(self, square_csr):
        rows, cols, vals = expand_outer(square_csr.to_csc(), square_csr)
        u = row_nnz_of_triplets(rows, cols, square_csr.shape)
        c = merge_triplets(rows, cols, vals, square_csr.shape)
        assert np.array_equal(u, c.row_nnz())

    def test_row_nnz_empty(self):
        z = np.zeros(0, dtype=np.int64)
        assert np.array_equal(row_nnz_of_triplets(z, z, (3, 3)), np.zeros(3, np.int64))

    def test_large_dimension_no_overflow(self):
        """Keys use int64: coordinates near 250k x 250k must not collide."""
        n = 250_000
        rows = np.array([n - 1, n - 2])
        cols = np.array([n - 1, n - 1])
        c = merge_triplets(rows, cols, np.array([1.0, 2.0]), (n, n))
        assert c.nnz == 2
