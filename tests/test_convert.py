"""Conversion tests: all six paths preserve values and canonicalise."""

import numpy as np
import pytest

from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
)
from repro.sparse.coo import COOMatrix


@pytest.fixture
def dup_coo():
    """COO with duplicate coordinates (conversion must coalesce)."""
    return COOMatrix(
        (4, 4),
        np.array([0, 2, 0, 3, 2]),
        np.array([1, 3, 1, 0, 3]),
        np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
    )


def test_coo_to_csr_coalesces(dup_coo):
    csr = coo_to_csr(dup_coo)
    assert csr.nnz == 3
    assert csr.to_dense()[0, 1] == pytest.approx(4.0)
    assert csr.to_dense()[2, 3] == pytest.approx(7.0)


def test_coo_to_csc_coalesces(dup_coo):
    csc = coo_to_csc(dup_coo)
    assert csc.nnz == 3
    assert csc.to_dense()[0, 1] == pytest.approx(4.0)


def test_csr_csc_preserve_values(small_csr):
    assert np.allclose(csr_to_csc(small_csr).to_dense(), small_csr.to_dense())


def test_csc_csr_preserve_values(small_dense):
    from repro.sparse.csc import CSCMatrix

    csc = CSCMatrix.from_dense(small_dense)
    assert np.allclose(csc_to_csr(csc).to_dense(), small_dense)


def test_all_paths_agree(small_coo):
    dense = small_coo.to_dense()
    for m in (
        coo_to_csr(small_coo),
        coo_to_csc(small_coo),
        csr_to_csc(coo_to_csr(small_coo)),
        csc_to_csr(coo_to_csc(small_coo)),
        csr_to_coo(coo_to_csr(small_coo)),
        csc_to_coo(coo_to_csc(small_coo)),
    ):
        assert np.allclose(m.to_dense(), dense)


def test_csr_output_sorted(small_coo):
    assert coo_to_csr(small_coo).has_sorted_indices()


def test_empty_matrix_conversions():
    empty = COOMatrix.empty((3, 5))
    assert coo_to_csr(empty).nnz == 0
    assert coo_to_csc(empty).nnz == 0


def test_rectangular_shapes_preserved():
    coo = COOMatrix((2, 9), np.array([1]), np.array([8]), np.array([1.0]))
    assert coo_to_csr(coo).shape == (2, 9)
    assert coo_to_csc(coo).shape == (2, 9)
