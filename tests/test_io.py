"""MatrixMarket I/O tests."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market


def test_roundtrip(tmp_path, small_coo):
    path = tmp_path / "m.mtx"
    write_matrix_market(path, small_coo)
    back = read_matrix_market(path)
    assert back.allclose(small_coo)


def test_pattern_file(tmp_path):
    path = tmp_path / "p.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "3 3 2\n"
        "1 2\n"
        "3 3\n"
    )
    coo = read_matrix_market(path)
    dense = coo.to_dense()
    assert dense[0, 1] == 1.0
    assert dense[2, 2] == 1.0
    assert coo.nnz == 2


def test_symmetric_file(tmp_path):
    path = tmp_path / "s.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 7.0\n"
    )
    dense = read_matrix_market(path).to_dense()
    assert dense[1, 0] == 5.0
    assert dense[0, 1] == 5.0  # mirrored
    assert dense[2, 2] == 7.0  # diagonal not duplicated


def test_comments_skipped(tmp_path):
    path = tmp_path / "c.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "% another\n"
        "2 2 1\n"
        "1 1 3.5\n"
    )
    assert read_matrix_market(path).to_dense()[0, 0] == 3.5


def test_missing_header(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("1 1 0\n")
    with pytest.raises(SparseFormatError, match="header"):
        read_matrix_market(path)


def test_unsupported_field(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
    with pytest.raises(SparseFormatError, match="unsupported field"):
        read_matrix_market(path)


def test_truncated_file(tmp_path):
    path = tmp_path / "trunc.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
    with pytest.raises(SparseFormatError, match="truncated"):
        read_matrix_market(path)


def test_write_coalesces(tmp_path):
    dup = COOMatrix((2, 2), np.array([0, 0]), np.array([0, 0]), np.array([1.0, 2.0]))
    path = tmp_path / "d.mtx"
    write_matrix_market(path, dup)
    back = read_matrix_market(path)
    assert back.nnz == 1
    assert back.to_dense()[0, 0] == pytest.approx(3.0)


def test_values_roundtrip_exactly(tmp_path, rng):
    coo = COOMatrix(
        (5, 5), rng.integers(0, 5, 8), rng.integers(0, 5, 8), rng.random(8)
    ).coalesce()
    path = tmp_path / "exact.mtx"
    write_matrix_market(path, coo)
    back = read_matrix_market(path)
    assert np.array_equal(np.sort(back.vals), np.sort(coo.vals))
