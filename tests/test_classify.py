"""Tests for workload classification (Section IV-B)."""

import numpy as np
import pytest

from repro.core.classify import classify_pairs
from repro.errors import ConfigurationError


def test_masks_disjoint_and_cover_active():
    work = np.array([0, 5, 500_000, 20, 64, 0])
    eff = np.array([0, 3, 1000, 40, 8, 0])
    classes = classify_pairs(work, eff, alpha=0.1)
    total = classes.dominator | classes.underloaded | classes.normal
    assert np.array_equal(total, work > 0)
    assert not np.any(classes.dominator & classes.underloaded)
    assert not np.any(classes.dominator & classes.normal)
    assert not np.any(classes.underloaded & classes.normal)


def test_hub_pair_is_dominator():
    work = np.concatenate([np.full(1000, 10), [1_000_000]])
    eff = np.concatenate([np.full(1000, 40), [1000]])
    classes = classify_pairs(work, eff)
    assert classes.dominator[-1]
    assert classes.n_dominators == 1


def test_underloaded_below_warp():
    work = np.full(100, 50)
    eff = np.concatenate([np.full(50, 10), np.full(50, 64)])
    classes = classify_pairs(work, eff)
    assert classes.n_underloaded == 50
    assert classes.n_normal == 50


def test_alpha_controls_selectivity():
    rng = np.random.default_rng(0)
    work = (rng.pareto(1.0, 2000) * 100).astype(np.int64) + 1
    eff = np.full(2000, 64)
    strict = classify_pairs(work, eff, alpha=0.02)  # high threshold
    loose = classify_pairs(work, eff, alpha=1.0)  # low threshold
    assert strict.n_dominators <= loose.n_dominators


def test_threshold_formula():
    work = np.array([10, 10, 10, 10])
    eff = np.full(4, 64)
    classes = classify_pairs(work, eff, alpha=0.5)
    # threshold = total / (#blocks * alpha) = 40 / 2 = 20.
    assert classes.threshold == pytest.approx(20.0)
    assert classes.n_dominators == 0


def test_empty_input():
    classes = classify_pairs(np.zeros(0, np.int64), np.zeros(0, np.int64))
    assert classes.n_dominators == classes.n_underloaded == classes.n_normal == 0


def test_all_zero_work():
    classes = classify_pairs(np.zeros(5, np.int64), np.zeros(5, np.int64))
    assert not classes.dominator.any()


def test_invalid_alpha():
    with pytest.raises(ConfigurationError):
        classify_pairs(np.array([1]), np.array([1]), alpha=0.0)


def test_mismatched_shapes():
    with pytest.raises(ConfigurationError):
        classify_pairs(np.array([1, 2]), np.array([1]))


def test_empty_pairs_never_classified():
    work = np.array([0, 100])
    eff = np.array([0, 8])
    classes = classify_pairs(work, eff)
    assert not classes.dominator[0]
    assert not classes.underloaded[0]
    assert not classes.normal[0]
