"""Observability plane (repro.obs): recorder semantics, deterministic
serial/parallel aggregation, disabled-path overhead, Chrome export, the
bench's hang-timeout fallback, and the multiply-boundary validation."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.bench import parallel, runner
from repro.bench.runner import paper_algorithms, run_matrix
from repro.datasets import loader
from repro.errors import SparseFormatError
from repro.gpusim.config import TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.obs import recorder as recorder_mod
from repro.sparse.csr import CSRMatrix
from repro.spgemm.session import IterativeSession

SMALL = ["poisson3da", "as_caida"]
SCHEMES = [a.name for a in paper_algorithms()]


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Tracing must never leak across tests (it is process-global state)."""
    obs.uninstall()
    yield
    obs.uninstall()


class TestRecorder:
    def test_nesting_builds_tree(self):
        rec = obs.install()
        with obs.span("outer", "bench"):
            with obs.span("inner", "plan") as sp:
                sp.add(ops=3)
            with obs.span("inner", "plan") as sp:
                sp.add(ops=4)
        assert [s.name for s in rec.roots] == ["outer"]
        inner = rec.roots[0].children
        assert [s.name for s in inner] == ["inner", "inner"]
        assert inner[0].counters == {"ops": 3}
        assert inner[1].dur >= 0.0

    def test_counters_accumulate(self):
        obs.install()
        with obs.span("s") as sp:
            sp.add(ops=2, hits=1)
            sp.add(ops=5)
        assert sp.counters == {"ops": 7, "hits": 1}

    def test_dict_round_trip_tags_pid(self):
        rec = obs.install()
        with obs.span("a", "data") as sp:
            sp.add(nnz=9)
            with obs.span("b", "plan"):
                pass
        payloads = rec.to_dicts()
        rebuilt = recorder_mod.Span.from_dict(payloads[0], pid=3)
        assert rebuilt.name == "a"
        assert rebuilt.counters == {"nnz": 9}
        assert rebuilt.children[0].name == "b"
        assert rebuilt.pid == 3 and rebuilt.children[0].pid == 3

    def test_adopt_splices_under_open_span(self):
        worker = obs.TraceRecorder()
        child = worker.span("worker-work", "simulate")
        with child:
            pass
        rec = obs.install()
        with obs.span("parent", "bench"):
            obs.adopt(worker.to_dicts(), pid=2)
        assert rec.roots[0].children[0].name == "worker-work"
        assert rec.roots[0].children[0].pid == 2

    def test_adopt_is_noop_when_disabled(self):
        obs.adopt([{"name": "x", "category": "y"}], pid=1)  # must not raise
        assert not obs.is_enabled()


class TestDisabledPath:
    def test_null_span_identity(self):
        assert not obs.is_enabled()
        sp = obs.span("anything", "plan", ops=1)
        assert sp is obs.NULL_SPAN
        with sp as entered:
            entered.add(ops=10)
        assert sp is obs.NULL_SPAN

    def test_no_span_objects_allocated(self, monkeypatch):
        created = []
        orig = recorder_mod.Span.__init__

        def counting(self, *args, **kwargs):
            created.append(1)
            orig(self, *args, **kwargs)

        monkeypatch.setattr(recorder_mod.Span, "__init__", counting)
        assert not obs.is_enabled()
        for _ in range(100):
            with obs.span("hot", "plan") as sp:
                sp.add(ops=1)
        assert created == []

    def test_pipeline_output_unchanged_by_tracing(self):
        loader.clear_cache()
        runner.clear_context_cache()
        ctx = runner.get_context("poisson3da")
        algo = paper_algorithms()[-1]
        sim_off = algo.simulate(ctx, GPUSimulator(TITAN_XP))
        obs.install()
        try:
            sim_on = algo.simulate(ctx, GPUSimulator(TITAN_XP))
        finally:
            obs.uninstall()
        assert sim_on.total_seconds == sim_off.total_seconds
        assert sim_on.gflops == sim_off.gflops


class TestAggregation:
    def test_siblings_merge_and_sort(self):
        rec = obs.install()
        with obs.span("z", "plan") as sp:
            sp.add(ops=1)
        with obs.span("a", "plan") as sp:
            sp.add(ops=2)
        with obs.span("z", "plan") as sp:
            sp.add(ops=10)
        tree = obs.aggregate_spans(rec.roots)
        assert [n["name"] for n in tree] == ["a", "z"]
        z = tree[1]
        assert z["count"] == 2
        assert z["counters"] == {"ops": 11}

    def test_aggregate_excludes_wallclock(self):
        rec = obs.install()
        with obs.span("timed", "plan"):
            time.sleep(0.002)
        node = obs.aggregate_spans(rec.roots)[0]
        assert set(node) == {"name", "category", "count", "counters", "children"}


def _traced_grid_aggregate(workers: int) -> str:
    """Run the small grid traced and return the aggregate tree as JSON."""
    loader.clear_cache()
    runner.clear_context_cache()
    rec = obs.install()
    try:
        run_matrix(SMALL, paper_algorithms(), workers=workers, cache=None)
    finally:
        obs.uninstall()
    return json.dumps(obs.aggregate_spans(rec.roots), sort_keys=True)


class TestSerialParallelEquivalence:
    def test_aggregate_trees_byte_identical(self):
        serial = _traced_grid_aggregate(1)
        par = _traced_grid_aggregate(2)
        assert serial == par

    def test_all_seven_schemes_covered(self):
        tree = json.loads(_traced_grid_aggregate(2))

        def names(nodes):
            for n in nodes:
                yield n["name"]
                yield from names(n["children"])

        seen = set(names(tree))
        for scheme in SCHEMES:
            assert any(f"[{scheme}]" in name for name in seen), scheme


class TestChromeExport:
    def test_payload_is_valid_trace_event_json(self, tmp_path):
        loader.clear_cache()
        runner.clear_context_cache()
        rec = obs.install()
        try:
            run_matrix(SMALL[:1], paper_algorithms()[:2], workers=1, cache=None)
        finally:
            obs.uninstall()
        out = tmp_path / "trace.json"
        obs.write_trace(str(out), rec, meta={"cmd": "test"})
        payload = json.loads(out.read_text())
        assert isinstance(payload["traceEvents"], list) and payload["traceEvents"]
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
                assert isinstance(event["name"], str)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"] == {"cmd": "test"}
        assert payload["aggregate"]  # deterministic tree rides along


def _hang(name, cells, gpu, costs, trace=False):
    # Module-level so the process pool can pickle it by reference; sleeps
    # long enough that only the timeout path can finish the test quickly.
    time.sleep(8)
    return [], None


class TestShardTimeout:
    def test_hung_pool_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(parallel, "_simulate_shard", _hang)
        summary = runner.RunSummary()
        pending = {
            name: [("row-product", paper_algorithms()[0])] for name in SMALL
        }
        with pytest.warns(RuntimeWarning, match="shard timeout"):
            results = parallel.run_sharded(
                pending, TITAN_XP, None, 2, timeout=0.5, summary=summary
            )
        assert summary.shard_timeouts == len(SMALL)
        assert set(results) == {(name, "row-product") for name in SMALL}

    def test_timeouts_counted_in_run_summary(self, monkeypatch):
        monkeypatch.setattr(parallel, "_simulate_shard", _hang)
        with pytest.warns(RuntimeWarning, match="shard timeout"):
            run_matrix(
                SMALL, paper_algorithms()[:1], workers=2, cache=None,
                shard_timeout=0.5,
            )
        assert runner.last_run_summary().shard_timeouts == len(SMALL)

    def test_no_timeout_when_pool_progresses(self):
        results = run_matrix(
            SMALL, paper_algorithms()[:2], workers=2, cache=None,
            shard_timeout=120.0,
        )
        assert runner.last_run_summary().shard_timeouts == 0
        assert len(results) == len(SMALL) * 2


class TestBoundaryValidation:
    def _bad_b(self, n: int = 8) -> CSRMatrix:
        # Column index out of range: previously an IndexError deep inside
        # the expansion kernels.
        return CSRMatrix(
            (n, n),
            np.array([0, 1] + [1] * (n - 1), dtype=np.int64),
            np.array([n + 3], dtype=np.int64),
            np.array([1.0]),
        )

    def test_session_names_offending_operand(self):
        a = CSRMatrix.identity(8)
        session = IterativeSession(paper_algorithms()[0])
        with pytest.raises(SparseFormatError, match=r"operand B \(CSRMatrix\)"):
            session.multiply(a, self._bad_b())

    def test_duplicates_caught_at_boundary(self):
        a = CSRMatrix.identity(3)
        dup = CSRMatrix(
            (3, 3), np.array([0, 2, 2, 2]), np.array([1, 1]), np.array([1.0, 2.0])
        )
        session = IterativeSession(paper_algorithms()[0])
        with pytest.raises(SparseFormatError, match="operand A.*duplicate"):
            session.multiply(dup, a)

    def test_replay_fast_path_skips_validation(self, monkeypatch):
        session = IterativeSession(paper_algorithms()[0])
        a = CSRMatrix.from_dense(np.eye(6) + np.diag(np.ones(5), 1))
        session.multiply(a, a)  # cold: validates and captures the structure

        calls = []
        orig = CSRMatrix.validate

        def counting(self):
            calls.append(1)
            return orig(self)

        monkeypatch.setattr(CSRMatrix, "validate", counting)
        session.multiply(a, a)  # structure hit: replay, no validation
        assert calls == []
