#!/usr/bin/env python
"""Validate a Chrome trace file emitted by the observability plane.

Usage: python tools/check_trace.py trace.json

Checks the structural contract CI relies on:

* the file is the Chrome trace-event JSON *object* format — a dict with a
  ``traceEvents`` list (Perfetto and chrome://tracing open it directly);
* every event is a complete event (``"ph": "X"`` with numeric ``ts``/``dur``
  and a ``name``) or process-name metadata (``"ph": "M"``);
* every process lane referenced by a complete event has a name;
* the embedded ``aggregate`` tree is present, well-formed (name/category/
  count/counters/children on every node) and carries integer counters only
  — the determinism guarantee tests/test_obs.py enforces end to end.

Exits non-zero with a message naming the first violated rule.
"""

from __future__ import annotations

import json
import sys


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_events(events: list) -> None:
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")
    named_lanes = set()
    used_lanes = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            fail(f"traceEvents[{i}] has unsupported phase {ph!r}")
        if not isinstance(event.get("pid"), int):
            fail(f"traceEvents[{i}] missing integer pid")
        if ph == "X":
            used_lanes.add(event["pid"])
            if not isinstance(event.get("name"), str) or not event["name"]:
                fail(f"traceEvents[{i}] missing span name")
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(f"traceEvents[{i}].{key} must be a non-negative number")
        else:
            if event.get("name") == "process_name":
                named_lanes.add(event["pid"])
    unnamed = used_lanes - named_lanes
    if unnamed:
        fail(f"process lanes without a process_name event: {sorted(unnamed)}")


def check_aggregate(nodes: list, path: str = "aggregate") -> None:
    if not isinstance(nodes, list):
        fail(f"{path} must be a list")
    for node in nodes:
        where = f"{path}[{node.get('name', '?')!r}]"
        if set(node) != {"name", "category", "count", "counters", "children"}:
            fail(f"{where} has unexpected keys {sorted(node)}")
        if not isinstance(node["count"], int) or node["count"] < 1:
            fail(f"{where}.count must be a positive integer")
        for key, value in node["counters"].items():
            if not isinstance(value, int):
                fail(f"{where}.counters[{key!r}] is not an integer (got {value!r})")
        check_aggregate(node["children"], where)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1], encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        fail("top level must be a JSON object (Chrome trace object format)")
    check_events(payload.get("traceEvents"))
    if "aggregate" not in payload:
        fail("embedded aggregate tree missing")
    check_aggregate(payload["aggregate"])
    if not payload["aggregate"]:
        fail("aggregate tree is empty")
    n_events = len(payload["traceEvents"])
    print(f"check_trace: OK: {argv[1]} ({n_events} events, aggregate present)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
