"""Peak-RSS vs wall-clock trade-off for the out-of-core chunked executor.

For each dataset, measures the numeric multiply two ways:

* **in-memory** — ``algo.multiply(ctx)``, the full expansion resident;
* **chunked** — :func:`repro.oocore.chunked_multiply` under each
  ``--budgets`` entry: row panels sized from the workload sums, partials
  spilling to disk through the crash-safe store.

Every cell runs in its **own subprocess** (``--cell``): peak RSS comes from
``getrusage(RUSAGE_SELF).ru_maxrss``, which is a lifetime high-water mark,
so cells sharing a process would all report the largest cell's peak.  Each
cell prints a JSON record including a SHA-256 digest of the result arrays;
the driver asserts every chunked digest equals the in-memory digest before
any timing is reported — the artifact can never contain timings for wrong
results.

``--smoke`` shrinks the grid to one dataset and one tiny budget but widens
it across **all seven schemes** — the CI leg that proves the chunked path
is bit-identical everywhere and actually spills (``--assert-spill``).

Writes the measurements as JSON: ``BENCH_pr10.json`` at the repo root
records this PR's numbers (schema_version 1: budgets are keyed by their CLI
spelling, memory in bytes).

Usage::

    PYTHONPATH=src python tools/bench_oocore.py --out BENCH_pr10.json
    PYTHONPATH=src python tools/bench_oocore.py --smoke --assert-spill \
        --out oocore-smoke.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.oocore.budget import BYTES_PER_PRODUCT  # noqa: E402

#: Trade-off grid defaults: mid-sized stand-ins whose expansions comfortably
#: exceed the smallest budget, so every budget level actually panels+spills.
DATASETS = ["harbor", "protein", "slashdot"]
BUDGETS = ["64M", "16M", "4M", "1M"]
SMOKE_DATASET = "harbor"
SMOKE_BUDGET = "8M"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _digest(c) -> str:
    h = hashlib.sha256()
    h.update(repr(c.shape).encode())
    for arr in (c.indptr, c.indices, c.data):
        h.update(arr.tobytes())
    return h.hexdigest()


def run_cell(dataset: str, algorithm: str, budget: str | None) -> dict:
    """One measurement in this process (the ``--cell`` entry point)."""
    from repro.bench.runner import paper_algorithms
    from repro.datasets import loader
    from repro.spgemm.base import MultiplyContext

    algo = next(a for a in paper_algorithms() if a.name == algorithm)
    loaded = loader.load(dataset)
    record = {"dataset": dataset, "algorithm": algorithm, "budget": budget}
    if budget is None:
        ctx = MultiplyContext.build(loaded.a, loaded.b)
        start = time.perf_counter()
        result = algo.multiply(ctx)
        record["seconds"] = time.perf_counter() - start
        record["oocore"] = None
    else:
        from repro.oocore import chunked_multiply

        start = time.perf_counter()
        result, stats = chunked_multiply(algo, loaded.a, loaded.b, mem_budget=budget)
        record["seconds"] = time.perf_counter() - start
        record["oocore"] = stats.as_dict()
    record["nnz_c"] = result.nnz
    record["digest"] = _digest(result)
    record["peak_rss_bytes"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    return record


def spawn_cell(dataset: str, algorithm: str, budget: str | None) -> dict:
    """Run one cell in a fresh interpreter so its peak RSS is its own."""
    cmd = [sys.executable, str(Path(__file__).resolve()), "--cell", dataset, algorithm]
    if budget is not None:
        cmd += ["--cell-budget", budget]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(cmd, cwd=ROOT, env=env, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        raise RuntimeError(f"cell ({dataset}, {algorithm}, {budget}) failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--budgets", nargs="*", default=None,
                        help="memory budgets to sweep (e.g. 64M 4M)")
    parser.add_argument("--algorithms", nargs="*", default=["row-product"])
    parser.add_argument("--smoke", action="store_true",
                        help="one small dataset, one tiny budget, all seven "
                             "schemes (the CI bit-identity leg)")
    parser.add_argument("--assert-spill", action="store_true",
                        help="fail unless at least one partial spilled to disk")
    parser.add_argument("--out", default="BENCH_pr10.json")
    parser.add_argument("--cell", nargs=2, metavar=("DATASET", "ALGO"),
                        default=None, help=argparse.SUPPRESS)
    parser.add_argument("--cell-budget", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.cell is not None:
        print(json.dumps(run_cell(args.cell[0], args.cell[1], args.cell_budget)))
        return 0

    if args.smoke:
        from repro.bench.runner import paper_algorithms

        datasets = args.datasets or [SMOKE_DATASET]
        budgets = args.budgets or [SMOKE_BUDGET]
        algorithms = [a.name for a in paper_algorithms()]
    else:
        datasets = args.datasets or DATASETS
        budgets = args.budgets or BUDGETS
        algorithms = args.algorithms

    results, failures = [], []
    total_spills = 0
    for dataset in datasets:
        for algorithm in algorithms:
            baseline = spawn_cell(dataset, algorithm, None)
            record = {
                "dataset": dataset,
                "algorithm": algorithm,
                "nnz_c": baseline["nnz_c"],
                "in_memory": {
                    "seconds": baseline["seconds"],
                    "peak_rss_bytes": baseline["peak_rss_bytes"],
                },
                "budgets": {},
            }
            print(
                f"{dataset:12s} {algorithm:18s} in-memory "
                f"{baseline['seconds'] * 1e3:8.1f} ms  "
                f"rss {baseline['peak_rss_bytes'] >> 20:5d} MiB"
            )
            for budget in budgets:
                cell = spawn_cell(dataset, algorithm, budget)
                identical = cell["digest"] == baseline["digest"]
                if not identical:
                    failures.append(
                        f"{dataset}/{algorithm} @ {budget}: result differs "
                        "from the in-memory path"
                    )
                ooc = cell["oocore"]
                total_spills += ooc["spill_count"]
                record["budgets"][budget] = {
                    "seconds": cell["seconds"],
                    "peak_rss_bytes": cell["peak_rss_bytes"],
                    "slowdown": cell["seconds"] / baseline["seconds"],
                    "rss_ratio": (
                        cell["peak_rss_bytes"] / baseline["peak_rss_bytes"]
                    ),
                    "identical": identical,
                    "oocore": ooc,
                }
                print(
                    f"{dataset:12s} {algorithm:18s} {budget:>9s} "
                    f"{cell['seconds'] * 1e3:8.1f} ms  "
                    f"rss {cell['peak_rss_bytes'] >> 20:5d} MiB  "
                    f"panels {ooc['n_panels']:4d}  spills {ooc['spill_count']:4d}  "
                    f"{'ok' if identical else 'DIFFERS'}"
                )
            results.append(record)

    if args.assert_spill and total_spills == 0:
        failures.append("no spill occurred anywhere in the grid "
                        "(budgets too large to exercise the spill path)")

    payload = {
        "description": "repro.oocore panel-chunked multiply: peak-RSS vs "
                       "wall-clock across memory budgets, every cell in its "
                       "own process (bit-identity vs in-memory asserted "
                       "per cell)",
        "schema_version": 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpu_count": os.cpu_count(),
        "host_available_cpus": _available_cpus(),
        "bytes_per_product": BYTES_PER_PRODUCT,
        "smoke": args.smoke,
        "results": results,
        "total_spills": total_spills,
        "bit_identical": not any("differs" in f for f in failures),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(f"wrote {len(results)} records to {args.out} "
          f"({total_spills} spills recorded)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
