"""Schema-validate every committed ``BENCH_*.json`` artifact.

The repo root accumulates one BENCH artifact per PR (``BENCH_pr6.json``,
...).  They are read by humans and trend tooling long after the PR merges,
so CI enforces a minimal contract here instead of letting the schema drift
silently:

* the filename must be ``BENCH_pr<N>.json`` and the payload a JSON object;
* every artifact carries a non-empty ``description`` and the ``python``
  version that produced it;
* artifacts from PR 5 onward carry host provenance — ``platform`` and
  ``host_cpu_count`` — because from there the numbers include process-pool
  speedups that are meaningless without knowing the host's core count
  (earlier artifacts are grandfathered);
* ``schema_version`` (absent = 0) must be a non-negative integer and
  non-decreasing in PR order — a newer PR may upgrade the schema, never
  silently downgrade it;
* a ``bit_identical`` field, when present, must be ``true`` — an artifact
  recording timings for wrong results must never be committed.

Runs as a tier-1 CI step.  Exits non-zero listing every violation.

Usage::

    python tools/check_bench.py
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_NAME = re.compile(r"^BENCH_pr(\d+)\.json$")

#: Artifacts before this PR number predate the host-provenance contract.
HOST_PROVENANCE_SINCE = 5


def check_artifact(path: Path) -> list[str]:
    """Validate one artifact; returns error strings (empty = valid)."""
    match = _NAME.match(path.name)
    if match is None:
        return [f"{path.name}: does not match BENCH_pr<N>.json"]
    errors = []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable JSON ({exc})"]
    if not isinstance(payload, dict):
        return [f"{path.name}: payload must be a JSON object"]

    description = payload.get("description")
    if not isinstance(description, str) or not description.strip():
        errors.append(f"{path.name}: missing or empty 'description'")
    if not isinstance(payload.get("python"), str):
        errors.append(f"{path.name}: missing 'python' version string")

    pr = int(match.group(1))
    if pr >= HOST_PROVENANCE_SINCE:
        if not isinstance(payload.get("platform"), str):
            errors.append(f"{path.name}: missing 'platform' host provenance")
        cpus = payload.get("host_cpu_count")
        if not isinstance(cpus, int) or cpus < 1:
            errors.append(f"{path.name}: 'host_cpu_count' must be a positive int")

    version = payload.get("schema_version", 0)
    if not isinstance(version, int) or isinstance(version, bool) or version < 0:
        errors.append(f"{path.name}: 'schema_version' must be a non-negative int")

    if "bit_identical" in payload and payload["bit_identical"] is not True:
        errors.append(f"{path.name}: 'bit_identical' is not true")
    return errors


def schema_version_of(path: Path) -> int:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return 0
    version = payload.get("schema_version", 0) if isinstance(payload, dict) else 0
    return version if isinstance(version, int) and not isinstance(version, bool) else 0


def check_monotone(paths: list[Path]) -> list[str]:
    """schema_version must never decrease as the PR number grows."""
    numbered = sorted((int(m.group(1)), p) for p in paths if (m := _NAME.match(p.name)))
    errors = []
    high_pr, high_version = None, 0
    for pr, path in numbered:
        version = schema_version_of(path)
        if version < high_version:
            errors.append(
                f"{path.name}: schema_version {version} is below "
                f"BENCH_pr{high_pr}.json's {high_version} (must be monotone)"
            )
        else:
            high_pr, high_version = pr, version
    return errors


def main() -> int:
    paths = sorted(ROOT.glob("BENCH_*.json"))
    if not paths:
        print("check_bench: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    failures = []
    for path in paths:
        failures.extend(check_artifact(path))
    failures.extend(check_monotone(paths))
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    status = "FAILED" if failures else "ok"
    print(f"check_bench: {len(paths)} artifacts checked, {len(failures)} violations ({status})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
