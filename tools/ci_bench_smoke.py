"""CI bench smoke: prove serial, parallel and cached execution agree.

Runs a small Figure-8-style grid (two synthetic stand-in matrices, all seven
schemes) three ways —

1. serially (``workers=1``, no cache),
2. through the process-pool engine (``--workers``, default 2, no cache),
3. twice against a fresh result cache (cold write, then warm read) —

asserts every path yields **byte-identical** serialised ``BenchResult``s and
that the warm pass is answered entirely from cache, then writes the results
plus a comparison record as a JSON artifact for the CI run.

Independently of the bench grid, every dataset x scheme numeric product is
also computed twice — serially and through the ``repro.exec`` partitioned
execution plane (``--exec-workers``, default 2, with the size threshold
forced to zero so every kernel actually goes through the pool) — and the
resulting CSR matrices must match **bit for bit** (indptr, indices, data).

The serial results are additionally diffed against a committed golden grid
(``--golden``, default ``tools/golden/bench_smoke_golden.json``): every field
must be exactly equal, except ``gflops`` which may drift by at most 1e-9.
Any intended change to simulation semantics must regenerate the golden with
``--update-golden`` and commit it alongside the change.

``--kernel-backend`` runs the entire smoke under a non-default kernel
backend (e.g. ``numba``).  Because backends are bit-identical by contract,
the *same* committed golden grid must still match — CI's numba leg runs
``--kernel-backend numba --exec-workers 2`` against the golden written by
the numpy leg.  An unavailable backend exits 2 (the CI leg guards on
importability first, so wheel gaps skip rather than fail).

Exit code 0 on success, 1 on any mismatch, 2 on an unavailable backend.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

import numpy as np

from repro import exec as rexec
from repro import kernels
from repro.bench.cache import ResultCache, result_to_dict
from repro.bench.runner import clear_context_cache, get_context, paper_algorithms, run_matrix
from repro.datasets.loader import clear_cache
from repro.errors import KernelBackendError

DATASETS = ["poisson3da", "as_caida"]
DEFAULT_GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "bench_smoke_golden.json")
GFLOPS_TOLERANCE = 1e-9


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _canonical(results) -> dict[str, str]:
    """Map 'dataset/algorithm' -> canonical JSON of the full result."""
    return {
        f"{name}/{algo}": json.dumps(result_to_dict(res), sort_keys=True)
        for (name, algo), res in results.items()
    }


def _diff_cell(path: str, golden, current, failures: list[str]) -> None:
    """Require exact equality, except ``gflops`` within GFLOPS_TOLERANCE."""
    if isinstance(golden, dict) and isinstance(current, dict):
        for key in sorted(set(golden) | set(current)):
            if key not in golden:
                failures.append(f"golden: unexpected field {path}/{key}")
            elif key not in current:
                failures.append(f"golden: missing field {path}/{key}")
            else:
                _diff_cell(f"{path}/{key}", golden[key], current[key], failures)
    elif isinstance(golden, list) and isinstance(current, list):
        if len(golden) != len(current):
            failures.append(f"golden: length mismatch at {path}")
            return
        for i, (g, c) in enumerate(zip(golden, current)):
            _diff_cell(f"{path}[{i}]", g, c, failures)
    elif path.rsplit("/", 1)[-1] == "gflops":
        if abs(float(golden) - float(current)) > GFLOPS_TOLERANCE:
            failures.append(f"golden: gflops drift at {path}: {golden} vs {current}")
    elif golden != current:
        failures.append(f"golden: value mismatch at {path}: {golden!r} vs {current!r}")


def _check_golden(path: str, serial: dict[str, str], failures: list[str]) -> None:
    if not os.path.exists(path):
        failures.append(
            f"golden file {path} not found; run with --update-golden to create it"
        )
        return
    with open(path, encoding="utf-8") as fh:
        golden = json.load(fh)
    current = {cell: json.loads(blob) for cell, blob in serial.items()}
    for cell in sorted(set(golden) | set(current)):
        if cell not in golden:
            failures.append(f"golden: cell {cell} not in golden grid")
        elif cell not in current:
            failures.append(f"golden: cell {cell} missing from this run")
        else:
            _diff_cell(cell, golden[cell], current[cell], failures)


def _check_exec_plane(datasets, exec_workers: int, failures: list[str]) -> int:
    """Serial vs ``repro.exec`` numeric products, bit for bit; returns cells."""
    checked = 0
    for name in datasets:
        ctx = get_context(name)
        for algo in paper_algorithms():
            serial = algo.multiply(ctx)
            # min_items=0 forces every kernel through the pool so this
            # actually exercises the partitioned path on smoke-size inputs.
            with rexec.engine_scope(exec_workers, min_items=0):
                par = algo.multiply(ctx)
            if not (
                serial.shape == par.shape
                and np.array_equal(serial.indptr, par.indptr)
                and np.array_equal(serial.indices, par.indices)
                and np.array_equal(serial.data, par.data)
            ):
                failures.append(
                    f"exec-plane mismatch in {name}/{algo.name} "
                    f"(exec-workers={exec_workers})"
                )
            checked += 1
    return checked


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--exec-workers", type=int, default=2, metavar="N",
        help="pool width for the exec-plane bit-exactness check (0 skips it)",
    )
    parser.add_argument("--out", default="bench-smoke.json", metavar="FILE")
    parser.add_argument("--datasets", nargs="*", default=DATASETS)
    parser.add_argument(
        "--golden", default=DEFAULT_GOLDEN, metavar="FILE",
        help="committed golden grid to diff serial results against",
    )
    parser.add_argument(
        "--update-golden", action="store_true",
        help="rewrite the golden grid from this run instead of diffing",
    )
    parser.add_argument(
        "--kernel-backend", choices=list(kernels.BACKEND_NAMES), default=None,
        help="run the whole smoke under this kernel backend; the committed "
             "golden must still match bit for bit",
    )
    args = parser.parse_args()

    try:
        with kernels.use(args.kernel_backend):
            return _run(args)
    except KernelBackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args) -> int:
    """The smoke proper, under an already-selected kernel backend."""
    failures: list[str] = []
    grid = (args.datasets, paper_algorithms())

    serial = _canonical(run_matrix(*grid, workers=1, cache=None))

    clear_context_cache()
    clear_cache()
    parallel = _canonical(run_matrix(*grid, workers=args.workers, cache=None))

    if list(serial) != list(parallel):
        failures.append("result ordering differs between serial and parallel runs")
    for cell, blob in serial.items():
        if parallel.get(cell) != blob:
            failures.append(f"serial vs parallel mismatch in {cell}")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        clear_context_cache()
        clear_cache()
        cold = _canonical(run_matrix(*grid, workers=args.workers, cache=cache))
        cold_misses = cache.misses
        clear_context_cache()
        clear_cache()
        warm = _canonical(run_matrix(*grid, workers=args.workers, cache=cache))
        if cache.hits != len(warm):
            failures.append(
                f"warm pass expected {len(warm)} cache hits, saw {cache.hits}"
            )
        for cell, blob in serial.items():
            if cold.get(cell) != blob:
                failures.append(f"serial vs cold-cache mismatch in {cell}")
            if warm.get(cell) != blob:
                failures.append(f"serial vs warm-cache mismatch in {cell}")

    exec_cells = 0
    if args.exec_workers > 1:
        exec_cells = _check_exec_plane(args.datasets, args.exec_workers, failures)

    if args.update_golden:
        os.makedirs(os.path.dirname(args.golden) or ".", exist_ok=True)
        with open(args.golden, "w", encoding="utf-8") as fh:
            json.dump(
                {cell: json.loads(blob) for cell, blob in serial.items()},
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote golden grid ({len(serial)} cells) to {args.golden}")
    else:
        _check_golden(args.golden, serial, failures)

    artifact = {
        "datasets": args.datasets,
        "workers": args.workers,
        "exec_workers": args.exec_workers,
        "kernel_backend": kernels.active_name(),
        "host_available_cpus": _available_cpus(),
        "exec_plane_cells": exec_cells,
        "cells": len(serial),
        "cold_cache_misses": cold_misses,
        "failures": failures,
        "results": {cell: json.loads(blob) for cell, blob in serial.items()},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(serial)} cells identical across serial, "
        f"parallel(workers={args.workers}) and cached paths; "
        f"{exec_cells} numeric products bit-identical under "
        f"exec-workers={args.exec_workers} "
        f"[backend={kernels.active_name()}] -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
