"""CI bench smoke: prove serial, parallel and cached execution agree.

Runs a small Figure-8-style grid (two synthetic stand-in matrices, all seven
schemes) three ways —

1. serially (``workers=1``, no cache),
2. through the process-pool engine (``--workers``, default 2, no cache),
3. twice against a fresh result cache (cold write, then warm read) —

asserts every path yields **byte-identical** serialised ``BenchResult``s and
that the warm pass is answered entirely from cache, then writes the results
plus a comparison record as a JSON artifact for the CI run.

Exit code 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.bench.cache import ResultCache, result_to_dict
from repro.bench.runner import clear_context_cache, paper_algorithms, run_matrix
from repro.datasets.loader import clear_cache

DATASETS = ["poisson3da", "as_caida"]


def _canonical(results) -> dict[str, str]:
    """Map 'dataset/algorithm' -> canonical JSON of the full result."""
    return {
        f"{name}/{algo}": json.dumps(result_to_dict(res), sort_keys=True)
        for (name, algo), res in results.items()
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default="bench-smoke.json", metavar="FILE")
    parser.add_argument("--datasets", nargs="*", default=DATASETS)
    args = parser.parse_args()

    failures: list[str] = []
    grid = (args.datasets, paper_algorithms())

    serial = _canonical(run_matrix(*grid, workers=1, cache=None))

    clear_context_cache()
    clear_cache()
    parallel = _canonical(run_matrix(*grid, workers=args.workers, cache=None))

    if list(serial) != list(parallel):
        failures.append("result ordering differs between serial and parallel runs")
    for cell, blob in serial.items():
        if parallel.get(cell) != blob:
            failures.append(f"serial vs parallel mismatch in {cell}")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        clear_context_cache()
        clear_cache()
        cold = _canonical(run_matrix(*grid, workers=args.workers, cache=cache))
        cold_misses = cache.misses
        clear_context_cache()
        clear_cache()
        warm = _canonical(run_matrix(*grid, workers=args.workers, cache=cache))
        if cache.hits != len(warm):
            failures.append(
                f"warm pass expected {len(warm)} cache hits, saw {cache.hits}"
            )
        for cell, blob in serial.items():
            if cold.get(cell) != blob:
                failures.append(f"serial vs cold-cache mismatch in {cell}")
            if warm.get(cell) != blob:
                failures.append(f"serial vs warm-cache mismatch in {cell}")

    artifact = {
        "datasets": args.datasets,
        "workers": args.workers,
        "cells": len(serial),
        "cold_cache_misses": cold_misses,
        "failures": failures,
        "results": {cell: json.loads(blob) for cell, blob in serial.items()},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(serial)} cells identical across serial, "
        f"parallel(workers={args.workers}) and cached paths -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
