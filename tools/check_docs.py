"""Validate documented CLI commands against the real argparse tree.

Scans README.md, EXPERIMENTS.md and docs/ARCHITECTURE.md for command lines
and checks each one *without executing anything*:

* ``repro ...`` / ``python -m repro ...`` lines inside fenced code blocks,
  and inline ``python -m repro ...`` spans, are parsed with
  :func:`repro.cli.build_parser` (argparse rejects unknown subcommands,
  flags and experiment names); positional dataset arguments are checked
  against the catalog.
* ``python -m repro.some.module`` spellings are resolved with
  :func:`importlib.util.find_spec`.
* ``python tools/script.py`` lines and inline file references
  (``tools/...``, ``docs/...``, ``src/...``, ``tests/...``) must exist on
  disk.
* every option of the ``serve`` subparser must be mentioned in README.md
  AND in the docs/OPERATIONS.md runbook — the serving front-end is
  configured entirely through its flags, so an undocumented flag is a docs
  bug.
* every out-of-core flag (``repro.cli.OOCORE_FLAGS``) must be registered on
  the ``run``, ``compare`` and ``bench`` subparsers and mentioned in both
  README.md and EXPERIMENTS.md (where the full-scale instructions live).
* every field the ``/stats`` payload can contain
  (:func:`repro.serve.server.stats_field_names`) must appear backticked in
  the docs/OPERATIONS.md glossary — operators debug from those names.

Inline spans containing ``<`` are templates (``repro experiment <name>``)
and are skipped; fenced commands must be concrete.  Exits non-zero listing
every stale command or dead reference.

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import io
import re
import shlex
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import build_parser  # noqa: E402
from repro.datasets.catalog import list_names  # noqa: E402

DOCS = ["README.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md", "docs/OPERATIONS.md"]

_INLINE = re.compile(r"`([^`]+)`")
_ENV_ASSIGN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")
_FILE_REF = re.compile(
    r"^(?:tools|docs|src|tests|examples|benchmarks)/[\w./-]+\.(?:py|md|json)$"
)


def _strip_env(tokens: list[str]) -> list[str]:
    """Drop leading ``NAME=value`` environment assignments."""
    while tokens and _ENV_ASSIGN.match(tokens[0]):
        tokens = tokens[1:]
    return tokens


def _is_command(tokens: list[str]) -> bool:
    if not tokens:
        return False
    if tokens[0] == "repro":
        return True
    if tokens[0] == "python" and len(tokens) >= 2:
        if tokens[1] == "-m":
            return len(tokens) >= 3 and (
                tokens[2] == "repro" or tokens[2].startswith("repro.")
            )
        return tokens[1].startswith("tools/")
    return False


def iter_candidates(text: str):
    """Yield (line number, command string) for every documented command."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            cmd = line.strip().removeprefix("$ ").split("#", 1)[0].strip()
            try:
                tokens = _strip_env(shlex.split(cmd)) if cmd else []
            except ValueError:
                continue  # prose with an apostrophe, not a command
            if tokens and _is_command(tokens):
                yield lineno, cmd
        else:
            for span in _INLINE.findall(line):
                span = span.strip()
                if any(marker in span for marker in "<…{"):
                    continue  # a template, not an invocation
                if _FILE_REF.match(span):
                    yield lineno, f"FILE {span}"
                    continue
                try:
                    tokens = _strip_env(shlex.split(span))
                except ValueError:
                    continue
                if tokens[:2] == ["python", "-m"] and _is_command(tokens):
                    yield lineno, span


def _check_parse(cli_args: list[str]) -> str | None:
    buf = io.StringIO()
    try:
        with contextlib.redirect_stderr(buf), contextlib.redirect_stdout(buf):
            args = build_parser().parse_args(cli_args)
    except SystemExit as exc:
        if exc.code not in (0, None):
            detail = buf.getvalue().strip().splitlines()
            return detail[-1] if detail else "does not parse"
        return None
    datasets = []
    if hasattr(args, "dataset"):
        datasets.append(args.dataset)
    datasets.extend(getattr(args, "datasets", None) or [])
    unknown = sorted(set(datasets) - set(list_names(None)))
    if unknown:
        return f"unknown dataset(s): {', '.join(unknown)}"
    return None


def check_command(cmd: str) -> str | None:
    """Return an error message for a bad command, or None if it is valid."""
    if cmd.startswith("FILE "):
        path = cmd.removeprefix("FILE ")
        return None if (ROOT / path).exists() else "referenced file does not exist"
    tokens = _strip_env(shlex.split(cmd))
    if tokens[0] == "repro":
        return _check_parse(tokens[1:])
    if tokens[1] == "-m":
        target = tokens[2]
        if target == "repro":
            return _check_parse(tokens[3:])
        try:
            spec = importlib.util.find_spec(target)
        except (ImportError, ModuleNotFoundError):
            spec = None
        return None if spec is not None else f"module {target} not found"
    script = ROOT / tokens[1]
    return None if script.exists() else f"script {tokens[1]} does not exist"


def _subparser_option_strings(command: str) -> list[str]:
    """Long option strings of one subparser (excluding --help)."""
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    sub = subparsers.choices[command]
    return sorted(
        opt
        for action in sub._actions
        for opt in action.option_strings
        if opt.startswith("--") and opt != "--help"
    )


def _serve_option_strings() -> list[str]:
    """Long option strings of the ``serve`` subparser (excluding --help)."""
    return _subparser_option_strings("serve")


def check_serve_flags() -> list[tuple[str, int, str, str]]:
    """Every serve flag must appear in README.md AND the operator runbook."""
    failures = []
    for doc in ("README.md", "docs/OPERATIONS.md"):
        path = ROOT / doc
        text = path.read_text(encoding="utf-8") if path.exists() else ""
        failures.extend(
            (doc, 0, f"serve flag {flag}", f"not documented in {doc}")
            for flag in _serve_option_strings()
            if flag not in text
        )
    return failures


def check_oocore_flags() -> list[tuple[str, int, str, str]]:
    """The out-of-core flags must exist on run/compare/bench AND be documented.

    ``repro.cli.OOCORE_FLAGS`` is the authoritative flag set; each flag must
    be registered on every out-of-core-capable subparser (so the CLI cannot
    silently drop one) and mentioned in README.md and EXPERIMENTS.md (the
    full-scale instructions live there).
    """
    from repro.cli import OOCORE_FLAGS

    failures = []
    for command in ("run", "compare", "bench"):
        options = _subparser_option_strings(command)
        failures.extend(
            (f"repro {command}", 0, f"oocore flag {flag}",
             f"not registered on the {command} subparser")
            for flag in OOCORE_FLAGS
            if flag not in options
        )
    for doc in ("README.md", "EXPERIMENTS.md"):
        path = ROOT / doc
        text = path.read_text(encoding="utf-8") if path.exists() else ""
        failures.extend(
            (doc, 0, f"oocore flag {flag}", f"not documented in {doc}")
            for flag in OOCORE_FLAGS
            if flag not in text
        )
    return failures


def check_stats_glossary() -> list[tuple[str, int, str, str]]:
    """Every possible ``/stats`` field must be in the OPERATIONS glossary.

    Field names come from :func:`repro.serve.server.stats_field_names` — the
    same schema walk a server test asserts covers live payloads — and must
    appear backticked somewhere in docs/OPERATIONS.md.
    """
    from repro.serve.server import stats_field_names

    path = ROOT / "docs/OPERATIONS.md"
    if not path.exists():
        return []  # the missing file is already reported by main()
    documented = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:  # fence contents would pair backticks across lines
            documented.update(_INLINE.findall(line))
    return [
        (
            "docs/OPERATIONS.md",
            0,
            f"/stats field {name}",
            "missing from the OPERATIONS.md glossary",
        )
        for name in sorted(stats_field_names())
        if name not in documented
    ]


def main() -> int:
    failures = []
    checked = 0
    for doc in DOCS:
        path = ROOT / doc
        if not path.exists():
            failures.append((doc, 0, doc, "documentation file missing"))
            continue
        for lineno, cmd in iter_candidates(path.read_text(encoding="utf-8")):
            checked += 1
            error = check_command(cmd)
            if error is not None:
                failures.append((doc, lineno, cmd, error))
    failures.extend(check_serve_flags())
    checked += 2 * len(_serve_option_strings())
    from repro.cli import OOCORE_FLAGS

    failures.extend(check_oocore_flags())
    checked += 5 * len(OOCORE_FLAGS)
    glossary_failures = check_stats_glossary()
    from repro.serve.server import stats_field_names

    checked += len(stats_field_names())
    failures.extend(glossary_failures)
    for doc, lineno, cmd, error in failures:
        print(f"{doc}:{lineno}: {cmd!r}: {error}", file=sys.stderr)
    status = "FAILED" if failures else "ok"
    print(f"check_docs: {checked} documented commands/references checked, "
          f"{len(failures)} stale ({status})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
