import sys, numpy as np, time
from repro.datasets import FLORIDA_NAMES, STANFORD_NAMES, load
from repro.spgemm import MultiplyContext, OuterProductSpGEMM, RowProductSpGEMM
from repro.core import BlockReorganizer, ReorganizerOptions
from repro.gpusim import GPUSimulator, TITAN_XP, CostModel

import dataclasses
overrides, cfg_overrides = {}, {}
for kv in sys.argv[1:]:
    k, v = kv.split('=')
    if k.startswith('cfg.'):
        cfg_overrides[k[4:]] = float(v)
    else:
        overrides[k] = float(v)
costs = CostModel().with_overrides(**overrides)
gpu = dataclasses.replace(TITAN_XP, **cfg_overrides) if cfg_overrides else TITAN_XP
sim = GPUSimulator(gpu, costs)
algos = {
    'row': RowProductSpGEMM(costs), 'outer': OuterProductSpGEMM(costs), 'BR': BlockReorganizer(costs),
    'Split': BlockReorganizer(costs, options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)),
    'Gather': BlockReorganizer(costs, options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)),
    'Limit': BlockReorganizer(costs, options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)),
}
speed = {k: [] for k in algos}; gfs = {}
t0 = time.time()
for name in FLORIDA_NAMES + STANFORD_NAMES:
    ds = load(name); ctx = MultiplyContext.build(ds.a, ds.b, a_csc=ds.a_csc); ctx.c_row_nnz
    r = {k: a.simulate(ctx, sim).total_seconds for k, a in algos.items()}
    for k in algos: speed[k].append(r['row']/r[k])
    gfs[name] = 2*ctx.total_work/r['row']/1e9
    print(f"{name:16s} rowGF={gfs[name]:5.2f} outer={r['row']/r['outer']:5.2f} BR={r['row']/r['BR']:5.2f} | vsO: S={r['outer']/r['Split']:5.2f} G={r['outer']/r['Gather']:5.2f} L={r['outer']/r['Limit']:5.2f}")
g = lambda k: np.exp(np.mean(np.log(speed[k])))
go = lambda k: np.exp(np.mean(np.log(np.array(speed[k])/np.array(speed['outer']))))
print(f"GEOMEAN(28): outer={g('outer'):.3f} BR={g('BR'):.3f} | vsOuter: Split={go('Split'):.3f} Gather={go('Gather'):.3f} Limit={go('Limit'):.3f} BR={go('BR'):.3f}  [{time.time()-t0:.0f}s]")
print(f"paper:       outer=0.95  BR=1.43  | vsOuter: Split=1.05  Gather=1.28  Limit=1.05  BR=1.51")
