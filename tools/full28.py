"""Full 28-matrix sweep with cost/config overrides, via the shared runner.

Usage::

    PYTHONPATH=src python tools/full28.py [k=v ...] [cfg.k=v ...] \
        [--workers N] [--cache-dir PATH] [--no-cache] [--out FILE]

Positional ``k=v`` pairs override :class:`CostModel` fields; ``cfg.k=v``
pairs override :class:`GPUConfig` fields (both participate in the result
cache's fingerprint, so every override combination is cached independently).
``--out FILE`` additionally writes the full result grid as JSON (used by the
scheduled ``bench-full`` CI workflow to upload the grid as an artifact).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time

import numpy as np

from repro.bench.cache import ResultCache, result_to_dict
from repro.bench.parallel import default_workers
from repro.bench.runner import run_matrix
from repro.core import BlockReorganizer, ReorganizerOptions
from repro.datasets import FLORIDA_NAMES, STANFORD_NAMES
from repro.gpusim import TITAN_XP, CostModel
from repro.spgemm import OuterProductSpGEMM, RowProductSpGEMM


def make_algorithms(costs: CostModel):
    """The sweep's roster: baselines plus the reorganizer and its ablations."""
    return {
        "row": RowProductSpGEMM(costs),
        "outer": OuterProductSpGEMM(costs),
        "BR": BlockReorganizer(costs),
        "Split": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)
        ),
        "Gather": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)
        ),
        "Limit": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("overrides", nargs="*", metavar="k=v",
                        help="CostModel overrides; prefix cfg. for GPUConfig")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (0 = all cores)")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the full result grid as JSON")
    args = parser.parse_args()

    overrides, cfg_overrides = {}, {}
    for kv in args.overrides:
        k, v = kv.split("=")
        if k.startswith("cfg."):
            cfg_overrides[k[4:]] = float(v)
        else:
            overrides[k] = float(v)
    costs = CostModel().with_overrides(**overrides)
    gpu = dataclasses.replace(TITAN_XP, **cfg_overrides) if cfg_overrides else TITAN_XP
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    workers = default_workers() if args.workers == 0 else args.workers

    algos = make_algorithms(costs)
    names = FLORIDA_NAMES + STANFORD_NAMES
    t0 = time.time()
    results = run_matrix(names, algos, gpu, costs, workers=workers, cache=cache)

    speed = {k: [] for k in algos}
    for name in names:
        r = {k: results[(name, k)].seconds for k in algos}
        for k in algos:
            speed[k].append(r["row"] / r[k])
        row_gf = results[(name, "row")].gflops
        print(
            f"{name:16s} rowGF={row_gf:5.2f} outer={r['row'] / r['outer']:5.2f} "
            f"BR={r['row'] / r['BR']:5.2f} | vsO: S={r['outer'] / r['Split']:5.2f} "
            f"G={r['outer'] / r['Gather']:5.2f} L={r['outer'] / r['Limit']:5.2f}"
        )

    def g(k):
        return np.exp(np.mean(np.log(speed[k])))

    def go(k):
        return np.exp(np.mean(np.log(np.array(speed[k]) / np.array(speed["outer"]))))

    print(
        f"GEOMEAN(28): outer={g('outer'):.3f} BR={g('BR'):.3f} | "
        f"vsOuter: Split={go('Split'):.3f} Gather={go('Gather'):.3f} "
        f"Limit={go('Limit'):.3f} BR={go('BR'):.3f}  [{time.time() - t0:.0f}s]"
    )
    print(
        "paper:       outer=0.95  BR=1.43  | vsOuter: Split=1.05  Gather=1.28  Limit=1.05  BR=1.51"
    )
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses ({cache.cache_dir})")
    if args.out:
        grid = {
            f"{name}/{algo}": result_to_dict(res)
            for (name, algo), res in results.items()
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(
                {"overrides": args.overrides, "cells": len(grid), "results": grid},
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {len(grid)}-cell grid to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
