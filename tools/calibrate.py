"""Calibration sweep: run baselines + BR + ablations over key datasets."""
import sys
import numpy as np
from repro.datasets import load
from repro.spgemm import MultiplyContext, OuterProductSpGEMM, RowProductSpGEMM
from repro.core import BlockReorganizer, ReorganizerOptions
from repro.gpusim import GPUSimulator, TITAN_XP, CostModel

names = sys.argv[1].split(',') if len(sys.argv) > 1 else (
    ['filter3d', 'harbor', '2cube_sphere', 'mario002', 'offshore',
     'youtube', 'as_caida', 'loc_gowalla', 'slashdot', 'web_notredame'])
overrides = {}
for kv in sys.argv[2:]:
    k, v = kv.split('='); overrides[k] = float(v)
costs = CostModel().with_overrides(**overrides) if overrides else CostModel()
sim = GPUSimulator(TITAN_XP, costs)

algos = {
    'row': RowProductSpGEMM(costs),
    'outer': OuterProductSpGEMM(costs),
    'BR': BlockReorganizer(costs),
    'B-Split': BlockReorganizer(costs, options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)),
    'B-Gather': BlockReorganizer(costs, options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)),
    'B-Limit': BlockReorganizer(costs, options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)),
}
speed = {k: [] for k in algos}
print(f"{'dataset':14s} {'rowGF':>6s} " + ' '.join(f'{k:>8s}' for k in algos))
for name in names:
    ds = load(name)
    ctx = MultiplyContext.build(ds.a, ds.b, a_csc=ds.a_csc)
    ctx.c_row_nnz  # force
    res = {k: a.simulate(ctx, sim) for k, a in algos.items()}
    base = res['row'].total_seconds
    for k in algos: speed[k].append(base / res[k].total_seconds)
    print(f"{name:14s} {res['row'].gflops:6.2f} " + ' '.join(f'{base/res[k].total_seconds:8.2f}' for k in algos))
print(f"{'GEOMEAN':14s} {'':6s} " + ' '.join(f'{np.exp(np.mean(np.log(speed[k]))):8.2f}' for k in algos))
