"""Quick 10-dataset sweep through the shared runner (cache + sharding aware).

Usage::

    PYTHONPATH=src python tools/sweep.py [--workers N] [--cache-dir PATH] [--no-cache]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.bench.cache import ResultCache
from repro.bench.parallel import default_workers
from repro.bench.runner import run_matrix
from repro.core import BlockReorganizer, ReorganizerOptions
from repro.gpusim import TITAN_XP
from repro.spgemm import OuterProductSpGEMM, RowProductSpGEMM

NAMES = [
    "filter3d", "harbor", "2cube_sphere", "mario002", "offshore",
    "youtube", "as_caida", "loc_gowalla", "slashdot", "web_notredame",
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (0 = all cores)")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    workers = default_workers() if args.workers == 0 else args.workers

    algos = {
        "row": RowProductSpGEMM(),
        "outer": OuterProductSpGEMM(),
        "BR": BlockReorganizer(),
        "Split": BlockReorganizer(
            options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)
        ),
        "Gather": BlockReorganizer(
            options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)
        ),
        "Limit": BlockReorganizer(
            options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)
        ),
    }
    results = run_matrix(NAMES, algos, TITAN_XP, workers=workers, cache=cache)

    rows_speed = {k: [] for k in algos}
    print(f"{'dataset':14s} {'rowGF':>6s} | vs-row: outer BR | vs-outer: Split Gather Limit BR")
    for name in NAMES:
        r = {k: results[(name, k)].seconds for k in algos}
        for k in algos:
            rows_speed[k].append(r["row"] / r[k])
        print(
            f"{name:14s} {results[(name, 'row')].gflops:6.2f} | "
            f"{r['row'] / r['outer']:5.2f} {r['row'] / r['BR']:5.2f} |"
            f" {r['outer'] / r['Split']:6.2f} {r['outer'] / r['Gather']:6.2f}"
            f" {r['outer'] / r['Limit']:6.2f} {r['outer'] / r['BR']:5.2f}"
        )

    def g(k):
        return np.exp(np.mean(np.log(rows_speed[k])))

    def go(k):
        return np.exp(np.mean(np.log(np.array(rows_speed[k]) / np.array(rows_speed["outer"]))))

    print(
        f"{'GEOMEAN':14s} {'':6s} | {g('outer'):5.2f} {g('BR'):5.2f} | "
        f"{go('Split'):6.2f} {go('Gather'):6.2f} {go('Limit'):6.2f} {go('BR'):5.2f}"
    )
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses ({cache.cache_dir})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
