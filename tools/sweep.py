import numpy as np
from repro.datasets import load
from repro.spgemm import MultiplyContext, OuterProductSpGEMM, RowProductSpGEMM
from repro.core import BlockReorganizer, ReorganizerOptions
from repro.gpusim import GPUSimulator, TITAN_XP

sim = GPUSimulator(TITAN_XP)
names = ['filter3d','harbor','2cube_sphere','mario002','offshore','youtube','as_caida','loc_gowalla','slashdot','web_notredame']
algos = {
    'row': RowProductSpGEMM(), 'outer': OuterProductSpGEMM(), 'BR': BlockReorganizer(),
    'Split': BlockReorganizer(options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)),
    'Gather': BlockReorganizer(options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)),
    'Limit': BlockReorganizer(options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)),
}
rows_speed = {k: [] for k in algos}
print(f"{'dataset':14s} {'rowGF':>6s} | vs-row: outer BR | vs-outer: Split Gather Limit BR")
for name in names:
    ds = load(name); ctx = MultiplyContext.build(ds.a, ds.b, a_csc=ds.a_csc); ctx.c_row_nnz
    r = {k: a.simulate(ctx, sim).total_seconds for k, a in algos.items()}
    for k in algos: rows_speed[k].append(r['row']/r[k])
    print(f"{name:14s} {2*ctx.total_work/r['row']/1e9:6.2f} | {r['row']/r['outer']:5.2f} {r['row']/r['BR']:5.2f} |"
          f" {r['outer']/r['Split']:6.2f} {r['outer']/r['Gather']:6.2f} {r['outer']/r['Limit']:6.2f} {r['outer']/r['BR']:5.2f}")
g = lambda k: np.exp(np.mean(np.log(rows_speed[k])))
go = lambda k: np.exp(np.mean(np.log(np.array(rows_speed[k])/np.array(rows_speed['outer']))))
print(f"{'GEOMEAN':14s} {'':6s} | {g('outer'):5.2f} {g('BR'):5.2f} | {go('Split'):6.2f} {go('Gather'):6.2f} {go('Limit'):6.2f} {go('BR'):5.2f}")
