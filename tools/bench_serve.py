"""Serving bench: throughput/latency for ``repro serve`` under concurrency.

Starts the server as a subprocess (exactly as a user would: ``python -m
repro serve``), then drives it with N concurrent clients in two phases:

* **shared structure** — every client multiplies the same sparsity
  structure, so after the first request each one is a numeric replay and
  micro-batching amortises the single symbolic lowering across callers;
* **distinct structures** — every client brings its own structure, the
  worst case for amortisation (one lowering per client).

For each phase it records wall-clock throughput, p50/p99 latency and the
**amortisation factor** — requests answered per symbolic lowering paid,
read from the server's ``/stats`` deltas.  Latency is recorded twice: from
client wall clocks AND from the server's own ``/stats`` streaming
histogram, and the two views must agree within histogram-bucket tolerance
(the server buckets are sqrt(2)-spaced, so quantiles round up by at most
~41%; clients additionally see connection overhead).  Every multiply
response is asserted *bit-identical* to the same product computed locally
through :class:`repro.runtime.Runtime` (the batch-CLI path) — the server
runs with the multicore exec pool enabled, so this also pins exec-pool
dispatch to the serial reference.  Mixed multiply/pagerank traffic is
checked the same way.  A final ``/metrics`` scrape is validated against
the Prometheus exposition schema (``--metrics-out`` saves it), and
``--trace-dir`` makes the server export every request as a Chrome trace.
On shutdown (SIGTERM) the bench asserts a zero exit code, no leaked
``/dev/shm/repro-exec-*`` segments and no surviving worker processes.

Writes the measurements as JSON — ``BENCH_pr8.json`` at the repo root
records the PR's numbers.

Usage::

    PYTHONPATH=src python tools/bench_serve.py --out BENCH_pr8.json
    PYTHONPATH=src python tools/bench_serve.py --smoke   # CI: small + asserts
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import signal
import statistics
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.metrics.promtext import validate_exposition  # noqa: E402
from repro.runtime import Runtime, RuntimeConfig  # noqa: E402
from repro.serve.protocol import csr_from_wire, csr_to_wire  # noqa: E402
from repro.sparse.csr import CSRMatrix  # noqa: E402


def random_csr(rng: np.random.Generator, n: int, density: float) -> CSRMatrix:
    dense = (rng.random((n, n)) < density) * rng.random((n, n))
    return CSRMatrix.from_dense(dense)


def identical(x: CSRMatrix, y: CSRMatrix) -> bool:
    return (
        x.shape == y.shape
        and x.indptr.tobytes() == y.indptr.tobytes()
        and x.indices.tobytes() == y.indices.tobytes()
        and x.data.tobytes() == y.data.tobytes()
    )


class ServeClient:
    """Tiny blocking JSON-over-HTTP client for the bench threads."""

    def __init__(self, base: str) -> None:
        self.base = base

    def post(self, path: str, body: dict, tenant: str | None = None) -> dict:
        headers = {"Content-Type": "application/json"}
        if tenant:
            headers["X-Tenant"] = tenant
        req = urllib.request.Request(
            self.base + path, data=json.dumps(body).encode("utf-8"), headers=headers
        )
        with urllib.request.urlopen(req, timeout=120) as resp:
            return json.loads(resp.read())

    def get(self, path: str) -> dict:
        with urllib.request.urlopen(self.base + path, timeout=30) as resp:
            return json.loads(resp.read())

    def get_text(self, path: str) -> str:
        with urllib.request.urlopen(self.base + path, timeout=30) as resp:
            return resp.read().decode("utf-8")


def start_server(args) -> tuple[subprocess.Popen, str]:
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--max-inflight", str(args.max_inflight),
        "--batch-window", str(args.batch_window),
        "--exec-workers", str(args.exec_workers),
    ]
    if args.trace_dir:
        cmd += ["--trace-dir", args.trace_dir, "--trace-slow-ms", "0"]
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    banner = proc.stdout.readline().strip()
    if not banner.startswith("serving on "):
        raise RuntimeError(f"server failed to start: {banner!r}\n{proc.stderr.read()}")
    return proc, banner.split()[-1]


def worker_pids(server_pid: int) -> set[int]:
    """Direct children of the server (exec-pool workers), via /proc."""
    pids = set()
    for stat in glob.glob("/proc/[0-9]*/stat"):
        try:
            with open(stat) as fh:
                fields = fh.read().rsplit(")", 1)[1].split()
            if int(fields[1]) == server_pid:  # ppid is field 4 overall
                pids.add(int(stat.split("/")[2]))
        except (OSError, IndexError, ValueError):
            continue
    return pids


def run_phase(
    client: ServeClient,
    algorithm: str,
    matrices: list[tuple[CSRMatrix, CSRMatrix]],
    expected: list[CSRMatrix],
    clients: int,
    requests_each: int,
) -> tuple[dict, list[float]]:
    """Fire ``clients`` threads, each issuing ``requests_each`` multiplies.

    Client ``i`` uses structure ``matrices[i % len(matrices)]`` — pass one
    pair for the shared-structure phase, one per client for distinct.
    """
    stats_before = client.get("/stats")["runtime"]["plan_cache"]
    latencies: list[float] = []
    mismatches: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def one_client(i: int) -> None:
        a, b = matrices[i % len(matrices)]
        want = expected[i % len(expected)]
        payload = {"algorithm": algorithm, "a": csr_to_wire(a), "b": csr_to_wire(b)}
        barrier.wait()
        for _ in range(requests_each):
            start = time.perf_counter()
            reply = client.post("/v1/multiply", payload)
            elapsed = time.perf_counter() - start
            got = csr_from_wire(reply["result"], "result")
            with lock:
                latencies.append(elapsed)
                if not identical(got, want):
                    mismatches.append(f"client {i}: response != local result")

    threads = [threading.Thread(target=one_client, args=(i,)) for i in range(clients)]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    stats_after = client.get("/stats")["runtime"]["plan_cache"]

    if mismatches:
        raise AssertionError("; ".join(mismatches))
    total = clients * requests_each
    lowers = stats_after["lowers"] - stats_before["lowers"]
    latencies.sort()
    summary = {
        "clients": clients,
        "requests": total,
        "wall_seconds": wall,
        "throughput_rps": total / wall,
        "latency_ms": {
            "p50": statistics.quantiles(latencies, n=100)[49] * 1e3,
            "p99": statistics.quantiles(latencies, n=100)[98] * 1e3,
            "max": latencies[-1] * 1e3,
        },
        "symbolic_lowerings": lowers,
        "requests_per_lowering": total / lowers if lowers else None,
    }
    return summary, latencies


def check_latency_agreement(
    client_latencies: list[float], server_latency: dict
) -> dict:
    """Server histogram quantiles must agree with client wall clocks.

    The server rounds each quantile up to a sqrt(2)-spaced bucket bound and
    clients additionally measure connection/serialisation overhead, so
    "agree" means within a 2.5x factor plus a 10 ms absolute floor, in both
    directions.
    """
    ordered = sorted(client_latencies)
    agreement = {}
    for name, q in (("p50", 0.50), ("p99", 0.99)):
        client_ms = ordered[min(len(ordered) - 1, int(q * len(ordered)))] * 1e3
        server_ms = server_latency[name]
        ok = (
            server_ms <= client_ms * 2.5 + 10.0
            and client_ms <= server_ms * 2.5 + 10.0
        )
        agreement[name] = {
            "client_ms": client_ms,
            "server_ms": server_ms,
            "agree": ok,
        }
        assert ok, (
            f"server/client {name} disagree beyond bucket tolerance: "
            f"server {server_ms:.2f}ms vs client {client_ms:.2f}ms"
        )
    return agreement


def check_mixed_traffic(client: ServeClient, algorithm: str, adj: CSRMatrix) -> dict:
    """Concurrent mixed multiply/pagerank, checked against the local path."""
    with Runtime(RuntimeConfig()) as local:
        want_product = local.multiply(algorithm, adj, adj).result
        want_scores = local.pagerank(algorithm, adj).scores
    payload_mul = {"algorithm": algorithm, "a": csr_to_wire(adj), "b": csr_to_wire(adj)}
    payload_pr = {"algorithm": algorithm, "adjacency": csr_to_wire(adj)}
    failures: list[str] = []

    def do_multiply() -> None:
        got = csr_from_wire(client.post("/v1/multiply", payload_mul)["result"], "r")
        if not identical(got, want_product):
            failures.append("multiply response diverged")

    def do_pagerank() -> None:
        scores = np.asarray(client.post("/v1/pagerank", payload_pr)["scores"])
        if scores.tobytes() != want_scores.tobytes():
            failures.append("pagerank response diverged")

    threads = [
        threading.Thread(target=do_multiply if i % 2 == 0 else do_pagerank)
        for i in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise AssertionError("; ".join(sorted(set(failures))))
    return {"mixed_requests": len(threads), "bit_identical": True}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write results JSON here (e.g. BENCH_pr8.json)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="save the final /metrics scrape (Prometheus text)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="server exports per-request Chrome traces here")
    parser.add_argument("--exec-workers", type=int, default=2,
                        help="server exec-pool width (local reference stays serial)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests-per-client", type=int, default=6)
    parser.add_argument("--size", type=int, default=300, metavar="N",
                        help="operand dimension (NxN)")
    parser.add_argument("--density", type=float, default=0.02)
    parser.add_argument("--algorithm", default="row-product")
    parser.add_argument("--max-inflight", type=int, default=4)
    parser.add_argument("--batch-window", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="small workload + hard assertions (CI)")
    args = parser.parse_args()
    if args.smoke:
        args.clients, args.requests_per_client, args.size = 4, 3, 120

    rng = np.random.default_rng(args.seed)
    shared = random_csr(rng, args.size, args.density)
    shared_pair = (shared, random_csr(rng, args.size, args.density))
    distinct_pairs = [
        (random_csr(rng, args.size, args.density), random_csr(rng, args.size, args.density))
        for _ in range(args.clients)
    ]
    print(f"computing local references ({1 + args.clients} products) ...", flush=True)
    with Runtime(RuntimeConfig()) as local:
        shared_expected = [local.multiply(args.algorithm, *shared_pair).result]
        distinct_expected = [
            local.multiply(args.algorithm, a, b).result for a, b in distinct_pairs
        ]

    proc, base = start_server(args)
    client = ServeClient(base)
    try:
        workers = worker_pids(proc.pid)
        print(f"server up at {base} (pid {proc.pid})", flush=True)
        shared_phase, shared_lat = run_phase(
            client, args.algorithm, [shared_pair], shared_expected,
            args.clients, args.requests_per_client,
        )
        print(f"shared:   {shared_phase['throughput_rps']:.1f} req/s, "
              f"{shared_phase['requests_per_lowering'] or 0:.1f} requests/lowering",
              flush=True)
        distinct_phase, distinct_lat = run_phase(
            client, args.algorithm, distinct_pairs, distinct_expected,
            args.clients, args.requests_per_client,
        )
        print(f"distinct: {distinct_phase['throughput_rps']:.1f} req/s, "
              f"{distinct_phase['requests_per_lowering'] or 0:.1f} requests/lowering",
              flush=True)
        # Server-side view: the multiply route's streaming histogram must
        # agree with the client wall clocks collected above.
        phase_stats = client.get("/stats")
        server_latency = phase_stats["serving"]["routes"]["multiply"]["latency_ms"]
        agreement = check_latency_agreement(shared_lat + distinct_lat, server_latency)
        print(f"latency agreement: server p50={server_latency['p50']:.2f}ms "
              f"p99={server_latency['p99']:.2f}ms "
              f"(client p50={agreement['p50']['client_ms']:.2f}ms "
              f"p99={agreement['p99']['client_ms']:.2f}ms)", flush=True)
        mixed = check_mixed_traffic(client, args.algorithm, shared)
        print("mixed multiply/pagerank traffic bit-identical to local path", flush=True)
        metrics_text = client.get_text("/metrics")
        metrics_families = len(validate_exposition(metrics_text))
        print(f"/metrics scrape valid ({metrics_families} metric families)",
              flush=True)
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(metrics_text)
            print(f"wrote {args.metrics_out}", flush=True)
        final_stats = client.get("/stats")
        workers |= worker_pids(proc.pid)
    finally:
        proc.send_signal(signal.SIGTERM)
        exit_code = proc.wait(timeout=30)
    leaked_shm = glob.glob("/dev/shm/repro-exec-*")
    stray = {pid for pid in workers if os.path.exists(f"/proc/{pid}")}
    shutdown = {
        "exit_code": exit_code,
        "leaked_shm": len(leaked_shm),
        "stray_workers": len(stray),
    }
    print(f"shutdown: exit={exit_code}, leaked shm={len(leaked_shm)}, "
          f"stray workers={len(stray)}", flush=True)

    assert exit_code == 0, f"server exited {exit_code}"
    assert not leaked_shm, f"leaked shared memory: {leaked_shm}"
    assert not stray, f"stray worker processes: {stray}"
    amortised = shared_phase["requests_per_lowering"]
    assert amortised is not None and amortised > 1, (
        f"no amortisation under shared-structure load: {amortised}"
    )
    traces_exported = (
        len(glob.glob(os.path.join(args.trace_dir, "*.trace.json")))
        if args.trace_dir else None
    )
    if args.trace_dir:
        assert traces_exported, f"no traces exported to {args.trace_dir}"
        print(f"{traces_exported} request traces in {args.trace_dir}", flush=True)

    payload = {
        "description": (
            "repro serve under concurrent load: shared vs distinct operand "
            "structures, responses asserted bit-identical to the batch "
            "Runtime path (exec pool enabled server-side), amortisation "
            "factor = requests per symbolic lowering, server-histogram "
            "latency asserted against client wall clocks, /metrics scrape "
            "schema-validated"
        ),
        "engine": args.algorithm,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpu_count": os.cpu_count(),
        "operands": {"n": args.size, "density": args.density, "seed": args.seed},
        "server": {
            "max_inflight": args.max_inflight,
            "batch_window": args.batch_window,
            "exec_workers": args.exec_workers,
        },
        "shared_structure": shared_phase,
        "distinct_structures": distinct_phase,
        "server_latency_ms": server_latency,
        "latency_agreement": agreement,
        "mixed_traffic": mixed,
        "batching": final_stats["batching"],
        "serving": {
            key: final_stats["serving"][key]
            for key in ("queue_depth", "inflight_flops", "coalescence_factor",
                        "estimate_fallbacks", "traces_written")
        },
        "exec": final_stats["runtime"]["exec"],
        "metrics_families": metrics_families,
        "traces_exported": traces_exported,
        "amortisation_factor": amortised,
        "bit_identical": True,
        "clean_shutdown": shutdown,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", flush=True)
    print(json.dumps({k: payload[k] for k in
                      ("amortisation_factor", "bit_identical", "clean_shutdown")}))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
