"""Serial-vs-parallel wall-clock for the repro.exec numeric execution plane.

For each dataset (default: the catalog's largest intermediate-product
streams) and each pool width, measures the numeric hot path both ways:

* **cold multiply** — ``algo.multiply(ctx)`` (lowering + partitioned
  expansion/merge kernels), best of ``--repeats``;
* **warm replay** — an :class:`~repro.spgemm.session.IterativeSession` with a
  persistent engine: after the cold fill, ``--iterations`` structure-hit
  replays (the gather-multiply-sum primitive), mean per iteration.

Every parallel result is compared **bitwise** against the serial one before
any timing is reported — a mismatch aborts with exit code 1, so the artifact
can never contain timings for wrong results.

The grid has two further axes: ``--kernel-backend`` selects the numeric
kernel implementation (``numpy`` reference or compiled ``numba``, verified
bit-identical at selection time) and ``--partitioner`` the cut discipline
(``merge-path`` items+work diagonal or ``lpt`` weight prefix).

Writes the measurements (plus host CPU availability — process-pool speedups
are only meaningful when the host actually has spare cores) as JSON:
``BENCH_pr6.json`` at the repo root records this PR's numbers.

``--require-speedup X`` turns the run into a CI gate: on a host with at
least two available CPUs, every dataset must reach an ``X``-fold replay or
multiply speedup at two workers, else exit 1 (overhead regression).  On a
single-core host the gate records itself as skipped — enforcing it there
would only measure pool overhead.

Usage::

    PYTHONPATH=src python tools/bench_exec.py --out BENCH_pr6.json
    PYTHONPATH=src python tools/bench_exec.py --workers 2 \
        --require-speedup 1.0 --out bench_gate.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro import exec as rexec
from repro import kernels
from repro.bench.runner import get_context
from repro.errors import KernelBackendError
from repro.spgemm.rowproduct import RowProductSpGEMM
from repro.spgemm.session import IterativeSession

DATASETS = ["youtube", "protein", "ship"]


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _identical(x, y) -> bool:
    return (
        x.shape == y.shape
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.indices, y.indices)
        and np.array_equal(x.data, y.data)
    )


def _time_multiply(algo, ctx, engine, repeats: int):
    """Best-of-N wall-clock of one cold numeric execution; returns (s, C)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        with rexec.engine_scope(engine):
            result = algo.multiply(ctx)
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_replay(algo, ctx, workers: int, iterations: int, partitioner: str):
    """Mean warm-replay wall-clock through a persistent-engine session."""
    session = IterativeSession(algo, exec_workers=workers, exec_partitioner=partitioner)
    try:
        session.multiply(ctx.a_csr, ctx.b_csr)  # cold fill (not timed)
        start = time.perf_counter()
        for _ in range(iterations):
            result = session.multiply(ctx.a_csr, ctx.b_csr)
        mean = (time.perf_counter() - start) / iterations
        stats = (
            session.exec_engine.stats.as_dict()
            if session.exec_engine is not None
            else None
        )
        return mean, result, stats
    finally:
        session.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--datasets", nargs="*", default=DATASETS)
    parser.add_argument("--workers", type=int, nargs="*", default=[2, 4],
                        help="pool widths to compare against serial")
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold multiplies per mode (best is reported)")
    parser.add_argument("--iterations", type=int, default=10,
                        help="warm replays per mode (mean is reported)")
    parser.add_argument("--kernel-backend", choices=list(kernels.BACKEND_NAMES),
                        default=None,
                        help="kernel backend for every mode (default: ambient)")
    parser.add_argument("--partitioner", choices=list(rexec.PARTITIONER_NAMES),
                        default=rexec.DEFAULT_PARTITIONER,
                        help="cut discipline for the parallel modes")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless 2-worker speedup reaches X on a "
                             "multi-core host (overhead regression gate)")
    parser.add_argument("--out", default="BENCH_pr6.json")
    args = parser.parse_args()

    try:
        with kernels.use(args.kernel_backend):
            return _run(args)
    except KernelBackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args) -> int:
    """The measurement grid proper, under an already-selected backend."""
    algo = RowProductSpGEMM()
    records, failures = [], []
    for dataset in args.datasets:
        ctx = get_context(dataset)  # symbolic pass forced here, outside timings
        serial_s, serial_c = _time_multiply(algo, ctx, None, args.repeats)
        serial_replay_s, serial_replay_c, _ = _time_replay(
            algo, ctx, 1, args.iterations, args.partitioner
        )
        if not _identical(serial_c, serial_replay_c):
            failures.append(f"{dataset}: serial replay differs from cold multiply")
        record = {
            "dataset": dataset,
            "products": int(ctx.total_work),
            "nnz_c": int(ctx.nnz_c),
            "serial": {
                "multiply_seconds": serial_s,
                "replay_seconds": serial_replay_s,
            },
            "parallel": {},
        }
        for workers in args.workers:
            engine = rexec.ExecEngine(workers, partitioner=args.partitioner)
            try:
                par_s, par_c = _time_multiply(algo, ctx, engine, args.repeats)
                exec_stats = engine.stats.as_dict()
            finally:
                engine.close()
            par_replay_s, par_replay_c, replay_stats = _time_replay(
                algo, ctx, workers, args.iterations, args.partitioner
            )
            if not _identical(serial_c, par_c):
                failures.append(f"{dataset}: workers={workers} multiply differs")
            if not _identical(serial_c, par_replay_c):
                failures.append(f"{dataset}: workers={workers} replay differs")
            record["parallel"][str(workers)] = {
                "multiply_seconds": par_s,
                "multiply_speedup": serial_s / par_s,
                "replay_seconds": par_replay_s,
                "replay_speedup": serial_replay_s / par_replay_s,
                "exec_stats": exec_stats,
                "replay_exec_stats": replay_stats,
            }
            print(
                f"{dataset:14s} workers={workers}  "
                f"multiply {serial_s * 1e3:7.1f} -> {par_s * 1e3:7.1f} ms "
                f"(x{serial_s / par_s:4.2f})  "
                f"replay {serial_replay_s * 1e3:7.1f} -> {par_replay_s * 1e3:7.1f} ms "
                f"(x{serial_replay_s / par_replay_s:4.2f})"
            )
        records.append(record)

    gate = _speedup_gate(args, records, failures)
    payload = {
        "description": "repro.exec multicore numeric plane, serial vs "
                       "partitioned (bit-identical results asserted per mode)",
        "engine": algo.name,
        "kernel_backend": kernels.active_name(),
        "partitioner": args.partitioner,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpu_count": os.cpu_count(),
        "host_available_cpus": _available_cpus(),
        "note": "process-pool speedup requires spare physical cores; on a "
                "single-core host the partitioned path measures pure overhead",
        "results": records,
        "speedup_gate": gate,
        "bit_identical": not any(" differs" in f for f in failures),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(f"wrote {len(records)} records to {args.out} "
          f"(host: {_available_cpus()} available cpus)")
    return 0


def _speedup_gate(args, records, failures) -> dict:
    """Evaluate the overhead-regression gate; append failures in place.

    The gate only has meaning on a host with spare cores: with two workers
    sharing one CPU, the partitioned path measures pure pool overhead, so a
    single-core host records the gate as skipped instead of enforcing it.
    """
    gate = {
        "threshold": args.require_speedup,
        "enforced": False,
        "checked": [],
    }
    if args.require_speedup is None:
        return gate
    if _available_cpus() < 2:
        gate["skipped_reason"] = (
            f"host has {_available_cpus()} available cpu(s); "
            "speedup gate needs >= 2"
        )
        print(f"speedup gate skipped: {gate['skipped_reason']}")
        return gate
    gate["enforced"] = True
    for record in records:
        two = record["parallel"].get("2")
        if two is None:
            continue
        best = max(two["multiply_speedup"], two["replay_speedup"])
        gate["checked"].append({"dataset": record["dataset"], "best_speedup": best})
        if best < args.require_speedup:
            failures.append(
                f"{record['dataset']}: 2-worker speedup x{best:.2f} below "
                f"required x{args.require_speedup:.2f} (overhead regression)"
            )
    return gate


if __name__ == "__main__":
    raise SystemExit(main())
