"""Before/after wall-clock for the plan cache on the iterative apps.

Runs each of the three ``repro.apps`` workloads twice on catalog datasets:

* **cold** — a session whose cache is emptied before every multiply, which
  reproduces the pre-cache behaviour (full context build, lowering and
  symbolic expansion on every iteration);
* **warm** — a normal :class:`~repro.spgemm.session.IterativeSession`, where
  repeat structures are served by numeric replay.

Writes the measurements (plus the warm runs' cache counters) as JSON —
``BENCH_pr3.json`` at the repo root records the PR's numbers.

Usage::

    PYTHONPATH=src python tools/bench_iterative.py --out BENCH_pr3.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.apps.pagerank import pagerank_spgemm
from repro.apps.reachability import k_hop_reachability
from repro.apps.shortestpaths import k_hop_shortest_paths
from repro.datasets.loader import load
from repro.spgemm.rowproduct import RowProductSpGEMM
from repro.spgemm.session import IterativeSession


class _NoReuseSession(IterativeSession):
    """A session that forgets every entry before each multiply.

    Emulates the pre-cache execution path (every iteration pays the full
    pipeline) while flowing through exactly the same code, so the cold/warm
    comparison isolates the reuse itself.
    """

    def multiply(self, a, b=None):
        self.cache.clear()
        return super().multiply(a, b)

    def semiring_multiply(self, a, b=None, semiring=None):
        self.cache.clear()
        return super().semiring_multiply(a, b, semiring)


def _time(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _workloads(dataset: str, iterations: int, hops: int):
    adj = load(dataset).a

    def pagerank_run(session):
        return pagerank_spgemm(adj, session, max_iter=iterations, tol=0.0)

    def reachability_run(session):
        return k_hop_reachability(adj, hops, session)

    def shortest_paths_run(session):
        return k_hop_shortest_paths(adj, hops, session=session)

    return {
        f"pagerank[{iterations} iterations]": pagerank_run,
        f"reachability[{hops} hops]": reachability_run,
        f"shortest-paths[{hops} hops]": shortest_paths_run,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--datasets", nargs="*", default=["poisson3da", "as_caida"])
    parser.add_argument("--iterations", type=int, default=20,
                        help="PageRank power iterations (default 20)")
    parser.add_argument("--hops", type=int, default=4,
                        help="hop count for reachability / shortest paths")
    parser.add_argument("--out", default="BENCH_pr3.json")
    args = parser.parse_args()

    records = []
    for dataset in args.datasets:
        for name, run in _workloads(dataset, args.iterations, args.hops).items():
            cold_s, _ = _time(lambda: run(_NoReuseSession(RowProductSpGEMM())))
            warm_session = IterativeSession(RowProductSpGEMM())
            warm_s, _ = _time(lambda: run(warm_session))
            record = {
                "dataset": dataset,
                "workload": name,
                "cold_seconds": cold_s,
                "warm_seconds": warm_s,
                "speedup": cold_s / warm_s,
                "cache": warm_session.stats.as_dict(),
            }
            records.append(record)
            print(f"{dataset:12s} {name:28s} cold {cold_s * 1e3:8.1f} ms  "
                  f"warm {warm_s * 1e3:8.1f} ms  x{record['speedup']:.2f}")

    payload = {
        "description": "plan-cache amortisation on the iterative apps "
                       "(cold = cache cleared before every multiply)",
        "engine": "row-product",
        "python": platform.python_version(),
        "results": records,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {len(records)} records to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
