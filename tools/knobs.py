import sys, numpy as np
from repro.datasets import load
from repro.spgemm import MultiplyContext, OuterProductSpGEMM, RowProductSpGEMM
from repro.core import BlockReorganizer, ReorganizerOptions
from repro.gpusim import GPUSimulator, TITAN_XP, CostModel

overrides = {}
for kv in sys.argv[1:]:
    k, v = kv.split('='); overrides[k] = float(v)
costs = CostModel().with_overrides(**overrides)
sim = GPUSimulator(TITAN_XP, costs)
names = ['filter3d','harbor','2cube_sphere','mario002','offshore','youtube','as_caida','loc_gowalla','slashdot','web_notredame']
algos = {
    'row': RowProductSpGEMM(costs), 'outer': OuterProductSpGEMM(costs), 'BR': BlockReorganizer(costs),
    'Split': BlockReorganizer(costs, options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)),
    'Gather': BlockReorganizer(costs, options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)),
    'Limit': BlockReorganizer(costs, options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)),
}
speed = {k: [] for k in algos}
gfs = []
for name in names:
    ds = load(name); ctx = MultiplyContext.build(ds.a, ds.b, a_csc=ds.a_csc); ctx.c_row_nnz
    r = {k: a.simulate(ctx, sim).total_seconds for k, a in algos.items()}
    for k in algos: speed[k].append(r['row']/r[k])
    gfs.append(2*ctx.total_work/r['row']/1e9)
def g(k):
    return np.exp(np.mean(np.log(speed[k])))

def go(k):
    return np.exp(np.mean(np.log(np.array(speed[k])/np.array(speed['outer']))))

print(f"{str(overrides):60s} rowGF={np.mean(gfs):5.2f} outer={g('outer'):.2f} BR={g('BR'):.2f} | Split={go('Split'):.2f} Gather={go('Gather'):.2f} Limit={go('Limit'):.2f} BRvO={go('BR'):.2f}")
