"""Quickstart: multiply a sparse network with the Block Reorganizer.

Generates a small power-law graph (the regime the paper targets), computes
C = A^2 with the row-product baseline and the Block Reorganizer, verifies the
results agree, and prints the simulated profile of both runs on a Titan Xp.

Run:  python examples/quickstart.py
"""

from repro.core import BlockReorganizer
from repro.gpusim import GPUSimulator, TITAN_XP
from repro.metrics import profile_report
from repro.sparse import power_law
from repro.spgemm import MultiplyContext, RowProductSpGEMM


def main() -> None:
    # 1. A sparse network: 5000 nodes, ~80k edges, power-law degrees.
    a = power_law(5_000, 80_000, seed=42).to_csr()
    print(f"A: {a.n_rows}x{a.n_cols}, nnz = {a.nnz}")

    # 2. One context per multiplication problem (precalculates the
    #    block-wise/row-wise workloads the paper's Section IV-B describes).
    ctx = MultiplyContext.build(a)
    print(f"intermediate products nnz(C-hat) = {ctx.total_work}")

    # 3. Numeric plane: both schemes compute the exact same C.
    baseline = RowProductSpGEMM()
    reorganizer = BlockReorganizer()
    c_base = baseline.multiply(ctx)
    c_reorg = reorganizer.multiply(ctx)
    assert c_reorg.allclose(c_base)
    print(f"C: nnz = {c_base.nnz} (identical across schemes)")

    # 4. Performance plane: simulate both on a Titan Xp and compare.
    simulator = GPUSimulator(TITAN_XP)
    for algo in (baseline, reorganizer):
        stats = algo.simulate(ctx, simulator)
        report = profile_report(stats)
        print(
            f"\n{algo.name} on {report.gpu}: "
            f"{report.total_seconds * 1e6:.1f} us, {report.gflops:.2f} GFLOPS"
        )
        for stage in report.stages:
            print(
                f"  {stage.stage:10s} {stage.seconds * 1e6:8.1f} us"
                f"  LBI={stage.lbi:.2f}"
                f"  sync stalls={stage.sync_stall_pct:.0f}%"
                f"  L2 read={stage.l2_read_gbs:.0f} GB/s"
            )

    base_t = baseline.simulate(ctx, simulator).total_seconds
    reorg_t = reorganizer.simulate(ctx, simulator).total_seconds
    print(f"\nBlock Reorganizer speedup over row-product: {base_t / reorg_t:.2f}x")


if __name__ == "__main__":
    main()
