"""A full analytics pipeline on one network — the paper's three motivating
workloads (ranking, similarity, recommendation) end-to-end.

Builds a power-law network, then runs PageRank, cosine/Jaccard similarity and
friend-of-friend recommendation from `repro.apps`, with the *adaptively
tuned* Block Reorganizer as the spGEMM engine.

Run:  python examples/graph_analytics_pipeline.py
"""

from repro.apps import (
    cosine_similarity,
    jaccard_similarity,
    pagerank,
    recommend_by_paths,
    top_similar_pairs,
)
from repro.core.adaptive import AdaptiveBlockReorganizer
from repro.gpusim import GPUSimulator, TITAN_XP
from repro.sparse import power_law
from repro.spgemm import MultiplyContext


def main() -> None:
    a = power_law(4_000, 60_000, seed=99).to_csr()
    print(f"network: {a.n_rows} nodes, {a.nnz} edges")

    # The engine tunes itself to the dataset's skew (and can verify the
    # choice against the simulator).
    engine = AdaptiveBlockReorganizer(search=True, simulator=GPUSimulator(TITAN_XP))
    engine.tune(MultiplyContext.build(a))
    report = engine.last_report
    print(
        f"tuner: gini={report.gini:.2f}, expansion ratio={report.expansion_ratio:.1f} "
        f"-> alpha={report.options.alpha}, limiting factor="
        f"{report.options.limiting_factor} "
        f"({report.candidates_tried} candidates simulated)"
    )

    # --- ranking -------------------------------------------------------
    pr = pagerank(a)
    top = pr.scores.argsort()[::-1][:5]
    print(f"\nPageRank ({pr.iterations} iterations):")
    for node in top:
        print(f"  node {node:5d}: score {pr.scores[node]:.5f}")

    # --- similarity ----------------------------------------------------
    cos = cosine_similarity(a, engine)
    print("\nmost similar node pairs (cosine of neighbourhoods):")
    for i, j, s in top_similar_pairs(cos, 5):
        print(f"  ({i:5d}, {j:5d}): {s:.3f}")

    jac = jaccard_similarity(a, engine)
    print("\nmost similar node pairs (Jaccard):")
    for i, j, s in top_similar_pairs(jac, 3):
        print(f"  ({i:5d}, {j:5d}): {s:.3f}")

    # --- recommendation --------------------------------------------------
    user = int(top[0])
    recs = recommend_by_paths(a, user, engine)
    print(f"\nrecommendations for the top-ranked node {user}:")
    for node, score in recs:
        print(f"  node {node:5d} ({score:.0f} two-step paths)")


if __name__ == "__main__":
    main()
