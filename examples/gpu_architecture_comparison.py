"""Compare spGEMM schemes across GPU generations (the paper's Figure 15).

Runs every scheme on one regular and one skewed network across the three
evaluation GPUs (Titan Xp / Tesla V100 / RTX 2080 Ti) and prints how each
architecture shifts the balance — more SMs make block-level imbalance more
expensive, which is exactly where the Block Reorganizer's lead grows.

Run:  python examples/gpu_architecture_comparison.py
"""

from repro.bench import format_table
from repro.core import BlockReorganizer
from repro.gpusim import ALL_GPUS, GPUSimulator
from repro.sparse import banded_regular, power_law
from repro.spgemm import MultiplyContext, OuterProductSpGEMM, RowProductSpGEMM


def main() -> None:
    networks = {
        "regular mesh": banded_regular(6_000, 24, seed=1).to_csr(),
        "power-law net": power_law(6_000, 90_000, seed=2).to_csr(),
    }
    algorithms = [RowProductSpGEMM(), OuterProductSpGEMM(), BlockReorganizer()]

    for label, a in networks.items():
        ctx = MultiplyContext.build(a)
        ctx.c_row_nnz  # run the symbolic pass once
        rows = []
        for gpu in ALL_GPUS:
            sim = GPUSimulator(gpu)
            seconds = {algo.name: algo.simulate(ctx, sim).total_seconds for algo in algorithms}
            base = seconds["row-product"]
            rows.append(
                [gpu.name, base * 1e6]
                + [base / seconds[algo.name] for algo in algorithms]
            )
        print(
            format_table(
                ["GPU", "row-product us"] + [a.name for a in algorithms],
                rows,
                title=f"\n{label}: nnz(A)={a.nnz}, nnz(C-hat)={ctx.total_work}",
                col_width=15,
            )
        )

    print(
        "\nAcross the full 28-dataset suite (benchmarks/bench_fig15.py) the "
        "Block Reorganizer's average lead is largest on the V100: more SMs "
        "mean stragglers idle more silicon.  Single datasets vary — the "
        "bigger GPUs also dilute a single network's dominator problem."
    )


if __name__ == "__main__":
    main()
