"""Social-network analysis with spGEMM: the paper's motivating workload.

The introduction motivates spGEMM with SNS analytics — ranking, similarity
and recommendation all reduce to products of the adjacency matrix.  This
example runs two classic graph analyses on an R-MAT social network:

* **Two-hop reach / friend-of-friend counts** from C = A^2: entry (i, j)
  counts the 2-paths from i to j, the core of common-neighbour link
  prediction.
* **Triangle participation** from trace-like diagonal of A^2 masked by A.

Both use the Block Reorganizer as the spGEMM engine and report the simulated
GPU cost of the kernel alongside the analysis results.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.core import BlockReorganizer
from repro.gpusim import GPUSimulator, TITAN_XP
from repro.sparse import rmat_graph500
from repro.spgemm import MultiplyContext


def main() -> None:
    # A Graph500-style social network: 2^12 users, ~16 edges per user.
    graph = rmat_graph500(scale=12, edge_factor=16, seed=7)
    # Symmetrise (friendship is mutual) and drop weights to 1.
    sym = graph.transpose()
    a = type(graph)(
        graph.shape,
        np.concatenate([graph.rows, sym.rows]),
        np.concatenate([graph.cols, sym.cols]),
        np.ones(2 * graph.nnz),
    ).coalesce().to_csr()
    a.data[:] = 1.0  # coalescing summed mutual edges; reset to adjacency
    print(f"social network: {a.n_rows} users, {a.nnz} directed friendships")

    # C = A^2 via the Block Reorganizer.
    ctx = MultiplyContext.build(a)
    engine = BlockReorganizer()
    c = engine.multiply(ctx)
    stats = engine.simulate(ctx, GPUSimulator(TITAN_XP))
    print(
        f"spGEMM: nnz(C-hat)={ctx.total_work}, nnz(C)={c.nnz}, "
        f"simulated {stats.total_seconds * 1e6:.0f} us on {stats.config.name} "
        f"({stats.gflops:.1f} GFLOPS)"
    )

    # --- two-hop reach -----------------------------------------------------
    two_hop_counts = c.row_nnz()
    top = np.argsort(two_hop_counts)[::-1][:5]
    print("\nusers with the widest two-hop reach (friend-of-friend sets):")
    for user in top:
        print(
            f"  user {user:5d}: {a.row_nnz()[user]:4d} friends, "
            f"{two_hop_counts[user]:6d} users within two hops"
        )

    # --- common-neighbour link prediction ----------------------------------
    # Strongest non-adjacent pair: most shared friends.
    best_pair, best_score = None, -1.0
    adjacency = set(zip(a.to_coo().rows.tolist(), a.to_coo().cols.tolist()))
    coo_c = c.to_coo()
    for i, j, score in zip(coo_c.rows, coo_c.cols, coo_c.vals):
        if i < j and (int(i), int(j)) not in adjacency and score > best_score:
            best_pair, best_score = (int(i), int(j)), float(score)
    if best_pair:
        print(
            f"\nlink prediction: users {best_pair[0]} and {best_pair[1]} share "
            f"{best_score:.0f} friends but are not connected — recommend!"
        )

    # --- triangle participation ---------------------------------------------
    # Paths of length 2 that close: (A^2 ∘ A) row sums; each triangle is
    # counted twice per vertex in a symmetric graph.
    c_coo = c.to_coo()
    keys_c = c_coo.rows * a.n_cols + c_coo.cols
    keys_a = np.asarray(sorted(r * a.n_cols + c_ for r, c_ in adjacency))
    closed = np.isin(keys_c, keys_a)
    tri_per_vertex = np.zeros(a.n_rows)
    np.add.at(tri_per_vertex, c_coo.rows[closed], c_coo.vals[closed])
    print(
        f"\ntriangles: {tri_per_vertex.sum() / 6:.0f} total; "
        f"most clustered user participates in {tri_per_vertex.max() / 2:.0f}"
    )


if __name__ == "__main__":
    main()
