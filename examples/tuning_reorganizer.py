"""Tuning the Block Reorganizer's thresholds (alpha, beta, factors).

The paper leaves alpha (dominator selectivity), beta (limited-row
selectivity), the splitting factor and the limiting factor as tunables.  This
example sweeps each on a skewed network and prints the resulting simulated
time — the practical recipe for adapting the pass to a new dataset, and a
miniature of the Figure 11/14 sweeps.

Run:  python examples/tuning_reorganizer.py
"""

from repro.bench import format_table
from repro.core import BlockReorganizer, ReorganizerOptions
from repro.gpusim import GPUSimulator, TITAN_XP
from repro.sparse import power_law
from repro.spgemm import MultiplyContext, OuterProductSpGEMM


def main() -> None:
    a = power_law(8_000, 120_000, seed=11).to_csr()
    ctx = MultiplyContext.build(a)
    ctx.c_row_nnz
    sim = GPUSimulator(TITAN_XP)
    baseline = OuterProductSpGEMM().simulate(ctx, sim).total_seconds
    print(f"outer-product baseline: {baseline * 1e6:.1f} us")

    # --- alpha: dominator selectivity --------------------------------------
    rows = []
    for alpha in (0.02, 0.05, 0.1, 0.3, 1.0):
        algo = BlockReorganizer(options=ReorganizerOptions(alpha=alpha))
        stats = algo.simulate(ctx, sim)
        rows.append(
            [f"alpha={alpha}", stats.meta["n_dominators"],
             stats.total_seconds * 1e6, baseline / stats.total_seconds]
        )
    print(format_table(["setting", "dominators", "time us", "speedup"], rows,
                       title="\ndominator threshold (lower alpha = stricter)"))

    # --- splitting factor (Figure 11 in miniature) -------------------------
    rows = []
    for factor in (1, 4, 16, 64):
        algo = BlockReorganizer(options=ReorganizerOptions(splitting_factor=factor))
        stats = algo.simulate(ctx, sim)
        rows.append(
            [f"factor={factor}", stats.lbi("expansion"),
             stats.total_seconds * 1e6, baseline / stats.total_seconds]
        )
    print(format_table(["setting", "LBI", "time us", "speedup"], rows,
                       title="\nsplitting factor (paper: ~2x the SM count)"))

    # --- limiting factor (Figure 14 in miniature) --------------------------
    rows = []
    for factor in (0, 2, 4, 8):
        algo = BlockReorganizer(options=ReorganizerOptions(limiting_factor=factor))
        stats = algo.simulate(ctx, sim)
        rows.append(
            [f"factor={factor}", stats.l2_read_gbs("merge"),
             stats.stage_seconds("merge") * 1e6, baseline / stats.total_seconds]
        )
    print(format_table(["setting", "merge L2 GB/s", "merge us", "speedup"], rows,
                       title="\nlimiting factor (x6144 bytes; paper settles on 4)"))


if __name__ == "__main__":
    main()
