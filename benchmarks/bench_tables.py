"""Benches regenerating Tables I-III of the paper."""

from repro.bench.experiments import table1_systems, table2_datasets, table3_datasets


def test_table1_systems(run_experiment):
    rows = run_experiment(table1_systems)
    assert len(rows) == 3


def test_table2_datasets(run_experiment):
    rows = run_experiment(table2_datasets)
    assert len(rows) == 28


def test_table3_datasets(run_experiment):
    rows = run_experiment(table3_datasets)
    assert len(rows) == 16
