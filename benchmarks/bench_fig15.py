"""Bench regenerating Figure 15 (scalability across GPU architectures)."""

from repro.bench.experiments import fig15_scalability


def test_fig15_scalability(run_experiment):
    result = run_experiment(fig15_scalability)
    br = {gpu: result.geomeans[(gpu, "block-reorganizer")] for gpu in result.gpus}
    outer = {gpu: result.geomeans[(gpu, "outer-product")] for gpu in result.gpus}
    # Paper: 1.43x on Titan Xp, 1.66x on V100, 1.40x on 2080 Ti; the outer
    # baseline stays near the row baseline on every architecture.
    for gpu in result.gpus:
        assert br[gpu] > 1.15
        assert 0.7 < outer[gpu] < 1.5
        assert br[gpu] > outer[gpu]
        # The Block Reorganizer is the fastest scheme on every architecture.
        best = max(
            result.geomeans[(gpu, a)]
            for a in ["row-product", "outer-product", "cusparse", "cusp", "bhsparse", "mkl"]
        )
        assert br[gpu] > best
    # Deviation from the paper (documented in EXPERIMENTS.md): the paper's BR
    # lead is largest on the V100; in our simulator the wider GPUs lift the
    # memory-floored baselines more, compressing — but never erasing — the
    # lead.  The spread across GPUs stays bounded.
    assert max(br.values()) / min(br.values()) < 1.5
