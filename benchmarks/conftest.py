"""Shared fixtures for the benchmark suite.

Each bench regenerates one table/figure of the paper: it times the experiment
via pytest-benchmark (one round — these are deterministic simulations, not
noisy microbenchmarks) and prints the paper-style table so the numbers land
in the bench log.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment module once under the benchmark timer and print its
    formatted table."""

    def _run(module, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: module.run(*args, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(module.format_result(result))
        return result

    return _run
