"""Shared fixtures for the benchmark suite.

Each bench regenerates one table/figure of the paper: it times the experiment
via pytest-benchmark (one round — these are deterministic simulations, not
noisy microbenchmarks) and prints the paper-style table so the numbers land
in the bench log.

The whole suite routes through the shared runner's execution engine: a
session fixture points every ``run_matrix`` call at the persistent result
cache (so a second ``pytest benchmarks/`` run replays finished cells instead
of re-simulating them) and honours three environment knobs:

* ``REPRO_BENCH_WORKERS`` — process-pool width for the grid (default 1).
* ``REPRO_BENCH_NO_CACHE=1`` — disable the persistent cache.
* ``REPRO_CACHE_DIR`` — cache location (default ``~/.cache/repro``).
"""

from __future__ import annotations

import os

import pytest

from repro.bench import runner
from repro.bench.cache import ResultCache


@pytest.fixture(scope="session", autouse=True)
def shared_runner_defaults():
    """Route every bench through the shared runner's cache and worker pool."""
    cache = None
    if not os.environ.get("REPRO_BENCH_NO_CACHE"):
        cache = ResultCache(os.environ.get("REPRO_CACHE_DIR"))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    saved_workers, saved_cache = runner._DEFAULTS.workers, runner._DEFAULTS.cache
    runner.configure(workers=workers, cache=cache)
    yield
    runner.configure(workers=saved_workers, cache=saved_cache)


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment module once under the benchmark timer and print its
    formatted table."""

    def _run(module, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: module.run(*args, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(module.format_result(result))
        return result

    return _run
