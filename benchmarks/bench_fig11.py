"""Bench regenerating Figure 11 (LBI vs splitting factor)."""

from repro.bench.experiments import fig11_lbi


def test_fig11_lbi(run_experiment):
    result = run_experiment(fig11_lbi)
    for name in result.datasets:
        # LBI improves monotonically (within tolerance) with the factor and
        # ends near 1 — the paper reports 0.17 -> 0.96 on average.
        series = [result.lbi[(name, f)] for f in fig11_lbi.FACTORS]
        assert series[-1] > 0.85
        assert series[0] < 0.6
        assert all(b >= a - 0.05 for a, b in zip(series, series[1:]))
        # Splitting never slows the dominator execution down badly.
        assert result.speedup[(name, 64)] > 0.9
