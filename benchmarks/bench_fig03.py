"""Bench regenerating Figure 3 (motivation: SM imbalance, thread-block
distribution, expansion/merge split)."""

from repro.bench.experiments import fig03_motivation


def test_fig03_motivation(run_experiment):
    rows = run_experiment(fig03_motivation)
    assert len(rows) == len(fig03_motivation.DATASETS)
    by_name = {r.dataset: r for r in rows}
    # The paper's headline observation: skewed sets leave SMs idle
    # (loc-gowalla / as-caida below ~20% utilisation), regular sets do not.
    assert by_name["loc_gowalla"].sm_utilization < 0.45
    assert by_name["as_caida"].sm_utilization < 0.45
    assert by_name["harbor"].sm_utilization > 0.8
