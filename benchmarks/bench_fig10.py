"""Bench regenerating Figure 10 (per-technique ablation vs outer baseline)."""

from repro.bench.experiments import fig10_techniques


def test_fig10_techniques(run_experiment):
    result = run_experiment(fig10_techniques)
    gm = result.geomeans()
    # Paper averages: limiting 1.05x, splitting 1.05x, gathering 1.28x,
    # combined 1.51x — gathering is the broad win, the combined pass beats
    # every single technique.
    assert 1.0 < gm["B-Limiting"] < 1.2
    assert 1.0 < gm["B-Splitting"] < 1.25
    assert 1.1 < gm["B-Gathering"] < 1.5
    assert gm["Block-Reorganizer"] > max(
        gm["B-Limiting"], gm["B-Splitting"], gm["B-Gathering"]
    )
    # Splitting's big wins concentrate on the extreme power-law sets.
    assert result.speedups[("as_caida", "B-Splitting")] > 1.5
    assert result.speedups[("loc_gowalla", "B-Splitting")] > 1.5
