"""Bench regenerating Figure 14 (L2 throughput vs limiting factor)."""

from repro.bench.experiments import fig14_l2_limit
from repro.bench.tables import geomean


def test_fig14_l2_limit(run_experiment):
    result = run_experiment(fig14_l2_limit)
    factors = fig14_l2_limit.LIMIT_FACTORS
    # Average read-throughput curve rises to an interior optimum then falls —
    # the paper's non-monotone trade-off between cache relief and occupancy.
    curve = [
        geomean(
            result.read_gbs[(n, f)] / result.read_gbs[(n, 0)] for n in result.datasets
        )
        for f in factors
    ]
    peak_idx = curve.index(max(curve))
    assert 0 < peak_idx < len(factors) - 1, f"no interior optimum: {curve}"
    assert curve[peak_idx] > 1.03
    assert curve[-1] < curve[peak_idx]
    # At the paper's chosen factor (4) merge time improves on skewed data.
    for name in result.datasets:
        assert result.merge_seconds[(name, 4)] <= result.merge_seconds[(name, 0)] * 1.02
