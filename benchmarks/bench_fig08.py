"""Bench regenerating Figure 8 (normalized speedup, 28 real-world sets)."""

from repro.bench.experiments import fig08_speedup


def test_fig08_speedup(run_experiment):
    result = run_experiment(fig08_speedup)
    gm = result.geomeans()
    # Shape targets from the paper: Block Reorganizer wins on average
    # (paper 1.43x), the outer-product baseline roughly ties the row product
    # (paper 0.95x), and the libraries trail.
    assert 1.2 < gm["block-reorganizer"] < 1.7
    assert 0.8 < gm["outer-product"] < 1.1
    assert gm["cusparse"] < 0.6
    assert gm["cusp"] < 0.5
    assert gm["mkl"] < 0.7
    assert gm["bhsparse"] < 0.9
    # Block Reorganizer shows the widest coverage: best on most datasets.
    wins = sum(
        1
        for d in result.datasets
        if result.speedups[(d, "block-reorganizer")]
        == max(result.speedups[(d, a)] for a in fig08_speedup.ALGO_ORDER)
    )
    assert wins >= len(result.datasets) // 2
