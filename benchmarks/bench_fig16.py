"""Bench regenerating Figure 16 (synthetic S/P/SP sets and C = A B pairs)."""

from repro.bench.experiments import fig16_synthetic
from repro.bench.tables import geomean


def test_fig16_synthetic(run_experiment):
    result = run_experiment(fig16_synthetic)
    sp = result.speedups
    # Skewness sweep: Block Reorganizer's edge grows with skew (p1 -> p4).
    assert sp[("p4", "block-reorganizer")] > sp[("p1", "block-reorganizer")]
    # Scalability sweep: the outer baseline collapses as matrices grow while
    # Block Reorganizer holds close to the row baseline.
    assert sp[("s4", "outer-product")] < 0.5
    assert sp[("s4", "block-reorganizer")] > 2.0 * sp[("s4", "outer-product")]
    # Small matrices: preprocessing-light schemes are competitive on s1.
    assert sp[("s1", "cusparse")] > sp[("s4", "cusparse")]
    # C = A B panel: Block Reorganizer gains on every pair (paper: 1.09x avg).
    ab_gm = geomean(sp[(n, "block-reorganizer")] for n in result.b_datasets)
    assert ab_gm > 1.0
