"""Bench regenerating Figure 12 (L2 throughput gain from B-Splitting)."""

from repro.bench.experiments import fig12_l2_split
from repro.bench.tables import geomean


def test_fig12_l2_split(run_experiment):
    result = run_experiment(fig12_l2_split)
    ratios = []
    for name in result.datasets:
        before = result.read_gbs[(name, "before")] + result.write_gbs[(name, "before")]
        after = result.read_gbs[(name, "after")] + result.write_gbs[(name, "after")]
        ratios.append(after / before)
        # Splitting never reduces achieved L2 throughput on skewed data.
        assert after >= before * 0.95
    # Substantial average improvement (paper: 8.9x; the most extreme sets
    # carry the average).
    assert geomean(ratios) > 1.5
    assert max(ratios) > 4.0
