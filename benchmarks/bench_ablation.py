"""Robustness ablation: the headline conclusions are not knife-edge.

Perturbs the most influential cost-model constants (memory latency, block
launch cost, warp setup, DRAM efficiency) by +/-30% and checks the paper's
qualitative conclusions survive on a representative dataset slice:

* the Block Reorganizer beats the outer-product baseline on skewed data,
* B-Gathering is the broadest single technique,
* the outer-product baseline stays in the row-product's neighbourhood.
"""

import dataclasses

import pytest

from repro.bench.runner import get_context
from repro.bench.tables import geomean
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.gpusim.config import TITAN_XP
from repro.gpusim.costs import CostModel
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.rowproduct import RowProductSpGEMM

DATASETS = ["filter3d", "mario002", "youtube", "as_caida", "slashdot"]

PERTURBATIONS = [
    {},
    {"mem_latency": 650.0 * 0.7},
    {"mem_latency": 650.0 * 1.3},
    {"tb_launch_cycles": 450.0 * 0.7, "warp_setup_cycles": 110.0 * 0.7},
    {"tb_launch_cycles": 450.0 * 1.3, "warp_setup_cycles": 110.0 * 1.3},
    {"instr_per_product": 6.0 * 1.3},
]

GPU_PERTURBATIONS = [
    {},
    {"dram_efficiency": 0.5},
    {"dram_efficiency": 0.9},
]


def _speedups(costs: CostModel, gpu) -> dict[str, float]:
    sim = GPUSimulator(gpu, costs)
    algos = {
        "row": RowProductSpGEMM(costs),
        "outer": OuterProductSpGEMM(costs),
        "br": BlockReorganizer(costs),
        "gather": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)
        ),
    }
    per_algo: dict[str, list[float]] = {k: [] for k in algos}
    for name in DATASETS:
        ctx = get_context(name)
        seconds = {k: a.simulate(ctx, sim).total_seconds for k, a in algos.items()}
        for k in algos:
            per_algo[k].append(seconds["row"] / seconds[k])
    return {k: geomean(v) for k, v in per_algo.items()}


@pytest.mark.parametrize("overrides", PERTURBATIONS, ids=lambda o: str(o) or "default")
def test_cost_perturbations_preserve_conclusions(benchmark, overrides):
    costs = CostModel().with_overrides(**overrides)
    result = benchmark.pedantic(lambda: _speedups(costs, TITAN_XP), rounds=1, iterations=1)
    assert result["br"] > 1.05          # the contribution still wins
    assert result["br"] > result["outer"]
    assert result["gather"] > result["outer"] * 0.98  # gathering never hurts
    assert 0.6 < result["outer"] < 1.6  # baselines stay comparable


@pytest.mark.parametrize("gpu_overrides", GPU_PERTURBATIONS, ids=lambda o: str(o) or "default")
def test_gpu_perturbations_preserve_conclusions(benchmark, gpu_overrides):
    gpu = dataclasses.replace(TITAN_XP, **gpu_overrides)
    result = benchmark.pedantic(lambda: _speedups(CostModel(), gpu), rounds=1, iterations=1)
    assert result["br"] > 1.05
    assert result["br"] > result["outer"]
