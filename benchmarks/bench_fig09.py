"""Bench regenerating Figure 9 (absolute GFLOPS, 28 real-world sets)."""

from repro.bench.experiments import fig09_gflops
from repro.bench.experiments.fig08_speedup import ALGO_ORDER


def test_fig09_gflops(run_experiment):
    result = run_experiment(fig09_gflops)
    values = [result.gflops[(d, a)] for d in result.datasets for a in ALGO_ORDER]
    # Paper's absolute band: spGEMM sits in single-to-low-double-digit GFLOPS.
    assert all(0.0 < v < 40.0 for v in values)
    best = max(values)
    assert 5.0 < best < 40.0
