"""Bench regenerating Figure 13 (sync stalls before/after B-Gathering)."""

from repro.bench.experiments import fig13_sync_stalls


def test_fig13_sync_stalls(run_experiment):
    result = run_experiment(fig13_sync_stalls)
    improved = 0
    for name in result.datasets:
        before = result.before_pct[name]
        after = result.after_pct[name]
        assert 0.0 <= after <= 100.0 and 0.0 <= before <= 100.0
        if after < before:
            improved += 1
    # Gathering removes the bulk of sync stalls on nearly every dataset.
    assert improved >= len(result.datasets) - 2
    mean_before = sum(result.before_pct.values()) / len(result.datasets)
    mean_after = sum(result.after_pct.values()) / len(result.datasets)
    assert mean_after < mean_before * 0.6
