"""Bench regenerating the Section IV-E YouTube walkthrough."""

from repro.bench.experiments import sec4e_youtube


def test_sec4e_youtube(run_experiment):
    row = run_experiment(sec4e_youtube)
    # Classification shares mirror the paper: a sliver of dominators, a large
    # majority of low performers, a small set of limited rows.
    assert row.n_dominators < 0.05 * row.n_pairs
    assert row.n_underloaded > 0.5 * row.n_pairs
    assert 0 < row.n_limited_rows
    # Every technique helps on youtube; splitting restores SM utilisation.
    for gain in row.gains.values():
        assert gain > 1.0
    assert row.sm_util_after_split > row.sm_util_before
    assert row.sm_util_after_split > 0.9
