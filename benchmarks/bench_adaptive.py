"""Extension bench: the adaptive tuner against fixed defaults.

The paper notes its thresholds should be tuned per dataset (Sections IV-B
and VI-A4).  This bench runs the heuristic-tuned and search-tuned
AdaptiveBlockReorganizer against the fixed-default Block Reorganizer over
the full real-world suite and checks that adaptation never loses on average
and that the simulator-guided search never loses per dataset.
"""

from repro.bench.runner import get_context
from repro.bench.tables import format_table, geomean
from repro.bench.experiments.table2_datasets import ALL_REAL_WORLD
from repro.core.adaptive import AdaptiveBlockReorganizer
from repro.core.reorganizer import BlockReorganizer
from repro.gpusim.config import TITAN_XP
from repro.gpusim.simulator import GPUSimulator


def test_adaptive_tuning(benchmark, capsys):
    sim = GPUSimulator(TITAN_XP)

    def run():
        rows = []
        for name in ALL_REAL_WORLD:
            ctx = get_context(name)
            fixed = BlockReorganizer().simulate(ctx, sim).total_seconds
            heuristic = AdaptiveBlockReorganizer().simulate(ctx, sim).total_seconds
            searched = AdaptiveBlockReorganizer(search=True, simulator=sim).simulate(
                ctx, sim
            ).total_seconds
            rows.append((name, fixed, heuristic, searched))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        [name, f * 1e6, f / h, f / s] for name, f, h, s in rows
    ]
    table.append(
        ["GEOMEAN", 0.0,
         geomean(f / h for _, f, h, _ in rows),
         geomean(f / s for _, f, _, s in rows)]
    )
    with capsys.disabled():
        print()
        print(format_table(
            ["dataset", "fixed us", "heuristic gain", "search gain"],
            table,
            title="Adaptive tuning vs fixed Block Reorganizer defaults",
            col_width=15,
        ))

    heuristic_gain = geomean(f / h for _, f, h, _ in rows)
    search_gain = geomean(f / s for _, f, _, s in rows)
    assert heuristic_gain > 0.97  # heuristic never loses meaningfully on average
    assert search_gain >= heuristic_gain - 1e-9
    # The search variant picked the best candidate per dataset, so it can
    # only lose to 'fixed' where 'fixed' wasn't among its candidates; allow
    # a small tolerance per dataset.
    for name, f, _, s in rows:
        assert s <= f * 1.10, name
