"""Shared trace-construction helpers for the spGEMM schemes.

All builders are vectorised over NumPy arrays of per-pair / per-row workloads;
none of them loops over blocks in Python.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.block import BlockArray, BlockArrayBuilder
from repro.gpusim.costs import CostModel

__all__ = [
    "ceil_div",
    "round_up_warp",
    "outer_pair_blocks",
    "row_chunk_blocks",
    "entry_chunk_blocks",
    "merge_blocks",
    "group_by_budget",
]


def ceil_div(a, b):
    """Integer ceiling division, elementwise."""
    return -(-a // b)


def round_up_warp(threads: np.ndarray | int, warp: int = 32) -> np.ndarray | int:
    """Round thread counts up to a whole number of warps (min one warp)."""
    return np.maximum(warp, ceil_div(threads, warp) * warp)


def outer_pair_blocks(
    na: np.ndarray,
    nb: np.ndarray,
    costs: CostModel,
    *,
    fixed_threads: int | None = None,
    max_threads: int = 256,
    smem_bytes: int = 2048,
    extra_unique_bytes: np.ndarray | float = 0.0,
    shared_b_fraction: np.ndarray | float = 0.0,
) -> BlockArray:
    """Expansion blocks for outer-product column/row pairs.

    Pair ``k`` launches one block: ``nb_k`` threads (one per b-row element),
    each iterating over the ``na_k`` a-column elements.  ``fixed_threads``
    models the baseline's fixed block size (the inefficiency B-Gathering
    removes); when None, blocks are sized to their effective threads as the
    Block Reorganizer does.

    Args:
        na: a-column nnz per pair (computations per thread).
        nb: b-row nnz per pair (effective threads).
        costs: cost model (bytes per entry).
        fixed_threads: allocate exactly this many threads per block.
        max_threads: cap for sized blocks; wider rows coarsen iterations.
        smem_bytes: shared-memory footprint per block.
        extra_unique_bytes: additional first-touch traffic per block (e.g.
            mapper-array reads for split blocks).
        shared_b_fraction: fraction of the b-row bytes that sibling blocks
            also read and therefore hit in L2 rather than DRAM.  B-Splitting
            sets this to ``1 - 1/factor``: split blocks deliberately share
            identical vectors (the cache dividend of Section VI-A2).
    """
    na = np.asarray(na, dtype=np.int64)
    nb = np.asarray(nb, dtype=np.int64)
    if len(na) == 0:
        return BlockArray.empty()
    bpe = costs.bytes_per_entry

    effective = np.minimum(nb, max_threads)
    if fixed_threads is None:
        threads = round_up_warp(effective)
    else:
        threads = np.full(len(na), fixed_threads, dtype=np.int64)
        effective = np.minimum(nb, fixed_threads)

    coarsen = ceil_div(nb, np.maximum(effective, 1))
    iters = (na * coarsen).astype(np.float64)
    ops = na * nb
    shared = np.asarray(shared_b_fraction, dtype=np.float64)
    unique = (na + nb * (1.0 - shared)) * bpe + np.asarray(
        extra_unique_bytes, dtype=np.float64
    )
    reuse = ops * 8.0 + nb * shared * bpe  # broadcast a re-reads + shared b
    writes = ops * bpe
    # Outer-product traffic is coalesced: sequential source vectors and
    # contiguous per-iteration output segments — the scheme's key memory
    # advantage over the row product.
    transactions = ((na + nb) * bpe + ops * bpe) / 32.0 + 2.0

    builder = BlockArrayBuilder()
    builder.add_blocks(
        threads=threads,
        effective_threads=effective,
        iters=iters,
        ops=ops,
        unique_bytes=unique,
        reuse_bytes=reuse,
        write_bytes=writes,
        smem_bytes=smem_bytes,
        working_set=(na + nb) * bpe,
        transactions=transactions,
    )
    return builder.build()


def row_chunk_blocks(
    row_work: np.ndarray,
    a_row_nnz: np.ndarray,
    costs: CostModel,
    *,
    threads: int = 128,
    rows_per_thread: int = 1,
    work_granularity: int = 1,
    instr_scale: float = 1.0,
    traffic_scale: float = 1.0,
    smem_bytes: int = 2048,
) -> BlockArray:
    """Expansion blocks for row-product schemes.

    Rows are assigned to threads in launch order, ``threads`` rows per block
    (scalar-CSR style, ``work_granularity=1``) or one *warp* per row
    (vector-CSR style, ``work_granularity=32``, as cuSPARSE-like schemes do).
    The block's critical path is the heaviest thread — the paper's
    thread-level load-imbalance problem.

    Args:
        row_work: intermediate products produced per output row.
        a_row_nnz: nnz of each A row (first-touch traffic).
        costs: cost model.
        threads: threads per block.
        rows_per_thread: row coarsening factor.
        work_granularity: lanes cooperating on one row (1 = thread-per-row,
            32 = warp-per-row).
        instr_scale: multiplier folded into iteration counts (hash insertion
            and similar per-product overheads of library schemes).
        traffic_scale: multiplier on memory traffic (hash-table spills and
            probe chains of library schemes).
        smem_bytes: shared-memory footprint per block.
    """
    row_work = np.asarray(row_work, dtype=np.int64)
    n_rows = len(row_work)
    if n_rows == 0:
        return BlockArray.empty()
    bpe = costs.bytes_per_entry

    lanes = max(1, threads // work_granularity)  # row slots per block
    rows_per_block = lanes * rows_per_thread
    n_blocks = int(ceil_div(n_rows, rows_per_block))
    pad = n_blocks * rows_per_block - n_rows

    work = np.pad(row_work, (0, pad)).reshape(n_blocks, rows_per_block)
    nnz_a = np.pad(np.asarray(a_row_nnz, dtype=np.int64), (0, pad)).reshape(
        n_blocks, rows_per_block
    )

    per_row_iters = ceil_div(work, work_granularity) * instr_scale
    # Within a thread, coarsened rows run back-to-back; across threads the
    # block waits for the heaviest lane.
    lane_iters = per_row_iters.reshape(n_blocks, lanes, rows_per_thread).sum(axis=2)
    iters = lane_iters.max(axis=1).astype(np.float64)
    ops = work.sum(axis=1)
    active_rows = (work > 0).sum(axis=1)
    effective = np.minimum(active_rows * work_granularity, threads)

    unique = (nnz_a.sum(axis=1) + ops) * bpe * traffic_scale
    reuse = ops * 4.0 * traffic_scale
    writes = ops * bpe * traffic_scale
    # Gathered reads from scattered b-rows are barely coalesced.
    transactions = ops / max(1.0, work_granularity / 4.0) * traffic_scale

    builder = BlockArrayBuilder()
    builder.add_blocks(
        threads=threads,
        effective_threads=effective,
        iters=iters,
        ops=ops,
        unique_bytes=unique,
        reuse_bytes=reuse,
        write_bytes=writes,
        smem_bytes=smem_bytes,
        working_set=unique,
        transactions=transactions,
    )
    mask = ops > 0
    return builder.build().select(mask)


def entry_chunk_blocks(
    entry_work: np.ndarray,
    costs: CostModel,
    *,
    threads: int = 128,
    instr_scale: float = 1.0,
    smem_bytes: int = 2048,
) -> BlockArray:
    """Expansion blocks for the row-product baseline: thread per A-entry.

    The paper's Figure 2 assigns one thread to each non-zero of A; thread
    ``e`` multiplies its a-value by the whole of B's row ``col(e)``.  Load
    imbalance within a block therefore follows the *B row-length* variance —
    milder than whole-output-row imbalance, but still the thread-level
    problem the paper attributes to the row-product scheme.

    Args:
        entry_work: per A-entry product count (``nnz(b_{col(e)*})``), in CSR
            order.
        costs: cost model.
        threads: entries per block.
        instr_scale: per-product instruction multiplier.
        smem_bytes: shared-memory footprint per block.
    """
    entry_work = np.asarray(entry_work, dtype=np.int64)
    n = len(entry_work)
    if n == 0:
        return BlockArray.empty()
    bpe = costs.bytes_per_entry

    n_blocks = int(ceil_div(n, threads))
    pad = n_blocks * threads - n
    work = np.pad(entry_work, (0, pad)).reshape(n_blocks, threads)

    iters = work.max(axis=1).astype(np.float64) * instr_scale
    ops = work.sum(axis=1)
    effective = np.minimum((work > 0).sum(axis=1), threads)

    unique = (threads + ops) * bpe  # a-entries plus first touch of b-rows
    reuse = ops * 4.0  # b-rows shared between threads sometimes hit cache
    writes = ops * bpe
    # Each thread streams a different b-row and writes its own output cursor:
    # within a warp the accesses interleave 32 streams, degrading coalescing
    # versus the outer product (costs.row_exp_bytes_per_op).
    transactions = ops * costs.row_exp_bytes_per_op / 32.0 + threads

    builder = BlockArrayBuilder()
    builder.add_blocks(
        threads=threads,
        effective_threads=effective,
        iters=iters,
        ops=ops,
        unique_bytes=unique,
        reuse_bytes=reuse,
        write_bytes=writes,
        smem_bytes=smem_bytes,
        working_set=unique,
        transactions=transactions,
    )
    mask = ops > 0
    return builder.build().select(mask)


def group_by_budget(values: np.ndarray, budget: int) -> np.ndarray:
    """Assign consecutive items to groups of roughly ``budget`` total value.

    Returns a group id per item.  Items larger than the budget get their own
    group.  Used to pack light merge rows into shared blocks.
    """
    values = np.asarray(values, dtype=np.int64)
    if len(values) == 0:
        return np.zeros(0, dtype=np.int64)
    cum = np.cumsum(values)
    return ((cum - values) // max(budget, 1)).astype(np.int64)


def merge_blocks(
    row_work: np.ndarray,
    c_row_nnz: np.ndarray,
    costs: CostModel,
    *,
    threads: int = 256,
    chunk_target: int = 4096,
    row_form: bool = False,
    smem_bytes: int = 4096,
    row_mask: np.ndarray | None = None,
) -> BlockArray:
    """Merge-phase blocks: dense-accumulator accumulation per output row.

    Heavy rows (work ≥ ``chunk_target``) get a dedicated block; light rows are
    packed, in row order, into blocks of roughly ``chunk_target`` accumulated
    elements.  ``row_form`` models the row-product scheme's cheaper row-wise
    accumulation (better write coalescing); matrix-form (outer product) pays
    scattered atomics — the overhead B-Limiting addresses.

    Args:
        row_work: intermediate elements per output row (k_r).
        c_row_nnz: unique outputs per row (u_r); collisions are k_r - u_r.
        costs: cost model.
        threads: threads per merge block.
        chunk_target: target accumulated elements per block.
        row_form: row-wise accumulation (row-product baseline).
        smem_bytes: shared memory per block (B-Limiting inflates this).
        row_mask: restrict to these rows (B-Limiting splits heavy/light).
    """
    k = np.asarray(row_work, dtype=np.int64)
    u = np.asarray(c_row_nnz, dtype=np.int64)
    if row_mask is not None:
        k = np.where(row_mask, k, 0)
        u = np.where(row_mask, u, 0)
    active = k > 0
    if not active.any():
        return BlockArray.empty()
    k = k[active]
    u = u[active]
    bpe = costs.bytes_per_entry

    heavy = k >= chunk_target
    builder = BlockArrayBuilder()

    def _add(kk: np.ndarray, uu: np.ndarray) -> None:
        if len(kk) == 0:
            return
        iters = ceil_div(kk, threads).astype(np.float64)
        collisions = kk - uu
        unique = kk * bpe  # read back the intermediate elements
        writes = uu * bpe
        if row_form:
            # Row-wise accumulation: sequential buffers, no shared-accumulator
            # atomics; modest reuse, well-coalesced transactions.
            reuse = kk * 4.0
            transactions = kk * costs.merge_row_sectors_per_elem + uu * bpe / 32.0
        else:
            # Matrix-form dense accumulator: every element is an atomic
            # read-modify-write against the row's accumulator array, which
            # lives in cache only while co-resident working sets fit — the
            # contention B-Limiting relieves.
            reuse = kk * 16.0
            transactions = kk * costs.merge_matrix_sectors_per_elem + uu * bpe / 32.0
        builder.add_blocks(
            threads=threads,
            effective_threads=np.minimum(kk, threads),
            iters=iters,
            ops=kk,
            unique_bytes=unique,
            reuse_bytes=reuse,
            write_bytes=writes,
            smem_bytes=smem_bytes,
            working_set=uu * 16.0 + 1024.0,
            atomics=kk,
            collisions=collisions,
            transactions=transactions,
        )

    _add(k[heavy], u[heavy])

    light_k, light_u = k[~heavy], u[~heavy]
    if len(light_k):
        groups = group_by_budget(light_k, chunk_target)
        n_groups = int(groups[-1]) + 1
        kk = np.bincount(groups, weights=light_k, minlength=n_groups).astype(np.int64)
        uu = np.bincount(groups, weights=light_u, minlength=n_groups).astype(np.int64)
        _add(kk, uu)

    return builder.build()
