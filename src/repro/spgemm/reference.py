"""Reference spGEMM: the numeric ground truth.

A plain expand-then-coalesce product with no performance modelling attached.
Every other scheme's ``multiply`` must agree with this bit-for-bit on
structure and to rounding on values; the test suite additionally checks it
against ``scipy.sparse`` when available.
"""

from __future__ import annotations

from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.spgemm.expansion import expand_outer
from repro.spgemm.merge import merge_triplets

__all__ = ["reference_spgemm"]


def reference_spgemm(a: CSRMatrix, b: CSRMatrix | None = None) -> CSRMatrix:
    """Compute ``a @ b`` exactly (``b`` defaults to ``a``)."""
    b = a if b is None else b
    a_csc: CSCMatrix = a.to_csc()
    rows, cols, vals = expand_outer(a_csc, b)
    return merge_triplets(rows, cols, vals, (a.n_rows, b.n_cols))
