"""Outer-product spGEMM baseline.

Equation (2) of the paper: ``C = Σ_k a_{*k} · b_{k*}``.  One thread block per
non-empty column/row pair with a *fixed* block size — perfectly balanced
threads inside a block (every thread does ``nnz(a_{*k})`` products), but
block-level loads vary wildly on skewed inputs, and most pairs have far fewer
effective threads than the fixed block size.  These are exactly the
inefficiencies the Block Reorganizer removes; this baseline is the paper's
0.95x reference point.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.config import GPUConfig
from repro.gpusim.host import device_precalc_cycles
from repro.gpusim.trace import KernelPhase, KernelTrace, PHASE_EXPANSION, PHASE_MERGE
from repro.sparse.csr import CSRMatrix
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.expansion import expand_outer
from repro.spgemm.merge import merge_triplets
from repro.spgemm.traceutil import merge_blocks, outer_pair_blocks

__all__ = ["OuterProductSpGEMM"]


class OuterProductSpGEMM(SpGEMMAlgorithm):
    """Outer-product expansion with matrix-form dense-accumulator merge."""

    name = "outer-product"

    def __init__(self, *args, fixed_block_size: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fixed_block_size = fixed_block_size

    def multiply(self, ctx: MultiplyContext) -> CSRMatrix:
        """Numeric plane: expand by pair, then coalesce."""
        rows, cols, vals = expand_outer(ctx.a_csc, ctx.b_csr)
        return merge_triplets(rows, cols, vals, ctx.out_shape)

    def build_trace(self, ctx: MultiplyContext, config: GPUConfig) -> KernelTrace:
        """Performance plane: one fixed-size block per non-empty pair."""
        na = ctx.a_csc.col_nnz()
        nb = ctx.b_csr.row_nnz()
        nonempty = (na > 0) & (nb > 0)
        expansion = outer_pair_blocks(
            na[nonempty],
            nb[nonempty],
            self.costs,
            fixed_threads=self.fixed_block_size,
        )
        merge = merge_blocks(ctx.row_work, ctx.c_row_nnz, self.costs, row_form=False)
        return KernelTrace(
            algorithm=self.name,
            phases=[
                KernelPhase("expansion", PHASE_EXPANSION, expansion),
                KernelPhase("merge", PHASE_MERGE, merge),
            ],
            device_setup_cycles=device_precalc_cycles(
                self.costs, ctx.a_csr.nnz, ctx.b_csr.nnz
            ),
            meta={
                "n_pairs": int(np.count_nonzero(nonempty)),
                "total_work": ctx.total_work,
            },
        )
