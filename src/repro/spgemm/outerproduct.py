"""Outer-product spGEMM baseline.

Equation (2) of the paper: ``C = Σ_k a_{*k} · b_{k*}``.  One thread block per
non-empty column/row pair with a *fixed* block size — perfectly balanced
threads inside a block (every thread does ``nnz(a_{*k})`` products), but
block-level loads vary wildly on skewed inputs, and most pairs have far fewer
effective threads than the fixed block size.  These are exactly the
inefficiencies the Block Reorganizer removes; this baseline is the paper's
0.95x reference point.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.config import GPUConfig
from repro.gpusim.host import device_precalc_cycles
from repro.gpusim.trace import PHASE_EXPANSION, PHASE_MERGE
from repro.plan.ir import ExecutionPlan, PlanPhase
from repro.plan.kernels import coalesce_kernel, expand_outer_kernel
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.traceutil import merge_blocks, outer_pair_blocks

__all__ = ["OuterProductSpGEMM"]


class OuterProductSpGEMM(SpGEMMAlgorithm):
    """Outer-product expansion with matrix-form dense-accumulator merge."""

    name = "outer-product"

    def __init__(self, *args, fixed_block_size: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fixed_block_size = fixed_block_size

    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """One fixed-size block per non-empty pair; pair-order expansion."""
        na = ctx.a_csc.col_nnz()
        nb = ctx.b_csr.row_nnz()
        nonempty = (na > 0) & (nb > 0)
        expansion = outer_pair_blocks(
            na[nonempty],
            nb[nonempty],
            self.costs,
            fixed_threads=self.fixed_block_size,
        )
        merge = merge_blocks(ctx.row_work, ctx.c_row_nnz, self.costs, row_form=False)
        return ExecutionPlan(
            algorithm=self.name,
            phases=[
                PlanPhase(
                    "expansion", PHASE_EXPANSION, expansion,
                    kernel=expand_outer_kernel(),
                ),
                PlanPhase("merge", PHASE_MERGE, merge, kernel=coalesce_kernel()),
            ],
            device_setup_cycles=device_precalc_cycles(
                self.costs, ctx.a_csr.nnz, ctx.b_csr.nnz
            ),
            meta={
                "n_pairs": int(np.count_nonzero(nonempty)),
                "total_work": ctx.total_work,
            },
        )
