"""Row-product spGEMM baseline — the paper's 1.0x reference.

Gustavson-style: each output row ``i`` is produced by one thread, which walks
row ``a_{i*}`` and accumulates scaled rows of B.  Threads in a block get rows
of wildly different cost on power-law inputs — the thread-level load-imbalance
problem the paper's Figure 2 illustrates — but the merge is row-wise (the
cheap form), and the scheme needs no preprocessing.  The paper normalises all
results to this baseline.
"""

from __future__ import annotations

from repro.gpusim.config import GPUConfig
from repro.gpusim.trace import PHASE_EXPANSION, PHASE_MERGE
from repro.plan.ir import ExecutionPlan, PlanPhase
from repro.plan.kernels import coalesce_kernel, expand_row_kernel
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.traceutil import entry_chunk_blocks, merge_blocks

__all__ = ["RowProductSpGEMM"]


class RowProductSpGEMM(SpGEMMAlgorithm):
    """Thread-per-row Gustavson expansion with row-form merge."""

    name = "row-product"

    def __init__(self, *args, block_threads: int = 128, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.block_threads = block_threads

    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """Thread-per-A-entry blocks + row-form merge; row-order expansion."""
        entry_work = self.ctx_entry_work(ctx)
        expansion = entry_chunk_blocks(
            entry_work,
            self.costs,
            threads=self.block_threads,
            instr_scale=self.costs.row_exp_instr_scale,
        )
        merge = merge_blocks(ctx.row_work, ctx.c_row_nnz, self.costs, row_form=True)
        return ExecutionPlan(
            algorithm=self.name,
            phases=[
                PlanPhase(
                    "expansion", PHASE_EXPANSION, expansion,
                    kernel=expand_row_kernel(),
                ),
                PlanPhase(
                    "merge",
                    PHASE_MERGE,
                    merge,
                    kernel=coalesce_kernel(),
                    instr_override=self.costs.instr_per_merge_elem_row,
                ),
            ],
            meta={"total_work": ctx.total_work},
        )

    @staticmethod
    def ctx_entry_work(ctx: MultiplyContext) -> "np.ndarray":
        """Products per A-entry: ``nnz(b_{col(e)*})`` in CSR order."""
        return ctx.b_csr.row_nnz()[ctx.a_csr.indices]
