"""bhSPARSE-like comparator (Liu & Vinter, IPDPS'14).

Upper-bounds each output row's nnz, bins rows by that bound, and runs a
specialised kernel per bin (heap / bitonic / mergepath), giving much better
row-level balance than scalar row-product at the cost of binning setup and
per-element merge machinery.  Lands between the vendor libraries and the
hand-tuned baselines (0.55x average in the paper), and is strongest on
relatively dense inputs.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.config import GPUConfig
from repro.gpusim.host import device_precalc_cycles
from repro.gpusim.trace import PHASE_EXPANSION, PHASE_MERGE
from repro.plan.ir import ExecutionPlan, PlanPhase
from repro.plan.kernels import coalesce_kernel, expand_row_subset_kernel
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.traceutil import ceil_div, group_by_budget
from repro.gpusim.block import BlockArrayBuilder

__all__ = ["BhSparseSpGEMM"]

#: bin edges on the row upper bound, mirroring bhSPARSE's kernel dispatch.
_BIN_EDGES = (32, 128, 512, 2048)


class BhSparseSpGEMM(SpGEMMAlgorithm):
    """Row-binning hybrid spGEMM (bhSPARSE model)."""

    name = "bhsparse"

    #: heap-insertion instruction cost per product.
    merge_instr_scale = 8.0

    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """One fused expand+merge kernel per row bin.

        Each bin's kernel expands exactly the rows that fall in its bound
        range (every output row lands in one bin, so per-bin row-subset
        expansion reproduces the full row-ordered expansion bit for bit).
        """
        work = ctx.row_work
        u = ctx.c_row_nnz
        bpe = self.costs.bytes_per_entry
        phases: list[PlanPhase] = []

        edges = (0,) + _BIN_EDGES + (np.iinfo(np.int64).max,)
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (work > lo) & (work <= hi)
            if not mask.any():
                continue
            k = work[mask]
            uu = u[mask]
            builder = BlockArrayBuilder()
            # Rows in a bin have similar cost -> pack a warp per row, a few
            # rows per block, well balanced.
            threads = 128
            rows_per_block = 4
            groups = group_by_budget(np.ones(len(k), dtype=np.int64), rows_per_block)
            n_groups = int(groups[-1]) + 1
            kk = np.bincount(groups, weights=k, minlength=n_groups).astype(np.int64)
            uu_g = np.bincount(groups, weights=uu, minlength=n_groups).astype(np.int64)
            kmax = np.zeros(n_groups)
            np.maximum.at(kmax, groups, k.astype(np.float64))
            iters = ceil_div(kmax, 32) * self.merge_instr_scale
            builder.add_blocks(
                threads=threads,
                effective_threads=np.minimum(kk, threads),
                iters=iters,
                ops=kk,
                # Progressive allocation re-reads rows and double-buffers
                # intermediate results before compaction.
                unique_bytes=kk * bpe * 2.5,
                reuse_bytes=kk * 30.0,
                write_bytes=(kk + uu_g) * bpe,
                smem_bytes=12 * 1024,  # per-row heaps live in shared memory
                working_set=kk * bpe,
                transactions=kk * bpe / 32.0 * 3.4,
            )
            phases.append(
                PlanPhase(
                    f"bin<= {hi if hi < 1 << 60 else 'inf'}",
                    PHASE_EXPANSION,
                    builder.build(),
                    kernel=expand_row_subset_kernel(mask),
                )
            )

        # Merge bookkeeping pass (bhSPARSE re-allocates and compacts rows).
        compact = BlockArrayBuilder()
        nnz_c = int(u.sum())
        if nnz_c:
            n_blocks = int(ceil_div(nnz_c, 4096))
            elems = np.full(n_blocks, 4096, dtype=np.int64)
            elems[-1] = nnz_c - 4096 * (n_blocks - 1)
            compact.add_blocks(
                threads=256,
                effective_threads=np.minimum(elems, 256),
                iters=ceil_div(elems, 256).astype(np.float64),
                ops=elems,
                unique_bytes=elems * bpe,
                write_bytes=elems * bpe,
                working_set=np.full(n_blocks, 4096.0 * bpe),
                transactions=elems * bpe / 16.0,
            )
        phases.append(PlanPhase("compact", PHASE_MERGE, compact.build(), kernel=coalesce_kernel()))

        return ExecutionPlan(
            algorithm=self.name,
            phases=phases,
            device_setup_cycles=device_precalc_cycles(
                self.costs, ctx.a_csr.nnz, ctx.b_csr.nnz, extra_elements=len(work)
            )
            * 2.0,  # binning + progressive allocation passes
            meta={"total_work": ctx.total_work},
        )
