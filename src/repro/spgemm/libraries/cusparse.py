"""cuSPARSE-like comparator (``csrgemm``).

Models the two-phase (symbolic + numeric) hash-based row-product scheme of
NVIDIA's library: warp-per-row work assignment, per-product hash-table
insertion, and a second full pass to size the output before computing it.
Strengths and weaknesses follow the paper's measurements: very low fixed
overhead (wins on tiny inputs, Figure 16a s1), but poor block-level balance
on power-law rows and double work from the two passes (0.29x average on the
real-world sets).
"""

from __future__ import annotations

from repro.gpusim.config import GPUConfig
from repro.gpusim.trace import PHASE_EXPANSION, PHASE_MERGE
from repro.plan.ir import ExecutionPlan, PlanPhase
from repro.plan.kernels import coalesce_kernel, expand_row_kernel
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.traceutil import row_chunk_blocks

__all__ = ["CuSparseSpGEMM"]


class CuSparseSpGEMM(SpGEMMAlgorithm):
    """Two-phase hash-based row-product spGEMM (cuSPARSE model)."""

    name = "cusparse"

    #: extra instructions per product for hash probing/insertion.
    hash_instr_scale = 6.0
    #: traffic amplification from global hash tables (probe chains + spills).
    hash_traffic_scale = 2.2

    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """Symbolic pass + numeric pass, both warp-per-row.

        Numerically, the symbolic pass walks (and emits) every product in row
        order and the numeric pass accumulates them — hash semantics produce
        the same values; insertion order only affects timing.
        """
        a_row_nnz = ctx.a_csr.row_nnz()

        def _pass(scale: float):
            return row_chunk_blocks(
                ctx.row_work,
                a_row_nnz,
                self.costs,
                threads=128,
                work_granularity=32,  # warp per row
                instr_scale=scale,
                traffic_scale=self.hash_traffic_scale,
            )

        # Symbolic pass: counts only (no value traffic) but walks everything.
        symbolic = _pass(self.hash_instr_scale * 0.6)
        numeric = _pass(self.hash_instr_scale)
        return ExecutionPlan(
            algorithm=self.name,
            phases=[
                PlanPhase(
                    "symbolic", PHASE_EXPANSION, symbolic,
                    kernel=expand_row_kernel(),
                ),
                PlanPhase(
                    "numeric", PHASE_MERGE, numeric,
                    kernel=coalesce_kernel(),
                    instr_override=self.costs.instr_per_product * self.hash_instr_scale,
                ),
            ],
            meta={"total_work": ctx.total_work},
        )
