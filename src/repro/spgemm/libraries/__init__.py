"""Library comparators: cost models of the spGEMM implementations the paper
benchmarks against (cuSPARSE, CUSP, bhSPARSE on the GPU; MKL on the host)."""

from repro.spgemm.libraries.bhsparse import BhSparseSpGEMM
from repro.spgemm.libraries.cusp import CuspSpGEMM
from repro.spgemm.libraries.cusparse import CuSparseSpGEMM
from repro.spgemm.libraries.mkl import MklSpGEMM

__all__ = ["BhSparseSpGEMM", "CuspSpGEMM", "CuSparseSpGEMM", "MklSpGEMM"]
