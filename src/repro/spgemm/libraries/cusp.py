"""CUSP-like comparator (ESC: expand, sort, compress).

CUSP materialises every intermediate product as a COO triplet, radix-sorts
the whole list by coordinate, then segment-reduces duplicates.  The expansion
is perfectly balanced (flat index space), but the sort makes several full
passes over 16-byte records — the scheme's traffic grows as
``O(T · digits)`` and it lands last on large inputs (0.22x average in the
paper).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.block import BlockArrayBuilder
from repro.gpusim.config import GPUConfig
from repro.gpusim.trace import PHASE_EXPANSION, PHASE_MERGE
from repro.plan.ir import ExecutionPlan, PlanPhase
from repro.plan.kernels import coalesce_kernel, expand_row_kernel, sort_pending_kernel
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.traceutil import ceil_div

__all__ = ["CuspSpGEMM"]

_COO_BYTES = 16.0  # row + col + value per intermediate record
_RADIX_PASSES = 5


def _flat_blocks(total_elems: int, bytes_per_elem: float, rw_factor: float, instr: float):
    """Balanced flat-index blocks sweeping ``total_elems`` records."""
    builder = BlockArrayBuilder()
    if total_elems <= 0:
        return builder.build()
    per_block = 4096
    n_blocks = int(ceil_div(total_elems, per_block))
    elems = np.full(n_blocks, per_block, dtype=np.int64)
    elems[-1] = total_elems - per_block * (n_blocks - 1)
    iters = ceil_div(elems, 256).astype(np.float64) * instr
    bytes_moved = elems * bytes_per_elem * rw_factor
    builder.add_blocks(
        threads=256,
        effective_threads=np.minimum(elems, 256),
        iters=iters,
        ops=elems,
        unique_bytes=bytes_moved * 0.5,
        reuse_bytes=np.zeros(n_blocks),
        write_bytes=bytes_moved * 0.5,
        smem_bytes=8192,
        working_set=np.full(n_blocks, per_block * bytes_per_elem),
        transactions=bytes_moved / 32.0,
    )
    return builder.build()


class CuspSpGEMM(SpGEMMAlgorithm):
    """Expand-sort-compress spGEMM (CUSP model)."""

    name = "cusp"

    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """Balanced expansion, radix-sort passes, segmented compression.

        ESC is exactly our numeric merge, so this is the one scheme whose
        numeric path matches its performance model one-to-one: the sort phase
        genuinely (stably) sorts the triplet stream and the compress phase
        coalesces it.
        """
        t = ctx.total_work
        expansion = _flat_blocks(t, _COO_BYTES, rw_factor=1.0, instr=2.0)
        sort_blocks = _flat_blocks(t, _COO_BYTES, rw_factor=2.0 * _RADIX_PASSES, instr=4.0)
        compress = _flat_blocks(t, _COO_BYTES, rw_factor=1.0, instr=1.5)
        return ExecutionPlan(
            algorithm=self.name,
            phases=[
                PlanPhase(
                    "expand", PHASE_EXPANSION, expansion,
                    kernel=expand_row_kernel(),
                ),
                PlanPhase(
                    "sort", PHASE_MERGE, sort_blocks,
                    kernel=sort_pending_kernel(),
                ),
                PlanPhase(
                    "compress", PHASE_MERGE, compress,
                    kernel=coalesce_kernel(),
                ),
            ],
            meta={"total_work": t},
        )
