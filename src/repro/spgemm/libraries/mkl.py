"""MKL-like comparator: multithreaded CPU Gustavson.

An analytic cost model for Intel MKL's ``mkl_sparse_sp2m``-style CSR×CSR:
per-product hash/accumulator work on every core in parallel, bounded below by
host memory bandwidth.  No GPU trace is involved; ``simulate`` synthesises a
:class:`KernelStats` whose time lives in ``host_seconds`` so the bench
harness can treat all algorithms uniformly.  The paper measures MKL at 0.48x
of the GPU row-product baseline on average.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.gpusim.block import BlockArray
from repro.gpusim.config import CPUConfig, GPUConfig, XEON_E5_2640V4
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats, PhaseStats
from repro.gpusim.trace import PHASE_EXPANSION, PHASE_MERGE
from repro.plan.ir import ExecutionPlan, PlanPhase
from repro.plan.kernels import coalesce_kernel, expand_row_kernel
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm

__all__ = ["MklSpGEMM"]


class MklSpGEMM(SpGEMMAlgorithm):
    """Analytic multicore Gustavson (MKL model)."""

    name = "mkl"

    #: CPU cycles per intermediate product (gather + hash insert + FMA).
    cycles_per_product = 10.0
    #: effective bytes per product against host DRAM.
    bytes_per_product = 22.0
    #: one-time parallel region spin-up.
    parallel_overhead_s = 25e-6

    def __init__(self, *args, cpu: CPUConfig = XEON_E5_2640V4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cpu = cpu

    def cpu_seconds(self, ctx: MultiplyContext) -> float:
        """Analytic execution time on the configured host CPU."""
        t = ctx.total_work
        compute = t * self.cycles_per_product / (self.cpu.cores * self.cpu.clock_hz)
        memory = t * self.bytes_per_product / (self.cpu.dram_bandwidth_gbs * 1e9)
        # Parallel Gustavson scales with rows; the heaviest row bounds one core.
        heaviest = float(ctx.row_work.max()) if len(ctx.row_work) else 0.0
        straggler = heaviest * self.cycles_per_product / self.cpu.clock_hz
        return max(compute, memory, straggler) + self.parallel_overhead_s

    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """Host-only plan: Gustavson expansion + coalesce on the CPU.

        Both phases are ``device=False`` with empty block arrays, so
        ``to_trace`` yields an empty trace with all time in ``host_seconds``
        while the numeric kernels still run row-ordered expand + merge.
        """
        empty = BlockArray.empty()
        return ExecutionPlan(
            algorithm=self.name,
            phases=[
                PlanPhase(
                    "cpu-expand", PHASE_EXPANSION, empty,
                    kernel=expand_row_kernel(),
                    device=False,
                ),
                PlanPhase(
                    "cpu-merge", PHASE_MERGE, empty,
                    kernel=coalesce_kernel(),
                    device=False,
                ),
            ],
            host_seconds=self.cpu_seconds(ctx),
            meta={"cpu": self.cpu.name, "total_work": ctx.total_work},
        )

    def simulate(self, ctx: MultiplyContext, simulator: GPUSimulator) -> KernelStats:
        """Synthesise stats directly (no GPU phases to schedule)."""
        # The other schemes get their simulate span from GPUSimulator.run;
        # this host-only comparator records its own so traces cover all seven.
        with obs.span(f"host.run[{self.name}]", "simulate") as sp:
            stats = KernelStats(
                algorithm=self.name,
                config=simulator.config,
                host_seconds=self.cpu_seconds(ctx),
                meta={"cpu": self.cpu.name},
            )
            sp.add(ops=int(ctx.total_work))
        # Record the useful work as a zero-duration expansion phase so GFLOPS
        # accounting works uniformly across algorithms.
        stats.phases.append(
            PhaseStats(
                name="cpu-gustavson",
                stage="expansion",
                n_blocks=0,
                makespan_cycles=0.0,
                sm_busy_cycles=np.zeros(simulator.config.n_sms),
                sm_finish_cycles=np.zeros(simulator.config.n_sms),
                total_ops=ctx.total_work,
                dram_bytes=ctx.total_work * self.bytes_per_product,
                l2_read_bytes=0.0,
                l2_write_bytes=0.0,
                sync_stall_cycles=0.0,
                busy_cycles=0.0,
                residency=1,
                l2_hit=0.0,
                l1_hit=0.0,
            )
        )
        return stats
