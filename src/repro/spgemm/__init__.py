"""spGEMM schemes: numeric engine, baselines and library comparators."""

from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.expansion import expand_outer, expand_row
from repro.spgemm.merge import MergeRecipe, merge_triplets, plan_merge, row_nnz_of_triplets
from repro.spgemm.session import IterativeSession
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.reference import reference_spgemm
from repro.spgemm.rowproduct import RowProductSpGEMM
from repro.spgemm.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    semiring_spgemm,
)

__all__ = [
    "MultiplyContext",
    "SpGEMMAlgorithm",
    "IterativeSession",
    "expand_outer",
    "expand_row",
    "MergeRecipe",
    "plan_merge",
    "merge_triplets",
    "row_nnz_of_triplets",
    "OuterProductSpGEMM",
    "RowProductSpGEMM",
    "reference_spgemm",
    "Semiring",
    "semiring_spgemm",
    "PLUS_TIMES",
    "OR_AND",
    "MIN_PLUS",
    "MAX_TIMES",
]
