"""IterativeSession: hold one plan cache across an iterative workload.

The apps in :mod:`repro.apps` (PageRank, reachability, shortest paths) call
spGEMM in a loop whose operand *structure* is fixed — only values change
between iterations.  An :class:`IterativeSession` wraps one scheme and one
:class:`~repro.plan.cache.PlanCache` so the loop body stays a plain
``session.multiply(a, b)`` while lowering, classification and all symbolic
work happen once per distinct structure:

    session = IterativeSession(RowProductSpGEMM())
    for _ in range(n_iter):
        scores = session.multiply(scores, transition)   # replay after iter 1
    print(format_cache_stats(session.stats))

Semiring loops use :meth:`IterativeSession.semiring_multiply` the same way.
On a structure hit the session skips even context construction (CSC
conversion and workload precalculation) — the replay reads nothing but the
operands' value arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import exec as rexec
from repro.plan.cache import PlanCache, PlanCacheStats
from repro.sparse.csr import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.gpusim.config import GPUConfig
    from repro.spgemm.base import SpGEMMAlgorithm
    from repro.spgemm.semiring import Semiring

__all__ = ["IterativeSession"]


class IterativeSession:
    """A scheme plus a structure-keyed plan cache, for multiply-in-a-loop.

    Attributes:
        algorithm: the wrapped :class:`~repro.spgemm.base.SpGEMMAlgorithm`
            used for plan-path multiplies.
        cache: the session's :class:`~repro.plan.cache.PlanCache`; shareable
            between sessions to pool recipes across workloads.
        exec_engine: the session's persistent :class:`~repro.exec.ExecEngine`
            (``None`` when ``exec_workers`` <= 1).  One pool and one set of
            published shared-memory operands serve every iteration — replay
            across a loop pays worker spin-up and operand copy-in once.
    """

    def __init__(
        self,
        algorithm: SpGEMMAlgorithm,
        *,
        cache: PlanCache | None = None,
        config: GPUConfig | None = None,
        exec_workers: int | None = None,
        exec_partitioner: str = rexec.DEFAULT_PARTITIONER,
    ) -> None:
        self.algorithm = algorithm
        self.cache = cache if cache is not None else PlanCache()
        self.config = config
        self.exec_engine = (
            rexec.ExecEngine(int(exec_workers), partitioner=exec_partitioner)
            if exec_workers is not None and int(exec_workers) > 1
            else None
        )

    def close(self) -> None:
        """Release the session's execution engine (pool + shared memory)."""
        if self.exec_engine is not None:
            self.exec_engine.close()

    @classmethod
    def wrap(cls, engine: "SpGEMMAlgorithm | IterativeSession") -> "IterativeSession":
        """Coerce an engine into a session (pass sessions through unchanged).

        Lets the :mod:`repro.apps` entry points accept either a bare scheme
        (old signature, cache scoped to one call) or a caller-held session
        whose cache — and counters — span many calls.
        """
        return engine if isinstance(engine, cls) else cls(engine)

    @property
    def stats(self) -> PlanCacheStats:
        """The underlying cache's amortisation counters."""
        return self.cache.stats

    def multiply(self, a: CSRMatrix, b: CSRMatrix | None = None) -> CSRMatrix:
        """``a @ b`` (``b`` defaults to ``a``), replaying on structure hits."""
        with rexec.engine_scope(self.exec_engine):
            return self.cache.multiply(self.algorithm, a, b, config=self.config)

    def semiring_multiply(
        self,
        a: CSRMatrix,
        b: CSRMatrix | None = None,
        semiring: "Semiring | None" = None,
    ) -> CSRMatrix:
        """Semiring product with the same structure-reuse discipline."""
        with rexec.engine_scope(self.exec_engine):
            return self.cache.semiring_multiply(a, b, semiring)

    def multiply_chunked(
        self,
        a: CSRMatrix,
        b: CSRMatrix | None = None,
        *,
        mem_budget: int | str,
        spill_dir: str | None = None,
    ):
        """``a @ b`` under a memory budget via :mod:`repro.oocore`.

        Runs the out-of-core chunked executor with this session's exec
        engine ambient; returns ``(result, OocStats)``.  The plan cache is
        deliberately bypassed — per-panel recipes would pin budget-sized
        gather arrays in the LRU — but the result is bit-identical to
        :meth:`multiply` on the same operands.
        """
        from repro.oocore import chunked_multiply

        with rexec.engine_scope(self.exec_engine):
            return chunked_multiply(
                self.algorithm, a, b, mem_budget=mem_budget, spill_dir=spill_dir
            )
