"""Semiring spGEMM: the same expansion/merge machinery over other algebras.

Graph analytics often needs matrix multiplication over a semiring other than
(+, x): boolean (or, and) for reachability, tropical (min, +) for shortest
paths, (max, x) for widest paths.  The expansion stage is algebra-agnostic —
only the per-product combine and the merge-stage reduce change — so the
library exposes them as a :class:`Semiring` plugged into the shared engine.

Performance-wise a semiring product launches the same thread blocks as the
numeric product (identical sparsity work), so any
:class:`~repro.spgemm.base.SpGEMMAlgorithm` trace/simulation applies
unchanged; only the numeric plane differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.spgemm.expansion import expand_outer_indices


@dataclass(frozen=True)
class Semiring:
    """An algebra for sparse matrix multiplication.

    Attributes:
        name: identifier ("plus-times", "or-and", "min-plus", ...).
        combine: vectorised binary op replacing the scalar multiply.
        reduce: NumPy ufunc replacing the scalar add in the merge
            (must support ``reduceat``).
        identity: the reduce identity (what an absent entry means).
    """

    name: str
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray] = field(hash=False)
    reduce: np.ufunc = field(hash=False)
    identity: float

    def __post_init__(self) -> None:
        if not hasattr(self.reduce, "reduceat"):
            raise ConfigurationError("reduce must be a NumPy ufunc with reduceat")


PLUS_TIMES = Semiring("plus-times", np.multiply, np.add, 0.0)
"""The standard arithmetic semiring (ordinary matrix multiplication)."""

OR_AND = Semiring(
    "or-and",
    lambda a, b: ((a != 0) & (b != 0)).astype(np.float64),
    np.maximum,
    0.0,
)
"""Boolean semiring: entry (i, j) of C is 1 iff some k connects i to j."""

MIN_PLUS = Semiring("min-plus", np.add, np.minimum, np.inf)
"""Tropical semiring: entry (i, j) of C is the cheapest 2-leg path cost."""

MAX_TIMES = Semiring("max-times", np.multiply, np.maximum, 0.0)
"""Widest/most-reliable-path semiring over probabilities in [0, 1]."""

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "OR_AND",
    "MIN_PLUS",
    "MAX_TIMES",
    "semiring_spgemm",
]


def semiring_spgemm(
    a: CSRMatrix, b: CSRMatrix | None = None, semiring: Semiring = PLUS_TIMES
) -> CSRMatrix:
    """Compute ``a (x) b`` over an arbitrary semiring.

    Expansion order follows the outer product; duplicates merge with the
    semiring's reduce.  Entries equal to the reduce identity are dropped
    (an explicit identity is indistinguishable from an absent entry in
    semiring algebra).
    """
    b = a if b is None else b
    a_csc = a.to_csc()
    rows, cols, a_idx, b_idx = expand_outer_indices(a_csc, b)
    vals = semiring.combine(a_csc.data[a_idx], b.data[b_idx])
    return _merge_with_reduce(rows, cols, vals, (a.n_rows, b.n_cols), semiring)


def _merge_with_reduce(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
    semiring: Semiring,
) -> CSRMatrix:
    n_rows, n_cols = shape
    if len(rows) == 0:
        return CSRMatrix.empty(shape)
    keys = rows.astype(np.int64) * np.int64(n_cols) + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]

    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = keys[1:] != keys[:-1]
    group_starts = np.flatnonzero(boundaries)
    reduced = semiring.reduce.reduceat(vals, group_starts)

    unique_keys = keys[boundaries]
    out_rows = unique_keys // n_cols
    out_cols = unique_keys % n_cols
    keep = reduced != semiring.identity
    out_rows, out_cols, reduced = out_rows[keep], out_cols[keep], reduced[keep]

    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_rows, minlength=n_rows), out=indptr[1:])
    return CSRMatrix(shape, indptr, out_cols, reduced.astype(np.float64))
