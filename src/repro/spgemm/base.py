"""Algorithm interface: every spGEMM scheme has a numeric and a performance plane.

:class:`MultiplyContext` packages one multiplication problem (operands in the
formats the kernels read, plus the precalculated workload vectors the paper's
Section IV-B computes).  An algorithm then offers:

* ``multiply(ctx)`` — the numeric plane: compute C exactly, using the
  scheme's own expansion order.
* ``build_trace(ctx, config)`` — the performance plane: the thread blocks the
  scheme would launch, for the simulator.
* ``run(ctx, simulator)`` — both, conveniently.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import FingerprintError
from repro.gpusim.config import GPUConfig
from repro.gpusim.costs import DEFAULT_COSTS, CostModel
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats
from repro.gpusim.trace import KernelTrace
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import check_multipliable
from repro.spgemm.expansion import expand_outer
from repro.spgemm.merge import merge_triplets, row_nnz_of_triplets

__all__ = ["MultiplyContext", "SpGEMMAlgorithm"]


@dataclass
class MultiplyContext:
    """One multiplication problem plus its precalculated workload vectors.

    The vectors mirror the paper's precalculation step: ``pair_work`` is the
    block-wise nnz of the outer-product formulation, ``row_work`` the row-wise
    nnz used by the merge model and B-Limiting.
    """

    a_csr: CSRMatrix
    a_csc: CSCMatrix
    b_csr: CSRMatrix

    @classmethod
    def build(
        cls, a: CSRMatrix, b: CSRMatrix | None = None, a_csc: CSCMatrix | None = None
    ) -> "MultiplyContext":
        """Build a context for ``a @ b`` (``b`` defaults to ``a``: C = A^2)."""
        b = a if b is None else b
        check_multipliable(a.shape, b.shape)
        return cls(a_csr=a, a_csc=a_csc if a_csc is not None else a.to_csc(), b_csr=b)

    # ------------------------------------------------------------------
    # Precalculated workloads (Section IV-B)
    # ------------------------------------------------------------------
    @cached_property
    def pair_work(self) -> np.ndarray:
        """Products per column/row pair k — the block-wise nnz."""
        return self.a_csc.col_nnz() * self.b_csr.row_nnz()

    @property
    def total_work(self) -> int:
        """nnz(C-hat): total intermediate products."""
        return int(self.pair_work.sum())

    @cached_property
    def row_work(self) -> np.ndarray:
        """Intermediate products landing in each output row — row-wise nnz."""
        b_row_nnz = self.b_csr.row_nnz()
        per_entry = b_row_nnz[self.a_csr.indices]
        out = np.zeros(self.a_csr.n_rows, dtype=np.int64)
        row_of = np.repeat(np.arange(self.a_csr.n_rows, dtype=np.int64), self.a_csr.row_nnz())
        np.add.at(out, row_of, per_entry)
        return out

    @cached_property
    def reference_c(self) -> CSRMatrix:
        """The exact product, computed once via outer expansion + merge."""
        rows, cols, vals = expand_outer(self.a_csc, self.b_csr)
        return merge_triplets(rows, cols, vals, self.out_shape)

    @cached_property
    def c_row_nnz(self) -> np.ndarray:
        """Unique output coordinates per row (the symbolic multiply)."""
        if "reference_c" in self.__dict__:
            return self.reference_c.row_nnz()
        rows, cols, _ = expand_outer(self.a_csc, self.b_csr)
        return row_nnz_of_triplets(rows, cols, self.out_shape)

    @property
    def out_shape(self) -> tuple[int, int]:
        return (self.a_csr.n_rows, self.b_csr.n_cols)

    @property
    def nnz_c(self) -> int:
        return int(self.c_row_nnz.sum())


class SpGEMMAlgorithm(abc.ABC):
    """Base class for every spGEMM scheme in the library."""

    #: short identifier used in bench tables ("row-product", "cusparse", ...)
    name: str = "abstract"

    #: False for stateful/tuned schemes whose output is not a pure function of
    #: their constructor parameters; those bypass the persistent result cache.
    fingerprintable: bool = True

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs

    def fingerprint(self) -> dict:
        """JSON-able identity of everything that affects this scheme's output.

        Subclasses with extra tunables (e.g. the Block Reorganizer's
        :class:`ReorganizerOptions`) must extend the returned dict; schemes
        whose behaviour is not a pure function of constructor parameters set
        ``fingerprintable = False`` instead.
        """
        if not self.fingerprintable:
            raise FingerprintError(
                f"{self.name!r} results are not content-addressable"
            )
        return {
            "class": type(self).__name__,
            "name": self.name,
            "costs": dataclasses.asdict(self.costs),
        }

    @abc.abstractmethod
    def multiply(self, ctx: MultiplyContext) -> CSRMatrix:
        """Compute ``A @ B`` exactly, using this scheme's expansion order."""

    @abc.abstractmethod
    def build_trace(self, ctx: MultiplyContext, config: GPUConfig) -> KernelTrace:
        """Describe the thread blocks this scheme launches on ``config``."""

    def run(
        self, ctx: MultiplyContext, simulator: GPUSimulator
    ) -> tuple[CSRMatrix, KernelStats]:
        """Numeric result + simulated profile in one call."""
        c = self.multiply(ctx)
        stats = simulator.run(self.build_trace(ctx, simulator.config))
        return c, stats

    def simulate(self, ctx: MultiplyContext, simulator: GPUSimulator) -> KernelStats:
        """Simulated profile only (benches reuse the shared numeric result)."""
        return simulator.run(self.build_trace(ctx, simulator.config))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
