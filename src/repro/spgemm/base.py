"""Algorithm interface: every spGEMM scheme has a numeric and a performance plane.

:class:`MultiplyContext` packages one multiplication problem (operands in the
formats the kernels read, plus the precalculated workload vectors the paper's
Section IV-B computes).  An algorithm then offers:

* ``lower(ctx, config)`` — the one scheme-specific hook: lower the problem
  to an :class:`~repro.plan.ir.ExecutionPlan`, whose phases carry both the
  thread-block descriptors and the numeric kernels.
* ``multiply(ctx)`` — the numeric plane: a thin executor over the plan.
* ``build_trace(ctx, config)`` — the performance plane: the plan's device
  phases projected onto a :class:`~repro.gpusim.trace.KernelTrace`.
* ``run(ctx, simulator)`` — both, conveniently.

Because both planes derive from one plan, the trace describes exactly the
work the numeric plane performs — the executor enforces it per phase.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro import exec as rexec
from repro import obs
from repro.errors import FingerprintError, SparseFormatError
from repro.gpusim.config import TITAN_XP, GPUConfig
from repro.gpusim.costs import DEFAULT_COSTS, CostModel
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats
from repro.gpusim.trace import KernelTrace
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import check_multipliable
from repro.spgemm.expansion import expand_outer
from repro.spgemm.merge import merge_triplets

if TYPE_CHECKING:  # pragma: no cover - type-only; plan imports stay lazy here
    from repro.plan.cache import PlanCache
    from repro.plan.ir import ExecutionPlan, PhaseExecution

__all__ = [
    "DEFAULT_LOWERING_CONFIG",
    "MultiplyContext",
    "SpGEMMAlgorithm",
    "validate_operands",
]


def validate_operands(a: CSRMatrix | CSCMatrix, b: CSRMatrix | CSCMatrix) -> None:
    """Structural validation of a multiply's operands, naming the offender.

    Called at the ``multiply()`` boundaries so malformed operands raise
    :class:`~repro.errors.SparseFormatError` (with the offending operand and
    field named) instead of surfacing as a deep NumPy ``IndexError`` from an
    expansion kernel.  Plan-cache structure hits never reach this check: a
    hit means the identical structure already validated on its cold path.
    """
    for which, matrix in (("A", a), ("B", b)):
        try:
            matrix.validate()
        except SparseFormatError as exc:
            raise SparseFormatError(
                f"operand {which} ({type(matrix).__name__}): {exc}"
            ) from None

#: Target used when lowering for the numeric plane alone.  The numeric result
#: must not depend on the simulated GPU; the only lowering decision that reads
#: the config on the numeric side is B-Splitting's factor choice (via
#: ``n_sms``), pinned here to the paper's primary system for determinism.
DEFAULT_LOWERING_CONFIG = TITAN_XP


@dataclass
class MultiplyContext:
    """One multiplication problem plus its precalculated workload vectors.

    The vectors mirror the paper's precalculation step: ``pair_work`` is the
    block-wise nnz of the outer-product formulation, ``row_work`` the row-wise
    nnz used by the merge model and B-Limiting.
    """

    a_csr: CSRMatrix
    a_csc: CSCMatrix
    b_csr: CSRMatrix

    @classmethod
    def build(
        cls, a: CSRMatrix, b: CSRMatrix | None = None, a_csc: CSCMatrix | None = None
    ) -> "MultiplyContext":
        """Build a context for ``a @ b`` (``b`` defaults to ``a``: C = A^2)."""
        b = a if b is None else b
        check_multipliable(a.shape, b.shape)
        return cls(a_csr=a, a_csc=a_csc if a_csc is not None else a.to_csc(), b_csr=b)

    # ------------------------------------------------------------------
    # Precalculated workloads (Section IV-B)
    # ------------------------------------------------------------------
    @cached_property
    def pair_work(self) -> np.ndarray:
        """Products per column/row pair k — the block-wise nnz."""
        return self.a_csc.col_nnz() * self.b_csr.row_nnz()

    @property
    def total_work(self) -> int:
        """nnz(C-hat): total intermediate products."""
        return int(self.pair_work.sum())

    @cached_property
    def row_work(self) -> np.ndarray:
        """Intermediate products landing in each output row — row-wise nnz."""
        b_row_nnz = self.b_csr.row_nnz()
        per_entry = b_row_nnz[self.a_csr.indices]
        out = np.zeros(self.a_csr.n_rows, dtype=np.int64)
        row_of = np.repeat(np.arange(self.a_csr.n_rows, dtype=np.int64), self.a_csr.row_nnz())
        np.add.at(out, row_of, per_entry)
        return out

    @cached_property
    def reference_c(self) -> CSRMatrix:
        """The exact product, computed once via outer expansion + merge."""
        rows, cols, vals = expand_outer(self.a_csc, self.b_csr)
        return merge_triplets(rows, cols, vals, self.out_shape)

    @cached_property
    def c_row_nnz(self) -> np.ndarray:
        """Unique output coordinates per row (the symbolic multiply).

        Derived from :attr:`reference_c`, so the context performs exactly one
        outer expansion no matter which of the two is requested first (the
        merge keeps explicit zeros, so stored-entry counts equal unique
        coordinate counts).
        """
        return self.reference_c.row_nnz()

    @property
    def out_shape(self) -> tuple[int, int]:
        return (self.a_csr.n_rows, self.b_csr.n_cols)

    @property
    def nnz_c(self) -> int:
        return int(self.c_row_nnz.sum())


class SpGEMMAlgorithm(abc.ABC):
    """Base class for every spGEMM scheme in the library."""

    #: short identifier used in bench tables ("row-product", "cusparse", ...)
    name: str = "abstract"

    #: False for stateful/tuned schemes whose output is not a pure function of
    #: their constructor parameters; those bypass the persistent result cache.
    fingerprintable: bool = True

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs

    def fingerprint(self) -> dict:
        """JSON-able identity of everything that affects this scheme's output.

        Subclasses with extra tunables (e.g. the Block Reorganizer's
        :class:`ReorganizerOptions`) must extend the returned dict; schemes
        whose behaviour is not a pure function of constructor parameters set
        ``fingerprintable = False`` instead.
        """
        if not self.fingerprintable:
            raise FingerprintError(
                f"{self.name!r} results are not content-addressable"
            )
        return {
            "class": type(self).__name__,
            "name": self.name,
            "costs": dataclasses.asdict(self.costs),
            "plan": self.plan_signature(),
        }

    def plan_signature(self) -> dict:
        """JSON-able identity of the scheme's lowering pipeline.

        Folded into :meth:`fingerprint` so a reorganised pass pipeline (or a
        new lowering) orphans cached bench cells.  Schemes composed of plan
        passes extend the ``passes`` list with each pass's ``signature()``.
        """
        return {"lowering": type(self).__name__, "passes": []}

    @abc.abstractmethod
    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """Lower this problem to an :class:`~repro.plan.ir.ExecutionPlan`.

        The single scheme-specific hook: the returned plan carries both the
        thread blocks launched on ``config`` and the numeric kernels that
        perform the same work.
        """

    def lower_traced(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """:meth:`lower` wrapped in an observability span (shared entry).

        Every executor path (``multiply``, ``build_trace``, ``profile_plan``
        and the plan cache's cold path) lowers through this hook so the
        trace's ``plan.lower[...]`` node counts lowerings exactly once each,
        with phase/block/op counters attached.
        """
        with obs.span(f"plan.lower[{self.name}]", "plan") as sp:
            plan = self.lower(ctx, config)
            sp.add(
                phases=len(plan.phases),
                blocks=int(plan.n_blocks),
                ops=int(plan.total_ops()),
            )
        return plan

    def multiply(
        self,
        ctx: MultiplyContext,
        *,
        plan_cache: "PlanCache | None" = None,
        exec_workers: int | None = None,
    ) -> CSRMatrix:
        """Compute ``A @ B`` exactly, by executing the plan's kernels.

        With a :class:`~repro.plan.cache.PlanCache`, a repeat multiply whose
        operands have a previously seen sparsity structure skips lowering and
        all symbolic work, replaying only the numeric phase (bit-identical).
        Operands are structurally validated at this boundary (the plan
        cache's replay fast path skips re-validation of known structures).
        ``exec_workers`` runs the numeric kernels partitioned across a
        :mod:`repro.exec` process pool — bit-identical to serial; ``None``
        defers to any ambient engine the caller installed.
        """
        with rexec.engine_scope(exec_workers):
            if plan_cache is not None:
                return plan_cache.multiply(self, ctx.a_csr, ctx.b_csr, ctx=ctx)
            validate_operands(ctx.a_csr, ctx.b_csr)
            return self.lower_traced(ctx, DEFAULT_LOWERING_CONFIG).execute(ctx)

    def build_trace(self, ctx: MultiplyContext, config: GPUConfig) -> KernelTrace:
        """Describe the thread blocks this scheme launches on ``config``."""
        return self.lower_traced(ctx, config).to_trace()

    def profile_plan(
        self, ctx: MultiplyContext, config: GPUConfig | None = None
    ) -> tuple[CSRMatrix, list[PhaseExecution]]:
        """Numeric execution with per-phase instrumentation records."""
        plan = self.lower_traced(
            ctx, config if config is not None else DEFAULT_LOWERING_CONFIG
        )
        return plan.execute_instrumented(ctx)

    def run(
        self, ctx: MultiplyContext, simulator: GPUSimulator
    ) -> tuple[CSRMatrix, KernelStats]:
        """Numeric result + simulated profile in one call."""
        c = self.multiply(ctx)
        stats = simulator.run(self.build_trace(ctx, simulator.config))
        return c, stats

    def simulate(self, ctx: MultiplyContext, simulator: GPUSimulator) -> KernelStats:
        """Simulated profile only (benches reuse the shared numeric result)."""
        return simulator.run(self.build_trace(ctx, simulator.config))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
