"""Numeric expansion: generate the intermediate matrix C-hat.

Both product formulations generate exactly the same multiset of triplets
``(i, j, a_ik * b_kj)`` — they differ in *grouping* (and hence in GPU load
shape, which the trace builders capture):

* :func:`expand_outer` — grouped by inner index ``k``: column ``a_{*k}``
  times row ``b_{k*}`` (Equation 2; one thread block per pair).
* :func:`expand_row` — grouped by output row ``i``: Gustavson's formulation
  (one thread group per row).

The serial bodies dispatch through the ambient kernel backend
(:func:`repro.kernels.active` — the vectorised NumPy reference, or the
optional compiled backend, verified bit-identical at selection time); the
returned arrays are the numeric ground truth that the merge stage coalesces
into C.
"""

from __future__ import annotations

from repro import exec as rexec
from repro import kernels
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import check_multipliable

__all__ = [
    "expand_outer",
    "expand_outer_indices",
    "expand_row",
    "expand_row_indices",
]


def expand_outer_indices(
    a_csc: CSCMatrix, b_csr: CSRMatrix
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Symbolic outer-product expansion of ``A @ B``.

    Returns ``(rows, cols, a_idx, b_idx)`` in the same pair order as
    :func:`expand_outer`, where ``a_idx``/``b_idx`` index the stored entries
    of ``a_csc``/``b_csr`` whose product lands at each coordinate — the
    value-provenance arrays iterative replay caches so that new operand
    values reuse the expansion structure without recomputing it.
    """
    check_multipliable(a_csc.shape, b_csr.shape)
    engine = rexec.active()
    if engine is not None:
        out = engine.expand_outer_indices(a_csc, b_csr)
        if out is not None:  # else: below threshold / pool broke -> serial
            return out
    return kernels.active().expand_outer_indices(
        a_csc.indptr, a_csc.indices, b_csr.indptr, b_csr.indices
    )


def expand_outer(a_csc: CSCMatrix, b_csr: CSRMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Outer-product expansion of ``A @ B``.

    Returns ``(rows, cols, vals)`` of C-hat, ordered by pair ``k`` then by
    (position in a-column, position in b-row) — the order an outer-product
    kernel would emit.
    """
    rows, cols, a_idx, b_idx = expand_outer_indices(a_csc, b_csr)
    return rows, cols, a_csc.data[a_idx] * b_csr.data[b_idx]


def expand_row_indices(
    a_csr: CSRMatrix, b_csr: CSRMatrix
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Symbolic row-product expansion of ``A @ B``.

    Returns ``(rows, cols, a_idx, b_idx)`` in the same row order as
    :func:`expand_row`, where ``a_idx``/``b_idx`` index the stored entries of
    ``a_csr``/``b_csr`` — the provenance arrays mirroring
    :func:`expand_outer_indices` for the Gustavson formulation.
    """
    check_multipliable(a_csr.shape, b_csr.shape)
    engine = rexec.active()
    if engine is not None:
        out = engine.expand_row_indices(a_csr, b_csr)
        if out is not None:  # else: below threshold / pool broke -> serial
            return out
    return kernels.active().expand_row_indices(
        a_csr.indptr, a_csr.indices, b_csr.indptr, b_csr.indices
    )


def expand_row(a_csr: CSRMatrix, b_csr: CSRMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-product (Gustavson) expansion of ``A @ B``.

    Returns ``(rows, cols, vals)`` of C-hat, ordered by output row then by
    the a-entry within the row then by the b-entry — the order a row-product
    kernel would emit.
    """
    rows, cols, a_idx, b_idx = expand_row_indices(a_csr, b_csr)
    return rows, cols, a_csr.data[a_idx] * b_csr.data[b_idx]
