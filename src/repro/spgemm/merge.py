"""Numeric merge: coalesce C-hat triplets into the final matrix C.

The merge we *execute* is a vectorised sort-based coalesce (stable and exact
in float64 given a deterministic summation order); the merge the simulator
*times* is the paper's dense-accumulator-with-atomics algorithm, whose costs
the trace builders model per output row.  Both produce identical values —
the test suite asserts it against both our reference and SciPy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError
from repro.sparse.csr import CSRMatrix

__all__ = ["merge_triplets", "row_nnz_of_triplets"]


def _sorted_keys(
    rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Return (sort order, sorted flat keys) for triplet coordinates."""
    n_rows, n_cols = shape
    if len(rows) and (rows.max() >= n_rows or cols.max() >= n_cols):
        raise ShapeMismatchError("triplet coordinate out of range")
    keys = rows.astype(np.int64) * np.int64(n_cols) + cols
    order = np.argsort(keys, kind="stable")
    return order, keys[order]


def merge_triplets(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
    *,
    drop_zeros: bool = False,
) -> CSRMatrix:
    """Sum duplicate coordinates and return canonical CSR.

    ``drop_zeros`` is off by default: GPU merge kernels keep explicit zeros
    produced by cancellation, and so do we, so that nnz(C) accounting matches
    the work the kernels actually did.
    """
    n_rows, n_cols = shape
    if len(rows) == 0:
        return CSRMatrix.empty(shape)
    order, keys = _sorted_keys(rows, cols, shape)
    vals = vals[order]

    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = keys[1:] != keys[:-1]
    group = np.cumsum(boundaries) - 1
    summed = np.zeros(group[-1] + 1, dtype=np.float64)
    np.add.at(summed, group, vals)

    unique_keys = keys[boundaries]
    out_rows = unique_keys // n_cols
    out_cols = unique_keys % n_cols
    if drop_zeros:
        keep = summed != 0.0
        out_rows, out_cols, summed = out_rows[keep], out_cols[keep], summed[keep]

    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_rows, minlength=n_rows), out=indptr[1:])
    return CSRMatrix(shape, indptr, out_cols, summed)


def row_nnz_of_triplets(
    rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]
) -> np.ndarray:
    """Per-row count of *unique* coordinates — the symbolic phase.

    This is ``nnz(c_{i*})`` for every output row, which the trace builders
    need to model atomic collisions (``k_r - u_r``) and which B-Limiting's
    row classification uses.
    """
    n_rows, _ = shape
    if len(rows) == 0:
        return np.zeros(n_rows, dtype=np.int64)
    _, keys = _sorted_keys(rows, cols, shape)
    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = keys[1:] != keys[:-1]
    unique_rows = (keys[boundaries] // shape[1]).astype(np.int64)
    return np.bincount(unique_rows, minlength=n_rows).astype(np.int64)
