"""Numeric merge: coalesce C-hat triplets into the final matrix C.

The merge we *execute* is a vectorised sort-based coalesce (stable and exact
in float64 given a deterministic summation order); the merge the simulator
*times* is the paper's dense-accumulator-with-atomics algorithm, whose costs
the trace builders model per output row.  Both produce identical values —
the test suite asserts it against both our reference and SciPy.

The merge factors into a *symbolic* half (sort permutation, duplicate
grouping, output structure — a pure function of the triplet coordinates) and
a *numeric* half (gather + segmented sum).  :func:`plan_merge` captures the
symbolic half as a reusable :class:`MergeRecipe` so iterative workloads with
a fixed sparsity structure pay for the sort once; :func:`merge_triplets`
remains the one-shot convenience wrapper over both halves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import exec as rexec
from repro import kernels
from repro.errors import ShapeMismatchError
from repro.sparse.csr import CSRMatrix

__all__ = ["MergeRecipe", "plan_merge", "merge_triplets", "row_nnz_of_triplets"]


def _sorted_keys(
    rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Return (sort order, sorted flat keys) for triplet coordinates."""
    n_rows, n_cols = shape
    if len(rows) and (rows.max() >= n_rows or cols.max() >= n_cols):
        raise ShapeMismatchError("triplet coordinate out of range")
    keys = rows.astype(np.int64) * np.int64(n_cols) + cols
    order = np.argsort(keys, kind="stable")
    return order, keys[order]


@dataclass(frozen=True)
class MergeRecipe:
    """The symbolic half of a merge: structure-only, reusable across values.

    Captures everything :func:`merge_triplets` derives from the triplet
    *coordinates* alone — the stable sort permutation, the duplicate
    grouping, and the output CSR structure — so that repeated merges of
    streams with identical coordinates (iterative workloads on a fixed
    sparsity pattern) can re-run only the numeric half via :meth:`apply`.

    Attributes:
        shape: output matrix shape.
        order: stable sort permutation over the triplet stream.
        group: output-entry id of each *sorted* triplet (summation target).
        n_groups: number of unique output coordinates.
        indptr: output CSR row pointers.
        indices: output CSR column indices (one per unique coordinate).
    """

    shape: tuple[int, int]
    order: np.ndarray
    group: np.ndarray
    n_groups: int
    indptr: np.ndarray
    indices: np.ndarray

    def apply(self, vals: np.ndarray) -> CSRMatrix:
        """Numeric half: sum ``vals`` into the captured output structure.

        Summation order is exactly :func:`merge_triplets`'s (stable sort then
        in-order accumulation), so the result is bit-identical to a cold
        merge of the same stream.
        """
        engine = rexec.active()
        if engine is not None:
            summed = engine.segmented_sum(vals, self.order, self.group, self.n_groups)
            if summed is not None:  # else: below threshold / pool broke -> serial
                return CSRMatrix(
                    self.shape, self.indptr.copy(), self.indices.copy(), summed
                )
        summed = kernels.active().segmented_sum(
            vals, self.order, self.group, self.n_groups
        )
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(), summed)


def plan_merge(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: tuple[int, int],
    *,
    est_row_nnz: np.ndarray | None = None,
) -> MergeRecipe:
    """Capture the symbolic half of merging the given triplet coordinates.

    ``est_row_nnz`` (optional, see :mod:`repro.plan.estimate`) is a per-row
    output-nnz upper bound forwarded to the partitioned engine, which then
    allocates its unique-column scratch from the estimate instead of the
    stream length; an undershooting estimate makes the engine decline the
    call and this function run the exact serial pass, so the recipe is the
    same either way.
    """
    n_rows, n_cols = shape
    if len(rows) == 0:
        zi = np.zeros(0, dtype=np.int64)
        return MergeRecipe(
            shape, zi, zi.copy(), 0, np.zeros(n_rows + 1, dtype=np.int64), zi.copy()
        )
    engine = rexec.active()
    if engine is not None:
        recipe = engine.merge(rows, cols, shape, est_row_nnz=est_row_nnz)
        if recipe is not None:  # else: below threshold / pool broke -> serial
            return recipe
    if len(rows) and (rows.max() >= n_rows or cols.max() >= n_cols):
        raise ShapeMismatchError("triplet coordinate out of range")
    order, group, n_groups, indptr, indices = kernels.active().merge_symbolic(
        rows, cols, n_rows, n_cols
    )
    return MergeRecipe(shape, order, group, n_groups, indptr, indices)


def merge_triplets(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
    *,
    drop_zeros: bool = False,
) -> CSRMatrix:
    """Sum duplicate coordinates and return canonical CSR.

    ``drop_zeros`` is off by default: GPU merge kernels keep explicit zeros
    produced by cancellation, and so do we, so that nnz(C) accounting matches
    the work the kernels actually did.
    """
    if len(rows) == 0:
        return CSRMatrix.empty(shape)
    out = plan_merge(rows, cols, shape).apply(vals)
    if drop_zeros:
        keep = out.data != 0.0
        out_rows = np.repeat(np.arange(out.n_rows, dtype=np.int64), out.row_nnz())
        indptr = np.zeros(out.n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(out_rows[keep], minlength=out.n_rows), out=indptr[1:])
        return CSRMatrix(shape, indptr, out.indices[keep], out.data[keep])
    return out


def row_nnz_of_triplets(
    rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]
) -> np.ndarray:
    """Per-row count of *unique* coordinates — the symbolic phase.

    This is ``nnz(c_{i*})`` for every output row, which the trace builders
    need to model atomic collisions (``k_r - u_r``) and which B-Limiting's
    row classification uses.
    """
    n_rows, _ = shape
    if len(rows) == 0:
        return np.zeros(n_rows, dtype=np.int64)
    _, keys = _sorted_keys(rows, cols, shape)
    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = keys[1:] != keys[:-1]
    unique_rows = (keys[boundaries] // shape[1]).astype(np.int64)
    return np.bincount(unique_rows, minlength=n_rows).astype(np.int64)
