"""Composable reorganizer passes over ExecutionPlans.

The paper's Block Reorganizer is, structurally, a transformation of the
outer-product baseline's thread-block layout.  This module expresses it that
way: each technique is a :class:`PlanPass` that rewrites an
:class:`~repro.plan.ir.ExecutionPlan` in place —

* :class:`ClassifyPass` — workload precalculation + categorisation (Section
  IV-B).  Replaces the baseline's single expansion phase with per-class
  phases (dominator / normal / gathered), each carrying a subset kernel, and
  charges the device-side precalculation cost.  Always runs first; the other
  passes read its classification from the plan's annotations.
* :class:`SplitPass` — B-Splitting (Section IV-C1): dominator blocks.
* :class:`GatherPass` — B-Gathering (Section IV-C2): underloaded blocks.
* :class:`LimitPass` — B-Limiting (Section IV-D): heavy merge rows.

Dropping a pass from the pipeline *is* the Figure 10 ablation: with only
:class:`ClassifyPass` the plan degenerates to the outer-product baseline's
fixed-size blocks, exactly as the paper describes.  New techniques (batching,
multi-GPU sharding) slot in as further passes without touching any scheme.

Passes mutate and return the plan they are given; lowering always builds a
fresh baseline plan per call, so in-place rewriting is safe and keeps the
annotation plumbing trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.core.classify import classify_pairs
from repro.core.gathering import plan_gathering
from repro.core.limiting import limited_row_mask, limiting_smem_bytes
from repro.core.splitting import (
    SplitPlan,
    plan_splitting,
    split_csc_columns,
    split_source_indices,
)
from repro.errors import PlanError
from repro.gpusim.block import BlockArray, BlockArrayBuilder
from repro.gpusim.host import device_precalc_cycles, host_split_seconds
from repro.gpusim.trace import PHASE_EXPANSION, PHASE_MERGE
from repro.plan.ir import ExecutionPlan, NumericState, PlanPhase
from repro.plan.kernels import Kernel, coalesce_kernel, expand_outer_pairs_kernel
from repro.spgemm.traceutil import merge_blocks, outer_pair_blocks

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.gpusim.config import GPUConfig
    from repro.gpusim.costs import CostModel
    from repro.spgemm.base import MultiplyContext

__all__ = [
    "PlanPass",
    "ClassifyPass",
    "SplitPass",
    "GatherPass",
    "LimitPass",
    "expand_split_kernel",
    "gathered_blocks",
]


class PlanPass(Protocol):
    """A composable plan transformation.

    Implementations rewrite the plan (phases, costs, metadata) and return it.
    ``signature()`` is the pass's JSON-able identity — pass name plus every
    parameter that affects its output — aggregated into the owning scheme's
    bench fingerprint, so reorganising a pipeline invalidates cached cells.
    """

    def signature(self) -> dict:
        """JSON-able identity of this pass and its parameters."""
        ...

    def run(
        self,
        plan: ExecutionPlan,
        ctx: MultiplyContext,
        config: GPUConfig,
        costs: CostModel,
    ) -> ExecutionPlan:
        """Transform ``plan`` for this problem and target, returning it."""
        ...


def _classes(plan: ExecutionPlan, pass_name: str):
    classes = plan.annotations.get("classes")
    if classes is None:
        raise PlanError(f"{pass_name} requires ClassifyPass to have run first")
    return classes


@dataclass(frozen=True)
class ClassifyPass:
    """Workload categorisation: split the expansion by pair class.

    The baseline outer-product plan has one fixed-size expansion phase; this
    pass replaces it with up to three class phases.  Until a technique pass
    rewrites them, dominator and underloaded phases keep baseline-sized
    fixed blocks (the disabled-technique behaviour of the Figure 10
    ablation), while normal pairs always get appropriately-sized blocks.
    """

    alpha: float = 0.1
    max_threads: int = 256
    baseline_threads: int = 256

    def signature(self) -> dict:
        """Identity: the classification thresholds and block sizes."""
        return {
            "pass": "classify",
            "alpha": self.alpha,
            "max_threads": self.max_threads,
            "baseline_threads": self.baseline_threads,
        }

    def run(self, plan, ctx, config, costs) -> ExecutionPlan:
        """Split the expansion phase by block class and annotate the plan."""
        na = ctx.a_csc.col_nnz()
        nb = ctx.b_csr.row_nnz()
        classes = classify_pairs(ctx.pair_work, nb, alpha=self.alpha)

        expansion: list[PlanPhase] = []
        if classes.n_dominators:
            blocks = outer_pair_blocks(
                na[classes.dominator], nb[classes.dominator], costs,
                fixed_threads=self.baseline_threads,
            )
            expansion.append(PlanPhase(
                "expansion-dominator", PHASE_EXPANSION, blocks,
                kernel=expand_outer_pairs_kernel(classes.dominator),
            ))
        if classes.n_normal:
            blocks = outer_pair_blocks(
                na[classes.normal], nb[classes.normal], costs,
                max_threads=self.max_threads,
            )
            expansion.append(PlanPhase(
                "expansion-normal", PHASE_EXPANSION, blocks,
                kernel=expand_outer_pairs_kernel(classes.normal),
            ))
        if classes.n_underloaded:
            blocks = outer_pair_blocks(
                na[classes.underloaded], nb[classes.underloaded], costs,
                fixed_threads=self.baseline_threads,
            )
            expansion.append(PlanPhase(
                "expansion-gathered", PHASE_EXPANSION, blocks,
                kernel=expand_outer_pairs_kernel(classes.underloaded),
            ))

        plan.phases = expansion + [p for p in plan.phases if p.stage == PHASE_MERGE]
        # Classification itself runs on the device (Section V): charge the
        # per-pair categorisation to the precalc kernel, not host_seconds.
        plan.device_setup_cycles = device_precalc_cycles(
            costs, ctx.a_csr.nnz, ctx.b_csr.nnz, extra_elements=len(na)
        )
        plan.meta = {
            "n_dominators": classes.n_dominators,
            "n_underloaded": classes.n_underloaded,
            "n_normal": classes.n_normal,
            "dominator_threshold": classes.threshold,
        }
        plan.annotations["classes"] = classes
        plan.annotations["na"] = na
        plan.annotations["nb"] = nb
        return plan


def expand_split_kernel(splan: SplitPlan) -> Kernel:
    """Numeric kernel for split dominator blocks.

    Materialises A' (the physically split dominator columns) and expands each
    split column against the b-row its mapper entry points at — the paper's
    "same results as the original vector pairs" property.  Materialisation
    happens inside the kernel, so trace-only lowerings never pay for it.
    """

    def kernel(state: NumericState) -> int:
        a_split, mapper = split_csc_columns(state.ctx.a_csc, splan)
        na = a_split.col_nnz()
        nb = state.ctx.b_csr.row_nnz()[mapper]
        counts = na * nb
        total = int(counts.sum())
        if total == 0:
            z = np.zeros(0, dtype=np.int64)
            return state.emit(
                z, z.copy(), np.zeros(0, dtype=np.float64),
                a_src=z.copy(), b_src=z.copy(), a_space="csc",
            )
        seg_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        nb_per = nb[seg_of]
        a_pos = offsets // np.maximum(nb_per, 1)
        b_pos = offsets % np.maximum(nb_per, 1)
        a_idx = a_split.indptr[seg_of] + a_pos
        b_idx = state.ctx.b_csr.indptr[mapper[seg_of]] + b_pos
        rows = a_split.indices[a_idx]
        cols = state.ctx.b_csr.indices[b_idx]
        vals = a_split.data[a_idx] * state.ctx.b_csr.data[b_idx]
        if state.track_provenance:
            # Entries of A' are copies of a_csc entries; compose the split's
            # gather with the expansion's so provenance lands in a_csc space.
            _, src = split_source_indices(state.ctx.a_csc, splan)
            return state.emit(
                rows, cols, vals, a_src=src[a_idx], b_src=b_idx, a_space="csc"
            )
        return state.emit(rows, cols, vals)

    return kernel


@dataclass(frozen=True)
class SplitPass:
    """B-Splitting: divide each dominator pair over many smaller blocks."""

    splitting_factor: int | None = None
    max_threads: int = 256

    def signature(self) -> dict:
        """Identity: the splitting factor and block size."""
        return {
            "pass": "split",
            "splitting_factor": self.splitting_factor,
            "max_threads": self.max_threads,
        }

    def run(self, plan, ctx, config, costs) -> ExecutionPlan:
        """Replace the dominator expansion phase with split sub-blocks."""
        classes = _classes(plan, "SplitPass")
        if not classes.n_dominators:
            return plan
        na, nb = plan.annotations["na"], plan.annotations["nb"]
        splan = plan_splitting(
            na, nb, classes.dominator, config.n_sms,
            factor_override=self.splitting_factor,
        )
        factor_of_block = np.repeat(splan.factors, splan.factors).astype(np.float64)
        blocks = outer_pair_blocks(
            splan.na, splan.nb, costs,
            max_threads=self.max_threads,
            extra_unique_bytes=8.0,  # mapper-array lookup per block
            shared_b_fraction=1.0 - 1.0 / factor_of_block,
        )
        plan.replace_phase(
            "expansion-dominator",
            PlanPhase(
                "expansion-dominator", PHASE_EXPANSION, blocks,
                kernel=expand_split_kernel(splan),
            ),
        )
        plan.host_seconds += host_split_seconds(costs, splan.split_entries)
        plan.meta["n_split_blocks"] = splan.n_blocks
        plan.meta["split_factors"] = splan.factors.tolist()[:16]
        return plan


def gathered_blocks(gplan, costs) -> BlockArray:
    """Trace blocks for combined (gathered) micro-blocks."""
    builder = BlockArrayBuilder()
    if gplan.n_blocks == 0:
        return builder.build()
    bpe = costs.bytes_per_entry
    unique = (gplan.na_sum + gplan.nb_sum) * bpe
    reuse = gplan.ops * 8.0
    writes = gplan.ops * bpe
    # Partitions stream disjoint (but individually sequential) vectors, so a
    # combined block's traffic is the sum of its micro-blocks' traffic plus a
    # sector of slack per partition: gathering amortises launch, issue and
    # latency — not bandwidth.
    transactions = (unique + writes) / 32.0 + gplan.partitions
    builder.add_blocks(
        threads=32,
        effective_threads=gplan.effective_threads,
        iters=gplan.iters,
        ops=gplan.ops,
        unique_bytes=unique,
        reuse_bytes=reuse,
        write_bytes=writes,
        smem_bytes=1024,
        working_set=unique,
        transactions=transactions,
    )
    return builder.build()


@dataclass(frozen=True)
class GatherPass:
    """B-Gathering: combine underloaded pairs into warp-filling blocks.

    Gathering changes block shape only — which products are computed (and by
    which class phase) is unchanged, so the phase keeps its subset kernel and
    the executor's op check carries over to the combined blocks.
    """

    def signature(self) -> dict:
        """Identity: gathering takes no parameters."""
        return {"pass": "gather"}

    def run(self, plan, ctx, config, costs) -> ExecutionPlan:
        """Pack underloaded expansion blocks into full warps."""
        classes = _classes(plan, "GatherPass")
        if not classes.n_underloaded:
            return plan
        na, nb = plan.annotations["na"], plan.annotations["nb"]
        gplan = plan_gathering(na, nb, classes.underloaded)
        plan.replace_phase(
            "expansion-gathered",
            PlanPhase(
                "expansion-gathered", PHASE_EXPANSION, gathered_blocks(gplan, costs),
                kernel=expand_outer_pairs_kernel(classes.underloaded),
            ),
        )
        plan.meta["n_gathered_blocks"] = gplan.n_blocks
        return plan


@dataclass(frozen=True)
class LimitPass:
    """B-Limiting: cap merge-block residency on heavy output rows."""

    beta: float = 10.0
    limiting_factor: int = 4

    def signature(self) -> dict:
        """Identity: the beta threshold and limiting factor."""
        return {
            "pass": "limit",
            "beta": self.beta,
            "limiting_factor": self.limiting_factor,
        }

    def run(self, plan, ctx, config, costs) -> ExecutionPlan:
        """Cap merge-block residency on heavy rows via shared-memory padding."""
        mask = limited_row_mask(ctx.row_work, beta=self.beta)
        plan.meta["n_limited_rows"] = int(np.count_nonzero(mask))
        replacements: list[PlanPhase] = []
        if mask.any():
            smem = limiting_smem_bytes(4096, self.limiting_factor, config.smem_per_sm)
            heavy = merge_blocks(
                ctx.row_work, ctx.c_row_nnz, costs, row_mask=mask, smem_bytes=smem
            )
            replacements.append(PlanPhase(
                "merge-limited", PHASE_MERGE, heavy, kernel=coalesce_kernel(mask)
            ))
        light = merge_blocks(ctx.row_work, ctx.c_row_nnz, costs, row_mask=~mask)
        replacements.append(PlanPhase(
            "merge", PHASE_MERGE, light, kernel=coalesce_kernel(~mask)
        ))
        plan.replace_phase("merge", *replacements)
        return plan
