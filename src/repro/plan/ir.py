"""The ExecutionPlan IR: one description of an spGEMM execution, two planes.

Historically every scheme maintained ``multiply()`` (numeric plane) and
``build_trace()`` (performance plane) as parallel hand-written code paths, so
nothing *structurally* guaranteed that the trace fed to the simulator
described the work the numeric plane actually performed.  The plan IR closes
that gap: a scheme lowers once to an :class:`ExecutionPlan` — an ordered list
of :class:`PlanPhase`, each carrying both the thread-block descriptors of a
kernel launch *and* the vectorised numeric kernel that performs the same
work — and the shared executors derive both planes from it:

* :meth:`ExecutionPlan.execute` runs the numeric kernels and enforces, per
  device expansion phase, that the kernel emitted exactly as many products as
  the phase's blocks account for (``blocks.total_ops``) — consistency by
  construction, violations raise :class:`~repro.errors.PlanError`.
* :meth:`ExecutionPlan.to_trace` projects the device phases onto the
  simulator's :class:`~repro.gpusim.trace.KernelTrace`, stamping the plan's
  shape digest into the trace metadata so bench artifacts record which plan
  produced them.

Numeric kernels are closures ``kernel(state) -> int`` over a
:class:`NumericState`, which owns the triplet stream and lazily caches the
two canonical expansions so that phases restricted to a pair/row subset cost
one mask application, not a re-expansion.

Reorganisation techniques (B-Splitting and friends) are *passes* over plans —
see :mod:`repro.plan.passes`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import exec as rexec
from repro import obs
from repro.errors import PlanError
from repro.gpusim.block import BlockArray
from repro.gpusim.trace import (
    PHASE_EXPANSION,
    PHASE_MERGE,
    PHASE_SETUP,
    KernelPhase,
    KernelTrace,
)

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids a base<->plan cycle
    from repro.sparse.csr import CSRMatrix
    from repro.spgemm.base import MultiplyContext

__all__ = ["NumericState", "PlanPhase", "PhaseExecution", "ExecutionPlan"]

_STAGES = (PHASE_EXPANSION, PHASE_MERGE, PHASE_SETUP)


class NumericState:
    """Mutable numeric-plane state threaded through a plan's kernels.

    Owns the stream of intermediate triplets the expansion kernels emit and
    the coalesced result the merge kernels produce.  The two canonical
    expansions are computed lazily and cached, so several phases that each
    expand a *subset* of pairs or rows share one vectorised expansion.

    With ``track_provenance=True`` the state additionally records, per
    emitted triplet, which stored entry of ``A`` and of ``B`` produced it
    (in ``a_csr``/``b_csr`` entry positions) and keeps the merge's
    :class:`~repro.spgemm.merge.MergeRecipe` — everything
    :mod:`repro.plan.cache` needs to replay the numeric plane on new values
    with the same sparsity structure without re-running any symbolic work.
    """

    def __init__(self, ctx: MultiplyContext, *, track_provenance: bool = False) -> None:
        self.ctx = ctx
        self.track_provenance = track_provenance
        #: False once any kernel emits without provenance; the capture layer
        #: then refuses to build a replay recipe from this execution.
        self.provenance_complete = track_provenance
        self._parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._prov: list[tuple[np.ndarray, np.ndarray]] = []
        self._outer: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._row: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._outer_src: tuple[np.ndarray, np.ndarray] | None = None
        self._row_src: tuple[np.ndarray, np.ndarray] | None = None
        self._csc_to_csr: np.ndarray | None = None
        self.merge_recipe = None  # set by coalesce() when tracking
        self.result: CSRMatrix | None = None

    # -- lazy canonical expansions -------------------------------------
    def outer_expansion(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """C-hat triplets in outer-product (pair) order, computed once."""
        if self._outer is None:
            from repro.spgemm.expansion import expand_outer, expand_outer_indices

            if self.track_provenance:
                rows, cols, a_idx, b_idx = expand_outer_indices(
                    self.ctx.a_csc, self.ctx.b_csr
                )
                self._outer = (
                    rows, cols, self.ctx.a_csc.data[a_idx] * self.ctx.b_csr.data[b_idx]
                )
                self._outer_src = (self._csc_positions_to_csr(a_idx), b_idx)
            else:
                self._outer = expand_outer(self.ctx.a_csc, self.ctx.b_csr)
        return self._outer

    def row_expansion(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """C-hat triplets in row-product (Gustavson) order, computed once."""
        if self._row is None:
            from repro.spgemm.expansion import expand_row, expand_row_indices

            if self.track_provenance:
                rows, cols, a_idx, b_idx = expand_row_indices(
                    self.ctx.a_csr, self.ctx.b_csr
                )
                self._row = (
                    rows, cols, self.ctx.a_csr.data[a_idx] * self.ctx.b_csr.data[b_idx]
                )
                self._row_src = (a_idx, b_idx)
            else:
                self._row = expand_row(self.ctx.a_csr, self.ctx.b_csr)
        return self._row

    # -- provenance ----------------------------------------------------
    def _csc_positions_to_csr(self, csc_idx: np.ndarray) -> np.ndarray:
        """Map stored-entry positions of ``a_csc`` to positions of ``a_csr``.

        Canonical formats have one stored entry per coordinate, so the map is
        the stable column sort :func:`~repro.sparse.convert.csr_to_csc`
        performs — a pure function of the structure, computed once.
        """
        if self._csc_to_csr is None:
            self._csc_to_csr = np.argsort(self.ctx.a_csr.indices, kind="stable")
        return self._csc_to_csr[csc_idx]

    def outer_sources(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Provenance of the outer expansion (csr-space), or ``(None, None)``."""
        if not self.track_provenance:
            return None, None
        self.outer_expansion()
        return self._outer_src

    def row_sources(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Provenance of the row expansion (csr-space), or ``(None, None)``."""
        if not self.track_provenance:
            return None, None
        self.row_expansion()
        return self._row_src

    # -- triplet stream ------------------------------------------------
    def emit(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        a_src: np.ndarray | None = None,
        b_src: np.ndarray | None = None,
        a_space: str = "csr",
    ) -> int:
        """Append expanded triplets to the stream; returns how many.

        ``a_src``/``b_src`` give each triplet's producing stored entry of
        ``A``/``B`` (``a_space`` names the A entry ordering, ``"csr"`` or
        ``"csc"``); they are recorded only when provenance tracking is on,
        and an emission without them marks the capture incomplete.
        """
        self._parts.append((rows, cols, vals))
        if self.track_provenance:
            if a_src is None or b_src is None:
                self.provenance_complete = False
            elif self.provenance_complete:
                if a_space == "csc":
                    a_src = self._csc_positions_to_csr(a_src)
                self._prov.append((a_src, b_src))
        return len(rows)

    @property
    def emitted(self) -> int:
        """Total triplets emitted so far (the executor's consistency meter)."""
        return sum(len(part[0]) for part in self._parts)

    def pending(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The emitted stream as three flat arrays (emission order)."""
        if not self._parts:
            zi = np.zeros(0, dtype=np.int64)
            return zi, zi.copy(), np.zeros(0, dtype=np.float64)
        if len(self._parts) > 1:
            merged = tuple(
                np.concatenate([part[i] for part in self._parts]) for i in range(3)
            )
            self._parts = [merged]  # type: ignore[list-item]
        return self._parts[0]

    def provenance(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The stream's ``(a_src, b_src)`` in emission order, if complete."""
        if not (self.track_provenance and self.provenance_complete):
            return None
        if not self._prov:
            zi = np.zeros(0, dtype=np.int64)
            return zi, zi.copy()
        if len(self._prov) > 1:
            self._prov = [tuple(
                np.concatenate([part[i] for part in self._prov]) for i in range(2)
            )]  # type: ignore[list-item]
        return self._prov[0]

    def sort_pending(self) -> int:
        """Stably sort the stream by output coordinate (ESC's sort step).

        A stable sort by flat key followed by the merge's own stable sort
        leaves duplicate-coordinate summation order unchanged, so schemes
        that model an explicit sort kernel stay bit-identical to a direct
        coalesce.
        """
        rows, cols, vals = self.pending()
        keys = rows.astype(np.int64) * np.int64(self.ctx.out_shape[1]) + cols
        order = np.argsort(keys, kind="stable")
        self._parts = [(rows[order], cols[order], vals[order])]
        prov = self.provenance()
        if prov is not None and len(prov[0]):
            self._prov = [(prov[0][order], prov[1][order])]
        return len(rows)

    def coalesce(self) -> CSRMatrix:
        """Merge the emitted stream into canonical CSR (idempotent).

        Passes the context's output-nnz upper bound
        (:func:`repro.plan.estimate.row_nnz_upper_bound` over the
        precalculated workload vector) to the merge so the partitioned
        engine can size its scratch from the estimate — Ocean's
        estimation-based allocation, with the exact pass as the overflow
        fallback.
        """
        if self.result is None:
            from repro.plan.estimate import row_nnz_upper_bound
            from repro.sparse.csr import CSRMatrix
            from repro.spgemm.merge import plan_merge

            rows, cols, vals = self.pending()
            if len(rows) == 0:
                self.result = CSRMatrix.empty(self.ctx.out_shape)
            else:
                est = row_nnz_upper_bound(self.ctx.row_work, self.ctx.out_shape[1])
                recipe = plan_merge(rows, cols, self.ctx.out_shape, est_row_nnz=est)
                self.result = recipe.apply(vals)
                if self.track_provenance:
                    self.merge_recipe = recipe
        return self.result


@dataclass
class PlanPhase:
    """One phase of a plan: a kernel launch and the numeric work it does.

    Attributes:
        name: human-readable label (e.g. ``"expansion-dominator"``).
        stage: coarse bucket — ``expansion``, ``merge`` or ``setup`` — shared
            with :class:`~repro.gpusim.trace.KernelPhase`.
        blocks: thread-block descriptors this launch dispatches (the
            performance plane's view of the phase).
        kernel: vectorised numeric kernel ``kernel(state) -> int`` performing
            the phase's work on a :class:`NumericState`; returns the op count
            it performed (instrumentation).  ``None`` for modelling-only
            phases with no numeric effect.
        instr_override: per-warp-iteration instruction cost override,
            forwarded to the simulator phase.
        device: False for host-side phases (CPU schemes); host phases are
            executed numerically but omitted from the kernel trace and
            exempt from the block/op consistency check.
    """

    name: str
    stage: str
    blocks: BlockArray
    kernel: Callable[[NumericState], int] | None = None
    instr_override: float | None = None
    device: bool = True

    def __post_init__(self) -> None:
        if self.stage not in _STAGES:
            raise PlanError(f"unknown plan phase stage {self.stage!r}")


@dataclass(frozen=True)
class PhaseExecution:
    """Instrumentation record for one executed phase (numeric plane).

    ``ops`` is what the kernel reported doing, ``seconds`` the measured host
    wall time of the vectorised kernel, and ``bytes_touched`` the modelled
    global traffic of the phase's blocks (unique + reuse + write) — the
    counters :mod:`repro.metrics` aggregates into plan profiles.
    """

    name: str
    stage: str
    device: bool
    n_blocks: int
    ops: int
    seconds: float
    bytes_touched: float


@dataclass
class ExecutionPlan:
    """A lowered spGEMM execution: ordered phases plus host/setup costs.

    Attributes:
        algorithm: name of the scheme that lowered to this plan.
        phases: kernel launches in dependency order.
        host_seconds: host-side preprocessing time.
        device_setup_cycles: device-side preprocessing cost in GPU cycles.
        meta: free-form diagnostics surfaced in bench output.
        annotations: pass-to-pass scratch space (classification masks and the
            like); never serialised and never part of the shape digest.
    """

    algorithm: str
    phases: list[PlanPhase] = field(default_factory=list)
    host_seconds: float = 0.0
    device_setup_cycles: float = 0.0
    meta: dict = field(default_factory=dict)
    annotations: dict = field(default_factory=dict)

    # -- structure -----------------------------------------------------
    @property
    def n_blocks(self) -> int:
        """Total thread blocks across every phase."""
        return sum(len(p.blocks) for p in self.phases)

    def total_ops(self) -> int:
        """Useful products across device expansion phases (GFLOPS basis)."""
        return sum(
            p.blocks.total_ops
            for p in self.phases
            if p.device and p.stage == PHASE_EXPANSION
        )

    def phase(self, name: str) -> PlanPhase:
        """Look up one phase by name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise PlanError(f"plan for {self.algorithm!r} has no phase {name!r}")

    def replace_phase(self, name: str, *replacements: PlanPhase) -> None:
        """Splice ``replacements`` in place of the phase called ``name``."""
        for i, p in enumerate(self.phases):
            if p.name == name:
                self.phases[i : i + 1] = list(replacements)
                return
        raise PlanError(f"plan for {self.algorithm!r} has no phase {name!r}")

    def shape_digest(self) -> str:
        """Stable 16-hex digest of the plan's structure.

        Covers phase names, stages, block counts, op totals and overrides —
        enough to tell two differently-reorganised plans apart — but not the
        raw block columns, so the digest is cheap and insensitive to
        annotation scratch.  Stamped into trace metadata by
        :meth:`to_trace`.
        """
        shape = {
            "algorithm": self.algorithm,
            "phases": [
                {
                    "name": p.name,
                    "stage": p.stage,
                    "device": p.device,
                    "n_blocks": len(p.blocks),
                    "ops": int(p.blocks.ops.sum()),
                    "instr_override": p.instr_override,
                }
                for p in self.phases
            ],
        }
        blob = json.dumps(shape, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    # -- performance plane ---------------------------------------------
    def to_trace(self) -> KernelTrace:
        """Project the device phases onto a simulator kernel trace."""
        meta = dict(self.meta)
        meta["plan_shape"] = self.shape_digest()
        return KernelTrace(
            algorithm=self.algorithm,
            phases=[
                KernelPhase(p.name, p.stage, p.blocks, p.instr_override)
                for p in self.phases
                if p.device
            ],
            host_seconds=self.host_seconds,
            device_setup_cycles=self.device_setup_cycles,
            meta=meta,
        )

    # -- numeric plane ---------------------------------------------------
    def execute(
        self, ctx: MultiplyContext, *, exec_workers: int | None = None
    ) -> CSRMatrix:
        """Run the numeric kernels in phase order and coalesce the result."""
        return self.execute_instrumented(ctx, exec_workers=exec_workers)[0]

    def execute_instrumented(
        self,
        ctx: MultiplyContext,
        state: NumericState | None = None,
        *,
        exec_workers: int | None = None,
    ) -> tuple[CSRMatrix, list[PhaseExecution]]:
        """Numeric execution with per-phase instrumentation records.

        Enforces the IR's core invariant: a device expansion phase's kernel
        must emit exactly ``blocks.total_ops`` products.  An externally built
        ``state`` (e.g. one tracking provenance for the plan cache) may be
        supplied; it must wrap the same ``ctx``.  ``exec_workers`` installs a
        scoped :mod:`repro.exec` engine so the expansion/merge primitives run
        partitioned across a process pool (bit-identical to serial); when
        ``None``, any ambient engine installed by the caller still applies.
        """
        with rexec.engine_scope(exec_workers):
            return self._execute_instrumented(ctx, state)

    def _execute_instrumented(
        self, ctx: MultiplyContext, state: NumericState | None
    ) -> tuple[CSRMatrix, list[PhaseExecution]]:
        if state is None:
            state = NumericState(ctx)
        records: list[PhaseExecution] = []
        for phase in self.phases:
            with obs.span(f"numeric.phase[{phase.name}]", phase.stage) as sp:
                before = state.emitted
                start = time.perf_counter()
                ops = phase.kernel(state) if phase.kernel is not None else 0
                seconds = time.perf_counter() - start
                if phase.device and phase.stage == PHASE_EXPANSION:
                    emitted = state.emitted - before
                    expected = phase.blocks.total_ops
                    if emitted != expected:
                        raise PlanError(
                            f"{self.algorithm!r} phase {phase.name!r} emitted "
                            f"{emitted} products but its blocks account for {expected}"
                        )
                sp.add(ops=int(ops), blocks=len(phase.blocks))
            records.append(
                PhaseExecution(
                    name=phase.name,
                    stage=phase.stage,
                    device=phase.device,
                    n_blocks=len(phase.blocks),
                    ops=int(ops),
                    seconds=seconds,
                    bytes_touched=float(
                        phase.blocks.unique_bytes.sum()
                        + phase.blocks.reuse_bytes.sum()
                        + phase.blocks.write_bytes.sum()
                    ),
                )
            )
        with obs.span("numeric.coalesce", PHASE_MERGE) as sp:
            result = state.coalesce()
            sp.add(nnz=result.nnz)
        return result, records
