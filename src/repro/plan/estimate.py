"""Estimation-based output sizing for the merge fast path.

Ocean ("Fast Estimation-Based SpGEMM on GPU", PAPERS.md) replaces the exact
symbolic pass of two-phase SpGEMM with an *estimated* output allocation,
falling back to the exact pass only when the estimate undershoots.  The
vectorised plane keeps the exact symbolic merge as its reference, but the
partitioned engine can allocate its unique-column scratch from a per-row
upper bound instead of the full product-stream length — the difference
between sizing by ``flops(C)`` and sizing by (roughly) ``nnz(C)``, which for
the paper's web/social matrices is the compression factor of the multiply.

The bound used here is *hard*: row ``i`` of ``C = A·B`` cannot have more
stored entries than either the products that land in it (``row_work[i]``) or
the number of columns of ``C``.  A hard bound means the overflow fallback in
:meth:`repro.exec.engine.ExecEngine.merge` is a safety net for callers
passing their own (possibly sampled, possibly wrong) estimates — with
:func:`row_nnz_upper_bound` it never fires, and results are bit-identical
either way.
"""

from __future__ import annotations

import numpy as np

__all__ = ["row_nnz_upper_bound", "estimate_output_nnz"]


def row_nnz_upper_bound(row_work: np.ndarray, n_cols: int) -> np.ndarray:
    """Hard per-row bound on output nnz: ``min(row_work, n_cols)``.

    ``row_work`` is the per-output-row product count (the paper's
    precalculated workload vector, :attr:`MultiplyContext.row_work`); a row
    can't have more unique columns than products landing in it, nor more
    than the output width.
    """
    work = np.asarray(row_work, dtype=np.int64)
    return np.minimum(work, np.int64(n_cols))


def estimate_output_nnz(row_work: np.ndarray, n_cols: int) -> int:
    """Total output-nnz upper bound: the sum of :func:`row_nnz_upper_bound`."""
    return int(row_nnz_upper_bound(row_work, n_cols).sum())
