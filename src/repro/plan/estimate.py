"""Estimation-based output sizing for the merge fast path.

Ocean ("Fast Estimation-Based SpGEMM on GPU", PAPERS.md) replaces the exact
symbolic pass of two-phase SpGEMM with an *estimated* output allocation,
falling back to the exact pass only when the estimate undershoots.  The
vectorised plane keeps the exact symbolic merge as its reference, but the
partitioned engine can allocate its unique-column scratch from a per-row
upper bound instead of the full product-stream length — the difference
between sizing by ``flops(C)`` and sizing by (roughly) ``nnz(C)``, which for
the paper's web/social matrices is the compression factor of the multiply.

The bound used here is *hard*: row ``i`` of ``C = A·B`` cannot have more
stored entries than either the products that land in it (``row_work[i]``) or
the number of columns of ``C``.  A hard bound means the overflow fallback in
:meth:`repro.exec.engine.ExecEngine.merge` is a safety net for callers
passing their own (possibly sampled, possibly wrong) estimates — with
:func:`row_nnz_upper_bound` it never fires, and results are bit-identical
either way.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "row_nnz_upper_bound",
    "estimate_output_nnz",
    "multiply_flops",
    "row_flops",
]

#: Flop estimates at or beyond this magnitude raise :class:`OverflowError`
#: from :func:`multiply_flops` — callers budgeting in int64 arithmetic (the
#: serving admission ledger) must handle the fallback explicitly rather than
#: silently wrapping.
FLOPS_OVERFLOW_LIMIT = 1 << 62


def row_nnz_upper_bound(row_work: np.ndarray, n_cols: int) -> np.ndarray:
    """Hard per-row bound on output nnz: ``min(row_work, n_cols)``.

    ``row_work`` is the per-output-row product count (the paper's
    precalculated workload vector, :attr:`MultiplyContext.row_work`); a row
    can't have more unique columns than products landing in it, nor more
    than the output width.
    """
    work = np.asarray(row_work, dtype=np.int64)
    return np.minimum(work, np.int64(n_cols))


def estimate_output_nnz(row_work: np.ndarray, n_cols: int) -> int:
    """Total output-nnz upper bound: the sum of :func:`row_nnz_upper_bound`."""
    return int(row_nnz_upper_bound(row_work, n_cols).sum())


def multiply_flops(a, b) -> int:
    """Exact multiply work for ``C = A·B``: the number of scalar products.

    This is the paper's precalculated workload sum — for every stored entry
    ``A[i, j]`` the multiply touches every stored entry of row ``j`` of
    ``B``, so the total is ``sum(b_row_nnz[a.indices])``.  It is computed
    from index structure alone (O(nnz(A)) gather, no value arithmetic),
    cheap enough to run per-request at the serving trust boundary, and it is
    the quantity cost-aware admission budgets against.

    ``a`` and ``b`` are CSR-like (``indptr``/``indices`` plus ``shape``).
    A shape mismatch returns ``0`` — the multiply itself will reject the
    pair with a proper error, so admission should not double-report it.
    Estimates at or beyond ``FLOPS_OVERFLOW_LIMIT`` raise
    :class:`OverflowError` so budget arithmetic can't silently wrap.
    """
    if a.shape[1] != b.shape[0]:
        return 0
    indices = np.asarray(a.indices, dtype=np.int64)
    if indices.size == 0:
        return 0
    b_row_nnz = np.diff(np.asarray(b.indptr, dtype=np.int64))
    total = int(b_row_nnz[indices].sum(dtype=np.int64))
    # A negative total means the int64 accumulator wrapped mid-sum; either
    # way the estimate is unusable for ledger arithmetic.
    if total < 0 or total >= FLOPS_OVERFLOW_LIMIT:
        raise OverflowError(f"flop estimate {total} exceeds budget arithmetic range")
    return total


def row_flops(a, b) -> np.ndarray:
    """Per-output-row multiply work: products landing in each row of ``C``.

    The per-row resolution of :func:`multiply_flops` (its sum equals that
    total) and the same quantity as :attr:`MultiplyContext.row_work`, but
    computed from the operands' index structure alone — no context, no CSC
    conversion — so the out-of-core panel planner can size row panels of A
    against a memory budget before anything is expanded.
    """
    n_rows = a.shape[0]
    out = np.zeros(n_rows, dtype=np.int64)
    if a.shape[1] != b.shape[0]:
        return out
    indices = np.asarray(a.indices, dtype=np.int64)
    if indices.size == 0:
        return out
    b_row_nnz = np.diff(np.asarray(b.indptr, dtype=np.int64))
    a_indptr = np.asarray(a.indptr, dtype=np.int64)
    row_of = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(a_indptr))
    np.add.at(out, row_of, b_row_nnz[indices])
    return out
