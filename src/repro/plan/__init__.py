"""ExecutionPlan IR: one lowering per scheme, two planes derived from it.

Schemes implement ``lower(ctx, config) -> ExecutionPlan``; the shared
executors in :class:`~repro.spgemm.base.SpGEMMAlgorithm` derive the numeric
result (:meth:`~repro.plan.ir.ExecutionPlan.execute`) and the simulator trace
(:meth:`~repro.plan.ir.ExecutionPlan.to_trace`) from the same plan, so the
two planes stay consistent by construction.  Reorganisation techniques are
:class:`~repro.plan.passes.PlanPass` transformations over plans.
"""

from repro.plan.cache import (
    NumericRecipe,
    PlanCache,
    PlanCacheStats,
    SemiringRecipe,
    structure_fingerprint,
)
from repro.plan.ir import ExecutionPlan, NumericState, PhaseExecution, PlanPhase
from repro.plan.kernels import (
    coalesce_kernel,
    expand_outer_kernel,
    expand_outer_pairs_kernel,
    expand_row_kernel,
    expand_row_subset_kernel,
    sort_pending_kernel,
)
from repro.plan.passes import (
    ClassifyPass,
    GatherPass,
    LimitPass,
    PlanPass,
    SplitPass,
    expand_split_kernel,
    gathered_blocks,
)
from repro.plan.show import format_executions, format_plan

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "NumericRecipe",
    "SemiringRecipe",
    "structure_fingerprint",
    "ExecutionPlan",
    "NumericState",
    "PhaseExecution",
    "PlanPhase",
    "expand_outer_kernel",
    "expand_row_kernel",
    "expand_outer_pairs_kernel",
    "expand_row_subset_kernel",
    "sort_pending_kernel",
    "coalesce_kernel",
    "PlanPass",
    "ClassifyPass",
    "SplitPass",
    "GatherPass",
    "LimitPass",
    "expand_split_kernel",
    "gathered_blocks",
    "format_plan",
    "format_executions",
]
