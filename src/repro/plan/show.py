"""Pretty-printing for ExecutionPlans (the ``repro plan show`` subcommand).

Deliberately independent of the bench layer's table helpers so the plan
package stays importable without dragging in the runner.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.plan.ir import ExecutionPlan, PhaseExecution

__all__ = ["format_plan", "format_executions"]


def _threads_range(blocks) -> str:
    if len(blocks) == 0:
        return "-"
    lo, hi = int(blocks.threads.min()), int(blocks.threads.max())
    return str(lo) if lo == hi else f"{lo}..{hi}"


def format_plan(plan: ExecutionPlan) -> str:
    """Render a plan's phases, costs and metadata as fixed-width text."""
    lines = [
        f"ExecutionPlan for {plan.algorithm!r}  (shape {plan.shape_digest()})",
        f"  host_seconds={plan.host_seconds:.3e}  "
        f"device_setup_cycles={plan.device_setup_cycles:.0f}  "
        f"total_ops={plan.total_ops()}",
        "",
        f"  {'phase':<22} {'stage':<10} {'dev':<4} {'blocks':>8} "
        f"{'ops':>12} {'threads':>9} {'smem':>7} {'kernel':<8}",
        "  " + "-" * 86,
    ]
    for p in plan.phases:
        smem = int(p.blocks.smem_bytes.max()) if len(p.blocks) else 0
        lines.append(
            f"  {p.name:<22} {p.stage:<10} {'gpu' if p.device else 'host':<4} "
            f"{len(p.blocks):>8} {int(np.sum(p.blocks.ops)):>12} "
            f"{_threads_range(p.blocks):>9} {smem:>7} "
            f"{'yes' if p.kernel is not None else 'no':<8}"
        )
    if plan.meta:
        lines.append("")
        lines.append("  meta:")
        for key, value in plan.meta.items():
            lines.append(f"    {key} = {value}")
    return "\n".join(lines)


def format_executions(records: Iterable[PhaseExecution]) -> str:
    """Render instrumentation records from an instrumented execution."""
    lines = [
        f"  {'phase':<22} {'stage':<10} {'ops':>12} {'wall us':>10} {'bytes':>14}",
        "  " + "-" * 74,
    ]
    for r in records:
        lines.append(
            f"  {r.name:<22} {r.stage:<10} {r.ops:>12} "
            f"{r.seconds * 1e6:>10.1f} {r.bytes_touched:>14.0f}"
        )
    return "\n".join(lines)
