"""Numeric kernels for plan phases.

Each factory returns a closure ``kernel(state) -> int`` suitable for a
:class:`~repro.plan.ir.PlanPhase`.  Kernels are vectorised end to end: subset
kernels reuse the :class:`~repro.plan.ir.NumericState`'s lazily cached
canonical expansion and pay only a mask application, so a plan that expands
pairs class by class costs one expansion total, exactly like the monolithic
numeric paths it replaced.

Emission-order contract: kernels emit triplets in the same relative order the
pre-IR numeric paths did within each group (pair order for outer-product
kernels, row order for row-product kernels).  The merge is a stable sort, so
within-coordinate summation order — and hence the float64 result — follows
emission order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.plan.ir import NumericState

__all__ = [
    "expand_outer_kernel",
    "expand_row_kernel",
    "expand_outer_pairs_kernel",
    "expand_row_subset_kernel",
    "sort_pending_kernel",
    "coalesce_kernel",
]

Kernel = Callable[["NumericState"], int]


def expand_outer_kernel() -> Kernel:
    """Full outer-product expansion: every pair, in pair order."""

    def kernel(state: NumericState) -> int:
        rows, cols, vals = state.outer_expansion()
        a_src, b_src = state.outer_sources()
        return state.emit(rows, cols, vals, a_src=a_src, b_src=b_src)

    return kernel


def expand_row_kernel() -> Kernel:
    """Full row-product (Gustavson) expansion: every row, in row order."""

    def kernel(state: NumericState) -> int:
        rows, cols, vals = state.row_expansion()
        a_src, b_src = state.row_sources()
        return state.emit(rows, cols, vals, a_src=a_src, b_src=b_src)

    return kernel


def expand_outer_pairs_kernel(pair_mask: np.ndarray) -> Kernel:
    """Outer-product expansion restricted to the masked column/row pairs."""
    pair_mask = np.asarray(pair_mask, dtype=bool)

    def kernel(state: NumericState) -> int:
        rows, cols, vals = state.outer_expansion()
        a_src, b_src = state.outer_sources()
        keep = np.repeat(pair_mask, state.ctx.pair_work)
        return state.emit(
            rows[keep], cols[keep], vals[keep],
            a_src=None if a_src is None else a_src[keep],
            b_src=None if b_src is None else b_src[keep],
        )

    return kernel


def expand_row_subset_kernel(row_mask: np.ndarray) -> Kernel:
    """Row-product expansion restricted to the masked output rows."""
    row_mask = np.asarray(row_mask, dtype=bool)

    def kernel(state: NumericState) -> int:
        rows, cols, vals = state.row_expansion()
        a_src, b_src = state.row_sources()
        keep = row_mask[rows]
        return state.emit(
            rows[keep], cols[keep], vals[keep],
            a_src=None if a_src is None else a_src[keep],
            b_src=None if b_src is None else b_src[keep],
        )

    return kernel


def sort_pending_kernel() -> Kernel:
    """Stable coordinate sort of the emitted stream (ESC's sort step)."""

    def kernel(state: NumericState) -> int:
        return state.sort_pending()

    return kernel


def coalesce_kernel(row_mask: np.ndarray | None = None) -> Kernel:
    """Coalesce the emitted stream into C.

    The numeric merge is one global coalesce (idempotent across merge
    phases); ``row_mask`` only scopes the *reported* op count to the
    triplets landing in the masked output rows, mirroring how B-Limiting
    splits the merge launch without changing its result.
    """
    row_mask = None if row_mask is None else np.asarray(row_mask, dtype=bool)

    def kernel(state: NumericState) -> int:
        rows = state.pending()[0]
        ops = len(rows) if row_mask is None else int(np.count_nonzero(row_mask[rows]))
        state.coalesce()
        return ops

    return kernel
