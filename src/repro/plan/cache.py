"""Plan and symbolic-structure reuse for iterative workloads.

Iterative graph algorithms (PageRank power iteration, BFS-style reachability,
k-hop shortest paths) multiply by the *same sparsity structure* every
iteration — only the stored values change.  The paper's kernels split every
multiply into a symbolic phase (classification, lowering, expansion
coordinates, merge sort) and a numeric phase (gather + combine + segmented
reduce); production frameworks (bhSPARSE, GraphBLAS implementations) exploit
the split by running the symbolic phase once per structure.  This module is
that optimisation for our engine:

* :func:`structure_fingerprint` — content hash of the operands' sparsity
  structure (shapes + indptr + indices, values excluded).
* :class:`NumericRecipe` — everything needed to re-run *only* the numeric
  phase of a plan execution: gather arrays composed from the kernels' value
  provenance and the merge's sort permutation, plus the output structure.
  :meth:`NumericRecipe.replay` is bit-identical to the cold execution by
  construction (same multiplication pairs, same float64 summation order).
* :class:`SemiringRecipe` — the analogue for :func:`~repro.spgemm.semiring`
  products, where the *output* structure is value-dependent (identity
  entries are dropped) so only the expansion/sort structure is reused.
* :class:`PlanCache` — memoizes lowered plans and recipes keyed by
  (algorithm fingerprint, GPU config, structure fingerprint) and counts
  lookups/hits/lowers so tests and the CLI can assert amortisation.  The
  cache is **bounded**: ``max_entries`` and ``max_bytes`` put an LRU limit
  on how many recipes a long-lived process (an :class:`IterativeSession`
  held by ``repro.serve``, say) can accumulate from an evolving-structure
  workload; evictions are counted in :class:`PlanCacheStats`.

Recipes are verified at fill time: the cold result is replayed immediately
and compared exactly; a mismatch (e.g. a scheme whose kernels do not report
provenance) simply disables replay for that entry rather than risking a
wrong answer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import exec as rexec
from repro import kernels, obs
from repro.sparse.csr import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.gpusim.config import GPUConfig
    from repro.plan.ir import ExecutionPlan
    from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
    from repro.spgemm.semiring import Semiring

__all__ = [
    "structure_fingerprint",
    "algorithm_token",
    "config_token",
    "NumericRecipe",
    "SemiringRecipe",
    "PlanCacheStats",
    "PlanCacheEntry",
    "PlanCache",
]


def structure_fingerprint(a: CSRMatrix, b: CSRMatrix) -> str:
    """Hash the sparsity structure of ``a @ b``'s operands (not their values).

    Two multiplies with equal fingerprints expand to the same coordinate
    stream and merge through the same sort permutation, so a cached
    :class:`NumericRecipe` replays exactly.
    """
    h = hashlib.sha256()
    for m in (a, b):
        h.update(np.int64(m.shape[0]).tobytes())
        h.update(np.int64(m.shape[1]).tobytes())
        h.update(np.ascontiguousarray(m.indptr, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(m.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def algorithm_token(algo: SpGEMMAlgorithm) -> str:
    """Cache-key identity of a scheme: its fingerprint, or its object id.

    Non-fingerprintable schemes (adaptive/tuned) fall back to instance
    identity — reuse still works within one session holding the instance,
    which is the iterative-workload case this cache exists for.
    """
    if algo.fingerprintable:
        return json.dumps(algo.fingerprint(), sort_keys=True, separators=(",", ":"))
    return f"instance:{type(algo).__name__}:{id(algo)}"


def config_token(config: GPUConfig) -> str:
    """Cache-key identity of the lowering target."""
    return json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    )


@dataclass(frozen=True)
class NumericRecipe:
    """Numeric-only replay of one plan execution on a fixed structure.

    ``a_gather``/``b_gather`` index the operands' stored entries in *merged*
    order (the kernels' provenance composed with the merge's stable sort
    permutation); ``group`` maps each product to its output entry.  Replay is
    one gather, one multiply and one in-order segmented sum — the same
    float64 operations in the same order as the cold path's merge.

    Attributes:
        shape: output matrix shape.
        a_gather: stored-entry index into ``A.data`` per product, sorted order.
        b_gather: stored-entry index into ``B.data`` per product, sorted order.
        group: output-entry id per product (summation target), sorted order.
        n_groups: number of output entries.
        indptr: output CSR row pointers.
        indices: output CSR column indices.
    """

    shape: tuple[int, int]
    a_gather: np.ndarray
    b_gather: np.ndarray
    group: np.ndarray
    n_groups: int
    indptr: np.ndarray
    indices: np.ndarray

    def replay(self, a_data: np.ndarray, b_data: np.ndarray) -> CSRMatrix:
        """Re-run the numeric phase against fresh operand values."""
        engine = rexec.active()
        if engine is not None:
            summed = engine.gather_multiply_sum(
                a_data, b_data, self.a_gather, self.b_gather, self.group, self.n_groups
            )
            if summed is not None:  # else: below threshold / pool broke -> serial
                return CSRMatrix(
                    self.shape, self.indptr.copy(), self.indices.copy(), summed
                )
        summed = kernels.active().gather_multiply_sum(
            a_data, b_data, self.a_gather, self.b_gather, self.group, self.n_groups
        )
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(), summed)


@dataclass(frozen=True)
class SemiringRecipe:
    """Symbolic-structure replay for semiring products.

    Semiring merges drop entries equal to the reduce identity, so the output
    structure depends on the values and cannot be cached; what *is* structural
    — the expansion gathers in sorted order, the duplicate group starts and
    the unique output coordinates before identity-dropping — is.  Replay
    re-reduces, re-applies the identity filter and rebuilds ``indptr``.
    """

    shape: tuple[int, int]
    a_gather: np.ndarray
    b_gather: np.ndarray
    group_starts: np.ndarray
    out_rows: np.ndarray
    out_cols: np.ndarray

    def replay(
        self, a_data: np.ndarray, b_data: np.ndarray, semiring: Semiring
    ) -> CSRMatrix:
        """Re-run the semiring numeric phase against fresh operand values."""
        n_rows, _ = self.shape
        if len(self.a_gather) == 0:
            return CSRMatrix.empty(self.shape)
        vals = semiring.combine(a_data[self.a_gather], b_data[self.b_gather])
        reduced = semiring.reduce.reduceat(vals, self.group_starts)
        keep = reduced != semiring.identity
        out_rows, out_cols = self.out_rows[keep], self.out_cols[keep]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(out_rows, minlength=n_rows), out=indptr[1:])
        return CSRMatrix(self.shape, indptr, out_cols, reduced[keep].astype(np.float64))


@dataclass
class PlanCacheStats:
    """Amortisation counters for one :class:`PlanCache`.

    ``lookups = hits + misses``; ``lowers`` and ``symbolic_expansions`` count
    the expensive work actually performed, ``numeric_replays`` the work the
    cache reduced each hit to.  An N-iteration fixed-structure loop should
    show ``lowers == 1`` and ``numeric_replays == N - 1``.  ``evictions`` /
    ``evicted_bytes`` count entries dropped by the LRU bound — non-zero means
    the workload's structure churn exceeds the configured budget and some
    lookups that could have replayed will re-lower instead.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    lowers: int = 0
    symbolic_expansions: int = 0
    numeric_replays: int = 0
    evictions: int = 0
    evicted_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served by replay (0.0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-able snapshot, used by bench artifacts and ``repro run``."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "lowers": self.lowers,
            "symbolic_expansions": self.symbolic_expansions,
            "numeric_replays": self.numeric_replays,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "hit_rate": self.hit_rate,
        }

    def merge(self, other: "PlanCacheStats") -> None:
        """Fold another counter set into this one (aggregation across caches)."""
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class PlanCacheEntry:
    """One cached lowering: the plan plus (when capturable) a replay recipe."""

    plan: ExecutionPlan | None
    recipe: NumericRecipe | SemiringRecipe | None = None

    @property
    def nbytes(self) -> int:
        """Approximate retained size: the recipe's index/structure arrays.

        The plan itself is small (phase descriptors); the recipe's gather
        arrays scale with the product stream and dominate, so the byte
        budget counts ndarray fields only.
        """
        if self.recipe is None:
            return 0
        return sum(
            f.nbytes
            for f in vars(self.recipe).values()
            if isinstance(f, np.ndarray)
        )


class PlanCache:
    """Memoize lowered plans and numeric-replay recipes per structure.

    The cache is in-memory and session-scoped: keys include algorithm and
    config fingerprints, so one cache can serve several schemes, and
    non-fingerprintable schemes key by instance identity.  ``verify_fill``
    (default on) replays each freshly captured recipe against the cold result
    and requires exact equality before trusting it.

    ``max_entries`` and ``max_bytes`` bound the cache with LRU eviction —
    a lookup hit refreshes its entry's recency, an insert evicts the
    least-recently-used entries until both budgets hold.  Unbounded caches
    (both ``None``) match the historical behaviour but grow without limit
    under an evolving-structure workload, which no long-lived process
    (``repro serve``) should tolerate.
    """

    def __init__(
        self,
        *,
        verify_fill: bool = True,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.verify_fill = verify_fill
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = PlanCacheStats()
        self._entries: OrderedDict[tuple, PlanCacheEntry] = OrderedDict()
        self._entry_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate bytes retained by cached recipes (see entry.nbytes)."""
        return self._entry_bytes

    def clear(self) -> None:
        """Drop all entries (counters are kept; not counted as evictions)."""
        self._entries.clear()
        self._entry_bytes = 0

    def _get(self, key: tuple) -> PlanCacheEntry | None:
        """Look an entry up, refreshing its LRU recency on a hit."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def _insert(self, key: tuple, entry: PlanCacheEntry) -> None:
        """Insert (or replace) an entry, then evict LRU until within budget."""
        old = self._entries.pop(key, None)
        if old is not None:
            self._entry_bytes -= old.nbytes
        self._entries[key] = entry
        self._entry_bytes += entry.nbytes
        while self._over_budget():
            evicted_key, evicted = self._entries.popitem(last=False)
            self._entry_bytes -= evicted.nbytes
            self.stats.evictions += 1
            self.stats.evicted_bytes += evicted.nbytes
            if evicted_key == key:
                break  # a single entry larger than the byte budget

    def _over_budget(self) -> bool:
        if not self._entries:
            return False
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        return self.max_bytes is not None and self._entry_bytes > self.max_bytes

    # -- plan path ------------------------------------------------------
    def multiply(
        self,
        algo: SpGEMMAlgorithm,
        a: CSRMatrix,
        b: CSRMatrix | None = None,
        *,
        ctx: MultiplyContext | None = None,
        config: GPUConfig | None = None,
    ) -> CSRMatrix:
        """Compute ``a @ b`` with ``algo``, replaying on structure hits.

        On a hit the entire cold pipeline — operand validation, context
        construction (CSC conversion, workload precalculation),
        classification, lowering and symbolic expansion — is skipped; only
        the recipe's gather + merge runs.  ``ctx`` may be supplied when the
        caller already built one.
        """
        from repro.plan.ir import NumericState
        from repro.spgemm.base import (
            DEFAULT_LOWERING_CONFIG,
            MultiplyContext,
            validate_operands,
        )

        if config is None:
            config = DEFAULT_LOWERING_CONFIG
        b = a if b is None else b
        key = (
            "plan",
            algorithm_token(algo),
            config_token(config),
            structure_fingerprint(a, b),
        )
        self.stats.lookups += 1
        entry = self._get(key)
        if entry is not None and entry.recipe is not None:
            self.stats.hits += 1
            self.stats.numeric_replays += 1
            with obs.span("plan.cache[hit]", "plan", hits=1, numeric_replays=1):
                return entry.recipe.replay(a.data, b.data)

        self.stats.misses += 1
        with obs.span("plan.cache[miss]", "plan", misses=1) as sp:
            validate_operands(a, b)
            if ctx is None:
                ctx = MultiplyContext.build(a, b)
            self.stats.lowers += 1
            plan = algo.lower_traced(ctx, config)
            self.stats.symbolic_expansions += 1
            sp.add(lowers=1, symbolic_expansions=1)
            state = NumericState(ctx, track_provenance=True)
            result, _ = plan.execute_instrumented(ctx, state)
            recipe = self._capture(state, result)
            self._insert(key, PlanCacheEntry(plan, recipe))
        return result

    def _capture(self, state, result: CSRMatrix) -> NumericRecipe | None:
        """Build a replay recipe from a tracked execution, or ``None``."""
        prov = state.provenance()
        if prov is None:
            return None
        a_src, b_src = prov
        mr = state.merge_recipe
        if mr is None:
            if len(a_src) == 0 and result.nnz == 0:
                zi = np.zeros(0, dtype=np.int64)
                return NumericRecipe(
                    result.shape, zi, zi.copy(), zi.copy(), 0,
                    result.indptr.copy(), zi.copy(),
                )
            return None
        if len(a_src) != len(mr.order):
            return None
        recipe = NumericRecipe(
            shape=mr.shape,
            a_gather=a_src[mr.order],
            b_gather=b_src[mr.order],
            group=mr.group,
            n_groups=mr.n_groups,
            indptr=mr.indptr,
            indices=mr.indices,
        )
        if self.verify_fill and not _identical(
            recipe.replay(state.ctx.a_csr.data, state.ctx.b_csr.data), result
        ):
            return None
        return recipe

    # -- semiring path --------------------------------------------------
    def semiring_multiply(
        self, a: CSRMatrix, b: CSRMatrix | None = None, semiring=None
    ) -> CSRMatrix:
        """Semiring product with symbolic-structure reuse.

        Uses the shared outer-product expansion; the cache key includes the
        semiring name because the combine decides nothing structural but the
        replay verification is algebra-specific.
        """
        from repro.spgemm.base import validate_operands
        from repro.spgemm.semiring import PLUS_TIMES, semiring_spgemm

        if semiring is None:
            semiring = PLUS_TIMES
        b = a if b is None else b
        key = ("semiring", semiring.name, structure_fingerprint(a, b))
        self.stats.lookups += 1
        entry = self._get(key)
        if entry is not None and entry.recipe is not None:
            self.stats.hits += 1
            self.stats.numeric_replays += 1
            with obs.span("plan.semiring[hit]", "plan", hits=1, numeric_replays=1):
                return entry.recipe.replay(a.data, b.data, semiring)

        self.stats.misses += 1
        self.stats.symbolic_expansions += 1
        with obs.span("plan.semiring[miss]", "plan", misses=1, symbolic_expansions=1):
            validate_operands(a, b)
            result = semiring_spgemm(a, b, semiring)
            recipe = self._capture_semiring(a, b)
            if (
                recipe is not None
                and self.verify_fill
                and not _identical(recipe.replay(a.data, b.data, semiring), result)
            ):
                recipe = None
            self._insert(key, PlanCacheEntry(None, recipe))
        return result

    def _capture_semiring(
        self, a: CSRMatrix, b: CSRMatrix
    ) -> SemiringRecipe | None:
        """Capture the structural half of a semiring product."""
        from repro.spgemm.expansion import expand_outer_indices

        a_csc = a.to_csc()
        rows, cols, a_idx, b_idx = expand_outer_indices(a_csc, b)
        shape = (a.n_rows, b.n_cols)
        # a_idx is in a_csc entry order; replay gathers from a.data (csr).
        csc_to_csr = np.argsort(a.indices, kind="stable")
        a_idx = csc_to_csr[a_idx]
        if len(rows) == 0:
            zi = np.zeros(0, dtype=np.int64)
            return SemiringRecipe(shape, zi, zi.copy(), zi.copy(), zi.copy(), zi.copy())
        keys = rows.astype(np.int64) * np.int64(shape[1]) + cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        boundaries = np.empty(len(keys), dtype=bool)
        boundaries[0] = True
        boundaries[1:] = keys[1:] != keys[:-1]
        unique_keys = keys[boundaries]
        return SemiringRecipe(
            shape=shape,
            a_gather=a_idx[order],
            b_gather=b_idx[order],
            group_starts=np.flatnonzero(boundaries),
            out_rows=(unique_keys // shape[1]).astype(np.int64),
            out_cols=unique_keys % shape[1],
        )


def _identical(x: CSRMatrix, y: CSRMatrix) -> bool:
    """Exact structural and bitwise value equality of two CSR matrices."""
    return (
        x.shape == y.shape
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.indices, y.indices)
        and np.array_equal(x.data, y.data)
    )
