"""B-Limiting (Section IV-D): cap merge-block residency on heavy rows.

Output rows whose intermediate-element count exceeds
``threshold = nnz(C-hat) / (#blocks × β)`` generate memory-storms during the
dense-accumulator merge.  B-Limiting allocates *extra shared memory* to their
merge blocks — shared memory the kernel never touches, spent purely to lower
the number of blocks the occupancy rules allow per SM — which relieves L2
contention at the price of fewer concurrent contexts.  The limiting factor
counts 6144-byte steps, exactly as the paper's Figure 14 sweeps it; the
default of 4 steps (24 576 bytes) is the constant the paper settles on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LIMIT_SMEM_STEP", "limited_row_mask", "limiting_smem_bytes"]

LIMIT_SMEM_STEP = 6144
"""Shared-memory increment per limiting-factor step (bytes)."""


def limited_row_mask(row_work: np.ndarray, *, beta: float = 10.0) -> np.ndarray:
    """Rows whose merge blocks should be limited.

    Args:
        row_work: intermediate elements per output row.
        beta: selectivity; the paper uses 10 "to show fair performance gain".

    Returns:
        Boolean mask over rows.
    """
    if beta <= 0:
        raise ConfigurationError(f"beta must be positive, got {beta}")
    row_work = np.asarray(row_work, dtype=np.int64)
    active = row_work > 0
    n_blocks = int(np.count_nonzero(active))
    if n_blocks == 0:
        return np.zeros_like(active)
    threshold = row_work.sum() / (n_blocks * beta)
    return active & (row_work > threshold)


def limiting_smem_bytes(base_smem: int, limiting_factor: int, smem_per_sm: int) -> int:
    """Shared memory to request for a limited merge block.

    ``base + factor * 6144``, clamped so the block still fits on an SM.
    """
    if limiting_factor < 0:
        raise ConfigurationError(f"limiting factor must be >= 0, got {limiting_factor}")
    requested = base_smem + limiting_factor * LIMIT_SMEM_STEP
    return min(requested, smem_per_sm)
