"""Adaptive Block Reorganizer: per-dataset tuning of the paper's thresholds.

The paper leaves its knobs dataset-dependent: "Highly skewed networks can
have lower α values, but social networks with several medium-size hub-nodes
should have high α values" (Section IV-B), and "As the distribution of
matrices varies highly, it is difficult to find an optimal point for each
matrix" for the limiting factor (Section VI-A4).  This module makes that
tuning concrete:

* :func:`heuristic_options` — a closed-form rule mapping degree statistics
  (Gini, hub share, expansion ratio) to ``ReorganizerOptions``.
* :class:`AdaptiveBlockReorganizer` — wraps the heuristic, optionally
  refining it with a small simulator-guided search over candidate option
  sets (the simulator doubles as an offline auto-tuning oracle, which is
  only possible because it is cheap and deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.gpusim.config import GPUConfig
from repro.gpusim.simulator import GPUSimulator
from repro.plan.ir import ExecutionPlan
from repro.sparse.stats import degree_stats
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm

__all__ = ["TuningReport", "heuristic_options", "AdaptiveBlockReorganizer"]


@dataclass(frozen=True)
class TuningReport:
    """What the tuner decided and why."""

    options: ReorganizerOptions
    gini: float
    top1_share: float
    expansion_ratio: float
    candidates_tried: int
    simulated_seconds: float | None


def heuristic_options(ctx: MultiplyContext) -> tuple[ReorganizerOptions, dict]:
    """Map dataset statistics to reorganizer options, per the paper's advice.

    * Strongly skewed row degrees (high Gini / hub share) → stricter
      dominator threshold (lower α) and aggressive limiting.
    * Mild skew → higher α (avoid classifying mid-size hubs as dominators)
      and the paper's default limiting.
    * Nearly-regular data → the paper's defaults: splitting is a no-op when
      nothing classifies as a dominator, and gathering/limiting keep their
      regular-data gains.
    """
    stats = degree_stats(ctx.a_csr.row_nnz())
    expansion_ratio = ctx.total_work / max(ctx.a_csr.nnz, 1)

    if stats.gini > 0.8 or stats.top1_share > 0.3:
        options = ReorganizerOptions(alpha=0.05, beta=10.0, limiting_factor=6)
    elif stats.gini > 0.5:
        options = ReorganizerOptions(alpha=0.2, beta=10.0, limiting_factor=4)
    else:
        options = ReorganizerOptions()
    diagnostics = {
        "gini": stats.gini,
        "top1_share": stats.top1_share,
        "expansion_ratio": expansion_ratio,
    }
    return options, diagnostics


class AdaptiveBlockReorganizer(SpGEMMAlgorithm):
    """Block Reorganizer with dataset-driven option selection.

    With ``search=False`` (default) the closed-form heuristic decides.  With
    ``search=True`` and a simulator, a handful of candidates around the
    heuristic are simulated and the fastest wins — a few milliseconds of
    offline tuning per dataset.
    """

    name = "adaptive-reorganizer"

    #: Tuning depends on per-dataset state (and optionally a live simulator),
    #: so results are not content-addressable by constructor parameters.
    fingerprintable = False

    def __init__(self, *args, search: bool = False,
                 simulator: GPUSimulator | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.search = search
        self.simulator = simulator
        self.last_report: TuningReport | None = None
        self._reports: dict[str, TuningReport] = {}

    # ------------------------------------------------------------------
    def tune(self, ctx: MultiplyContext) -> TuningReport:
        """Choose options for this problem (and remember the decision).

        Every tuning input — degree statistics, expansion ratio, simulated
        candidate traces — is a pure function of the operands' sparsity
        structure, so reports are memoized per structure fingerprint:
        iterative workloads re-tune only when the structure changes.
        """
        from repro.plan.cache import structure_fingerprint

        key = structure_fingerprint(ctx.a_csr, ctx.b_csr)
        cached = self._reports.get(key)
        if cached is not None:
            self.last_report = cached
            return cached
        options, diag = heuristic_options(ctx)
        tried = 1
        simulated = None
        if self.search and self.simulator is not None:
            candidates = self._candidates(options)
            tried = len(candidates)
            best_seconds = None
            for candidate in candidates:
                algo = BlockReorganizer(self.costs, options=candidate)
                seconds = algo.simulate(ctx, self.simulator).total_seconds
                if best_seconds is None or seconds < best_seconds:
                    best_seconds, options = seconds, candidate
            simulated = best_seconds
        report = TuningReport(
            options=options,
            gini=diag["gini"],
            top1_share=diag["top1_share"],
            expansion_ratio=diag["expansion_ratio"],
            candidates_tried=tried,
            simulated_seconds=simulated,
        )
        self.last_report = report
        self._reports[key] = report
        return report

    @staticmethod
    def _candidates(base: ReorganizerOptions) -> list[ReorganizerOptions]:
        out = [base]
        for alpha in (base.alpha * 0.5, base.alpha * 2.0):
            out.append(replace(base, alpha=alpha))
        for factor in (2, 6):
            if factor != base.limiting_factor:
                out.append(replace(base, limiting_factor=factor))
        out.append(replace(base, enable_limiting=not base.enable_limiting))
        return out

    # ------------------------------------------------------------------
    def _configured(self, ctx: MultiplyContext) -> BlockReorganizer:
        report = self.tune(ctx)
        return BlockReorganizer(self.costs, options=report.options)

    def lower(self, ctx: MultiplyContext, config: GPUConfig) -> ExecutionPlan:
        """Lower through the tuned pipeline (numerics identical regardless)."""
        return self._configured(ctx).lower(ctx, config)

    def plan_signature(self) -> dict:
        """Static identity only — the tuned pipeline is dataset-dependent."""
        return {"lowering": "outer-product", "passes": "tuned-per-dataset"}
