"""The Block Reorganizer optimization pass (the paper's contribution)."""

from repro.core.classify import WorkloadClasses, classify_pairs
from repro.core.gathering import GatherPlan, gathering_factor, plan_gathering
from repro.core.limiting import LIMIT_SMEM_STEP, limited_row_mask, limiting_smem_bytes
from repro.core.reorganizer import (
    BlockReorganizer,
    ReorganizerOptions,
    options_from_pipeline,
    plan_pipeline,
)
from repro.core.splitting import (
    SplitPlan,
    choose_split_factors,
    plan_splitting,
    split_csc_columns,
)

__all__ = [
    "WorkloadClasses",
    "classify_pairs",
    "GatherPlan",
    "gathering_factor",
    "plan_gathering",
    "LIMIT_SMEM_STEP",
    "limited_row_mask",
    "limiting_smem_bytes",
    "BlockReorganizer",
    "ReorganizerOptions",
    "options_from_pipeline",
    "plan_pipeline",
    "SplitPlan",
    "choose_split_factors",
    "plan_splitting",
    "split_csc_columns",
]
