"""The Block Reorganizer (Section IV): the paper's contribution.

Pipeline: precalculate block-wise and row-wise workloads → classify pairs →
B-Split dominators → B-Gather low performers → expand → B-Limit heavy merge
rows → merge.  Every stage can be toggled independently (the Figure 10
ablation); with all three off, the trace degenerates to the outer-product
baseline's fixed-size blocks.

The class is a thin front over :mod:`repro.plan.passes`: lowering builds the
outer-product baseline plan and pushes it through a pass pipeline derived
from :class:`ReorganizerOptions` (see :func:`plan_pipeline`).  Each pass
rewrites both planes at once — the numeric kernels (dominator columns are
physically split through the mapper array, so the tests can verify the
paper's "same results as the original vector pairs" claim) and the thread
block descriptors the simulator consumes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.errors import ConfigurationError
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.gpusim.config import GPUConfig
    from repro.plan.ir import ExecutionPlan
    from repro.plan.passes import PlanPass

__all__ = [
    "ReorganizerOptions",
    "BlockReorganizer",
    "plan_pipeline",
    "options_from_pipeline",
]


@dataclass(frozen=True)
class ReorganizerOptions:
    """Tunables of the Block Reorganizer.

    Attributes:
        enable_splitting: apply B-Splitting to dominator pairs.
        enable_gathering: apply B-Gathering to underloaded pairs.
        enable_limiting: apply B-Limiting to heavy merge rows.
        alpha: dominator-threshold selectivity (Section IV-B).
        beta: merge-row-threshold selectivity (Section IV-D; paper value 10).
        splitting_factor: pin the per-dominator splitting factor (Figure 11
            sweep); None chooses the greedy power-of-two automatically.
        limiting_factor: extra-shared-memory steps of 6144 bytes (Figure 14
            sweep; paper settles on 4).
        max_threads: thread cap for appropriately-sized expansion blocks.
        baseline_threads: fixed block size used for categories whose
            technique is disabled (matches the outer-product baseline).
    """

    enable_splitting: bool = True
    enable_gathering: bool = True
    enable_limiting: bool = True
    alpha: float = 0.1
    beta: float = 10.0
    splitting_factor: int | None = None
    limiting_factor: int = 4
    max_threads: int = 256
    baseline_threads: int = 256

    def __post_init__(self) -> None:
        if self.max_threads < 32 or self.max_threads % 32:
            raise ConfigurationError("max_threads must be a positive multiple of 32")


def plan_pipeline(options: ReorganizerOptions) -> list["PlanPass"]:
    """The pass pipeline an option set denotes.

    ClassifyPass always leads (it publishes the pair classification the
    technique passes consume); each enabled technique appends its pass.
    Dropping a technique simply drops its pass — the Figure 10 ablation.
    """
    # Imported lazily: repro.plan.passes imports this package at module
    # scope, so a top-level import here would close an import cycle.
    from repro.plan.passes import ClassifyPass, GatherPass, LimitPass, SplitPass

    passes: list[PlanPass] = [
        ClassifyPass(
            alpha=options.alpha,
            max_threads=options.max_threads,
            baseline_threads=options.baseline_threads,
        )
    ]
    if options.enable_splitting:
        passes.append(
            SplitPass(
                splitting_factor=options.splitting_factor,
                max_threads=options.max_threads,
            )
        )
    if options.enable_gathering:
        passes.append(GatherPass())
    if options.enable_limiting:
        passes.append(
            LimitPass(beta=options.beta, limiting_factor=options.limiting_factor)
        )
    return passes


def options_from_pipeline(passes: Sequence["PlanPass"]) -> ReorganizerOptions:
    """Inverse of :func:`plan_pipeline`.

    Reconstructs the option set a pipeline came from.  Parameters of
    *disabled* techniques are unrecoverable (the pass that carried them is
    absent) and come back at their dataclass defaults — the round trip is
    exact whenever disabled techniques kept their defaults, which is how
    every ablation in the repo is expressed.
    """
    from repro.plan.passes import ClassifyPass, GatherPass, LimitPass, SplitPass

    if not passes or not isinstance(passes[0], ClassifyPass):
        raise ConfigurationError("pipeline must start with ClassifyPass")
    classify = passes[0]
    kwargs: dict = {
        "enable_splitting": False,
        "enable_gathering": False,
        "enable_limiting": False,
        "alpha": classify.alpha,
        "max_threads": classify.max_threads,
        "baseline_threads": classify.baseline_threads,
    }
    for p in passes[1:]:
        if isinstance(p, SplitPass):
            kwargs["enable_splitting"] = True
            kwargs["splitting_factor"] = p.splitting_factor
        elif isinstance(p, GatherPass):
            kwargs["enable_gathering"] = True
        elif isinstance(p, LimitPass):
            kwargs["enable_limiting"] = True
            kwargs["beta"] = p.beta
            kwargs["limiting_factor"] = p.limiting_factor
        else:
            raise ConfigurationError(f"unknown reorganizer pass: {p!r}")
    return ReorganizerOptions(**kwargs)


class BlockReorganizer(SpGEMMAlgorithm):
    """Outer-product spGEMM optimised with B-Splitting/Gathering/Limiting."""

    name = "block-reorganizer"

    def __init__(self, *args, options: ReorganizerOptions | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.options = options or ReorganizerOptions()

    def fingerprint(self) -> dict:
        """Identity for the result cache: base fields plus the option set."""
        fp = super().fingerprint()
        fp["options"] = dataclasses.asdict(self.options)
        return fp

    def pipeline(self) -> list["PlanPass"]:
        """The pass pipeline this instance lowers through."""
        return plan_pipeline(self.options)

    def plan_signature(self) -> dict:
        """Lowering identity: baseline scheme plus the pass pipeline."""
        return {
            "lowering": "outer-product",
            "passes": [p.signature() for p in self.pipeline()],
        }

    def lower(self, ctx: MultiplyContext, config: "GPUConfig") -> "ExecutionPlan":
        """Baseline outer-product plan pushed through the pass pipeline."""
        # Lazy for the same cycle reason as plan_pipeline: the spgemm package
        # initialises outerproduct after base, and loading it can re-enter
        # this module via repro.plan.passes.
        from repro.spgemm.outerproduct import OuterProductSpGEMM

        baseline = OuterProductSpGEMM(
            self.costs, fixed_block_size=self.options.baseline_threads
        )
        plan = baseline.lower(ctx, config)
        plan.algorithm = self.name
        for p in self.pipeline():
            with obs.span(f"reorganize.{p.signature()['pass']}", "plan") as sp:
                plan = p.run(plan, ctx, config, self.costs)
                sp.add(phases=len(plan.phases), blocks=int(plan.n_blocks))
        return plan
