"""The Block Reorganizer (Section IV): the paper's contribution.

Pipeline: precalculate block-wise and row-wise workloads → classify pairs →
B-Split dominators → B-Gather low performers → expand → B-Limit heavy merge
rows → merge.  Every stage can be toggled independently (the Figure 10
ablation); with all three off, the trace degenerates to the outer-product
baseline's fixed-size blocks.

Numeric plane: genuinely executes the pipeline — dominator columns are
physically split through the mapper array (so the tests can verify the
paper's "same results as the original vector pairs" claim), gathered and
normal pairs expand as usual, and a single coalescing merge produces C.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.block import BlockArrayBuilder
from repro.gpusim.config import GPUConfig
from repro.gpusim.host import device_precalc_cycles, host_split_seconds
from repro.gpusim.trace import KernelPhase, KernelTrace, PHASE_EXPANSION, PHASE_MERGE
from repro.sparse.csr import CSRMatrix
from repro.core.classify import classify_pairs
from repro.core.gathering import plan_gathering
from repro.core.limiting import limited_row_mask, limiting_smem_bytes
from repro.core.splitting import plan_splitting, split_csc_columns
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.expansion import expand_outer
from repro.spgemm.merge import merge_triplets
from repro.spgemm.traceutil import merge_blocks, outer_pair_blocks

__all__ = ["ReorganizerOptions", "BlockReorganizer"]


@dataclass(frozen=True)
class ReorganizerOptions:
    """Tunables of the Block Reorganizer.

    Attributes:
        enable_splitting: apply B-Splitting to dominator pairs.
        enable_gathering: apply B-Gathering to underloaded pairs.
        enable_limiting: apply B-Limiting to heavy merge rows.
        alpha: dominator-threshold selectivity (Section IV-B).
        beta: merge-row-threshold selectivity (Section IV-D; paper value 10).
        splitting_factor: pin the per-dominator splitting factor (Figure 11
            sweep); None chooses the greedy power-of-two automatically.
        limiting_factor: extra-shared-memory steps of 6144 bytes (Figure 14
            sweep; paper settles on 4).
        max_threads: thread cap for appropriately-sized expansion blocks.
        baseline_threads: fixed block size used for categories whose
            technique is disabled (matches the outer-product baseline).
    """

    enable_splitting: bool = True
    enable_gathering: bool = True
    enable_limiting: bool = True
    alpha: float = 0.1
    beta: float = 10.0
    splitting_factor: int | None = None
    limiting_factor: int = 4
    max_threads: int = 256
    baseline_threads: int = 256

    def __post_init__(self) -> None:
        if self.max_threads < 32 or self.max_threads % 32:
            raise ConfigurationError("max_threads must be a positive multiple of 32")


class BlockReorganizer(SpGEMMAlgorithm):
    """Outer-product spGEMM optimised with B-Splitting/Gathering/Limiting."""

    name = "block-reorganizer"

    def __init__(self, *args, options: ReorganizerOptions | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.options = options or ReorganizerOptions()

    def fingerprint(self) -> dict:
        """Identity for the result cache: base fields plus the option set."""
        fp = super().fingerprint()
        fp["options"] = dataclasses.asdict(self.options)
        return fp

    # ------------------------------------------------------------------
    # Numeric plane
    # ------------------------------------------------------------------
    def multiply(self, ctx: MultiplyContext) -> CSRMatrix:
        """Execute the pipeline numerically (split structures included)."""
        opts = self.options
        na = ctx.a_csc.col_nnz()
        nb = ctx.b_csr.row_nnz()
        classes = classify_pairs(ctx.pair_work, nb, alpha=opts.alpha)

        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        rest_mask = ~classes.dominator
        if opts.enable_splitting and classes.n_dominators:
            plan = plan_splitting(na, nb, classes.dominator, n_sms=30,
                                  factor_override=opts.splitting_factor)
            a_split, mapper = split_csc_columns(ctx.a_csc, plan)
            parts.append(_expand_with_mapper(a_split, mapper, ctx))
        else:
            rest_mask = np.ones_like(classes.dominator)

        rows, cols, vals = expand_outer(ctx.a_csc, ctx.b_csr)
        if not rest_mask.all():
            keep = np.repeat(rest_mask, ctx.pair_work)
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        parts.append((rows, cols, vals))

        all_rows = np.concatenate([p[0] for p in parts])
        all_cols = np.concatenate([p[1] for p in parts])
        all_vals = np.concatenate([p[2] for p in parts])
        return merge_triplets(all_rows, all_cols, all_vals, ctx.out_shape)

    # ------------------------------------------------------------------
    # Performance plane
    # ------------------------------------------------------------------
    def build_trace(self, ctx: MultiplyContext, config: GPUConfig) -> KernelTrace:
        """Build the reorganised kernel phases for ``config``."""
        opts = self.options
        costs = self.costs
        na = ctx.a_csc.col_nnz()
        nb = ctx.b_csr.row_nnz()
        classes = classify_pairs(ctx.pair_work, nb, alpha=opts.alpha)

        phases: list[KernelPhase] = []
        host_seconds = 0.0  # classification runs on the device (Section V)
        meta: dict = {
            "n_dominators": classes.n_dominators,
            "n_underloaded": classes.n_underloaded,
            "n_normal": classes.n_normal,
            "dominator_threshold": classes.threshold,
        }

        # --- expansion: dominators -----------------------------------
        if classes.n_dominators:
            if opts.enable_splitting:
                plan = plan_splitting(
                    na, nb, classes.dominator, config.n_sms,
                    factor_override=opts.splitting_factor,
                )
                factor_of_block = np.repeat(
                    plan.factors, plan.factors
                ).astype(np.float64)
                blocks = outer_pair_blocks(
                    plan.na, plan.nb, costs,
                    max_threads=opts.max_threads,
                    extra_unique_bytes=8.0,  # mapper-array lookup per block
                    shared_b_fraction=1.0 - 1.0 / factor_of_block,
                )
                host_seconds += host_split_seconds(costs, plan.split_entries)
                meta["n_split_blocks"] = plan.n_blocks
                meta["split_factors"] = plan.factors.tolist()[:16]
            else:
                blocks = outer_pair_blocks(
                    na[classes.dominator], nb[classes.dominator], costs,
                    fixed_threads=opts.baseline_threads,
                )
            phases.append(KernelPhase("expansion-dominator", PHASE_EXPANSION, blocks))

        # --- expansion: normal ----------------------------------------
        if classes.n_normal:
            blocks = outer_pair_blocks(
                na[classes.normal], nb[classes.normal], costs,
                max_threads=opts.max_threads,
            )
            phases.append(KernelPhase("expansion-normal", PHASE_EXPANSION, blocks))

        # --- expansion: underloaded ------------------------------------
        if classes.n_underloaded:
            if opts.enable_gathering:
                plan = plan_gathering(na, nb, classes.underloaded)
                blocks = _gathered_blocks(plan, costs)
                meta["n_gathered_blocks"] = plan.n_blocks
            else:
                blocks = outer_pair_blocks(
                    na[classes.underloaded], nb[classes.underloaded], costs,
                    fixed_threads=opts.baseline_threads,
                )
            phases.append(KernelPhase("expansion-gathered", PHASE_EXPANSION, blocks))

        # --- merge ------------------------------------------------------
        if opts.enable_limiting:
            mask = limited_row_mask(ctx.row_work, beta=opts.beta)
            meta["n_limited_rows"] = int(np.count_nonzero(mask))
            if mask.any():
                smem = limiting_smem_bytes(4096, opts.limiting_factor, config.smem_per_sm)
                heavy = merge_blocks(
                    ctx.row_work, ctx.c_row_nnz, costs, row_mask=mask, smem_bytes=smem
                )
                phases.append(KernelPhase("merge-limited", PHASE_MERGE, heavy))
            light = merge_blocks(ctx.row_work, ctx.c_row_nnz, costs, row_mask=~mask)
            phases.append(KernelPhase("merge", PHASE_MERGE, light))
        else:
            phases.append(
                KernelPhase(
                    "merge", PHASE_MERGE, merge_blocks(ctx.row_work, ctx.c_row_nnz, costs)
                )
            )

        return KernelTrace(
            algorithm=self.name,
            phases=phases,
            host_seconds=host_seconds,
            device_setup_cycles=device_precalc_cycles(
                costs, ctx.a_csr.nnz, ctx.b_csr.nnz, extra_elements=len(na)
            ),
            meta=meta,
        )


def _expand_with_mapper(a_split, mapper: np.ndarray, ctx: MultiplyContext):
    """Expand split columns against the b-rows their mapper points at."""
    na = a_split.col_nnz()
    nb = ctx.b_csr.row_nnz()[mapper]
    counts = na * nb
    total = int(counts.sum())
    if total == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z.copy(), np.zeros(0, dtype=np.float64)
    seg_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    nb_per = nb[seg_of]
    a_pos = offsets // np.maximum(nb_per, 1)
    b_pos = offsets % np.maximum(nb_per, 1)
    a_idx = a_split.indptr[seg_of] + a_pos
    b_idx = ctx.b_csr.indptr[mapper[seg_of]] + b_pos
    rows = a_split.indices[a_idx]
    cols = ctx.b_csr.indices[b_idx]
    vals = a_split.data[a_idx] * ctx.b_csr.data[b_idx]
    return rows, cols, vals


def _gathered_blocks(plan, costs):
    """Trace blocks for combined (gathered) micro-blocks."""
    builder = BlockArrayBuilder()
    if plan.n_blocks == 0:
        return builder.build()
    bpe = costs.bytes_per_entry
    unique = (plan.na_sum + plan.nb_sum) * bpe
    reuse = plan.ops * 8.0
    writes = plan.ops * bpe
    # Partitions stream disjoint (but individually sequential) vectors, so a
    # combined block's traffic is the sum of its micro-blocks' traffic plus a
    # sector of slack per partition: gathering amortises launch, issue and
    # latency — not bandwidth.
    transactions = (unique + writes) / 32.0 + plan.partitions
    builder.add_blocks(
        threads=32,
        effective_threads=plan.effective_threads,
        iters=plan.iters,
        ops=plan.ops,
        unique_bytes=unique,
        reuse_bytes=reuse,
        write_bytes=writes,
        smem_bytes=1024,
        working_set=unique,
        transactions=transactions,
    )
    return builder.build()
