"""B-Splitting (Section IV-C1): divide overloaded blocks.

Dominator column vectors are copied into a temporary matrix A' whose column
pointers are expanded so that each original dominator column becomes several
smaller columns; a *mapper array* records which original pair every split
column came from, so products land in exactly the same output coordinates.
This module implements both planes:

* :func:`plan_splitting` — the performance plan: per-dominator splitting
  factor (a power of two, chosen greedily so dominator work spreads over more
  blocks than the GPU has SMs) and the per-split-block workloads.
* :func:`split_csc_columns` — the numeric structure: an actual split CSC
  matrix plus mapper, used by the Block Reorganizer's numeric plane and by
  the tests that verify split execution reproduces the original product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csc import CSCMatrix

__all__ = [
    "SplitPlan",
    "choose_split_factors",
    "plan_splitting",
    "split_csc_columns",
    "split_source_indices",
]


@dataclass(frozen=True)
class SplitPlan:
    """Result of planning B-Splitting over the dominator pairs.

    Attributes:
        pair_ids: original pair id of each split block.
        na: a-column entries handled by each split block.
        nb: b-row entries (effective threads) of each split block — splitting
            never divides the row vector, per the paper, so this repeats the
            dominator's nb.
        factors: chosen splitting factor per dominator (aligned with
            ``dominator_ids``).
        dominator_ids: the dominator pair ids, in classification order.
        split_entries: total a-entries copied into A' (host preprocessing
            cost driver).
    """

    pair_ids: np.ndarray
    na: np.ndarray
    nb: np.ndarray
    factors: np.ndarray
    dominator_ids: np.ndarray
    split_entries: int

    @property
    def n_blocks(self) -> int:
        return len(self.pair_ids)


def choose_split_factors(
    na: np.ndarray, n_sms: int, factor_override: int | None = None
) -> np.ndarray:
    """Per-dominator splitting factor: the paper's greedy power-of-two rule.

    The factor is the smallest power of two at least ``2 * n_sms`` (so split
    blocks outnumber SMs), capped so no piece becomes empty (factor ≤ na).
    ``factor_override`` pins the factor for the Figure 11 sweep.
    """
    na = np.asarray(na, dtype=np.int64)
    if factor_override is not None:
        if factor_override < 1:
            raise ConfigurationError(f"splitting factor must be >= 1, got {factor_override}")
        target = int(factor_override)
    else:
        target = 1 << int(np.ceil(np.log2(max(2 * n_sms, 2))))
    cap = np.maximum(1, np.minimum(target, na))
    # Round the cap down to a power of two so factors stay 2^n.
    cap_pow2 = (1 << np.floor(np.log2(cap)).astype(np.int64)).astype(np.int64)
    return np.minimum(target, cap_pow2)


def plan_splitting(
    na: np.ndarray,
    nb: np.ndarray,
    dominator_mask: np.ndarray,
    n_sms: int,
    *,
    factor_override: int | None = None,
) -> SplitPlan:
    """Plan split blocks for every dominator pair.

    Each dominator with ``na_k`` column entries and factor ``f_k`` yields
    ``f_k`` blocks of ``ceil/floor(na_k / f_k)`` entries (the first
    ``na_k mod f_k`` blocks take the extra element).
    """
    dominator_ids = np.flatnonzero(dominator_mask)
    if len(dominator_ids) == 0:
        zi = np.zeros(0, dtype=np.int64)
        return SplitPlan(zi, zi, zi.copy(), zi.copy(), zi.copy(), 0)

    dom_na = np.asarray(na, dtype=np.int64)[dominator_ids]
    dom_nb = np.asarray(nb, dtype=np.int64)[dominator_ids]
    factors = choose_split_factors(dom_na, n_sms, factor_override)

    pair_ids = np.repeat(dominator_ids, factors)
    base = np.repeat(dom_na // factors, factors)
    remainder = dom_na % factors
    starts = np.cumsum(factors) - factors
    offsets = np.arange(int(factors.sum()), dtype=np.int64) - np.repeat(starts, factors)
    split_na = base + (offsets < np.repeat(remainder, factors))
    split_nb = np.repeat(dom_nb, factors)

    keep = split_na > 0
    return SplitPlan(
        pair_ids=pair_ids[keep],
        na=split_na[keep],
        nb=split_nb[keep],
        factors=factors,
        dominator_ids=dominator_ids,
        split_entries=int(dom_na.sum() + dom_nb.sum()),
    )


def split_source_indices(
    a_csc: CSCMatrix, plan: SplitPlan
) -> tuple[np.ndarray, np.ndarray]:
    """Structure of A': split-column pointers and source-entry gather array.

    Returns ``(indptr, src)`` where ``indptr`` is the split matrix's column
    pointer array (one column per split block) and ``src`` maps every entry
    of A' to the stored entry of ``a_csc`` it is copied from.  This is the
    symbolic half of :func:`split_csc_columns`; the plan cache records
    ``src`` so numeric replay can gather fresh dominator values without
    re-materialising A'.
    """
    n_split = plan.n_blocks
    if n_split == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)

    # Source ranges: walk each dominator's column, carving consecutive chunks
    # of plan.na entries.
    indptr = np.zeros(n_split + 1, dtype=np.int64)
    np.cumsum(plan.na, out=indptr[1:])
    total = int(indptr[-1])

    # Per split block, its offset within its dominator column.
    first_of_pair = np.ones(n_split, dtype=bool)
    first_of_pair[1:] = plan.pair_ids[1:] != plan.pair_ids[:-1]
    running = np.cumsum(plan.na) - plan.na
    pair_base = np.where(first_of_pair, running, 0)
    pair_base = np.maximum.accumulate(pair_base)
    block_starts_in_pair = running - pair_base

    src_col_start = a_csc.indptr[plan.pair_ids]
    offsets = np.arange(total, dtype=np.int64) - np.repeat(running, plan.na)
    src = np.repeat(src_col_start + block_starts_in_pair, plan.na) + offsets
    return indptr, src


def split_csc_columns(
    a_csc: CSCMatrix, plan: SplitPlan
) -> tuple[CSCMatrix, np.ndarray]:
    """Materialise A': the dominator columns, physically split.

    Returns a CSC matrix with one column per split block (entries copied from
    the original dominator columns) and the mapper array giving each new
    column's original pair id.  Expanding (A' column j) x (B row mapper[j])
    for all j reproduces exactly the dominators' contribution to C — the
    property the paper's Figure 5 illustrates and our tests assert.
    """
    n_split = plan.n_blocks
    mapper = plan.pair_ids.copy()
    if n_split == 0:
        return CSCMatrix.empty((a_csc.n_rows, 0)), mapper

    indptr, src = split_source_indices(a_csc, plan)
    split = CSCMatrix(
        (a_csc.n_rows, n_split),
        indptr,
        a_csc.indices[src],
        a_csc.data[src],
    )
    return split, mapper
