"""B-Gathering (Section IV-C2): combine underloaded blocks.

Underloaded pairs (fewer effective threads than a warp) are first compacted
into *micro-blocks* — same results, only as many threads as are effective —
then binned by effective-thread range.  Bin ``n`` holds pairs with
``2^(n-1) < nnz(b_{k*}) <= 2^n``; its gathering factor is ``32 / 2^n``, so a
combined block always fills one 32-lane warp with (up to) ``32/2^n``
partitions.  Pairs already in the 17..32 range are not gathered (factor 1),
matching the paper's "bin 3 is not gathered to avoid serialization".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GatherPlan", "gathering_factor", "plan_gathering"]


@dataclass(frozen=True)
class GatherPlan:
    """Result of planning B-Gathering over the underloaded pairs.

    One entry per *combined* block.  Aggregates are what the trace builder
    needs; ``group_of_pair`` maps each underloaded pair to its combined block
    (tests use it to verify no pair is lost or duplicated).
    """

    effective_threads: np.ndarray
    iters: np.ndarray
    ops: np.ndarray
    na_sum: np.ndarray
    nb_sum: np.ndarray
    partitions: np.ndarray
    group_of_pair: np.ndarray
    pair_ids: np.ndarray

    @property
    def n_blocks(self) -> int:
        return len(self.ops)


def gathering_factor(nb: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Gathering factor per underloaded pair: ``warp / 2^ceil(log2(nb))``."""
    nb = np.asarray(nb, dtype=np.int64)
    if np.any(nb <= 0) or np.any(nb > warp_size):
        raise ConfigurationError("gathering expects 1 <= nb <= warp size")
    bin_pow = np.ceil(np.log2(np.maximum(nb, 1))).astype(np.int64)  # nb=1 -> 0
    return (warp_size >> bin_pow).astype(np.int64)


def plan_gathering(
    na: np.ndarray,
    nb: np.ndarray,
    underloaded_mask: np.ndarray,
    *,
    warp_size: int = 32,
) -> GatherPlan:
    """Bin underloaded pairs and combine each bin in groups of its factor.

    Pairs keep classification order inside each bin; groups of ``factor``
    consecutive pairs form one combined block.  A combined block's critical
    path is the *maximum* partition length (partitions occupy disjoint lanes
    and run concurrently); its useful work is the sum.
    """
    pair_ids = np.flatnonzero(underloaded_mask)
    zi = np.zeros(0, dtype=np.int64)
    if len(pair_ids) == 0:
        return GatherPlan(zi, zi.astype(float), zi, zi, zi, zi, zi, zi)

    na = np.asarray(na, dtype=np.int64)[pair_ids]
    nb = np.asarray(nb, dtype=np.int64)[pair_ids]
    factors = gathering_factor(nb, warp_size)

    # Stable-sort pairs by bin so groups gather same-factor micro-blocks.
    order = np.argsort(factors, kind="stable")
    na, nb, factors, pair_ids = na[order], nb[order], factors[order], pair_ids[order]

    # Group ids: within each factor run, chunks of `factor` pairs.
    boundaries = np.empty(len(factors), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = factors[1:] != factors[:-1]
    run_start = np.maximum.accumulate(np.where(boundaries, np.arange(len(factors)), 0))
    idx_in_run = np.arange(len(factors)) - run_start
    local_group = idx_in_run // factors
    # Make group ids globally unique: run id * big + local group.
    run_id = np.cumsum(boundaries) - 1
    key = run_id * (len(factors) + 1) + local_group
    _, group_of_pair = np.unique(key, return_inverse=True)

    n_groups = int(group_of_pair.max()) + 1
    ops = np.bincount(group_of_pair, weights=na * nb, minlength=n_groups).astype(np.int64)
    na_sum = np.bincount(group_of_pair, weights=na, minlength=n_groups).astype(np.int64)
    nb_sum = np.bincount(group_of_pair, weights=nb, minlength=n_groups).astype(np.int64)
    iters = np.zeros(n_groups, dtype=np.float64)
    np.maximum.at(iters, group_of_pair, na.astype(np.float64))
    effective = np.minimum(nb_sum, warp_size)
    partitions = np.bincount(group_of_pair, minlength=n_groups).astype(np.int64)

    return GatherPlan(
        effective_threads=effective,
        iters=iters,
        ops=ops,
        na_sum=na_sum,
        nb_sum=nb_sum,
        partitions=partitions,
        group_of_pair=group_of_pair,
        pair_ids=pair_ids,
    )
