"""Workload precalculation and categorisation (Section IV-B).

The Block Reorganizer first computes the block-wise nnz of every column/row
pair, then bins pairs into three categories:

* **Dominators** — pairs producing more than
  ``threshold = nnz(C-hat) / (#blocks × α)`` intermediate elements.  These
  become overloaded thread blocks; B-Splitting divides them.
* **Low performers** — pairs whose b-row has fewer non-zeros than the warp
  size (32): their blocks would have too few effective threads.  B-Gathering
  combines them.
* **Normal** — everything else.

α tunes dominator selectivity exactly as the paper describes: lower α raises
the threshold (fewer dominators; right for highly skewed networks), higher α
lowers it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["WorkloadClasses", "classify_pairs"]


@dataclass(frozen=True)
class WorkloadClasses:
    """Pair categorisation produced by :func:`classify_pairs`.

    All masks are boolean arrays over the inner dimension; a pair belongs to
    exactly one of dominator / underloaded / normal, and empty pairs (zero
    work) belong to none.
    """

    threshold: float
    dominator: np.ndarray
    underloaded: np.ndarray
    normal: np.ndarray

    @property
    def n_dominators(self) -> int:
        return int(np.count_nonzero(self.dominator))

    @property
    def n_underloaded(self) -> int:
        return int(np.count_nonzero(self.underloaded))

    @property
    def n_normal(self) -> int:
        return int(np.count_nonzero(self.normal))


def classify_pairs(
    pair_work: np.ndarray,
    effective_threads: np.ndarray,
    *,
    alpha: float = 0.1,
    warp_size: int = 32,
) -> WorkloadClasses:
    """Categorise column/row pairs by computational load.

    Args:
        pair_work: products per pair (``nnz(a_{*k}) * nnz(b_{k*})``).
        effective_threads: effective threads per pair (``nnz(b_{k*})``).
        alpha: dominator selectivity (see module docstring).
        warp_size: underloaded cutoff.

    Returns:
        :class:`WorkloadClasses` with disjoint masks.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    pair_work = np.asarray(pair_work, dtype=np.int64)
    effective_threads = np.asarray(effective_threads, dtype=np.int64)
    if pair_work.shape != effective_threads.shape:
        raise ConfigurationError("pair_work and effective_threads must align")

    active = pair_work > 0
    n_blocks = int(np.count_nonzero(active))
    total = int(pair_work.sum())
    if n_blocks == 0:
        empty = np.zeros_like(active)
        return WorkloadClasses(0.0, empty, empty, empty)

    threshold = total / (n_blocks * alpha)
    dominator = active & (pair_work > threshold)
    underloaded = active & ~dominator & (effective_threads < warp_size)
    normal = active & ~dominator & ~underloaded
    return WorkloadClasses(threshold, dominator, underloaded, normal)
