"""Block Reorganizer: a reproduction of "Optimization of GPU-based Sparse
Matrix Multiplication for Large Sparse Networks" (Lee et al., ICDE 2020).

The public API lives in the subpackages:

* :mod:`repro.sparse` — sparse matrix formats and generators.
* :mod:`repro.datasets` — the paper's dataset catalog (stand-ins + synthetic).
* :mod:`repro.gpusim` — the cycle-approximate GPU simulator.
* :mod:`repro.spgemm` — spGEMM baselines and library comparators.
* :mod:`repro.core` — the Block Reorganizer optimization pass (the paper's
  contribution).
* :mod:`repro.metrics` — LBI, GFLOPS and profiling metrics.
* :mod:`repro.bench` — the experiment harness that regenerates every table and
  figure of the paper.
"""

__version__ = "1.0.0"
