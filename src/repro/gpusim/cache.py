"""Cache and memory-system model.

Splits each block's traffic between L1, L2 and DRAM from its working set and
residency, and derives the effective memory latency the latency-hiding model
sees.  This is where two of the paper's mechanisms live:

* **B-Splitting's cache dividend** (Section VI-A2): split dominator blocks
  have working sets a factor-N smaller, so their repeat reads start fitting
  in cache and DRAM traffic drops — which is why splitting keeps paying off
  even past ``#SMs``-way splits.
* **B-Limiting's contention relief** (Section VI-A4): residency times
  working-set gives the cache pressure; limiting residency lifts the L2 hit
  fraction for heavy merge rows at the cost of fewer parallel contexts.

Hit fractions follow a capacity argument evaluated per block, assuming a
block's cache neighbours look like itself (exact for the homogeneous phases
the Block Reorganizer launches; a documented mean-field approximation for the
baselines' mixed phases).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.block import BlockArray
from repro.gpusim.config import GPUConfig
from repro.gpusim.costs import CostModel

__all__ = ["MemoryModel", "build_memory_model"]


@dataclass(frozen=True)
class MemoryModel:
    """Per-block steady-state memory behaviour (all arrays, one per block).

    Attributes:
        l1_hit: fraction of *reuse* traffic served by per-SM L1.
        l2_hit: fraction of post-L1 reuse traffic served by chip L2.
        effective_latency: blended access latency in cycles.
        dram_bytes: DRAM traffic (unique + reuse misses + writes), floored by
            the sector-granularity transaction volume.
        l2_read_bytes: read bytes passing through L2.
        l2_write_bytes: write bytes passing through L2.
    """

    l1_hit: np.ndarray
    l2_hit: np.ndarray
    effective_latency: np.ndarray
    dram_bytes: np.ndarray
    l2_read_bytes: np.ndarray
    l2_write_bytes: np.ndarray

    def mean_l1_hit(self) -> float:
        return float(np.mean(self.l1_hit)) if len(self.l1_hit) else 0.0

    def mean_l2_hit(self) -> float:
        return float(np.mean(self.l2_hit)) if len(self.l2_hit) else 0.0


def build_memory_model(
    config: GPUConfig,
    costs: CostModel,
    blocks: BlockArray,
    residency: np.ndarray,
) -> MemoryModel:
    """Derive the per-block memory model for one phase.

    Args:
        config: target GPU.
        costs: cost model (latencies).
        blocks: the phase's blocks.
        residency: per-block co-resident block count on an SM.
    """
    n = len(blocks)
    if n == 0:
        zero = np.zeros(0, dtype=np.float64)
        return MemoryModel(zero, zero, zero, zero, zero, zero)

    ws = np.maximum(blocks.working_set, 1.0)
    per_sm_ws = residency * ws
    l1_hit = np.clip(config.l1_size / per_sm_ws, 0.0, 1.0)
    chip_ws = config.n_sms * per_sm_ws
    l2_hit = np.clip(config.l2_size / chip_ws, 0.0, 1.0)

    reuse_after_l1 = blocks.reuse_bytes * (1.0 - l1_hit)
    reuse_from_dram = reuse_after_l1 * (1.0 - l2_hit)

    # Sector-granularity floor: a transaction moves at least sector_bytes even
    # when only a few lanes are effective (uncoalesced / underloaded warps).
    # Only the DRAM-bound share of the transactions inflates DRAM traffic —
    # accesses served by L1/L2 never reach the memory controller, which is
    # precisely how B-Limiting's cache relief converts into DRAM relief.
    raw_dram = blocks.unique_bytes + blocks.write_bytes + reuse_from_dram
    total_bytes = np.maximum(
        blocks.unique_bytes + blocks.reuse_bytes + blocks.write_bytes, 1.0
    )
    dram_fraction = np.clip(raw_dram / total_bytes, 0.0, 1.0)
    transaction_floor = blocks.transactions * config.sector_bytes * dram_fraction
    dram_bytes = np.maximum(raw_dram, transaction_floor)

    l2_read_bytes = blocks.unique_bytes + reuse_after_l1
    l2_write_bytes = blocks.write_bytes.astype(np.float64)
    # L2 sees every transaction that got past L1.
    l1_passed = np.clip((blocks.unique_bytes + reuse_after_l1 + blocks.write_bytes)
                        / total_bytes, 0.0, 1.0)
    l2_floor = blocks.transactions * config.sector_bytes * l1_passed
    l2_read_bytes = np.maximum(l2_read_bytes, l2_floor - l2_write_bytes)

    # Latency mix: unique traffic always pays DRAM latency; reuse pays L2 (or
    # nothing on an L1 hit).  Weight per block by its byte mix.
    reads = blocks.unique_bytes + blocks.reuse_bytes
    with np.errstate(invalid="ignore", divide="ignore"):
        unique_frac = np.where(reads > 0, blocks.unique_bytes / np.maximum(reads, 1.0), 1.0)
    reuse_frac = 1.0 - unique_frac
    reuse_latency = (1.0 - l1_hit) * (
        l2_hit * costs.l2_latency + (1.0 - l2_hit) * costs.mem_latency
    )
    effective_latency = unique_frac * costs.mem_latency + reuse_frac * reuse_latency

    return MemoryModel(
        l1_hit=l1_hit,
        l2_hit=l2_hit,
        effective_latency=effective_latency,
        dram_bytes=dram_bytes,
        l2_read_bytes=l2_read_bytes,
        l2_write_bytes=l2_write_bytes,
    )
