"""Calibration constants of the cycle-approximate cost model.

Every tunable of the simulator lives in this one dataclass so that (a) the
provenance of each constant is documented in a single place, (b) the ablation
benches can sweep them to show conclusions are not knife-edge, and (c) tests
can construct degenerate models (e.g. zero memory latency) to isolate
mechanisms.

Values are loosely derived from public microbenchmark literature for Pascal/
Volta GPUs (global-memory latency ~400-600 cycles, a few instructions of
index arithmetic per FMA in sparse kernels, ~1e3-cycle block dispatch cost);
they are calibrated — see EXPERIMENTS.md — so the row-product baseline lands
in the paper's 1-16 GFLOPS band on the stand-in datasets.  The reproduction's
claims rest on *relative* behaviour, which is robust to these constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs used to turn a thread-block descriptor into a duration."""

    instr_per_product: float = 6.0
    """Issued warp-instructions per intermediate product in expansion kernels
    (multiply, index load, address arithmetic, store)."""

    instr_per_merge_elem: float = 6.0
    """Instructions per intermediate element in the matrix-form (outer-product)
    dense-accumulator merge — includes the extra column address indexing the
    paper blames for slow full-matrix accumulation."""

    instr_per_merge_elem_row: float = 4.0
    """Instructions per element in row-form (row-product) merge, which skips
    the extra column indexing."""

    issue_rate: float = 1.0
    """Warp-instructions issued per cycle per warp scheduler."""

    mem_latency: float = 650.0
    """DRAM round-trip latency in cycles."""

    l2_latency: float = 130.0
    """L2 hit latency in cycles."""

    mem_ops_per_product: float = 1.0
    """Long-latency memory operations per product per warp (coalesced)."""

    tb_launch_cycles: float = 450.0
    """Fixed cost to dispatch a thread block onto an SM (driver + CTA setup).
    This is the overhead B-Gathering amortises across micro-blocks."""

    warp_setup_cycles: float = 110.0
    """Per-allocated-warp context setup within a block launch.  Fixed-size
    blocks pay for all eight warps even when one is effective — part of the
    fixed-block-size waste B-Gathering's compaction removes."""

    atomic_conflict_cycles: float = 12.0
    """Serialisation penalty per colliding atomic update in the merge."""

    bytes_per_entry: float = 12.0
    """Bytes moved per sparse entry (4-byte index + 8-byte value)."""

    merge_matrix_sectors_per_elem: float = 0.34
    """DRAM sectors per intermediate element for the matrix-form (outer
    product) dense-accumulator merge: scattered atomics resolve in L2, but
    line fills and write-backs leak to DRAM."""

    merge_row_sectors_per_elem: float = 0.30
    """DRAM sectors per element for the row-form merge (sequential buffers,
    the cheaper accumulation the row-product scheme enjoys)."""

    row_exp_instr_scale: float = 2.0
    """Iteration-cost multiplier for row-product expansion relative to the
    outer product (scalar Gustavson pays extra index arithmetic per product
    that the outer product's broadcast layout avoids)."""

    row_exp_bytes_per_op: float = 22.0
    """Effective DRAM bytes per product for row-product expansion: 32 threads
    streaming 32 different b-rows interleave poorly, roughly doubling the
    12-byte payload."""

    kernel_launch_cycles: float = 8000.0
    """Host-side cost per kernel launch, charged once per phase."""

    host_cycles_per_classified_pair: float = 1.5
    """Host preprocessing: workload classification cost per column/row pair."""

    host_cycles_per_split_entry: float = 3.0
    """Host preprocessing: B-Splitting pointer/mapper construction per copied
    dominator entry (runs on the host CPU, per the paper's Section V)."""

    gpu_precalc_ops_per_entry: float = 2.0
    """Device-side precalculation (block-wise/row-wise nnz) ops per entry."""

    def __post_init__(self) -> None:
        for name in (
            "instr_per_product",
            "issue_rate",
            "mem_latency",
            "tb_launch_cycles",
            "bytes_per_entry",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"cost {name} must be non-negative")

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with some constants replaced (ablation benches)."""
        return replace(self, **kwargs)


DEFAULT_COSTS = CostModel()
