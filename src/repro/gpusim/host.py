"""Host-side (CPU) preprocessing cost model.

The Block Reorganizer runs its preprocessing partly on the device
(precalculation of block-wise and row-wise nnz) and partly on the host
(B-Splitting's pointer expansion and mapper construction) — Section V of the
paper.  These costs are charged to every result, exactly as the paper's
measurements "include the overhead ... the precalculation, workload
classification and preprocessing for block-splitting".
"""

from __future__ import annotations

from repro.gpusim.config import CPUConfig, XEON_E5_2640V4
from repro.gpusim.costs import CostModel

__all__ = ["host_classification_seconds", "host_split_seconds", "device_precalc_cycles"]


def host_classification_seconds(
    costs: CostModel, n_pairs: int, cpu: CPUConfig = XEON_E5_2640V4
) -> float:
    """Workload-classification time: one pass over all column/row pairs."""
    return costs.host_cycles_per_classified_pair * n_pairs / cpu.clock_hz


def host_split_seconds(
    costs: CostModel, split_entries: int, cpu: CPUConfig = XEON_E5_2640V4
) -> float:
    """B-Splitting time: copying dominator vectors into A'/B' and building
    the mapper array, proportional to the entries copied."""
    return costs.host_cycles_per_split_entry * split_entries / cpu.clock_hz


def device_precalc_cycles(
    costs: CostModel, nnz_a: int, nnz_b: int, extra_elements: int = 0
) -> float:
    """Device-side preprocessing: block-wise/row-wise nnz + classification.

    Segmented reductions and binning scans over the operands (plus
    ``extra_elements`` for per-pair classification), executed at the chip's
    aggregate issue rate (~a thousand simple ops per cycle).
    """
    total = nnz_a + nnz_b + extra_elements
    return costs.gpu_precalc_ops_per_entry * total / 960.0
