"""Kernel traces: the interface between spGEMM algorithms and the simulator.

An algorithm's performance plane emits a :class:`KernelTrace` — an ordered
list of :class:`KernelPhase` (kernel launches), each carrying the thread
blocks it dispatches, plus any host-side preprocessing time.  The simulator
executes phases sequentially, as the GPU would execute dependent kernel
launches from one stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.gpusim.block import BlockArray

__all__ = ["KernelPhase", "KernelTrace", "PHASE_EXPANSION", "PHASE_MERGE", "PHASE_SETUP"]

PHASE_EXPANSION = "expansion"
PHASE_MERGE = "merge"
PHASE_SETUP = "setup"


@dataclass
class KernelPhase:
    """One kernel launch: a name, a stage tag, and its thread blocks.

    Attributes:
        name: human-readable label (e.g. ``"expansion-dominator"``).
        stage: coarse bucket — :data:`PHASE_EXPANSION`, :data:`PHASE_MERGE` or
            :data:`PHASE_SETUP` — used when reporting the paper's
            expansion/merge time split (Figure 3c).
        blocks: the thread blocks this launch dispatches, in launch order.
        instr_override: per-warp-iteration instruction cost for this phase,
            overriding the stage default from the cost model (e.g. row-form
            merges skip the column indexing that matrix-form merges pay).
    """

    name: str
    stage: str
    blocks: BlockArray
    instr_override: float | None = None

    def __post_init__(self) -> None:
        if self.stage not in (PHASE_EXPANSION, PHASE_MERGE, PHASE_SETUP):
            raise SimulationError(f"unknown phase stage {self.stage!r}")


@dataclass
class KernelTrace:
    """A full spGEMM execution: ordered phases + host preprocessing.

    Attributes:
        algorithm: name of the producing algorithm.
        phases: kernel launches in dependency order.
        host_seconds: host-side preprocessing time (classification and
            B-Splitting run on the CPU; the paper includes this overhead in
            all reported results except device transfer time).
        device_setup_cycles: device-side preprocessing cost in GPU cycles
            (precalculation of block-wise/row-wise nnz).
        meta: free-form diagnostics from the algorithm (e.g. dominator count)
            surfaced in bench output.
    """

    algorithm: str
    phases: list[KernelPhase] = field(default_factory=list)
    host_seconds: float = 0.0
    device_setup_cycles: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n_blocks(self) -> int:
        return sum(len(p.blocks) for p in self.phases)

    def total_ops(self) -> int:
        """Useful products across all expansion phases (for GFLOPS)."""
        return self.stage_ops(PHASE_EXPANSION)

    def stage_ops(self, stage: str) -> int:
        """Block-accounted ops across every phase tagged ``stage``."""
        return sum(p.blocks.total_ops for p in self.phases if p.stage == stage)
