"""Cycle-approximate GPU simulator: configs, blocks, traces, scheduling."""

from repro.gpusim.block import BlockArray, BlockArrayBuilder, concatenate
from repro.gpusim.cache import MemoryModel, build_memory_model
from repro.gpusim.config import (
    ALL_GPUS,
    CPUConfig,
    GPUConfig,
    RTX_2080TI,
    SYSTEM_1,
    SYSTEM_2,
    SYSTEM_3,
    TESLA_V100,
    TITAN_XP,
    XEON_E5_2640V4,
    XEON_E5_2698V4,
    XEON_GOLD_5115,
)
from repro.gpusim.costs import DEFAULT_COSTS, CostModel
from repro.gpusim.host import (
    device_precalc_cycles,
    host_classification_seconds,
    host_split_seconds,
)
from repro.gpusim.latency import exposed_latency
from repro.gpusim.occupancy import phase_residency, resident_blocks_per_sm
from repro.gpusim.scheduler import ScheduleResult, list_schedule
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats, PhaseStats
from repro.gpusim.trace import (
    KernelPhase,
    KernelTrace,
    PHASE_EXPANSION,
    PHASE_MERGE,
    PHASE_SETUP,
)

__all__ = [
    "BlockArray",
    "BlockArrayBuilder",
    "concatenate",
    "MemoryModel",
    "build_memory_model",
    "GPUConfig",
    "CPUConfig",
    "TITAN_XP",
    "TESLA_V100",
    "RTX_2080TI",
    "XEON_E5_2640V4",
    "XEON_E5_2698V4",
    "XEON_GOLD_5115",
    "SYSTEM_1",
    "SYSTEM_2",
    "SYSTEM_3",
    "ALL_GPUS",
    "CostModel",
    "DEFAULT_COSTS",
    "device_precalc_cycles",
    "host_classification_seconds",
    "host_split_seconds",
    "exposed_latency",
    "phase_residency",
    "resident_blocks_per_sm",
    "ScheduleResult",
    "list_schedule",
    "GPUSimulator",
    "KernelStats",
    "PhaseStats",
    "KernelPhase",
    "KernelTrace",
    "PHASE_EXPANSION",
    "PHASE_MERGE",
    "PHASE_SETUP",
]
