"""Occupancy: how many thread blocks an SM can host at once.

On real hardware the per-SM resident-block count is gated by threads, shared
memory, registers and a hard block cap (Figure 1b of the paper).  The
simulator uses a mean-field approximation per phase: residency is computed
from the *average* footprint of the phase's blocks.  This is exact for
homogeneous phases (almost all of them) and a documented approximation for
mixed ones; the Block Reorganizer's own phases are homogeneous by
construction because it bins blocks before launching.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.block import BlockArray
from repro.gpusim.config import GPUConfig

__all__ = ["resident_blocks_per_sm", "phase_residency"]


def resident_blocks_per_sm(
    config: GPUConfig, threads_per_block: float, smem_per_block: float
) -> int:
    """Max co-resident blocks on one SM for a given footprint.

    Mirrors the CUDA occupancy rules the paper manipulates: the minimum of the
    hard block cap, the thread-slot limit and the shared-memory limit, with a
    floor of one (a block larger than the SM still runs, serially).
    """
    if threads_per_block <= 0:
        raise SimulationError("threads_per_block must be positive")
    by_cap = config.max_tbs_per_sm
    by_threads = int(config.max_threads_per_sm // max(threads_per_block, 1.0))
    by_smem = (
        int(config.smem_per_sm // smem_per_block) if smem_per_block > 0 else config.max_tbs_per_sm
    )
    return max(1, min(by_cap, by_threads, by_smem))


def phase_residency(config: GPUConfig, blocks: BlockArray) -> int:
    """Mean-field residency for a whole phase (see module docstring)."""
    if len(blocks) == 0:
        return 1
    avg_threads = float(np.mean(blocks.threads))
    avg_smem = float(np.mean(blocks.smem_bytes))
    return resident_blocks_per_sm(config, avg_threads, avg_smem)
