"""The GPU simulator: turns kernel traces into timing and profiling counters.

For each phase the simulator derives a per-block execution context
(residency from the block's own footprint, effective-warp pool, cache hit
fractions), computes a per-block duration from a three-way roofline —
issue-bound, latency-bound, bandwidth-bound — and list-schedules the blocks
onto SM residency slots.  See DESIGN.md for why this level of abstraction
reproduces the paper's effects.

Duration model for block *i* (``R_i`` co-resident blocks from its footprint,
``we_i`` *effective* warps, instruction cost ``instr`` per warp-iteration):

* ``compute_i = iters_i · instr · oversub_i / issue_rate`` with
  ``oversub_i = max(1, R_i · we_i / schedulers)`` — lock-step warps pay full
  issue cost regardless of how many lanes are effective, so underloaded
  blocks waste issue bandwidth (B-Gathering's first target).
* ``latency_i = iters_i · mem_ops · exposed(L_eff_i, gap, R_i · we_i)`` —
  shallow *effective*-warp pools leave memory latency unhidden
  (B-Gathering's second target; allocated-but-empty warps issue nothing and
  cannot hide anything).
* ``bandwidth_i = dram_i / (SM_dram_bw / R_i) + l2_i / (SM_l2_bw / R_i)`` —
  a single SM can only pull ``sm_dram_fraction`` of chip bandwidth, which is
  why concentrating traffic in one overloaded block starves it
  (B-Splitting's target); the chip-wide cap is enforced as a phase-level
  floor.  DRAM traffic is sector-floored by transaction count, so
  underloaded warps waste bandwidth too.
* ``duration_i = tb_launch + max(compute_i, latency_i, bandwidth_i) +
  atomic_serialisation_i`` (colliding atomic merges serialise —
  B-Limiting's phase).

All durations are computed before scheduling (steady-state approximation: no
retroactive slowdown from later arrivals), keeping the simulation
deterministic and O(n log n) in the block count.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.gpusim.block import BlockArray
from repro.gpusim.cache import build_memory_model
from repro.gpusim.config import GPUConfig
from repro.gpusim.costs import DEFAULT_COSTS, CostModel
from repro.gpusim.scheduler import list_schedule
from repro.gpusim.stats import KernelStats, PhaseStats
from repro.gpusim.trace import KernelTrace

__all__ = ["GPUSimulator"]

_INSTR_BY_STAGE = {
    "expansion": "instr_per_product",
    "merge": "instr_per_merge_elem",
    "setup": "instr_per_product",
}


class GPUSimulator:
    """Cycle-approximate simulator for one GPU configuration.

    Example:
        >>> sim = GPUSimulator(TITAN_XP)
        >>> stats = sim.run(trace)
        >>> stats.total_seconds, stats.gflops, stats.lbi("expansion")
    """

    def __init__(self, config: GPUConfig, costs: CostModel = DEFAULT_COSTS) -> None:
        self.config = config
        self.costs = costs

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, trace: KernelTrace) -> KernelStats:
        """Execute a trace: phases run back-to-back on an idle GPU."""
        stats = KernelStats(
            algorithm=trace.algorithm,
            config=self.config,
            host_seconds=trace.host_seconds,
            device_setup_cycles=trace.device_setup_cycles,
            meta=dict(trace.meta),
        )
        with obs.span(f"gpusim.run[{trace.algorithm}]", "simulate") as sp:
            for phase in trace.phases:
                with obs.span(f"gpusim.phase[{phase.name}]", "simulate") as psp:
                    stats.phases.append(
                        self._run_phase(
                            phase.name, phase.stage, phase.blocks, phase.instr_override
                        )
                    )
                    psp.add(
                        blocks=len(phase.blocks), ops=int(phase.blocks.total_ops)
                    )
            sp.add(phases=len(trace.phases), blocks=int(trace.n_blocks))
        return stats

    def block_durations(
        self, stage: str, blocks: BlockArray, instr_override: float | None = None
    ) -> np.ndarray:
        """Per-block durations for one phase (exposed for tests/benches)."""
        durations, _, _ = self._durations(stage, blocks, instr_override)
        return durations

    def residency(self, blocks: BlockArray) -> np.ndarray:
        """Per-block SM residency implied by each block's resource footprint."""
        cfg = self.config
        threads = np.maximum(blocks.threads, 1)
        by_threads = cfg.max_threads_per_sm // threads
        smem = np.maximum(blocks.smem_bytes, 1)
        by_smem = cfg.smem_per_sm // smem
        res = np.minimum(cfg.max_tbs_per_sm, np.minimum(by_threads, by_smem))
        return np.maximum(res, 1).astype(np.int64)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _durations(self, stage: str, blocks: BlockArray, instr_override: float | None = None):
        cfg, costs = self.config, self.costs
        n = len(blocks)
        if n == 0:
            return np.zeros(0, dtype=np.float64), None, None

        instr_name = _INSTR_BY_STAGE.get(stage)
        if instr_name is None:
            raise SimulationError(f"unknown stage {stage!r}")
        instr = getattr(costs, instr_name) if instr_override is None else instr_override

        # Footprint residency, clamped by block scarcity: a phase with fewer
        # blocks than SM slots leaves SMs under-occupied.
        residency = np.minimum(
            self.residency(blocks), max(1, -(-n // cfg.n_sms))
        ).astype(np.float64)
        memory = build_memory_model(cfg, costs, blocks, residency)

        eff_warps = np.maximum((blocks.effective_threads + 31) // 32, 1).astype(np.float64)
        alloc_warps = blocks.warps.astype(np.float64)
        warp_pool = residency * eff_warps
        # Issue pressure counts *allocated* warps: guard-style kernels march
        # empty warps through the loop in lock-step (predicated off), so they
        # occupy scheduler slots without doing work — the fixed-block-size
        # waste B-Gathering's compaction removes.
        oversub = np.maximum(1.0, residency * alloc_warps / cfg.warp_schedulers_per_sm)

        iters = np.maximum(blocks.iters, 0.0)
        compute = iters * instr * oversub / costs.issue_rate

        # Classical interleaving model: W warps share the memory pipeline, so
        # each sees (latency + gap) / W per access, minus its own issue work.
        # A warp pays one dependent latency round per *iteration* — the
        # sectors an iteration touches are issued concurrently (intra-warp
        # memory-level parallelism), so they overlap within the round.
        gap = instr / costs.issue_rate
        exposed = np.maximum(
            0.0,
            (memory.effective_latency + gap) / np.maximum(warp_pool, 1.0) - gap,
        )
        latency = iters * costs.mem_ops_per_product * exposed

        # A block's share of its SM's memory bandwidth scales with its
        # memory-level parallelism — the concurrent transaction streams it
        # keeps in flight per iteration — against the SM's saturation point,
        # or against the total resident streams when the SM is oversubscribed.
        # A dominator block (or a fully-packed gathered block, whose 32 lanes
        # stream many partitions at once) therefore out-pulls idle-ish
        # micro-block neighbours instead of being starved to 1/R of the SM,
        # while B-Limiting's residency cuts genuinely relieve oversubscribed
        # merge phases.
        streams = np.clip(blocks.transactions / np.maximum(iters, 1.0), 1.0, 64.0)
        mean_streams = float(np.mean(streams))
        resident_streams = streams + (residency - 1.0) * mean_streams
        share = streams / np.maximum(cfg.sm_saturation_warps, resident_streams)
        share = np.minimum(share, 1.0)
        sm_dram_bpc = cfg.bytes_per_cycle_dram() * cfg.sm_dram_fraction
        sm_l2_bpc = cfg.bytes_per_cycle_l2() * cfg.sm_l2_fraction
        bandwidth = memory.dram_bytes / (sm_dram_bpc * share) + (
            memory.l2_read_bytes + memory.l2_write_bytes
        ) / (sm_l2_bpc * share)

        atomic = blocks.collisions * costs.atomic_conflict_cycles / 32.0

        launch = costs.tb_launch_cycles + alloc_warps * costs.warp_setup_cycles
        durations = launch + np.maximum(np.maximum(compute, latency), bandwidth) + atomic
        return durations, residency, memory

    def _run_phase(
        self,
        name: str,
        stage: str,
        blocks: BlockArray,
        instr_override: float | None = None,
    ) -> PhaseStats:
        cfg, costs = self.config, self.costs
        n = len(blocks)
        if n == 0:
            return PhaseStats(
                name=name,
                stage=stage,
                n_blocks=0,
                makespan_cycles=costs.kernel_launch_cycles,
                sm_busy_cycles=np.zeros(cfg.n_sms),
                sm_finish_cycles=np.zeros(cfg.n_sms),
                total_ops=0,
                dram_bytes=0.0,
                l2_read_bytes=0.0,
                l2_write_bytes=0.0,
                sync_stall_cycles=0.0,
                busy_cycles=0.0,
                residency=1,
                l2_hit=0.0,
                l1_hit=0.0,
            )

        durations, residency, memory = self._durations(stage, blocks, instr_override)

        # Slot count for scheduling: the count-weighted typical residency.
        slot_residency = int(max(1, round(float(np.mean(residency)))))
        schedule = list_schedule(durations, cfg.n_sms, slot_residency)

        # Chip-level bandwidth floor: no schedule can finish faster than the
        # memory system can move the phase's total traffic.
        total_dram = float(memory.dram_bytes.sum())
        total_l2 = float(memory.l2_read_bytes.sum() + memory.l2_write_bytes.sum())
        floor = max(total_dram / cfg.bytes_per_cycle_dram(), total_l2 / cfg.bytes_per_cycle_l2())
        makespan = max(schedule.makespan, floor)

        busy_cycles = float(durations.sum())
        stall = float(np.sum(durations * (1.0 - blocks.lane_utilization())))

        return PhaseStats(
            name=name,
            stage=stage,
            n_blocks=n,
            makespan_cycles=makespan + costs.kernel_launch_cycles,
            sm_busy_cycles=schedule.sm_busy,
            sm_finish_cycles=schedule.sm_finish,
            total_ops=blocks.total_ops,
            dram_bytes=total_dram,
            l2_read_bytes=float(memory.l2_read_bytes.sum()),
            l2_write_bytes=float(memory.l2_write_bytes.sum()),
            sync_stall_cycles=stall,
            busy_cycles=busy_cycles,
            residency=slot_residency,
            l2_hit=memory.mean_l2_hit(),
            l1_hit=memory.mean_l1_hit(),
        )
