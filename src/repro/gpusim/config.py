"""Hardware configurations (Table I of the paper).

Three GPU generations — Pascal (Titan Xp), Volta (Tesla V100) and Turing
(RTX 2080 Ti) — plus the host CPUs used for the MKL comparator and for
Block Reorganizer's host-side preprocessing.  Published figures (SM counts,
clocks, bandwidths, cache sizes) come from the vendor datasheets the paper
cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "GPUConfig",
    "CPUConfig",
    "TITAN_XP",
    "TESLA_V100",
    "RTX_2080TI",
    "XEON_E5_2640V4",
    "XEON_E5_2698V4",
    "XEON_GOLD_5115",
    "SYSTEM_1",
    "SYSTEM_2",
    "SYSTEM_3",
    "ALL_GPUS",
]


@dataclass(frozen=True)
class GPUConfig:
    """Architectural parameters of a simulated GPU.

    The simulator only depends on quantities that gate thread-block
    scheduling and memory behaviour; shader-core details (FP32 lane counts
    etc.) are folded into the cost model's issue rates.
    """

    name: str
    n_sms: int
    clock_mhz: float
    compute_capability: str
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_tbs_per_sm: int = 32
    warp_schedulers_per_sm: int = 4
    smem_per_sm: int = 96 * 1024
    """Shared memory per SM in bytes — the resource B-Limiting spends."""
    l1_size: int = 48 * 1024
    l2_size: int = 3 * 1024 * 1024
    dram_bandwidth_gbs: float = 547.0
    l2_bandwidth_gbs: float = 1200.0
    sm_dram_fraction: float = 0.15
    """Max share of chip DRAM bandwidth one SM can pull (LSU/L1 path limit).
    This is why spreading a memory-heavy workload over more SMs — exactly what
    B-Splitting does — raises achieved bandwidth."""
    sm_l2_fraction: float = 0.30
    """Max share of chip L2 bandwidth one SM can pull."""
    sm_saturation_warps: int = 16
    """Effective warps needed to saturate one SM's memory path; a block's
    bandwidth share scales with its warps against this (or against the total
    resident warps when the SM is oversubscribed)."""
    sector_bytes: int = 32
    """Minimum DRAM transaction size; partially-filled warps still move whole
    sectors, so underloaded blocks waste bandwidth."""
    dram_efficiency: float = 0.70
    """Achievable fraction of peak DRAM bandwidth for sparse-kernel access
    patterns (scattered sector-granularity traffic never reaches peak)."""
    l2_efficiency: float = 0.70
    """Achievable fraction of peak L2 bandwidth."""

    def __post_init__(self) -> None:
        if self.n_sms <= 0 or self.clock_mhz <= 0:
            raise ConfigurationError(f"invalid GPU config {self.name!r}")

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    def bytes_per_cycle_dram(self) -> float:
        """Achievable chip-wide DRAM bytes per GPU clock cycle."""
        return self.dram_bandwidth_gbs * 1e9 * self.dram_efficiency / self.clock_hz

    def bytes_per_cycle_l2(self) -> float:
        """Achievable chip-wide L2 bytes per GPU clock cycle."""
        return self.l2_bandwidth_gbs * 1e9 * self.l2_efficiency / self.clock_hz


@dataclass(frozen=True)
class CPUConfig:
    """Host CPU parameters (MKL comparator + host-side preprocessing)."""

    name: str
    cores: int
    threads: int
    clock_ghz: float
    dram_bandwidth_gbs: float

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9


TITAN_XP = GPUConfig(
    name="TITAN Xp",
    n_sms=30,
    clock_mhz=1582.0,
    compute_capability="6.1",
    smem_per_sm=96 * 1024,
    l1_size=48 * 1024,
    l2_size=3 * 1024 * 1024,
    dram_bandwidth_gbs=547.0,
    l2_bandwidth_gbs=1100.0,
)

TESLA_V100 = GPUConfig(
    name="Tesla V100",
    n_sms=80,
    clock_mhz=1380.0,
    compute_capability="7.0",
    smem_per_sm=96 * 1024,
    l1_size=128 * 1024,
    l2_size=6 * 1024 * 1024,
    dram_bandwidth_gbs=900.0,
    l2_bandwidth_gbs=2100.0,
)

RTX_2080TI = GPUConfig(
    name="RTX 2080 Ti",
    n_sms=68,
    clock_mhz=1545.0,
    compute_capability="7.5",
    smem_per_sm=64 * 1024,
    l1_size=64 * 1024,
    l2_size=int(5.5 * 1024 * 1024),
    dram_bandwidth_gbs=616.0,
    l2_bandwidth_gbs=1800.0,
)

XEON_E5_2640V4 = CPUConfig("Xeon E5-2640 v4", cores=10, threads=20, clock_ghz=3.4, dram_bandwidth_gbs=68.0)
XEON_E5_2698V4 = CPUConfig("Xeon E5-2698 v4", cores=20, threads=40, clock_ghz=3.6, dram_bandwidth_gbs=77.0)
XEON_GOLD_5115 = CPUConfig("Xeon Gold 5115", cores=10, threads=20, clock_ghz=3.4, dram_bandwidth_gbs=115.0)

SYSTEM_1 = (XEON_E5_2640V4, TITAN_XP)
SYSTEM_2 = (XEON_E5_2698V4, TESLA_V100)
SYSTEM_3 = (XEON_GOLD_5115, RTX_2080TI)

ALL_GPUS = (TITAN_XP, TESLA_V100, RTX_2080TI)
