"""Simulation result containers: the simulator's answer to ``nvprof``.

:class:`PhaseStats` corresponds to profiling one kernel launch;
:class:`KernelStats` aggregates a whole spGEMM run.  Field names follow the
counters the paper plots: per-SM cycles (Fig 3a), sync-stall percentage
(Fig 13), L2 read/write throughput (Figs 12 and 14), expansion/merge split
(Fig 3c), GFLOPS (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.config import GPUConfig

__all__ = ["PhaseStats", "KernelStats"]


@dataclass
class PhaseStats:
    """Profile of one kernel phase."""

    name: str
    stage: str
    n_blocks: int
    makespan_cycles: float
    sm_busy_cycles: np.ndarray
    sm_finish_cycles: np.ndarray
    total_ops: int
    dram_bytes: float
    l2_read_bytes: float
    l2_write_bytes: float
    sync_stall_cycles: float
    busy_cycles: float
    residency: int
    l2_hit: float
    l1_hit: float

    @property
    def lbi(self) -> float:
        """Load Balancing Index (Equation 3): mean SM time / max SM time."""
        peak = float(self.sm_busy_cycles.max()) if len(self.sm_busy_cycles) else 0.0
        if peak <= 0:
            return 1.0
        return float(self.sm_busy_cycles.mean() / peak)

    @property
    def sync_stall_pct(self) -> float:
        """Share of SM-cycles lost to barrier/lock-step idling, in percent."""
        if self.busy_cycles <= 0:
            return 0.0
        return 100.0 * self.sync_stall_cycles / self.busy_cycles

    def seconds(self, config: GPUConfig) -> float:
        return self.makespan_cycles / config.clock_hz

    def l2_read_gbs(self, config: GPUConfig) -> float:
        """L2 read throughput in GB/s over this phase."""
        t = self.seconds(config)
        return self.l2_read_bytes / t / 1e9 if t > 0 else 0.0

    def l2_write_gbs(self, config: GPUConfig) -> float:
        """L2 write throughput in GB/s over this phase."""
        t = self.seconds(config)
        return self.l2_write_bytes / t / 1e9 if t > 0 else 0.0


@dataclass
class KernelStats:
    """Profile of a complete spGEMM execution on one GPU."""

    algorithm: str
    config: GPUConfig
    phases: list[PhaseStats] = field(default_factory=list)
    host_seconds: float = 0.0
    device_setup_cycles: float = 0.0
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    @property
    def kernel_cycles(self) -> float:
        """GPU cycles across all phases plus device-side setup."""
        return sum(p.makespan_cycles for p in self.phases) + self.device_setup_cycles

    @property
    def kernel_seconds(self) -> float:
        return self.kernel_cycles / self.config.clock_hz

    @property
    def total_seconds(self) -> float:
        """End-to-end time including host preprocessing (the paper's metric:
        everything but the host-device transfer)."""
        return self.kernel_seconds + self.host_seconds

    def stage_cycles(self, stage: str) -> float:
        """Total cycles spent in phases of the given stage."""
        return sum(p.makespan_cycles for p in self.phases if p.stage == stage)

    def stage_seconds(self, stage: str) -> float:
        return self.stage_cycles(stage) / self.config.clock_hz

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def total_ops(self) -> int:
        return sum(p.total_ops for p in self.phases if p.stage == "expansion")

    @property
    def gflops(self) -> float:
        """2 FLOPs (multiply + add) per intermediate product over total time."""
        t = self.total_seconds
        return 2.0 * self.total_ops / t / 1e9 if t > 0 else 0.0

    def sm_busy_cycles(self, stage: str | None = None) -> np.ndarray:
        """Per-SM busy cycles, summed across (optionally stage-filtered) phases."""
        out = np.zeros(self.config.n_sms, dtype=np.float64)
        for p in self.phases:
            if stage is None or p.stage == stage:
                out += p.sm_busy_cycles
        return out

    def lbi(self, stage: str | None = None) -> float:
        """Load Balancing Index over all SMs (Equation 3)."""
        busy = self.sm_busy_cycles(stage)
        peak = float(busy.max()) if len(busy) else 0.0
        return float(busy.mean() / peak) if peak > 0 else 1.0

    def sm_utilization(self, stage: str | None = None) -> float:
        """Mean SM busy fraction over the (stage-filtered) makespan."""
        span = sum(
            p.makespan_cycles for p in self.phases if stage is None or p.stage == stage
        )
        if span <= 0:
            return 1.0
        busy = self.sm_busy_cycles(stage)
        return float(np.clip(busy.mean() / span, 0.0, 1.0))

    @property
    def sync_stall_pct(self) -> float:
        """Duration-weighted sync-stall share across all phases."""
        busy = sum(p.busy_cycles for p in self.phases)
        stall = sum(p.sync_stall_cycles for p in self.phases)
        return 100.0 * stall / busy if busy > 0 else 0.0

    def l2_read_gbs(self, stage: str | None = None) -> float:
        """L2 read throughput over the (stage-filtered) execution."""
        t = sum(p.seconds(self.config) for p in self.phases if stage is None or p.stage == stage)
        b = sum(p.l2_read_bytes for p in self.phases if stage is None or p.stage == stage)
        return b / t / 1e9 if t > 0 else 0.0

    def l2_write_gbs(self, stage: str | None = None) -> float:
        """L2 write throughput over the (stage-filtered) execution."""
        t = sum(p.seconds(self.config) for p in self.phases if stage is None or p.stage == stage)
        b = sum(p.l2_write_bytes for p in self.phases if stage is None or p.stage == stage)
        return b / t / 1e9 if t > 0 else 0.0
