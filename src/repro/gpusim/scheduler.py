"""Greedy thread-block list scheduler.

Models the hardware GigaThread engine: blocks are dispatched in launch order,
each to the execution slot (SM residency slot) that frees earliest.  With
``P = n_sms * residency`` symmetric slots this is classic list scheduling,
implemented with a single binary heap so hundreds of thousands of blocks
schedule in well under a second.

The per-SM busy times it returns are the direct analogue of the per-SM
execution times the paper plots in Figure 3(a) and summarises as the Load
Balancing Index (Equation 3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["ScheduleResult", "list_schedule"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one phase.

    Attributes:
        makespan: cycles until the last block completes.
        sm_busy: per-SM busy cycles (sum of durations of blocks it ran).
        sm_finish: per-SM completion time of its last block.
    """

    makespan: float
    sm_busy: np.ndarray
    sm_finish: np.ndarray


def list_schedule(durations: np.ndarray, n_sms: int, residency: int) -> ScheduleResult:
    """Schedule blocks (in order) onto ``n_sms * residency`` slots.

    Args:
        durations: per-block durations in cycles, in launch order.
        n_sms: number of streaming multiprocessors.
        residency: co-resident blocks per SM (occupancy).

    Returns:
        :class:`ScheduleResult` with the makespan and per-SM times.
    """
    if n_sms <= 0 or residency <= 0:
        raise SimulationError("n_sms and residency must be positive")
    durations = np.asarray(durations, dtype=np.float64)
    if np.any(durations < 0):
        raise SimulationError("negative block duration")
    sm_busy = np.zeros(n_sms, dtype=np.float64)
    sm_finish = np.zeros(n_sms, dtype=np.float64)
    n = len(durations)
    if n == 0:
        return ScheduleResult(0.0, sm_busy, sm_finish)

    n_slots = n_sms * residency
    if n <= n_slots:
        # Every block gets its own slot; round-robin across SMs.
        sm_ids = np.arange(n) % n_sms
        np.add.at(sm_busy, sm_ids, durations)
        np.maximum.at(sm_finish, sm_ids, durations)
        return ScheduleResult(float(durations.max()), sm_busy, sm_finish)

    # Heap of (free_time, slot_id); slot s lives on SM s % n_sms.
    heap: list[tuple[float, int]] = [(0.0, s) for s in range(n_slots)]
    heapq.heapify(heap)
    durations_list = durations.tolist()  # ~3x faster iteration than ndarray
    for d in durations_list:
        free_at, slot = heapq.heappop(heap)
        finish = free_at + d
        sm = slot % n_sms
        sm_busy[sm] += d
        if finish > sm_finish[sm]:
            sm_finish[sm] = finish
        heapq.heappush(heap, (finish, slot))
    return ScheduleResult(float(sm_finish.max()), sm_busy, sm_finish)
