"""Warp-level latency hiding.

GPUs tolerate memory latency by switching among *eligible* warps: while one
warp waits on a load, the scheduler issues others.  The exposed (unhidden)
part of each access is therefore the raw latency minus the issue work the
other resident warps can supply in the meantime.  Underloaded blocks are slow
precisely because this pool is shallow — the mechanism behind the paper's
B-Gathering (Section IV-C2).
"""

from __future__ import annotations

__all__ = ["exposed_latency"]


def exposed_latency(
    latency_cycles: float,
    issue_gap_cycles: float,
    coresident_warps: float,
) -> float:
    """Unhidden cycles per long-latency access.

    Args:
        latency_cycles: raw access latency (blended L2/DRAM).
        issue_gap_cycles: issue work one warp provides between two of its own
            long-latency accesses.
        coresident_warps: warps resident on the SM (the switching pool).

    Returns:
        ``max(0, (latency + gap) / W - gap)`` — the classical interleaving
        model: W warps round-robin through the memory pipeline, so each sees
        1/W of the serial latency+issue cycle, and the exposed part is what
        its own issue work cannot cover.  W = 1 degenerates to the full
        latency; deep pools approach zero exposure.
    """
    pool = max(1.0, coresident_warps)
    return max(0.0, (latency_cycles + issue_gap_cycles) / pool - issue_gap_cycles)
