"""Thread-block descriptors.

A :class:`BlockArray` is a struct-of-arrays describing every thread block a
kernel phase launches.  Algorithms build these (cheaply, with NumPy) instead
of running CUDA; the simulator turns them into per-block durations and per-SM
timelines.  Keeping blocks columnar instead of as Python objects is what lets
the simulator handle hundreds of thousands of blocks per phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

__all__ = ["BlockArray", "BlockArrayBuilder", "concatenate"]


@dataclass
class BlockArray:
    """Columnar description of ``n`` thread blocks.

    Attributes:
        threads: allocated threads per block (warp-aligned by builders).
        effective_threads: threads that perform useful work (the paper's
            "effective threads"; lock-step execution wastes the rest).
        iters: sequential iterations each resident warp executes — the
            *critical path* of the block.  For thread-balanced (outer-product)
            blocks this equals per-thread work; for imbalanced (row-product)
            blocks it is the maximum over threads.
        ops: useful intermediate products (or merge accumulations) performed.
        unique_bytes: first-touch global traffic (compulsory DRAM misses).
        reuse_bytes: repeat-access traffic, servable by L1/L2 when the block's
            working set fits.
        write_bytes: global store traffic.
        smem_bytes: shared-memory footprint (occupancy lever; B-Limiting
            inflates this deliberately).
        working_set: bytes of source data the block re-references; compared
            against cache capacities to split reuse traffic between L1, L2 and
            DRAM.
        atomics: atomic updates issued (merge phase).
        collisions: atomic updates that hit an already-written accumulator
            slot and serialise.
        transactions: memory transactions issued (warp-iterations times
            accesses); partially-filled warps still move whole sectors, so
            ``max(bytes, transactions * sector)`` is the traffic actually
            charged against bandwidth.  Builders that leave this zero get a
            default of one read and one write transaction per warp-iteration.
    """

    threads: np.ndarray
    effective_threads: np.ndarray
    iters: np.ndarray
    ops: np.ndarray
    unique_bytes: np.ndarray
    reuse_bytes: np.ndarray
    write_bytes: np.ndarray
    smem_bytes: np.ndarray
    working_set: np.ndarray
    atomics: np.ndarray
    collisions: np.ndarray
    transactions: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.threads)
        for name in (
            "effective_threads",
            "iters",
            "ops",
            "unique_bytes",
            "reuse_bytes",
            "write_bytes",
            "smem_bytes",
            "working_set",
            "atomics",
            "collisions",
            "transactions",
        ):
            arr = getattr(self, name)
            if len(arr) != n:
                raise SimulationError(f"BlockArray column {name} has length {len(arr)} != {n}")

    @classmethod
    def empty(cls) -> "BlockArray":
        z = np.zeros(0, dtype=np.float64)
        zi = np.zeros(0, dtype=np.int64)
        return cls(zi, zi, z, zi, z, z, z, zi, z, zi, zi, z)

    def __len__(self) -> int:
        return len(self.threads)

    @property
    def n_blocks(self) -> int:
        return len(self.threads)

    @property
    def warps(self) -> np.ndarray:
        """Allocated warps per block (lock-step scheduling granularity)."""
        return (self.threads + 31) // 32

    @property
    def total_ops(self) -> int:
        return int(self.ops.sum())

    def lane_utilization(self) -> np.ndarray:
        """Useful-lane fraction per block: ops / (warps * 32 * iters).

        1.0 means every lane of every allocated warp does useful work on every
        iteration; underloaded and imbalanced blocks score low.  The
        complement of this, weighted by duration, is the sync-stall ratio the
        paper profiles in Figure 13.
        """
        capacity = self.warps.astype(np.float64) * 32.0 * np.maximum(self.iters, 1.0)
        with np.errstate(invalid="ignore"):
            util = np.where(capacity > 0, self.ops / capacity, 0.0)
        return np.clip(util, 0.0, 1.0)

    def select(self, mask: np.ndarray) -> "BlockArray":
        """Return the sub-array of blocks where ``mask`` is true."""
        return BlockArray(
            self.threads[mask],
            self.effective_threads[mask],
            self.iters[mask],
            self.ops[mask],
            self.unique_bytes[mask],
            self.reuse_bytes[mask],
            self.write_bytes[mask],
            self.smem_bytes[mask],
            self.working_set[mask],
            self.atomics[mask],
            self.collisions[mask],
            self.transactions[mask],
        )


@dataclass
class BlockArrayBuilder:
    """Incremental, vectorised construction of a :class:`BlockArray`.

    Callers append *vectors* of homogeneous blocks (one call per block family),
    which keeps trace construction O(#families) NumPy calls rather than
    O(#blocks) Python calls.
    """

    _parts: list[dict[str, np.ndarray]] = field(default_factory=list)

    def add_blocks(
        self,
        *,
        threads: np.ndarray | int,
        effective_threads: np.ndarray,
        iters: np.ndarray,
        ops: np.ndarray,
        unique_bytes: np.ndarray,
        reuse_bytes: np.ndarray | None = None,
        write_bytes: np.ndarray | None = None,
        smem_bytes: np.ndarray | int = 1024,
        working_set: np.ndarray | None = None,
        atomics: np.ndarray | None = None,
        collisions: np.ndarray | None = None,
        transactions: np.ndarray | None = None,
    ) -> None:
        """Append a family of blocks; scalar arguments broadcast."""
        effective_threads = np.asarray(effective_threads, dtype=np.int64)
        n = len(effective_threads)
        if n == 0:
            return

        def _col(value, dtype) -> np.ndarray:
            if value is None:
                return np.zeros(n, dtype=dtype)
            arr = np.asarray(value, dtype=dtype)
            if arr.ndim == 0:
                return np.full(n, arr, dtype=dtype)
            return arr

        self._parts.append(
            {
                "threads": _col(threads, np.int64),
                "effective_threads": effective_threads,
                "iters": _col(iters, np.float64),
                "ops": _col(ops, np.int64),
                "unique_bytes": _col(unique_bytes, np.float64),
                "reuse_bytes": _col(reuse_bytes, np.float64),
                "write_bytes": _col(write_bytes, np.float64),
                "smem_bytes": _col(smem_bytes, np.int64),
                "working_set": _col(working_set, np.float64),
                "atomics": _col(atomics, np.int64),
                "collisions": _col(collisions, np.int64),
                "transactions": _col(transactions, np.float64),
            }
        )

    def build(self) -> BlockArray:
        """Concatenate all appended families into one :class:`BlockArray`."""
        if not self._parts:
            return BlockArray.empty()
        columns = {
            name: np.concatenate([p[name] for p in self._parts])
            for name in self._parts[0]
        }
        return BlockArray(**columns)


def concatenate(arrays: list[BlockArray]) -> BlockArray:
    """Concatenate several block arrays (block order is launch order)."""
    arrays = [a for a in arrays if len(a) > 0]
    if not arrays:
        return BlockArray.empty()
    return BlockArray(
        np.concatenate([a.threads for a in arrays]),
        np.concatenate([a.effective_threads for a in arrays]),
        np.concatenate([a.iters for a in arrays]),
        np.concatenate([a.ops for a in arrays]),
        np.concatenate([a.unique_bytes for a in arrays]),
        np.concatenate([a.reuse_bytes for a in arrays]),
        np.concatenate([a.write_bytes for a in arrays]),
        np.concatenate([a.smem_bytes for a in arrays]),
        np.concatenate([a.working_set for a in arrays]),
        np.concatenate([a.atomics for a in arrays]),
        np.concatenate([a.collisions for a in arrays]),
        np.concatenate([a.transactions for a in arrays]),
    )
