"""Export simulated profiles to plain dictionaries / JSON.

Downstream users plotting their own figures need the simulator's counters in
a tool-neutral form; this module flattens :class:`KernelStats` (and whole
bench result sets) losslessly to JSON-serialisable structures.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.gpusim.stats import KernelStats

__all__ = ["stats_to_dict", "stats_to_json", "write_stats_json"]


def stats_to_dict(stats: KernelStats) -> dict:
    """Flatten kernel stats (per-phase counters included) to a dict."""
    return {
        "algorithm": stats.algorithm,
        "gpu": stats.config.name,
        "total_seconds": stats.total_seconds,
        "kernel_seconds": stats.kernel_seconds,
        "host_seconds": stats.host_seconds,
        "gflops": stats.gflops,
        "total_ops": stats.total_ops,
        "lbi": stats.lbi(),
        "sync_stall_pct": stats.sync_stall_pct,
        "meta": {k: v for k, v in stats.meta.items() if _jsonable(v)},
        "phases": [
            {
                "name": p.name,
                "stage": p.stage,
                "n_blocks": p.n_blocks,
                "makespan_cycles": p.makespan_cycles,
                "seconds": p.seconds(stats.config),
                "lbi": p.lbi,
                "sync_stall_pct": p.sync_stall_pct,
                "dram_bytes": p.dram_bytes,
                "l2_read_gbs": p.l2_read_gbs(stats.config),
                "l2_write_gbs": p.l2_write_gbs(stats.config),
                "residency": p.residency,
                "l2_hit": p.l2_hit,
                "l1_hit": p.l1_hit,
                "sm_busy_cycles": p.sm_busy_cycles.tolist(),
            }
            for p in stats.phases
        ],
    }


def stats_to_json(stats: KernelStats, *, indent: int = 2) -> str:
    """Serialise kernel stats to a JSON string."""
    return json.dumps(stats_to_dict(stats), indent=indent)


def write_stats_json(stats: KernelStats, path: str | Path) -> None:
    """Write kernel stats to a JSON file."""
    Path(path).write_text(stats_to_json(stats), encoding="utf-8")


def _jsonable(value) -> bool:
    try:
        json.dumps(value)
        return True
    except TypeError:
        return False
