"""R-MAT recursive graph generator (Chakrabarti, Zhan, Faloutsos, SDM 2004).

The paper generates all of its synthetic datasets (Table III) with R-MAT: the
S/P/SP families for ``C = A^2`` with explicit ``(a, b, c, d)`` partition
probabilities, and the Graph500-style ``scale``/``edge-factor`` pairs for
``C = A B``.  This module reproduces that generator.

The generator drops an edge into one of the four quadrants of the adjacency
matrix with probabilities ``(a, b, c, d)`` and recurses ``scale`` times, which
yields a power-law degree distribution whose skew grows with ``a - d``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.sparse.coo import COOMatrix

__all__ = ["RMATParams", "rmat", "rmat_general", "rmat_graph500"]


@dataclass(frozen=True)
class RMATParams:
    """Quadrant probabilities of the R-MAT recursion.

    ``a + b + c + d`` must equal 1.  ``a=b=c=d=0.25`` yields an Erdős–Rényi-like
    (uniform) matrix; raising ``a`` concentrates edges around low indices and
    produces the hub nodes / power-law skew the paper targets.
    """

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise DatasetError(f"R-MAT probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise DatasetError("R-MAT probabilities must be non-negative")

    @property
    def skew(self) -> float:
        """Convenience measure of how far from uniform the recursion is."""
        return self.a - 0.25


UNIFORM = RMATParams(0.25, 0.25, 0.25, 0.25)


def rmat(
    scale: int,
    n_edges: int,
    params: RMATParams,
    seed: int,
    *,
    noise: float = 0.1,
    deduplicate: bool = True,
    values: str = "uniform",
) -> COOMatrix:
    """Generate an R-MAT matrix of dimension ``2**scale`` with ``n_edges`` draws.

    Args:
        scale: log2 of the matrix dimension.
        n_edges: number of edge draws before optional deduplication.
        params: quadrant probabilities.
        seed: RNG seed; generation is fully deterministic.
        noise: per-level multiplicative jitter on the probabilities (the
            original R-MAT paper's smoothing trick, which avoids a perfectly
            self-similar — and unrealistically regular — matrix).
        deduplicate: when true, duplicate coordinates are collapsed (values
            summed), as the paper's graph datasets store simple graphs.
        values: ``"uniform"`` draws edge weights from (0, 1]; ``"ones"`` sets
            every weight to 1.0.

    Returns:
        A :class:`COOMatrix` of shape ``(2**scale, 2**scale)``.
    """
    if scale <= 0 or scale > 30:
        raise DatasetError(f"scale must be in [1, 30], got {scale}")
    if n_edges < 0:
        raise DatasetError(f"n_edges must be non-negative, got {n_edges}")
    rng = np.random.default_rng(seed)
    n = np.int64(1) << scale
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)

    for level in range(scale):
        # Jittered probabilities for this level (same for every edge, which
        # keeps the generator vectorised; jitter varies across levels).
        factors = 1.0 + noise * (rng.random(4) * 2.0 - 1.0)
        probs = np.array([params.a, params.b, params.c, params.d]) * factors
        probs /= probs.sum()
        quadrant = rng.choice(4, size=n_edges, p=probs)
        half = np.int64(1) << (scale - 1 - level)
        rows += half * (quadrant >= 2)  # quadrants c, d are the lower half
        cols += half * (quadrant % 2 == 1)  # quadrants b, d are the right half

    if values == "ones":
        vals = np.ones(n_edges, dtype=np.float64)
    elif values == "uniform":
        vals = rng.random(n_edges) + np.finfo(np.float64).tiny
    else:
        raise DatasetError(f"unknown values mode {values!r}")

    coo = COOMatrix((int(n), int(n)), rows, cols, vals)
    if deduplicate:
        coo = coo.coalesce()
        # Coalescing sums duplicate draws; rescale into (0, 2) so magnitudes
        # stay comparable across densities.
        if coo.nnz and values == "uniform":
            coo.vals = np.mod(coo.vals, 1.0) + 0.5
    return coo


def rmat_general(
    n: int,
    n_edges: int,
    params: RMATParams,
    seed: int,
    *,
    noise: float = 0.1,
) -> COOMatrix:
    """R-MAT for matrices whose dimension is not a power of two.

    The paper's Table III S/P/SP families use dimensions like 250 000 or
    750 000; this wrapper draws from the enclosing ``2**ceil(log2 n)`` R-MAT
    recursion, rejects coordinates outside ``n x n``, and tops up with fresh
    draws until the requested edge count is reached (within the loss to
    duplicate coalescing).
    """
    if n <= 0:
        raise DatasetError(f"dimension must be positive, got {n}")
    if n_edges > n * n:
        raise DatasetError(f"n_edges={n_edges} exceeds capacity of {n}x{n}")
    scale = max(1, int(np.ceil(np.log2(n))))
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    merged = COOMatrix.empty((n, n))
    collected = 0
    for attempt in range(8):
        need = n_edges - collected
        if need <= 0:
            break
        # Oversample to cover both rejection (area ratio) and duplicates.
        area_ratio = (n / float(1 << scale)) ** 2
        draw = int(need / max(area_ratio, 1e-6) * 1.2) + 16
        part = rmat(scale, draw, params, seed + attempt, noise=noise, deduplicate=False)
        keep = (part.rows < n) & (part.cols < n)
        rows_parts.append(part.rows[keep])
        cols_parts.append(part.cols[keep])
        vals_parts.append(part.vals[keep])
        merged = COOMatrix(
            (n, n),
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
        ).coalesce()
        collected = merged.nnz
        if collected >= n_edges:
            break
    # Trim any overshoot with a deterministic uniform subset so the degree
    # distribution is not biased toward low row indices.
    if merged.nnz > n_edges:
        keep = np.random.default_rng(seed + 1000).permutation(merged.nnz)[:n_edges]
        keep.sort()
        merged = COOMatrix((n, n), merged.rows[keep], merged.cols[keep], merged.vals[keep])
    return merged


def rmat_graph500(scale: int, edge_factor: int, seed: int) -> COOMatrix:
    """Graph500-flavoured R-MAT: ``2**scale`` nodes, ``edge_factor * 2**scale`` draws.

    Uses the Graph500 kernel's canonical probabilities
    ``(0.57, 0.19, 0.19, 0.05)``; this is the generator behind the paper's
    ``C = A B`` inputs (Table III, bottom), where two independent draws with
    different seeds give the A and B operands.
    """
    params = RMATParams(0.57, 0.19, 0.19, 0.05)
    return rmat(scale, edge_factor * (1 << scale), params, seed)
