"""Random sparse matrix generators for the dataset stand-ins.

Two families mirror the paper's dataset split (Table II):

* :func:`banded_regular` — mesh/FEM-like matrices with near-uniform row
  degrees, standing in for the Florida SuiteSparse entries (filter3D, ship,
  harbor, ...).  These exercise the *regular* path where B-Gathering is the
  only effective technique.
* :func:`power_law` — matrices with an explicit Zipf-like degree sequence and
  hub rows, standing in for the Stanford SNAP entries (youtube, loc-gowalla,
  as-caida, ...).  These exercise B-Splitting and B-Limiting.

Both are deterministic given a seed and are validated by the catalog against
:mod:`repro.sparse.stats` to confirm they land in the intended regularity
class.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.sparse.coo import COOMatrix

__all__ = ["banded_regular", "power_law", "uniform_random", "degree_sequence_matrix"]


def uniform_random(n_rows: int, n_cols: int, nnz: int, seed: int) -> COOMatrix:
    """Uniformly random coordinates (Erdős–Rényi-like), duplicates coalesced."""
    if nnz < 0 or nnz > n_rows * n_cols:
        raise DatasetError(f"nnz={nnz} out of range for {n_rows}x{n_cols}")
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, size=nnz, dtype=np.int64)
    cols = rng.integers(0, n_cols, size=nnz, dtype=np.int64)
    vals = rng.random(nnz) + 0.5
    return COOMatrix((n_rows, n_cols), rows, cols, vals).coalesce()


def banded_regular(
    n: int,
    nnz_per_row: int,
    seed: int,
    *,
    bandwidth_factor: float = 3.0,
    jitter: int = 1,
) -> COOMatrix:
    """Banded matrix with near-uniform row degree (mesh/FEM stand-in).

    Each row ``i`` receives ``nnz_per_row ± jitter`` entries whose column
    indices cluster inside a band of width ``bandwidth_factor * nnz_per_row``
    around the diagonal — the access pattern of discretised PDE operators,
    which is what the Florida SuiteSparse matrices in the paper are.
    """
    if nnz_per_row <= 0:
        raise DatasetError(f"nnz_per_row must be positive, got {nnz_per_row}")
    rng = np.random.default_rng(seed)
    degrees = nnz_per_row + rng.integers(-jitter, jitter + 1, size=n)
    degrees = np.clip(degrees, 1, n).astype(np.int64)
    total = int(degrees.sum())
    half_band = max(1, int(bandwidth_factor * nnz_per_row / 2))

    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    offsets = rng.integers(-half_band, half_band + 1, size=total, dtype=np.int64)
    cols = np.clip(rows + offsets, 0, n - 1)
    vals = rng.random(total) + 0.5
    return COOMatrix((n, n), rows, cols, vals).coalesce()


def degree_sequence_matrix(
    degrees: np.ndarray, n_cols: int, seed: int, *, col_bias: float = 2.0
) -> COOMatrix:
    """Matrix with an exact (pre-clip) out-degree sequence and skewed targets.

    Column endpoints are drawn with a preferential bias (``u**col_bias``
    mapped onto the column range) so that hub *rows* also produce hub
    *columns*, matching how real social-network adjacency matrices are skewed
    on both axes.  Larger ``col_bias`` concentrates targets harder and raises
    the expansion ratio ``nnz(C-hat)/nnz(A)`` of the resulting matrix.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n_rows = len(degrees)
    if np.any(degrees < 0) or np.any(degrees > n_cols):
        raise DatasetError("degree out of range")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), degrees)
    total = int(degrees.sum())
    u = rng.random(total)
    cols = np.minimum((u**col_bias * n_cols).astype(np.int64), n_cols - 1)
    vals = rng.random(total) + 0.5
    return COOMatrix((n_rows, n_cols), rows, cols, vals).coalesce()


def _waterfill_degrees(nnz: int, weights: np.ndarray, cap: int) -> np.ndarray:
    """Turn a weight vector into an integer degree sequence summing to ~nnz.

    Rows are filled proportionally to ``weights`` but no row exceeds ``cap``;
    mass that would overflow a capped row is redistributed to the rest.
    """
    n = len(weights)
    degrees = np.zeros(n, dtype=np.int64)
    remaining = nnz
    active = np.ones(n, dtype=bool)
    for _ in range(64):  # converges in a handful of passes
        if remaining <= 0 or not active.any():
            break
        w = np.where(active, weights, 0.0)
        total_w = w.sum()
        if total_w == 0:
            break
        add = np.floor(remaining * w / total_w).astype(np.int64)
        if add.sum() == 0:  # spread the last few entries over the top rows
            top = np.argsort(w)[::-1][:remaining]
            add[top] = 1
        add = np.minimum(add, cap - degrees)
        degrees += add
        remaining = nnz - int(degrees.sum())
        active = degrees < cap
    return degrees


def power_law(
    n: int,
    nnz: int,
    seed: int,
    *,
    alpha: float = 1.5,
    max_degree_fraction: float = 0.25,
    col_bias: float = 2.0,
    topup_rounds: int = 4,
) -> COOMatrix:
    """Power-law matrix: Zipf(``alpha``) degree sequence with hub rows.

    The realised nnz tracks the request closely: the degree sequence is
    water-filled under the per-row cap, and duplicate coordinate draws (which
    coalescing would silently drop) are compensated by a few top-up rounds.

    Args:
        n: matrix dimension.
        nnz: target stored-entry count (realised within a few percent).
        seed: RNG seed.
        alpha: Zipf exponent; larger = steeper decay = more extreme top hubs,
            smaller = mass spread over many mid-size hubs.
        max_degree_fraction: cap on any single row's degree as a fraction of
            ``n``, preventing degenerate all-ones rows at tiny sizes.
        col_bias: column-concentration exponent (see
            :func:`degree_sequence_matrix`).
        topup_rounds: collision-compensation passes.
    """
    if nnz <= 0:
        raise DatasetError(f"nnz must be positive, got {nnz}")
    if nnz > n * n:
        raise DatasetError(f"nnz={nnz} exceeds capacity of {n}x{n}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    cap = max(1, int(max_degree_fraction * n))
    target = _waterfill_degrees(nnz, weights, cap)

    coo = degree_sequence_matrix(target, n, seed + 1, col_bias=col_bias)
    for round_idx in range(topup_rounds):
        csr = coo.to_csr()
        realised = csr.row_nnz()
        deficit = np.maximum(target - realised, 0)
        if deficit.sum() <= max(1, nnz // 100):
            break
        extra = degree_sequence_matrix(deficit, n, seed + 2 + round_idx, col_bias=col_bias)
        merged = COOMatrix(
            coo.shape,
            np.concatenate([coo.rows, extra.rows]),
            np.concatenate([coo.cols, extra.cols]),
            np.concatenate([coo.vals, extra.vals]),
        )
        coo = merged.coalesce()
    return coo
