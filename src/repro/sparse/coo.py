"""Coordinate-format (COO) sparse matrix.

COO is the interchange format of this library: generators produce COO, and the
compressed formats (:class:`~repro.sparse.csr.CSRMatrix`,
:class:`~repro.sparse.csc.CSCMatrix`) are built from it.  Entries may be
unsorted and may contain duplicates until :meth:`COOMatrix.coalesce` is called.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate (triplet) format.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        rows: int64 array of row indices, one per stored entry.
        cols: int64 array of column indices, one per stored entry.
        vals: float64 array of values, one per stored entry.
    """

    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        self.vals = np.ascontiguousarray(self.vals, dtype=np.float64)
        if not (self.rows.ndim == self.cols.ndim == self.vals.ndim == 1):
            raise SparseFormatError("COO component arrays must be 1-D")
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise SparseFormatError(
                f"COO component lengths differ: rows={len(self.rows)} "
                f"cols={len(self.cols)} vals={len(self.vals)}"
            )
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"negative shape {self.shape}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "COOMatrix":
        """Return a COO matrix of the given shape with no stored entries."""
        zero = np.zeros(0, dtype=np.int64)
        return cls(shape, zero, zero.copy(), np.zeros(0, dtype=np.float64))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a 2-D dense array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise SparseFormatError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows.astype(np.int64), cols.astype(np.int64), dense[rows, cols])

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return len(self.vals)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    # ------------------------------------------------------------------
    # Validation and normalisation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SparseFormatError` if any index is out of range."""
        n_rows, n_cols = self.shape
        if self.nnz == 0:
            return
        if self.rows.min() < 0 or self.rows.max() >= n_rows:
            raise SparseFormatError("row index out of range")
        if self.cols.min() < 0 or self.cols.max() >= n_cols:
            raise SparseFormatError("column index out of range")
        if not np.all(np.isfinite(self.vals)):
            raise SparseFormatError("non-finite value in COO matrix")

    def coalesce(self, drop_zeros: bool = True) -> "COOMatrix":
        """Return an equivalent COO matrix with duplicates summed.

        Entries are sorted by (row, col).  When ``drop_zeros`` is true, entries
        that sum to exactly zero are removed.
        """
        if self.nnz == 0:
            return COOMatrix.empty(self.shape)
        key = self.rows * np.int64(self.n_cols) + self.cols
        order = np.argsort(key, kind="stable")
        key = key[order]
        vals = self.vals[order]
        boundaries = np.empty(len(key), dtype=bool)
        boundaries[0] = True
        boundaries[1:] = key[1:] != key[:-1]
        group = np.cumsum(boundaries) - 1
        summed = np.zeros(group[-1] + 1, dtype=np.float64)
        np.add.at(summed, group, vals)
        unique_key = key[boundaries]
        rows = unique_key // self.n_cols
        cols = unique_key % self.n_cols
        if drop_zeros:
            keep = summed != 0.0
            rows, cols, summed = rows[keep], cols[keep], summed[keep]
        return COOMatrix(self.shape, rows, cols, summed)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRMatrix":  # noqa: F821 - forward ref, resolved below
        """Convert to CSR (duplicates are coalesced first)."""
        from repro.sparse.convert import coo_to_csr

        return coo_to_csr(self)

    def to_csc(self) -> "CSCMatrix":  # noqa: F821
        """Convert to CSC (duplicates are coalesced first)."""
        from repro.sparse.convert import coo_to_csc

        return coo_to_csc(self)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array (small matrices only)."""
        self.validate()
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    def transpose(self) -> "COOMatrix":
        """Return the transpose as a new COO matrix (no copy of values order)."""
        return COOMatrix(
            (self.n_cols, self.n_rows), self.cols.copy(), self.rows.copy(), self.vals.copy()
        )

    # ------------------------------------------------------------------
    # Arithmetic helpers used by tests and examples
    # ------------------------------------------------------------------
    def allclose(self, other: "COOMatrix", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Value-wise comparison after coalescing both operands."""
        if self.shape != other.shape:
            raise ShapeMismatchError(f"shape {self.shape} != {other.shape}")
        a = self.coalesce()
        b = other.coalesce()
        if a.nnz != b.nnz:
            return False
        return (
            bool(np.array_equal(a.rows, b.rows))
            and bool(np.array_equal(a.cols, b.cols))
            and bool(np.allclose(a.vals, b.vals, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
