"""Compressed sparse column (CSC) matrix.

The outer-product spGEMM formulation (Equation 2 of the paper) iterates over
*columns* of the left operand ``A`` paired with *rows* of the right operand
``B``; CSC gives O(1) access to those columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError

__all__ = ["CSCMatrix"]


@dataclass
class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        indptr: int64 array of length ``n_cols + 1``; column ``j`` occupies the
            half-open slice ``indptr[j]:indptr[j+1]`` of ``indices``/``data``.
        indices: int64 row indices per stored entry.
        data: float64 values per stored entry.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSCMatrix":
        """Return a CSC matrix of the given shape with no stored entries."""
        return cls(
            shape,
            np.zeros(shape[1] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Build a CSC matrix from a 2-D dense array, dropping exact zeros."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csc()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return len(self.data)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def col_nnz(self) -> np.ndarray:
        """Per-column stored-entry counts, shape ``(n_cols,)``."""
        return np.diff(self.indptr)

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` views of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SparseFormatError` on any structural inconsistency."""
        n_rows, n_cols = self.shape
        if len(self.indptr) != n_cols + 1:
            raise SparseFormatError(
                f"indptr length {len(self.indptr)} != n_cols + 1 = {n_cols + 1}"
            )
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if self.indptr[-1] != self.nnz:
            raise SparseFormatError(f"indptr[-1]={self.indptr[-1]} != nnz={self.nnz}")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise SparseFormatError("indices/data length mismatch")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= n_rows:
                raise SparseFormatError("row index out of range")
            if not np.all(np.isfinite(self.data)):
                raise SparseFormatError("non-finite value in CSC matrix")
            # Duplicate row indices within a column silently double-count
            # downstream (outer-product expansion emits one product per
            # stored entry), so they are a format error; sum_duplicates()
            # canonicalises.
            col_of = np.repeat(np.arange(n_cols, dtype=np.int64), np.diff(self.indptr))
            keys = np.sort(col_of * n_rows + self.indices)
            dup = np.nonzero(keys[1:] == keys[:-1])[0]
            if len(dup):
                col = int(keys[dup[0]] // n_rows)
                raise SparseFormatError(
                    f"duplicate row indices within column {col} "
                    "(use sum_duplicates() to canonicalise)"
                )

    def sum_duplicates(self) -> "CSCMatrix":
        """Return a canonical copy: duplicate ``(row, col)`` entries summed,
        row indices sorted within each column."""
        return self.to_coo().to_csc()

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":  # noqa: F821
        """Convert to COO format."""
        from repro.sparse.coo import COOMatrix

        cols = np.repeat(np.arange(self.n_cols, dtype=np.int64), self.col_nnz())
        return COOMatrix(self.shape, self.indices.copy(), cols, self.data.copy())

    def to_csr(self) -> "CSRMatrix":  # noqa: F821
        """Convert to CSR format (O(nnz) counting sort)."""
        from repro.sparse.convert import csc_to_csr

        return csc_to_csr(self)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array (small matrices only)."""
        out = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(np.arange(self.n_cols, dtype=np.int64), self.col_nnz())
        np.add.at(out, (self.indices, cols), self.data)
        return out

    def transpose(self) -> "CSCMatrix":
        """Return the transpose, itself in CSC format."""
        from repro.sparse.convert import csc_to_csr

        csr = csc_to_csr(self)
        return CSCMatrix((self.n_cols, self.n_rows), csr.indptr, csr.indices, csr.data)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def allclose(self, other: "CSCMatrix", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Value comparison via CSR canonical form."""
        if self.shape != other.shape:
            raise ShapeMismatchError(f"shape {self.shape} != {other.shape}")
        return self.to_csr().allclose(other.to_csr(), rtol=rtol, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
