"""Format conversions between COO, CSR and CSC.

All conversions run in O(nnz) (counting sort / stable argsort) and preserve
values exactly.  COO inputs are coalesced (duplicates summed) on the way in, so
the compressed formats are always canonical: no duplicate coordinates, indices
sorted within each row/column.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = [
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_csc",
    "csc_to_csr",
    "csr_to_coo",
    "csc_to_coo",
]


def _compress(keys: np.ndarray, n_groups: int) -> np.ndarray:
    """Build an indptr array from sorted group keys."""
    counts = np.bincount(keys, minlength=n_groups)
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Convert a COO matrix to canonical CSR (coalesces duplicates)."""
    coo.validate()
    canon = coo.coalesce(drop_zeros=False)
    indptr = _compress(canon.rows, canon.n_rows)
    return CSRMatrix(canon.shape, indptr, canon.cols, canon.vals)


def coo_to_csc(coo: COOMatrix) -> CSCMatrix:
    """Convert a COO matrix to canonical CSC (coalesces duplicates)."""
    coo.validate()
    canon = coo.coalesce(drop_zeros=False)
    order = np.lexsort((canon.rows, canon.cols))
    indptr = _compress(canon.cols[order], canon.n_cols)
    return CSCMatrix(canon.shape, indptr, canon.rows[order], canon.vals[order])


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """Re-compress a CSR matrix by column (stable, O(nnz log nnz) argsort)."""
    csr.validate()
    rows = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.row_nnz())
    order = np.argsort(csr.indices, kind="stable")
    indptr = _compress(csr.indices[order], csr.n_cols)
    return CSCMatrix(csr.shape, indptr, rows[order], csr.data[order])


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """Re-compress a CSC matrix by row (stable, O(nnz log nnz) argsort)."""
    csc.validate()
    cols = np.repeat(np.arange(csc.n_cols, dtype=np.int64), csc.col_nnz())
    order = np.argsort(csc.indices, kind="stable")
    indptr = _compress(csc.indices[order], csc.n_rows)
    return CSRMatrix(csc.shape, indptr, cols[order], csc.data[order])


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Expand a CSR matrix to COO triplets."""
    return csr.to_coo()


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    """Expand a CSC matrix to COO triplets."""
    return csc.to_coo()
