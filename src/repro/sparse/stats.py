"""Degree-distribution statistics for sparse network matrices.

The paper's analysis (Section III) hinges on the contrast between *regular*
matrices (Florida SuiteSparse: mesh/FEM-like, near-uniform row degrees) and
*irregular* ones (Stanford SNAP: power-law, a few hub rows with enormous
degree).  These statistics quantify that contrast; the dataset catalog uses
them to verify that generated stand-ins land in the intended class, and the
bench harness prints them alongside results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["DegreeStats", "degree_stats", "gini", "top_share", "is_skewed"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = concentrated)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = len(v)
    if n == 0:
        return 0.0
    total = v.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * v).sum() / (n * total)) - (n + 1.0) / n)


def top_share(values: np.ndarray, fraction: float = 0.01) -> float:
    """Share of the total mass held by the top ``fraction`` of entries."""
    v = np.sort(np.asarray(values, dtype=np.float64))[::-1]
    if len(v) == 0 or v.sum() == 0:
        return 0.0
    k = max(1, int(np.ceil(fraction * len(v))))
    return float(v[:k].sum() / v.sum())


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a row-degree (or column-degree) distribution."""

    n: int
    nnz: int
    mean: float
    max: int
    cv: float
    """Coefficient of variation (std / mean); ~0 for regular meshes."""
    gini: float
    top1_share: float
    """Fraction of nnz held by the top 1% of rows; large for power-law data."""
    zero_fraction: float
    """Fraction of rows with no entries at all."""

    @property
    def skewed(self) -> bool:
        """Heuristic regular/irregular split used by the dataset catalog."""
        return self.gini > 0.5 or self.top1_share > 0.15


def degree_stats(degrees: np.ndarray) -> DegreeStats:
    """Compute :class:`DegreeStats` from a vector of per-row/col counts."""
    d = np.asarray(degrees, dtype=np.int64)
    n = len(d)
    nnz = int(d.sum())
    mean = float(d.mean()) if n else 0.0
    std = float(d.std()) if n else 0.0
    return DegreeStats(
        n=n,
        nnz=nnz,
        mean=mean,
        max=int(d.max()) if n else 0,
        cv=(std / mean) if mean > 0 else 0.0,
        gini=gini(d),
        top1_share=top_share(d, 0.01),
        zero_fraction=float(np.mean(d == 0)) if n else 0.0,
    )


def is_skewed(m: CSRMatrix) -> bool:
    """True when the row-degree distribution of ``m`` is power-law-like."""
    return degree_stats(m.row_nnz()).skewed
