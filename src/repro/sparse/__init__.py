"""Sparse matrix substrate: formats, conversions, generators, statistics."""

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
)
from repro.sparse.ops import (
    add,
    check_multipliable,
    expansion_work_per_pair,
    row_expansion_work,
    scale,
    spmv,
    total_expansion_work,
)
from repro.sparse.random import banded_regular, degree_sequence_matrix, power_law, uniform_random
from repro.sparse.rmat import RMATParams, rmat, rmat_graph500
from repro.sparse.stats import DegreeStats, degree_stats, gini, is_skewed, top_share

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_csc",
    "csc_to_csr",
    "csr_to_coo",
    "csc_to_coo",
    "add",
    "check_multipliable",
    "expansion_work_per_pair",
    "row_expansion_work",
    "scale",
    "spmv",
    "total_expansion_work",
    "banded_regular",
    "degree_sequence_matrix",
    "power_law",
    "uniform_random",
    "RMATParams",
    "rmat",
    "rmat_graph500",
    "DegreeStats",
    "degree_stats",
    "gini",
    "is_skewed",
    "top_share",
]
