"""Compressed sparse row (CSR) matrix.

CSR is the working format of every spGEMM scheme in this library: the paper's
algorithms consume CSR for the right operand (rows of ``B``) and CSC for the
left operand (columns of ``A``) in the outer-product formulation, and CSR for
both the input and the output of the row-product formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError

__all__ = ["CSRMatrix"]


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        indptr: int64 array of length ``n_rows + 1``; row ``i`` occupies the
            half-open slice ``indptr[i]:indptr[i+1]`` of ``indices``/``data``.
        indices: int64 column indices per stored entry.
        data: float64 values per stored entry.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSRMatrix":
        """Return a CSR matrix of the given shape with no stored entries."""
        return cls(
            shape,
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a 2-D dense array, dropping exact zeros."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csr()

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """Return the n-by-n identity matrix."""
        return cls(
            (n, n),
            np.arange(n + 1, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return len(self.data)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def row_nnz(self) -> np.ndarray:
        """Per-row stored-entry counts, shape ``(n_rows,)``."""
        return np.diff(self.indptr)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SparseFormatError` on any structural inconsistency."""
        n_rows, n_cols = self.shape
        if len(self.indptr) != n_rows + 1:
            raise SparseFormatError(
                f"indptr length {len(self.indptr)} != n_rows + 1 = {n_rows + 1}"
            )
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if self.indptr[-1] != self.nnz:
            raise SparseFormatError(f"indptr[-1]={self.indptr[-1]} != nnz={self.nnz}")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise SparseFormatError("indices/data length mismatch")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise SparseFormatError("column index out of range")
            if not np.all(np.isfinite(self.data)):
                raise SparseFormatError("non-finite value in CSR matrix")
            # Duplicate column indices within a row silently double-count
            # downstream (histogram-based symbolic expansion, merge sizing),
            # so they are a format error; sum_duplicates() canonicalises.
            row_of = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(self.indptr))
            keys = np.sort(row_of * n_cols + self.indices)
            dup = np.nonzero(keys[1:] == keys[:-1])[0]
            if len(dup):
                row = int(keys[dup[0]] // n_cols)
                raise SparseFormatError(
                    f"duplicate column indices within row {row} "
                    "(use sum_duplicates() to canonicalise)"
                )

    def sum_duplicates(self) -> "CSRMatrix":
        """Return a canonical copy: duplicate ``(row, col)`` entries summed,
        column indices sorted within each row."""
        return self.to_coo().to_csr()

    def has_sorted_indices(self) -> bool:
        """True when column indices are strictly increasing within each row."""
        if self.nnz <= 1:
            return True
        diffs = np.diff(self.indices)
        row_starts = self.indptr[1:-1]
        row_starts = row_starts[(row_starts > 0) & (row_starts < self.nnz)]
        interior = np.ones(len(diffs), dtype=bool)
        interior[row_starts - 1] = False  # boundary between consecutive rows
        return bool(np.all(diffs[interior] > 0))

    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        row_of = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        order = np.lexsort((self.indices, row_of))
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices[order], self.data[order])

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":  # noqa: F821
        """Convert to COO format."""
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        return COOMatrix(self.shape, rows, self.indices.copy(), self.data.copy())

    def to_csc(self) -> "CSCMatrix":  # noqa: F821
        """Convert to CSC format (O(nnz) counting sort)."""
        from repro.sparse.convert import csr_to_csc

        return csr_to_csc(self)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array (small matrices only)."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        np.add.at(out, (rows, self.indices), self.data)
        return out

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, itself in CSR format."""
        from repro.sparse.convert import csr_to_csc

        csc = csr_to_csc(self)
        return CSRMatrix((self.n_cols, self.n_rows), csc.indptr, csc.indices, csc.data)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def allclose(self, other: "CSRMatrix", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Structural + value comparison; both operands are index-sorted first."""
        if self.shape != other.shape:
            raise ShapeMismatchError(f"shape {self.shape} != {other.shape}")
        a = self if self.has_sorted_indices() else self.sort_indices()
        b = other if other.has_sorted_indices() else other.sort_indices()
        return (
            bool(np.array_equal(a.indptr, b.indptr))
            and bool(np.array_equal(a.indices, b.indices))
            and bool(np.allclose(a.data, b.data, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
