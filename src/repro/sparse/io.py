"""Minimal MatrixMarket coordinate I/O.

Supports the ``%%MatrixMarket matrix coordinate real general`` profile plus
``pattern`` (value-less) files, which covers the SuiteSparse/SNAP exports the
paper's datasets ship in.  Used by examples so a downstream user can run the
library on their own matrices.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER = "%%MatrixMarket matrix coordinate {field} general\n"


def read_matrix_market(path: str | Path) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a COO matrix.

    ``pattern`` files get value 1.0 for every entry; ``symmetric`` files are
    expanded to full general storage.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise SparseFormatError(f"{path}: missing MatrixMarket header")
        tokens = header.strip().lower().split()
        if len(tokens) < 5 or tokens[2] != "coordinate":
            raise SparseFormatError(f"{path}: only coordinate format is supported")
        field, symmetry = tokens[3], tokens[4]
        if field not in ("real", "integer", "pattern"):
            raise SparseFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise SparseFormatError(f"{path}: unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            n_rows, n_cols, nnz = (int(t) for t in line.split())
        except ValueError as exc:
            raise SparseFormatError(f"{path}: bad size line {line!r}") from exc

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = fh.readline().split()
            if len(parts) < 2:
                raise SparseFormatError(f"{path}: truncated at entry {k}")
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2]) if field != "pattern" and len(parts) > 2 else 1.0

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirrored_rows, mirrored_cols = cols[off_diag], rows[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, vals[off_diag]])
    coo = COOMatrix((n_rows, n_cols), rows, cols, vals)
    coo.validate()
    return coo


def write_matrix_market(path: str | Path, matrix: COOMatrix) -> None:
    """Write a COO matrix as a general real coordinate MatrixMarket file."""
    matrix.validate()
    canon = matrix.coalesce()
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(_HEADER.format(field="real"))
        fh.write(f"{canon.n_rows} {canon.n_cols} {canon.nnz}\n")
        for r, c, v in zip(canon.rows, canon.cols, canon.vals):
            fh.write(f"{int(r) + 1} {int(c) + 1} {v:.17g}\n")
