"""ASCII table formatting for bench output.

The experiment modules print the same rows/series the paper's figures plot;
this module renders them consistently (fixed-width columns, geometric means
where the paper averages speedups).
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "geomean"]


def geomean(values) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0 or np.any(arr <= 0):
        return float("nan")
    return float(np.exp(np.mean(np.log(arr))))


def _fmt(value, width: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.2f}"
    return f"{str(value):>{width}}"


def format_table(
    headers: list[str],
    rows: list[list],
    *,
    title: str | None = None,
    first_col_width: int = 18,
    col_width: int = 10,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    lines = []
    if title:
        lines.append(title)
    widths = [first_col_width] + [max(col_width, len(h)) for h in headers[1:]]
    lines.append(
        "  ".join(
            f"{h:>{w}}" if i else f"{h:<{w}}" for i, (h, w) in enumerate(zip(headers, widths))
        )
    )
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        cells = []
        for i, (value, width) in enumerate(zip(row, widths)):
            if i == 0:
                cells.append(f"{str(value):<{width}}")
            else:
                cells.append(_fmt(value, width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
