"""Process-pool sharding of the bench grid.

The full reproduction sweeps 28 matrices × 3 GPUs × 7+ algorithms; each cell
is an independent deterministic simulation, so the grid parallelises
embarrassingly.  Sharding is at **dataset granularity**: building a
:class:`MultiplyContext` (one full symbolic expansion) dominates per-dataset
setup, so each task ships one dataset plus its algorithm roster to a worker,
which builds the context once — in its process-local context cache — and
simulates every cell against it.

Properties the runner relies on:

* **Deterministic merge** — workers return plain :class:`BenchResult`
  objects; the caller reassembles them by ``(dataset, label)`` key, so the
  output never depends on completion order, and results are identical to the
  serial path (same NumPy code on the same inputs).
* **Load balancing** — shards are submitted largest-first (LPT order, using
  the catalog's published nnz as the size estimate) onto a dynamic pool, so
  one hub-heavy matrix doesn't serialise the tail of the run.
* **Graceful degradation** — a dead or unstartable pool (resource limits,
  broken interpreter forks), and now also a *hung* pool, downgrade to the
  serial path for whatever cells are still outstanding; simulation errors
  raised *inside* a worker are real failures and propagate unchanged.  Hang
  detection is a no-progress window: if ``timeout`` seconds elapse without a
  single shard completing, the outstanding shards are declared stuck,
  counted in the run summary, and re-run serially — the pool is shut down
  without waiting on its hung workers.
* **Trace shipping** — when tracing (:mod:`repro.obs`) is enabled in the
  parent, each worker records into its own recorder and returns its span
  trees alongside the results; the parent splices them into its live trace
  (one Chrome process lane per shard), so the aggregated span tree is
  identical to a serial run's.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import TYPE_CHECKING

from repro import obs
from repro.datasets.catalog import get_spec
from repro.gpusim.config import GPUConfig
from repro.gpusim.costs import CostModel, DEFAULT_COSTS
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.base import SpGEMMAlgorithm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.bench.runner import BenchResult, RunSummary

__all__ = ["default_workers", "run_sharded"]

_POOL_ERRORS = (BrokenProcessPool, PicklingError, OSError)


def default_workers() -> int:
    """Pool width for ``--workers 0`` / "use the machine": all visible cores."""
    return max(1, os.cpu_count() or 1)


def _shard_size_estimate(name: str) -> int:
    """Rough relative cost of a dataset's shard, for largest-first submission.

    The catalog's published nnz(A) tracks simulation cost well enough for LPT
    ordering; synthetic entries without published stats fall back to their
    generator's requested nnz (or 0 — order among unknowns is preserved).
    """
    spec = get_spec(name)
    if spec.paper_nnz_a:
        return int(spec.paper_nnz_a)
    params = spec.params or {}
    for key in ("nnz", "n_edges", "nnz_per_row"):
        if key in params:
            try:
                return int(params[key])
            except (TypeError, ValueError):
                continue
    return 0


def _simulate_shard(
    name: str,
    cells: list[tuple[str, SpGEMMAlgorithm]],
    gpu: GPUConfig,
    costs: CostModel | None,
    trace: bool = False,
) -> tuple[list["BenchResult"], list[dict] | None]:
    """Worker body: one dataset, many algorithms, one context build.

    Returns the shard's results plus — when ``trace`` is set — the worker's
    span trees as plain dicts for the parent to adopt.
    """
    # Deferred import: the worker resolves the context through the runner's
    # process-local cache, so repeated shards of the same dataset (or a
    # forked parent's warm cache) are reused.
    from repro.bench import runner

    # Forked workers inherit the parent's live recorder; recording into that
    # copy would be lost, so drop it and (when tracing) start a fresh one
    # whose trees ship back with the results.
    obs.uninstall()
    recorder = obs.install() if trace else None
    try:
        ctx = runner.get_context(name)
        simulator = GPUSimulator(gpu, costs or DEFAULT_COSTS)
        results = [
            runner._make_result(name, label, gpu, algo.simulate(ctx, simulator))
            for label, algo in cells
        ]
    finally:
        obs.uninstall()
    return results, (recorder.to_dicts() if recorder is not None else None)


def run_sharded(
    pending: dict[str, list[tuple[str, SpGEMMAlgorithm]]],
    gpu: GPUConfig,
    costs: CostModel | None,
    workers: int,
    *,
    timeout: float | None = None,
    summary: "RunSummary | None" = None,
) -> dict[tuple[str, str], "BenchResult"]:
    """Evaluate ``pending`` (dataset -> cells) across a process pool.

    ``timeout`` is the no-progress window in seconds: if it elapses without
    any shard completing, outstanding shards are cancelled and re-run
    serially (``None`` waits forever, the pre-timeout behaviour).  Falls
    back to the serial path for any cells left outstanding when the pool
    itself fails or hangs; exceptions raised by the simulation code
    propagate.  ``summary`` (when given) receives timeout/failure counts.
    """
    from repro.bench import runner

    shards = sorted(pending.items(), key=lambda kv: -_shard_size_estimate(kv[0]))
    lanes = {name: lane for lane, (name, _) in enumerate(shards, start=1)}
    results: dict[tuple[str, str], "BenchResult"] = {}
    remaining = dict(shards)
    trace = obs.is_enabled()
    pool = None
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(shards)))
        futures = {
            pool.submit(_simulate_shard, name, cells, gpu, costs, trace): name
            for name, cells in shards
        }
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(
                outstanding, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # The window elapsed with zero completions: the pool is hung.
                for future in outstanding:
                    future.cancel()
                hung = sorted(futures[f] for f in outstanding)
                if summary is not None:
                    summary.shard_timeouts += len(hung)
                warnings.warn(
                    f"shard timeout: no progress in {timeout:g}s, "
                    f"re-running {len(hung)} shard(s) serially "
                    f"({', '.join(hung)})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            for future in done:
                name = futures[future]
                shard_results, spans = future.result()
                for res in shard_results:
                    results[(name, res.algorithm)] = res
                obs.adopt(spans, pid=lanes[name])
                remaining.pop(name, None)
    except _POOL_ERRORS as exc:
        if summary is not None:
            summary.pool_failures += 1
        warnings.warn(
            f"bench worker pool failed ({exc!r}); "
            f"finishing {len(remaining)} shard(s) serially",
            RuntimeWarning,
            stacklevel=2,
        )
    finally:
        if pool is not None:
            # Never block on hung workers: leave them to die with the pool.
            pool.shutdown(wait=False, cancel_futures=True)
    if remaining:
        results.update(runner._run_serial(remaining, gpu, costs))
    return results
