"""Process-pool sharding of the bench grid.

The full reproduction sweeps 28 matrices × 3 GPUs × 7+ algorithms; each cell
is an independent deterministic simulation, so the grid parallelises
embarrassingly.  Sharding is at **dataset granularity**: building a
:class:`MultiplyContext` (one full symbolic expansion) dominates per-dataset
setup, so each task ships one dataset plus its algorithm roster to a worker,
which builds the context once — in its process-local context cache — and
simulates every cell against it.

Properties the runner relies on:

* **Deterministic merge** — workers return plain :class:`BenchResult`
  objects; the caller reassembles them by ``(dataset, label)`` key, so the
  output never depends on completion order, and results are identical to the
  serial path (same NumPy code on the same inputs).
* **Load balancing** — shards are submitted largest-first (LPT order, using
  the catalog's published nnz as the size estimate) onto a dynamic pool, so
  one hub-heavy matrix doesn't serialise the tail of the run.
* **Graceful degradation** — a dead or unstartable pool (resource limits,
  broken interpreter forks) downgrades to the serial path for whatever cells
  are still outstanding; simulation errors raised *inside* a worker are real
  failures and propagate unchanged.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import TYPE_CHECKING

from repro.datasets.catalog import get_spec
from repro.gpusim.config import GPUConfig
from repro.gpusim.costs import CostModel, DEFAULT_COSTS
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.base import SpGEMMAlgorithm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.bench.runner import BenchResult

__all__ = ["default_workers", "run_sharded"]

_POOL_ERRORS = (BrokenProcessPool, PicklingError, OSError)


def default_workers() -> int:
    """Pool width for ``--workers 0`` / "use the machine": all visible cores."""
    return max(1, os.cpu_count() or 1)


def _shard_size_estimate(name: str) -> int:
    """Rough relative cost of a dataset's shard, for largest-first submission.

    The catalog's published nnz(A) tracks simulation cost well enough for LPT
    ordering; synthetic entries without published stats fall back to their
    generator's requested nnz (or 0 — order among unknowns is preserved).
    """
    spec = get_spec(name)
    if spec.paper_nnz_a:
        return int(spec.paper_nnz_a)
    params = spec.params or {}
    for key in ("nnz", "n_edges", "nnz_per_row"):
        if key in params:
            try:
                return int(params[key])
            except (TypeError, ValueError):
                continue
    return 0


def _simulate_shard(
    name: str,
    cells: list[tuple[str, SpGEMMAlgorithm]],
    gpu: GPUConfig,
    costs: CostModel | None,
) -> list["BenchResult"]:
    """Worker body: one dataset, many algorithms, one context build."""
    # Deferred import: the worker resolves the context through the runner's
    # process-local cache, so repeated shards of the same dataset (or a
    # forked parent's warm cache) are reused.
    from repro.bench import runner

    ctx = runner.get_context(name)
    simulator = GPUSimulator(gpu, costs or DEFAULT_COSTS)
    return [
        runner._make_result(name, label, gpu, algo.simulate(ctx, simulator))
        for label, algo in cells
    ]


def run_sharded(
    pending: dict[str, list[tuple[str, SpGEMMAlgorithm]]],
    gpu: GPUConfig,
    costs: CostModel | None,
    workers: int,
) -> dict[tuple[str, str], "BenchResult"]:
    """Evaluate ``pending`` (dataset -> cells) across a process pool.

    Falls back to the serial path for any cells left outstanding when the
    pool itself fails; exceptions raised by the simulation code propagate.
    """
    from repro.bench import runner

    shards = sorted(pending.items(), key=lambda kv: -_shard_size_estimate(kv[0]))
    results: dict[tuple[str, str], "BenchResult"] = {}
    remaining = dict(shards)
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
            futures = {
                pool.submit(_simulate_shard, name, cells, gpu, costs): name
                for name, cells in shards
            }
            for future in as_completed(futures):
                name = futures[future]
                for res in future.result():
                    results[(name, res.algorithm)] = res
                remaining.pop(name, None)
    except _POOL_ERRORS as exc:
        warnings.warn(
            f"bench worker pool failed ({exc!r}); "
            f"finishing {len(remaining)} shard(s) serially",
            RuntimeWarning,
            stacklevel=2,
        )
        results.update(runner._run_serial(remaining, gpu, costs))
    return results
