"""Bench runner: evaluate algorithms over datasets and GPUs.

Centralises the expensive parts — dataset generation and the per-dataset
:class:`MultiplyContext` (whose symbolic pass costs one full expansion) — so
every experiment module reuses them.  All experiments in
:mod:`repro.bench.experiments` go through :func:`run_matrix` or
:func:`get_context`.

:func:`run_matrix` is also the execution engine's front door: it consults the
persistent :class:`~repro.bench.cache.ResultCache` cell by cell, shards the
remaining (dataset × algorithm) grid across a process pool when ``workers``
allows (see :mod:`repro.bench.parallel`), and merges everything back in
deterministic grid order.  :func:`configure` sets process-wide defaults so
entry points (CLI flags, bench conftest) can opt whole runs into caching and
sharding without threading arguments through every experiment module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import exec as rexec
from repro import obs
from repro.bench.cache import ResultCache
from repro.bench.fingerprint import cell_key, context_key
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.datasets.catalog import get_spec
from repro.datasets.loader import load
from repro.errors import ConfigurationError, FingerprintError
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.costs import CostModel, DEFAULT_COSTS
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.libraries import (
    BhSparseSpGEMM,
    CuspSpGEMM,
    CuSparseSpGEMM,
    MklSpGEMM,
)
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.rowproduct import RowProductSpGEMM

__all__ = [
    "BenchResult",
    "RunSummary",
    "configure",
    "get_context",
    "clear_context_cache",
    "last_run_summary",
    "paper_algorithms",
    "ablation_algorithms",
    "run_matrix",
]

#: Keyed by ``(dataset name, recipe fingerprint)`` — never by name alone, so a
#: respecified dataset (changed generator params or seed) can't be served a
#: stale context.  See tests/test_bench_cache.py::TestContextCacheAudit.
_CTX_CACHE: dict[tuple[str, str], MultiplyContext] = {}


def get_context(dataset_name: str) -> MultiplyContext:
    """Load a dataset and build (or reuse) its multiply context."""
    spec = get_spec(dataset_name)
    key = (dataset_name, context_key(spec))
    if key not in _CTX_CACHE:
        with obs.span(f"context.build[{dataset_name}]", "data") as sp:
            ds = load(dataset_name)
            ctx = MultiplyContext.build(ds.a, ds.b, a_csc=ds.a_csc)
            with obs.span(f"context.symbolic[{dataset_name}]", "data") as sym:
                ctx.c_row_nnz  # force the symbolic pass once, outside any timing
                sym.add(products=int(ctx.total_work), nnz_c=int(ctx.nnz_c))
            sp.add(nnz_a=ctx.a_csr.nnz, nnz_c=int(ctx.nnz_c))
        _CTX_CACHE[key] = ctx
    return _CTX_CACHE[key]


def clear_context_cache() -> None:
    """Drop cached contexts (benches over many datasets bound memory)."""
    _CTX_CACHE.clear()


def paper_algorithms(costs: CostModel = DEFAULT_COSTS) -> list[SpGEMMAlgorithm]:
    """The seven schemes of Figures 8/9, in the paper's legend order."""
    return [
        RowProductSpGEMM(costs),
        OuterProductSpGEMM(costs),
        CuSparseSpGEMM(costs),
        CuspSpGEMM(costs),
        BhSparseSpGEMM(costs),
        MklSpGEMM(costs),
        BlockReorganizer(costs),
    ]


def ablation_algorithms(costs: CostModel = DEFAULT_COSTS) -> dict[str, SpGEMMAlgorithm]:
    """Per-technique variants of Figure 10 (plus the full Reorganizer)."""
    return {
        "B-Limiting": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)
        ),
        "B-Splitting": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)
        ),
        "B-Gathering": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)
        ),
        "Block-Reorganizer": BlockReorganizer(costs),
    }


@dataclass(frozen=True)
class BenchResult:
    """One (algorithm, dataset, GPU) measurement."""

    dataset: str
    algorithm: str
    gpu: str
    seconds: float
    gflops: float
    stats: KernelStats

    def speedup_over(self, baseline: "BenchResult") -> float:
        """Wall-time speedup of this result relative to ``baseline``."""
        return baseline.seconds / self.seconds if self.seconds > 0 else float("inf")


# ----------------------------------------------------------------------
# Process-wide execution defaults
# ----------------------------------------------------------------------
@dataclass
class _RunnerDefaults:
    workers: int = 1
    cache: ResultCache | None = None
    shard_timeout: float | None = 300.0
    exec_workers: int = 1
    exec_partitioner: str = rexec.DEFAULT_PARTITIONER


_DEFAULTS = _RunnerDefaults()
_UNSET = object()


def configure(
    *, workers: int | None = None, cache=_UNSET, shard_timeout=_UNSET,
    exec_workers: int | None = None, exec_partitioner: str | None = None,
) -> None:
    """Set defaults used when :func:`run_matrix` arguments are omitted.

    ``workers`` is clamped to at least 1; ``cache`` is a
    :class:`ResultCache` or None (caching off); ``shard_timeout`` is the
    parallel engine's no-progress window in seconds (None disables it);
    ``exec_workers`` is the :mod:`repro.exec` pool width used for in-process
    numeric kernels (1 = serial, bit-identical either way) and
    ``exec_partitioner`` its cut discipline
    (:data:`repro.exec.PARTITIONER_NAMES`; results are identical, only
    balance differs).  Entry points call this once (e.g. from CLI flags) so
    every experiment module inherits the behaviour.
    """
    if workers is not None:
        _DEFAULTS.workers = max(1, int(workers))
    if cache is not _UNSET:
        _DEFAULTS.cache = cache
    if shard_timeout is not _UNSET:
        _DEFAULTS.shard_timeout = None if shard_timeout is None else float(shard_timeout)
    if exec_workers is not None:
        _DEFAULTS.exec_workers = max(1, int(exec_workers))
    if exec_partitioner is not None:
        if exec_partitioner not in rexec.PARTITIONER_NAMES:
            raise ConfigurationError(
                f"unknown partitioner {exec_partitioner!r}; "
                f"known: {list(rexec.PARTITIONER_NAMES)}"
            )
        _DEFAULTS.exec_partitioner = exec_partitioner


@dataclass
class RunSummary:
    """Execution accounting for one :func:`run_matrix` call.

    ``cells`` is the full grid size, ``cache_hits`` the cells served by the
    persistent result cache, ``computed`` the cells actually simulated this
    run.  ``shard_timeouts`` counts shards the parallel engine declared hung
    and re-ran serially; ``pool_failures`` counts whole-pool breakdowns that
    triggered the serial fallback.
    """

    datasets: int = 0
    cells: int = 0
    cache_hits: int = 0
    computed: int = 0
    shard_timeouts: int = 0
    pool_failures: int = 0


_LAST_SUMMARY = RunSummary()


def last_run_summary() -> RunSummary:
    """The accounting record of the most recent :func:`run_matrix` call."""
    return _LAST_SUMMARY


def _labelled(
    algorithms: Sequence[SpGEMMAlgorithm] | Mapping[str, SpGEMMAlgorithm],
) -> list[tuple[str, SpGEMMAlgorithm]]:
    """Normalise the algorithm roster to ``(label, algorithm)`` pairs.

    A mapping gives explicit labels, which the ablation rosters need — every
    Block Reorganizer variant shares ``name == "block-reorganizer"``.
    """
    if isinstance(algorithms, Mapping):
        return list(algorithms.items())
    return [(algo.name, algo) for algo in algorithms]


def _make_result(
    name: str, label: str, gpu: GPUConfig, stats: KernelStats
) -> BenchResult:
    return BenchResult(
        dataset=name,
        algorithm=label,
        gpu=gpu.name,
        seconds=stats.total_seconds,
        gflops=stats.gflops,
        stats=stats,
    )


def _run_serial(
    pending: dict[str, list[tuple[str, SpGEMMAlgorithm]]],
    gpu: GPUConfig,
    costs: CostModel | None,
) -> dict[tuple[str, str], BenchResult]:
    """Evaluate the remaining cells in-process (the ``workers=1`` path)."""
    simulator = GPUSimulator(gpu, costs or DEFAULT_COSTS)
    out: dict[tuple[str, str], BenchResult] = {}
    for name, cells in pending.items():
        ctx = get_context(name)
        for label, algo in cells:
            out[(name, label)] = _make_result(name, label, gpu, algo.simulate(ctx, simulator))
    return out


def run_matrix(
    datasets: list[str],
    algorithms: Sequence[SpGEMMAlgorithm] | Mapping[str, SpGEMMAlgorithm],
    gpu: GPUConfig = TITAN_XP,
    costs: CostModel | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None = _UNSET,  # type: ignore[assignment]
    shard_timeout: float | None = _UNSET,  # type: ignore[assignment]
    exec_workers: int | None = None,
) -> dict[tuple[str, str], BenchResult]:
    """Simulate every algorithm on every dataset.

    Args:
        datasets: catalog names to evaluate.
        algorithms: a sequence (labelled by ``algo.name``) or an explicit
            ``label -> algorithm`` mapping.
        gpu: simulated hardware configuration.
        costs: the simulator's cost model (defaults to ``DEFAULT_COSTS``).
        workers: process-pool width; ``None`` uses the :func:`configure`
            default, 1 runs serially in-process.
        cache: a :class:`ResultCache` to consult/populate, ``None`` to
            disable; omitted uses the :func:`configure` default.
        shard_timeout: parallel no-progress window in seconds before
            outstanding shards are declared hung and re-run serially;
            omitted uses the :func:`configure` default, None disables.
        exec_workers: :mod:`repro.exec` pool width for the in-process
            numeric kernels (context symbolic passes); results are
            bit-identical at any width.  Omitted uses the :func:`configure`
            default.  Only the serial evaluation path uses it — shard
            workers are already one-per-core and never nest exec pools.

    Returns a dict keyed by ``(dataset, label)`` in deterministic grid order
    (datasets outer, algorithms inner) regardless of execution order, with
    identical results across the serial, parallel and cached paths.
    Accounting for the call is readable afterwards via
    :func:`last_run_summary`; with tracing on (:mod:`repro.obs`) the whole
    call records under a ``bench.run_matrix`` span whose aggregated tree is
    identical for the serial and sharded paths.
    """
    global _LAST_SUMMARY
    labelled = _labelled(algorithms)
    eff_workers = _DEFAULTS.workers if workers is None else max(1, int(workers))
    eff_cache = _DEFAULTS.cache if cache is _UNSET else cache
    eff_timeout = _DEFAULTS.shard_timeout if shard_timeout is _UNSET else shard_timeout
    summary = RunSummary(datasets=len(datasets), cells=len(datasets) * len(labelled))
    _LAST_SUMMARY = summary

    with obs.span("bench.run_matrix", "bench") as run_sp:
        # Phase 1: consult the cache cell by cell.
        results: dict[tuple[str, str], BenchResult] = {}
        keys: dict[tuple[str, str], str | None] = {}
        cache_sp = obs.span("bench.cache", "bench") if eff_cache is not None else obs.NULL_SPAN
        with cache_sp:
            for name in datasets:
                spec = get_spec(name)
                for label, algo in labelled:
                    cell = (name, label)
                    if eff_cache is None:
                        keys[cell] = None
                        continue
                    try:
                        keys[cell] = cell_key(spec, algo, label, gpu, costs or DEFAULT_COSTS)
                    except FingerprintError:
                        keys[cell] = None  # stateful scheme: always recompute
                        continue
                    hit = eff_cache.get(keys[cell])
                    if hit is not None:
                        results[cell] = hit
            summary.cache_hits = len(results)
            cache_sp.add(hits=len(results), misses=summary.cells - len(results))

        # Phase 2: evaluate the misses, sharded across workers when allowed.
        pending: dict[str, list[tuple[str, SpGEMMAlgorithm]]] = {}
        for name in datasets:
            todo = [(label, algo) for label, algo in labelled if (name, label) not in results]
            if todo:
                pending[name] = todo
        if pending:
            eff_exec = (
                _DEFAULTS.exec_workers if exec_workers is None
                else max(1, int(exec_workers))
            )
            if eff_workers > 1 and len(pending) > 1:
                from repro.bench.parallel import run_sharded

                computed = run_sharded(
                    pending, gpu, costs, eff_workers,
                    timeout=eff_timeout, summary=summary,
                )
            else:
                with rexec.engine_scope(
                    eff_exec if eff_exec > 1 else None,
                    partitioner=_DEFAULTS.exec_partitioner,
                ):
                    computed = _run_serial(pending, gpu, costs)
            summary.computed = len(computed)
            for cell, res in computed.items():
                results[cell] = res
                if eff_cache is not None and keys.get(cell):
                    eff_cache.put(keys[cell], res)
        run_sp.add(datasets=summary.datasets, cells=summary.cells)

    # Phase 3: deterministic merge order, independent of completion order.
    return {
        (name, label): results[(name, label)]
        for name in datasets
        for label, _ in labelled
    }
