"""Bench runner: evaluate algorithms over datasets and GPUs.

Centralises the expensive parts — dataset generation and the per-dataset
:class:`MultiplyContext` (whose symbolic pass costs one full expansion) — so
every experiment module reuses them.  All experiments in
:mod:`repro.bench.experiments` go through :func:`run_matrix` or
:func:`get_context`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.loader import load
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.costs import CostModel, DEFAULT_COSTS
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm
from repro.spgemm.outerproduct import OuterProductSpGEMM
from repro.spgemm.rowproduct import RowProductSpGEMM
from repro.spgemm.libraries import (
    BhSparseSpGEMM,
    CuspSpGEMM,
    CuSparseSpGEMM,
    MklSpGEMM,
)
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions

__all__ = [
    "BenchResult",
    "get_context",
    "clear_context_cache",
    "paper_algorithms",
    "ablation_algorithms",
    "run_matrix",
]

_CTX_CACHE: dict[str, MultiplyContext] = {}


def get_context(dataset_name: str) -> MultiplyContext:
    """Load a dataset and build (or reuse) its multiply context."""
    if dataset_name not in _CTX_CACHE:
        ds = load(dataset_name)
        ctx = MultiplyContext.build(ds.a, ds.b, a_csc=ds.a_csc)
        ctx.c_row_nnz  # force the symbolic pass once, outside any timing
        _CTX_CACHE[dataset_name] = ctx
    return _CTX_CACHE[dataset_name]


def clear_context_cache() -> None:
    """Drop cached contexts (benches over many datasets bound memory)."""
    _CTX_CACHE.clear()


def paper_algorithms(costs: CostModel = DEFAULT_COSTS) -> list[SpGEMMAlgorithm]:
    """The seven schemes of Figures 8/9, in the paper's legend order."""
    return [
        RowProductSpGEMM(costs),
        OuterProductSpGEMM(costs),
        CuSparseSpGEMM(costs),
        CuspSpGEMM(costs),
        BhSparseSpGEMM(costs),
        MklSpGEMM(costs),
        BlockReorganizer(costs),
    ]


def ablation_algorithms(costs: CostModel = DEFAULT_COSTS) -> dict[str, SpGEMMAlgorithm]:
    """Per-technique variants of Figure 10 (plus the full Reorganizer)."""
    return {
        "B-Limiting": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_splitting=False, enable_gathering=False)
        ),
        "B-Splitting": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_gathering=False, enable_limiting=False)
        ),
        "B-Gathering": BlockReorganizer(
            costs, options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)
        ),
        "Block-Reorganizer": BlockReorganizer(costs),
    }


@dataclass(frozen=True)
class BenchResult:
    """One (algorithm, dataset, GPU) measurement."""

    dataset: str
    algorithm: str
    gpu: str
    seconds: float
    gflops: float
    stats: KernelStats

    def speedup_over(self, baseline: "BenchResult") -> float:
        """Wall-time speedup of this result relative to ``baseline``."""
        return baseline.seconds / self.seconds if self.seconds > 0 else float("inf")


def run_matrix(
    datasets: list[str],
    algorithms: list[SpGEMMAlgorithm],
    gpu: GPUConfig = TITAN_XP,
    costs: CostModel | None = None,
) -> dict[tuple[str, str], BenchResult]:
    """Simulate every algorithm on every dataset.

    Returns a dict keyed by ``(dataset, algorithm-name)``.
    """
    simulator = GPUSimulator(gpu, costs or DEFAULT_COSTS)
    results: dict[tuple[str, str], BenchResult] = {}
    for name in datasets:
        ctx = get_context(name)
        for algo in algorithms:
            stats = algo.simulate(ctx, simulator)
            results[(name, algo.name)] = BenchResult(
                dataset=name,
                algorithm=algo.name,
                gpu=gpu.name,
                seconds=stats.total_seconds,
                gflops=stats.gflops,
                stats=stats,
            )
    return results
