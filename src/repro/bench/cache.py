"""Persistent, content-addressed cache for bench results.

Every bench cell is a deterministic simulation, so its
:class:`~repro.bench.runner.BenchResult` can be stored on disk keyed by the
fingerprint of its inputs (see :mod:`repro.bench.fingerprint`) and replayed
on any later run — ``tools/full28.py`` or a ``benchmarks/bench_fig*.py``
rerun only pays for cells whose inputs actually changed.

Design points:

* **Layout** — one JSON file per cell under ``~/.cache/repro`` (override with
  the ``REPRO_CACHE_DIR`` environment variable or an explicit ``cache_dir``),
  sharded into 256 two-hex-digit subdirectories to keep directories small.
* **Lossless payloads** — the whole :class:`KernelStats` round-trips,
  per-phase counters and per-SM cycle arrays included, so a cached
  :class:`BenchResult` is byte-identical (in serialised form) to a freshly
  simulated one.
* **Invalidation** — a ``schema`` stamp in both the key and the payload; a
  mismatch is a miss, never an error.
* **Corruption recovery** — unreadable, truncated or malformed entries are
  treated as misses and deleted best-effort; a broken cache can only cost
  time, not correctness.
* **Atomic writes** — entries are written to a temp file and ``os.replace``d
  into place, so concurrent writers (the parallel runner, two CLI runs)
  cannot tear each other's files.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.bench.fingerprint import SCHEMA_VERSION
from repro.gpusim.config import GPUConfig
from repro.gpusim.stats import KernelStats, PhaseStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.bench.runner import BenchResult

__all__ = [
    "ResultCache",
    "default_cache_dir",
    "result_to_dict",
    "result_from_dict",
    "stats_roundtrip_dict",
]

_ARRAY_FIELDS = ("sm_busy_cycles", "sm_finish_cycles")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _jsonify(value):
    """Reduce numpy scalars/arrays to plain Python for JSON encoding."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _phase_to_dict(phase: PhaseStats) -> dict:
    out = {}
    for f in dataclasses.fields(PhaseStats):
        out[f.name] = _jsonify(getattr(phase, f.name))
    return out


def _phase_from_dict(d: dict) -> PhaseStats:
    kwargs = dict(d)
    for name in _ARRAY_FIELDS:
        kwargs[name] = np.asarray(kwargs[name], dtype=np.float64)
    return PhaseStats(**kwargs)


def stats_roundtrip_dict(stats: KernelStats) -> dict:
    """Lossless dict form of :class:`KernelStats` (cf. the *reporting* dict in
    :mod:`repro.gpusim.export`, which flattens to derived metrics)."""
    return {
        "algorithm": stats.algorithm,
        "config": dataclasses.asdict(stats.config),
        "host_seconds": stats.host_seconds,
        "device_setup_cycles": stats.device_setup_cycles,
        "meta": _jsonify(stats.meta),
        "phases": [_phase_to_dict(p) for p in stats.phases],
    }


def _stats_from_dict(d: dict) -> KernelStats:
    return KernelStats(
        algorithm=d["algorithm"],
        config=GPUConfig(**d["config"]),
        phases=[_phase_from_dict(p) for p in d["phases"]],
        host_seconds=d["host_seconds"],
        device_setup_cycles=d["device_setup_cycles"],
        meta=dict(d["meta"]),
    )


def result_to_dict(result: "BenchResult") -> dict:
    """Serialise one bench cell losslessly (inverse of :func:`result_from_dict`)."""
    return {
        "dataset": result.dataset,
        "algorithm": result.algorithm,
        "gpu": result.gpu,
        "seconds": result.seconds,
        "gflops": result.gflops,
        "stats": stats_roundtrip_dict(result.stats),
    }


def result_from_dict(d: dict) -> "BenchResult":
    from repro.bench.runner import BenchResult

    return BenchResult(
        dataset=d["dataset"],
        algorithm=d["algorithm"],
        gpu=d["gpu"],
        seconds=d["seconds"],
        gflops=d["gflops"],
        stats=_stats_from_dict(d["stats"]),
    )


class ResultCache:
    """Content-addressed on-disk store of :class:`BenchResult` payloads.

    ``get``/``put`` never raise on cache trouble: a damaged entry reads as a
    miss (and is deleted best-effort), a failed write is dropped.  Hit/miss
    counters make behaviour observable in benches and tests.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.write_errors = 0

    def path_for(self, key: str) -> Path:
        """Sharded location of a cache entry (keys are sha256 hex digests)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> "BenchResult | None":
        """Return the cached result for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._evict(path)
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            self._evict(path)
            self.misses += 1
            return None
        try:
            result = result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: "BenchResult") -> None:
        """Atomically persist ``result`` under ``key`` (best-effort)."""
        path = self.path_for(key)
        payload = {"schema": SCHEMA_VERSION, "key": key, "result": result_to_dict(result)}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            self.write_errors += 1

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry under this cache's directory; returns the count."""
        removed = 0
        if not self.cache_dir.exists():
            return removed
        for path in self.cache_dir.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ResultCache dir={str(self.cache_dir)!r} "
            f"hits={self.hits} misses={self.misses}>"
        )
