"""Bench harness: runner, tables and per-figure experiment modules."""

from repro.bench.runner import (
    BenchResult,
    ablation_algorithms,
    clear_context_cache,
    get_context,
    paper_algorithms,
    run_matrix,
)
from repro.bench.tables import format_table, geomean

__all__ = [
    "BenchResult",
    "ablation_algorithms",
    "clear_context_cache",
    "get_context",
    "paper_algorithms",
    "run_matrix",
    "format_table",
    "geomean",
]
