"""Bench harness: runner, result cache, parallel engine and experiments."""

from repro.bench.cache import ResultCache, default_cache_dir
from repro.bench.fingerprint import SCHEMA_VERSION, cell_key, context_key
from repro.bench.parallel import default_workers
from repro.bench.runner import (
    BenchResult,
    ablation_algorithms,
    clear_context_cache,
    configure,
    get_context,
    paper_algorithms,
    run_matrix,
)
from repro.bench.tables import format_table, geomean

__all__ = [
    "BenchResult",
    "ResultCache",
    "SCHEMA_VERSION",
    "ablation_algorithms",
    "cell_key",
    "clear_context_cache",
    "configure",
    "context_key",
    "default_cache_dir",
    "default_workers",
    "get_context",
    "paper_algorithms",
    "run_matrix",
    "format_table",
    "geomean",
]
