"""Figure 11: load-balancing effectiveness of B-Splitting.

Sweeps the splitting factor from 1 to 64 on the Stanford (skewed) datasets
and reports, for the *dominator* execution only (as the paper measures):
the Load Balancing Index and the speedup over factor 1.  Expected shape: LBI
climbs from ~0.2 toward ~0.95 as the factor approaches the SM count, and the
most cache-sensitive sets keep improving past the SM count (the B-Splitting
cache dividend of Section VI-A2).  The paper reports LBI 0.17 -> 0.96 and an
8.68x average dominator speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import get_context
from repro.bench.tables import format_table, geomean
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.datasets.stanford import STANFORD_NAMES
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.metrics.lbi import load_balancing_index

__all__ = ["FACTORS", "Fig11Result", "run", "format_result", "main"]

FACTORS = [1, 2, 4, 8, 16, 32, 64]


@dataclass(frozen=True)
class Fig11Result:
    """Dominator-phase LBI and speedup per (dataset, factor)."""

    datasets: list[str]
    lbi: dict[tuple[str, int], float]
    speedup: dict[tuple[str, int], float]  # vs factor 1


def _dominator_phase(stats):
    for p in stats.phases:
        if p.name == "expansion-dominator":
            return p
    return None


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> Fig11Result:
    """Sweep splitting factors over the skewed datasets."""
    datasets = datasets or list(STANFORD_NAMES)
    sim = GPUSimulator(gpu)
    lbi: dict[tuple[str, int], float] = {}
    speedup: dict[tuple[str, int], float] = {}
    kept = []
    for name in datasets:
        ctx = get_context(name)
        base_cycles = None
        rows = {}
        for factor in FACTORS:
            algo = BlockReorganizer(
                options=ReorganizerOptions(splitting_factor=factor, enable_limiting=False)
            )
            stats = algo.simulate(ctx, sim)
            phase = _dominator_phase(stats)
            if phase is None:  # dataset produced no dominators
                rows = {}
                break
            rows[factor] = (load_balancing_index(phase.sm_busy_cycles), phase.makespan_cycles)
            if factor == 1:
                base_cycles = phase.makespan_cycles
        if not rows:
            continue
        kept.append(name)
        for factor, (l, cycles) in rows.items():
            lbi[(name, factor)] = l
            speedup[(name, factor)] = base_cycles / cycles
    return Fig11Result(datasets=kept, lbi=lbi, speedup=speedup)


def format_result(result: Fig11Result) -> str:
    """Render LBI and speedup tables over the factor sweep."""
    lbi_rows = [
        [name] + [result.lbi[(name, f)] for f in FACTORS] for name in result.datasets
    ]
    sp_rows = [
        [name] + [result.speedup[(name, f)] for f in FACTORS] for name in result.datasets
    ]
    sp_rows.append(
        ["GEOMEAN"] + [geomean(result.speedup[(n, f)] for n in result.datasets) for f in FACTORS]
    )
    headers = ["dataset"] + [f"x{f}" for f in FACTORS]
    return "\n".join(
        [
            format_table(
                headers,
                lbi_rows,
                title="Fig 11: dominator-phase LBI vs splitting factor",
                col_width=7,
            ),
            format_table(
                headers,
                sp_rows,
                title="\nFig 11: dominator speedup vs splitting factor (factor 1 = 1.0)",
                col_width=7,
            ),
        ]
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
