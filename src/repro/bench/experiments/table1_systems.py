"""Table I: target system configurations.

Prints the three evaluation systems exactly as the paper tabulates them,
from the :mod:`repro.gpusim.config` constants the simulator runs on.
"""

from __future__ import annotations

from repro.bench.tables import format_table
from repro.gpusim.config import SYSTEM_1, SYSTEM_2, SYSTEM_3

__all__ = ["run", "format_result", "main"]


def run() -> list[dict]:
    """Collect the rows of Table I."""
    rows = []
    systems = (("System 1", SYSTEM_1), ("System 2", SYSTEM_2), ("System 3", SYSTEM_3))
    for label, (cpu, gpu) in systems:
        rows.append(
            {
                "system": label,
                "cpu": cpu.name,
                "cores/threads": f"{cpu.cores}/{cpu.threads}",
                "cpu_clock_ghz": cpu.clock_ghz,
                "gpu": gpu.name,
                "n_sms": gpu.n_sms,
                "gpu_clock_mhz": gpu.clock_mhz,
                "cc": gpu.compute_capability,
            }
        )
    return rows


def format_result(rows: list[dict]) -> str:
    """Render Table I."""
    headers = ["System", "CPU", "C/T", "CPU GHz", "GPU", "SMs", "GPU MHz", "CC"]
    table_rows = [
        [r["system"], r["cpu"], r["cores/threads"], r["cpu_clock_ghz"], r["gpu"],
         r["n_sms"], float(r["gpu_clock_mhz"]), r["cc"]]
        for r in rows
    ]
    return format_table(headers, table_rows, title="Table I: target system configurations",
                        first_col_width=10, col_width=16)


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
