"""Figure 14: L2 throughput vs B-Limiting factor.

Sweeps the limiting factor (extra shared memory in 6144-byte steps) on the
skewed Stanford datasets and reports the merge stage's L2 read/write
throughput and execution time.  Expected shape: throughput first rises as
fewer co-resident merge blocks stop thrashing L2, then falls once occupancy
drops too far — the interior optimum the paper settles at factor 4
(read 1.49x, write 1.52x on average at the chosen point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import get_context
from repro.bench.tables import format_table, geomean
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.datasets.stanford import STANFORD_NAMES
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.simulator import GPUSimulator

__all__ = ["LIMIT_FACTORS", "Fig14Result", "run", "format_result", "main"]

LIMIT_FACTORS = [0, 1, 2, 4, 6, 8, 10]


@dataclass(frozen=True)
class Fig14Result:
    """Merge-stage L2 throughput and time per (dataset, limiting factor)."""

    datasets: list[str]
    read_gbs: dict[tuple[str, int], float]
    write_gbs: dict[tuple[str, int], float]
    merge_seconds: dict[tuple[str, int], float]


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> Fig14Result:
    """Sweep limiting factors over the skewed datasets."""
    datasets = datasets or list(STANFORD_NAMES)
    sim = GPUSimulator(gpu)
    read, write, secs = {}, {}, {}
    for name in datasets:
        ctx = get_context(name)
        for factor in LIMIT_FACTORS:
            algo = BlockReorganizer(
                options=ReorganizerOptions(
                    enable_splitting=False,
                    enable_gathering=False,
                    limiting_factor=factor,
                )
            )
            stats = algo.simulate(ctx, sim)
            read[(name, factor)] = stats.l2_read_gbs("merge")
            write[(name, factor)] = stats.l2_write_gbs("merge")
            secs[(name, factor)] = stats.stage_seconds("merge")
    return Fig14Result(datasets=datasets, read_gbs=read, write_gbs=write, merge_seconds=secs)


def format_result(result: Fig14Result) -> str:
    """Render the factor sweep (read throughput + merge time)."""
    headers = ["dataset"] + [f"f={f}" for f in LIMIT_FACTORS]
    read_rows = [
        [name] + [result.read_gbs[(name, f)] for f in LIMIT_FACTORS]
        for name in result.datasets
    ]
    time_rows = [
        [name] + [result.merge_seconds[(name, f)] * 1e6 for f in LIMIT_FACTORS]
        for name in result.datasets
    ]
    ratio_row = ["GEOMEAN vs f=0"]
    for f in LIMIT_FACTORS:
        ratio_row.append(
            geomean(
                result.read_gbs[(n, f)] / max(result.read_gbs[(n, 0)], 1e-12)
                for n in result.datasets
            )
        )
    read_rows.append(ratio_row)
    return "\n".join(
        [
            format_table(headers, read_rows,
                         title="Fig 14: merge-stage L2 read throughput (GB/s) vs limiting factor",
                         col_width=9),
            format_table(headers, time_rows,
                         title="\nFig 14: merge time (us) vs limiting factor", col_width=9),
        ]
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
