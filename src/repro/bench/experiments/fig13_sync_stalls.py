"""Figure 13: sync-stall reduction from B-Gathering.

Profiles the expansion stage's synchronisation-stall percentage (idle
lock-step lanes waiting on effective lanes — what nvprof attributes to
``__syncthreads``/barriers) before gathering (outer-product baseline, fixed
block size) and after (Block Reorganizer with B-Gathering).  The paper shows
the stall share collapsing once combined blocks fill their warps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import get_context
from repro.bench.tables import format_table
from repro.bench.experiments.table2_datasets import ALL_REAL_WORLD
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.outerproduct import OuterProductSpGEMM

__all__ = ["Fig13Result", "run", "format_result", "main"]


@dataclass(frozen=True)
class Fig13Result:
    """Expansion-stage sync-stall percentage before/after gathering."""

    datasets: list[str]
    before_pct: dict[str, float]
    after_pct: dict[str, float]


def _expansion_stall_pct(stats) -> float:
    phases = [p for p in stats.phases if p.stage == "expansion"]
    busy = sum(p.busy_cycles for p in phases)
    stall = sum(p.sync_stall_cycles for p in phases)
    return 100.0 * stall / busy if busy > 0 else 0.0


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> Fig13Result:
    """Profile stall percentages for baseline and gathered expansion."""
    datasets = datasets or ALL_REAL_WORLD
    sim = GPUSimulator(gpu)
    baseline = OuterProductSpGEMM()
    gathered = BlockReorganizer(
        options=ReorganizerOptions(enable_splitting=False, enable_limiting=False)
    )
    before, after = {}, {}
    for name in datasets:
        ctx = get_context(name)
        before[name] = _expansion_stall_pct(baseline.simulate(ctx, sim))
        after[name] = _expansion_stall_pct(gathered.simulate(ctx, sim))
    return Fig13Result(datasets=datasets, before_pct=before, after_pct=after)


def format_result(result: Fig13Result) -> str:
    """Render before/after stall percentages."""
    rows = [
        [name, result.before_pct[name], result.after_pct[name],
         result.before_pct[name] - result.after_pct[name]]
        for name in result.datasets
    ]
    return format_table(
        ["dataset", "stall% before", "stall% after", "reduction"],
        rows,
        title="Fig 13: expansion sync stalls before/after B-Gathering",
        col_width=14,
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
