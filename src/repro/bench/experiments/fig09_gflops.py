"""Figure 9: absolute performance (GFLOPS) on the real-world datasets.

Same matrix of runs as Figure 8, reported as absolute GFLOPS
(2 x nnz(C-hat) / time).  The paper's numbers top out around 16 GFLOPS;
shape fidelity means the same schemes lead on the same datasets and the
magnitudes stay in the same single-to-low-double-digit band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import paper_algorithms, run_matrix
from repro.bench.tables import format_table
from repro.bench.experiments.fig08_speedup import ALGO_ORDER
from repro.bench.experiments.table2_datasets import ALL_REAL_WORLD
from repro.gpusim.config import GPUConfig, TITAN_XP

__all__ = ["Fig09Result", "run", "format_result", "main"]


@dataclass(frozen=True)
class Fig09Result:
    """Absolute GFLOPS per (dataset, algorithm)."""

    datasets: list[str]
    gflops: dict[tuple[str, str], float]


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> Fig09Result:
    """Simulate all seven schemes and collect GFLOPS."""
    datasets = datasets or ALL_REAL_WORLD
    results = run_matrix(datasets, paper_algorithms(), gpu)
    return Fig09Result(
        datasets=datasets,
        gflops={
            (name, algo): results[(name, algo)].gflops
            for name in datasets
            for algo in ALGO_ORDER
        },
    )


def format_result(result: Fig09Result) -> str:
    """Render the GFLOPS table."""
    rows = [
        [name] + [result.gflops[(name, algo)] for algo in ALGO_ORDER]
        for name in result.datasets
    ]
    return format_table(
        ["dataset"] + ALGO_ORDER,
        rows,
        title="Fig 9: absolute performance in GFLOPS (TITAN Xp)",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
