"""Figure 16: synthetic datasets.

Panel (a): ``C = A^2`` on the Table III S (scalability), P (skewness) and SP
(sparsity) families.  Expected shapes: cuSPARSE wins the smallest set (s1,
where Block Reorganizer's preprocessing dominates); Block Reorganizer pulls
ahead as size, skew or sparsity grow, with splitting/limiting driving the
skewness wins.

Panel (b): ``C = A B`` on Graph500 R-MAT pairs; the paper reports a 1.09x
average Block Reorganizer gain, mostly from gathering (AB outputs are denser,
so fewer dominators).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import paper_algorithms, run_matrix
from repro.bench.tables import format_table, geomean
from repro.bench.experiments.fig08_speedup import ALGO_ORDER
from repro.datasets.synthetic import AB_NAMES, P_NAMES, S_NAMES, SP_NAMES
from repro.gpusim.config import GPUConfig, TITAN_XP

__all__ = ["Fig16Result", "run", "format_result", "main"]


@dataclass(frozen=True)
class Fig16Result:
    """Speedups over row-product for panels (a) and (b)."""

    a_datasets: list[str]
    b_datasets: list[str]
    speedups: dict[tuple[str, str], float]


def run(
    a_datasets: list[str] | None = None,
    b_datasets: list[str] | None = None,
    gpu: GPUConfig = TITAN_XP,
) -> Fig16Result:
    """Run all seven schemes over both synthetic panels."""
    a_datasets = a_datasets if a_datasets is not None else S_NAMES + P_NAMES + SP_NAMES
    b_datasets = b_datasets if b_datasets is not None else list(AB_NAMES)
    results = run_matrix(a_datasets + b_datasets, paper_algorithms(), gpu)
    speedups = {}
    for name in a_datasets + b_datasets:
        base = results[(name, "row-product")].seconds
        for algo in ALGO_ORDER:
            speedups[(name, algo)] = base / results[(name, algo)].seconds
    return Fig16Result(a_datasets=a_datasets, b_datasets=b_datasets, speedups=speedups)


def format_result(result: Fig16Result) -> str:
    """Render both panels."""
    parts = []
    if result.a_datasets:
        rows = [[n] + [result.speedups[(n, a)] for a in ALGO_ORDER] for n in result.a_datasets]
        parts.append(format_table(["dataset"] + ALGO_ORDER, rows,
                                  title="Fig 16(a): C = A^2 on synthetic S/P/SP sets "
                                        "(speedup over row-product)"))
    if result.b_datasets:
        rows = [[n] + [result.speedups[(n, a)] for a in ALGO_ORDER] for n in result.b_datasets]
        rows.append(
            ["GEOMEAN"]
            + [geomean(result.speedups[(n, a)] for n in result.b_datasets) for a in ALGO_ORDER]
        )
        parts.append(format_table(["dataset"] + ALGO_ORDER, rows,
                                  title="\nFig 16(b): C = A B on Graph500 pairs "
                                        "(paper: Block Reorganizer 1.09x average)"))
    return "\n".join(parts)


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
