"""Experiment modules: one per table/figure of the paper.

Each module exposes ``run(...)`` returning structured results,
``format_result(...)`` rendering the paper's rows/series as an ASCII table,
and ``main()`` for command-line use (``python -m
repro.bench.experiments.fig08_speedup``).
"""

from repro.bench.experiments import (  # noqa: F401
    fig03_motivation,
    fig08_speedup,
    fig09_gflops,
    fig10_techniques,
    fig11_lbi,
    fig12_l2_split,
    fig13_sync_stalls,
    fig14_l2_limit,
    fig15_scalability,
    fig16_synthetic,
    sec4e_youtube,
    table1_systems,
    table2_datasets,
    table3_datasets,
)

__all__ = [
    "fig03_motivation",
    "fig08_speedup",
    "fig09_gflops",
    "fig10_techniques",
    "fig11_lbi",
    "fig12_l2_split",
    "fig13_sync_stalls",
    "fig14_l2_limit",
    "fig15_scalability",
    "fig16_synthetic",
    "sec4e_youtube",
    "table1_systems",
    "table2_datasets",
    "table3_datasets",
]
