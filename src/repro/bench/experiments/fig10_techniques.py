"""Figure 10: relative performance of each technique.

Runs B-Limiting, B-Splitting and B-Gathering in isolation (each applied to
the outer-product baseline, as the paper does) plus the full Block
Reorganizer, normalised to the outer-product baseline.  The paper's average
gains are 1.05x, 1.05x, 1.28x and 1.51x respectively; the expected shape is
that gathering helps nearly everywhere while splitting and limiting
concentrate their (large) gains on the skewed Stanford sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import ablation_algorithms, get_context
from repro.bench.tables import format_table, geomean
from repro.bench.experiments.table2_datasets import ALL_REAL_WORLD
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.outerproduct import OuterProductSpGEMM

__all__ = ["TECHNIQUES", "Fig10Result", "run", "format_result", "main"]

TECHNIQUES = ["B-Limiting", "B-Splitting", "B-Gathering", "Block-Reorganizer"]

PAPER_GEOMEANS = {
    "B-Limiting": 1.05,
    "B-Splitting": 1.05,
    "B-Gathering": 1.28,
    "Block-Reorganizer": 1.51,
}


@dataclass(frozen=True)
class Fig10Result:
    """Per-technique speedups over the outer-product baseline."""

    datasets: list[str]
    speedups: dict[tuple[str, str], float]

    def geomeans(self) -> dict[str, float]:
        return {
            t: geomean(self.speedups[(d, t)] for d in self.datasets) for t in TECHNIQUES
        }


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> Fig10Result:
    """Simulate the ablation variants and the outer baseline."""
    datasets = datasets or ALL_REAL_WORLD
    sim = GPUSimulator(gpu)
    variants = ablation_algorithms()
    speedups = {}
    for name in datasets:
        ctx = get_context(name)
        base = OuterProductSpGEMM().simulate(ctx, sim).total_seconds
        for label, algo in variants.items():
            speedups[(name, label)] = base / algo.simulate(ctx, sim).total_seconds
    return Fig10Result(datasets=datasets, speedups=speedups)


def format_result(result: Fig10Result) -> str:
    """Render per-dataset technique speedups + geomeans."""
    rows = [
        [name] + [result.speedups[(name, t)] for t in TECHNIQUES]
        for name in result.datasets
    ]
    gm = result.geomeans()
    rows.append(["GEOMEAN"] + [gm[t] for t in TECHNIQUES])
    rows.append(["paper"] + [PAPER_GEOMEANS[t] for t in TECHNIQUES])
    return format_table(
        ["dataset"] + TECHNIQUES,
        rows,
        title="Fig 10: per-technique speedup over the outer-product baseline",
        col_width=17,
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
