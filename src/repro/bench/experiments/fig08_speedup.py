"""Figure 8: normalized speedup on the 28 real-world datasets.

Runs the two baselines, the four libraries and the Block Reorganizer on every
real-world dataset and prints speedups normalized to the row-product
baseline, plus the geometric-mean row the paper quotes (Block Reorganizer
1.43x; outer-product 0.95x; cuSPARSE 0.29x; CUSP 0.22x; bhSPARSE 0.55x;
MKL 0.48x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import paper_algorithms, run_matrix
from repro.bench.tables import format_table, geomean
from repro.bench.experiments.table2_datasets import ALL_REAL_WORLD
from repro.gpusim.config import GPUConfig, TITAN_XP

__all__ = ["ALGO_ORDER", "Fig08Result", "run", "format_result", "main"]

ALGO_ORDER = [
    "row-product",
    "outer-product",
    "cusparse",
    "cusp",
    "bhsparse",
    "mkl",
    "block-reorganizer",
]

PAPER_GEOMEANS = {
    "row-product": 1.0,
    "outer-product": 0.95,
    "cusparse": 0.29,
    "cusp": 0.22,
    "bhsparse": 0.55,
    "mkl": 0.48,
    "block-reorganizer": 1.43,
}


@dataclass(frozen=True)
class Fig08Result:
    """Speedups normalised to the row-product baseline."""

    datasets: list[str]
    speedups: dict[tuple[str, str], float]  # (dataset, algorithm) -> speedup

    def geomeans(self) -> dict[str, float]:
        return {
            algo: geomean(self.speedups[(d, algo)] for d in self.datasets)
            for algo in ALGO_ORDER
        }


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> Fig08Result:
    """Simulate all seven schemes on all datasets."""
    datasets = datasets or ALL_REAL_WORLD
    results = run_matrix(datasets, paper_algorithms(), gpu)
    speedups = {}
    for name in datasets:
        base = results[(name, "row-product")].seconds
        for algo in ALGO_ORDER:
            speedups[(name, algo)] = base / results[(name, algo)].seconds
    return Fig08Result(datasets=datasets, speedups=speedups)


def format_result(result: Fig08Result) -> str:
    """Render per-dataset speedups + geomean + the paper's reference row."""
    rows = [
        [name] + [result.speedups[(name, algo)] for algo in ALGO_ORDER]
        for name in result.datasets
    ]
    gm = result.geomeans()
    rows.append(["GEOMEAN"] + [gm[a] for a in ALGO_ORDER])
    rows.append(["paper"] + [PAPER_GEOMEANS[a] for a in ALGO_ORDER])
    return format_table(
        ["dataset"] + ALGO_ORDER,
        rows,
        title="Fig 8: speedup over the row-product baseline (TITAN Xp)",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
