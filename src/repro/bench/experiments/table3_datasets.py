"""Table III: synthetic datasets.

Prints the S (scalability), P (skewness), SP (sparsity) and AB (C = A B)
families with their R-MAT parameters and the realised stand-in statistics
(dimensions are scaled down by ``SYNTH_SCALE``; AB scales shift by
``AB_SCALE_SHIFT`` — both recorded in the table).
"""

from __future__ import annotations

from repro.bench.runner import get_context
from repro.bench.tables import format_table
from repro.datasets.catalog import get_spec
from repro.datasets.synthetic import AB_NAMES, P_NAMES, S_NAMES, SP_NAMES

__all__ = ["run", "format_result", "main", "ALL_SYNTHETIC"]

ALL_SYNTHETIC = S_NAMES + P_NAMES + SP_NAMES + AB_NAMES


def run(datasets: list[str] | None = None) -> list[dict]:
    """Collect per-set parameters and realised statistics."""
    rows = []
    for name in datasets or ALL_SYNTHETIC:
        spec = get_spec(name)
        ctx = get_context(name)
        params = spec.params.get("probs", spec.params)
        rows.append(
            {
                "name": name,
                "operation": spec.operation,
                "paper_dim": spec.paper_dim,
                "paper_nnz": spec.paper_nnz_a,
                "dim": ctx.a_csr.n_rows,
                "nnz_a": ctx.a_csr.nnz,
                "nnz_chat": ctx.total_work,
                "params": str(params),
            }
        )
    return rows


def format_result(rows: list[dict]) -> str:
    """Render Table III."""
    headers = ["name", "op", "paper dim", "paper nnz", "dim", "nnz(A)", "nnz(Chat)", "parameters"]
    table_rows = [
        [r["name"], r["operation"], r["paper_dim"], r["paper_nnz"],
         r["dim"], r["nnz_a"], r["nnz_chat"], r["params"]]
        for r in rows
    ]
    return format_table(headers, table_rows,
                        title="Table III: synthetic datasets (paper sizes vs scaled stand-ins)",
                        col_width=11)


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
