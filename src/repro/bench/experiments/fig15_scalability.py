"""Figure 15: performance scalability on different GPU architectures.

Runs the full real-world suite on Titan Xp (Pascal), Tesla V100 (Volta) and
RTX 2080 Ti (Turing) and reports each scheme's geometric-mean speedup over
the row-product baseline per GPU.  The paper reports Block Reorganizer at
1.43x / 1.66x / 1.40x respectively — largest on the V100, whose 80 SMs make
block-level imbalance the most expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import paper_algorithms, run_matrix
from repro.bench.tables import format_table, geomean
from repro.bench.experiments.fig08_speedup import ALGO_ORDER
from repro.bench.experiments.table2_datasets import ALL_REAL_WORLD
from repro.gpusim.config import ALL_GPUS, GPUConfig

__all__ = ["Fig15Result", "run", "format_result", "main"]

PAPER_BR = {"TITAN Xp": 1.43, "Tesla V100": 1.66, "RTX 2080 Ti": 1.40}


@dataclass(frozen=True)
class Fig15Result:
    """Geomean speedup over row-product, per GPU and algorithm."""

    gpus: list[str]
    geomeans: dict[tuple[str, str], float]  # (gpu, algorithm)


def run(
    datasets: list[str] | None = None, gpus: tuple[GPUConfig, ...] = ALL_GPUS
) -> Fig15Result:
    """Run the full matrix on every GPU."""
    datasets = datasets or ALL_REAL_WORLD
    out: dict[tuple[str, str], float] = {}
    for gpu in gpus:
        results = run_matrix(datasets, paper_algorithms(), gpu)
        for algo in ALGO_ORDER:
            out[(gpu.name, algo)] = geomean(
                results[(d, "row-product")].seconds / results[(d, algo)].seconds
                for d in datasets
            )
    return Fig15Result(gpus=[g.name for g in gpus], geomeans=out)


def format_result(result: Fig15Result) -> str:
    """Render per-GPU geomean speedups."""
    rows = []
    for gpu in result.gpus:
        rows.append([gpu] + [result.geomeans[(gpu, a)] for a in ALGO_ORDER])
    rows.append(
        ["paper (BR only)"]
        + [PAPER_BR.get(gpu) if a == "block-reorganizer" else float("nan")
           for gpu in ["TITAN Xp"] for a in ALGO_ORDER]
    )
    return format_table(
        ["GPU"] + ALGO_ORDER,
        rows[:-1],
        title="Fig 15: geomean speedup over row-product per GPU "
        f"(paper BR: {PAPER_BR})",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
