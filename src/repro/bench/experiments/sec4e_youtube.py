"""Section IV-E walkthrough: putting it all together on YouTube.

Reproduces the paper's worked example: classification counts (the paper
finds 713 dominator pairs, 362 736 low performers, 12 657 limited rows on
the full-size youtube graph — our stand-in is ~1/27 linear scale, so counts
shrink proportionally while the *shares* stay comparable), then the
incremental gain of each technique over the outer-product baseline and the
combined Block Reorganizer gain (paper: +10.4% splitting with SM utilisation
16% -> 99%, +6.7% gathering, +16.8% limiting, +41.5% combined).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import ablation_algorithms, get_context
from repro.bench.tables import format_table
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.outerproduct import OuterProductSpGEMM

__all__ = ["Sec4ERow", "run", "format_result", "main"]

PAPER_GAINS = {
    "B-Splitting": 1.104,
    "B-Gathering": 1.067,
    "B-Limiting": 1.168,
    "Block-Reorganizer": 1.415,
}


@dataclass(frozen=True)
class Sec4ERow:
    """Classification counts + per-technique gains for one dataset."""

    dataset: str
    n_pairs: int
    n_dominators: int
    n_underloaded: int
    n_limited_rows: int
    sm_util_before: float
    sm_util_after_split: float
    gains: dict[str, float]


def run(dataset: str = "youtube", gpu: GPUConfig = TITAN_XP) -> Sec4ERow:
    """Run the walkthrough on the (stand-in) YouTube graph."""
    ctx = get_context(dataset)
    sim = GPUSimulator(gpu)
    base_stats = OuterProductSpGEMM().simulate(ctx, sim)
    base = base_stats.total_seconds

    gains = {}
    meta = {}
    split_util = float("nan")
    for label, algo in ablation_algorithms().items():
        stats = algo.simulate(ctx, sim)
        gains[label] = base / stats.total_seconds
        if label == "Block-Reorganizer":
            meta = stats.meta
        if label == "B-Splitting":
            split_util = stats.sm_utilization("expansion")
    return Sec4ERow(
        dataset=dataset,
        n_pairs=int((ctx.pair_work > 0).sum()),
        n_dominators=int(meta.get("n_dominators", 0)),
        n_underloaded=int(meta.get("n_underloaded", 0)),
        n_limited_rows=int(meta.get("n_limited_rows", 0)),
        sm_util_before=base_stats.sm_utilization("expansion"),
        sm_util_after_split=split_util,
        gains=gains,
    )


def format_result(row: Sec4ERow) -> str:
    """Render the walkthrough."""
    lines = [
        f"Section IV-E walkthrough on {row.dataset!r} (stand-in)",
        f"  non-empty pairs:       {row.n_pairs}",
        f"  dominator pairs:       {row.n_dominators}"
        f"  ({100.0 * row.n_dominators / max(row.n_pairs, 1):.2f}% — paper: 713 of ~1.1M)",
        f"  low-performer pairs:   {row.n_underloaded}"
        f"  ({100.0 * row.n_underloaded / max(row.n_pairs, 1):.1f}% — paper: 362736)",
        f"  B-Limited rows:        {row.n_limited_rows}  (paper: 12657)",
        f"  expansion SM util:     {row.sm_util_before * 100:.0f}% -> "
        f"{row.sm_util_after_split * 100:.0f}% after B-Splitting (paper: 16% -> 99%)",
    ]
    table = format_table(
        ["technique", "gain (ours)", "gain (paper)"],
        [[k, row.gains[k], PAPER_GAINS[k]] for k in PAPER_GAINS],
        title="",
        col_width=12,
    )
    return "\n".join(lines) + "\n" + table


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
