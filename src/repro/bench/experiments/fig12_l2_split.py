"""Figure 12: L2 cache throughput improvement from B-Splitting.

Compares the dominator execution's L2 read and write throughput (GB/s, the
nvprof counters the paper profiles) without splitting (factor 1) and with the
automatically chosen splitting factor, on the skewed Stanford datasets.  The
paper measures an 8.9x average improvement — concentrated transactions from
one long-running SM become parallel transactions from all SMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import get_context
from repro.bench.tables import format_table, geomean
from repro.core.reorganizer import BlockReorganizer, ReorganizerOptions
from repro.datasets.stanford import STANFORD_NAMES
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.simulator import GPUSimulator

__all__ = ["Fig12Result", "run", "format_result", "main"]


@dataclass(frozen=True)
class Fig12Result:
    """Dominator-phase L2 throughput with and without B-Splitting."""

    datasets: list[str]
    read_gbs: dict[tuple[str, str], float]  # (dataset, "before"/"after")
    write_gbs: dict[tuple[str, str], float]


def _dominator_phase(stats):
    for p in stats.phases:
        if p.name == "expansion-dominator":
            return p
    return None


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> Fig12Result:
    """Measure dominator L2 throughput before/after splitting."""
    datasets = datasets or list(STANFORD_NAMES)
    sim = GPUSimulator(gpu)
    read: dict[tuple[str, str], float] = {}
    write: dict[tuple[str, str], float] = {}
    kept = []
    for name in datasets:
        ctx = get_context(name)
        phases = {}
        for label, factor in (("before", 1), ("after", None)):
            algo = BlockReorganizer(
                options=ReorganizerOptions(splitting_factor=factor, enable_limiting=False)
            )
            phases[label] = _dominator_phase(algo.simulate(ctx, sim))
        if phases["before"] is None or phases["after"] is None:
            continue
        kept.append(name)
        for label, phase in phases.items():
            read[(name, label)] = phase.l2_read_gbs(gpu)
            write[(name, label)] = phase.l2_write_gbs(gpu)
    return Fig12Result(datasets=kept, read_gbs=read, write_gbs=write)


def format_result(result: Fig12Result) -> str:
    """Render throughput before/after with improvement ratios."""
    rows = []
    ratios = []
    for name in result.datasets:
        rb, ra = result.read_gbs[(name, "before")], result.read_gbs[(name, "after")]
        wb, wa = result.write_gbs[(name, "before")], result.write_gbs[(name, "after")]
        ratio = ((ra + wa) / max(rb + wb, 1e-12))
        ratios.append(ratio)
        rows.append([name, rb, ra, wb, wa, ratio])
    rows.append(["GEOMEAN", 0.0, 0.0, 0.0, 0.0, geomean(ratios)])
    return format_table(
        ["dataset", "read before", "read after", "write before", "write after", "improvement"],
        rows,
        title="Fig 12: dominator-phase L2 throughput (GB/s) without/with B-Splitting "
        "(paper: 8.9x average improvement)",
        col_width=12,
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
