"""Figure 3: motivation — why the outer-product baseline underuses the GPU.

Reproduces all three panels on the paper's ten example datasets (five
regular Florida + five irregular Stanford):

* (a) per-SM execution time of the outer-product expansion, in descending
  order — regular sets are flat, skewed sets fall off a cliff (the paper
  reports SM utilisation below 20% for loc-gowalla and as-caida);
* (b) thread-block distribution by effective-thread count — most blocks have
  fewer than 32 effective threads;
* (c) expansion vs merge time split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.runner import get_context
from repro.bench.tables import format_table
from repro.gpusim.config import GPUConfig, TITAN_XP
from repro.gpusim.simulator import GPUSimulator
from repro.spgemm.outerproduct import OuterProductSpGEMM

__all__ = ["DATASETS", "Fig03Row", "run", "format_result", "main"]

#: the five regular + five irregular sets Figure 3 plots.
DATASETS = [
    "harbor", "protein", "qcd", "filter3d", "ship",
    "youtube", "loc_gowalla", "as_caida", "sx_mathoverflow", "slashdot",
]

_THREAD_BINS = (1, 2, 4, 8, 16, 32, 1 << 62)


@dataclass(frozen=True)
class Fig03Row:
    """All three panels' data for one dataset."""

    dataset: str
    sm_times_sorted: np.ndarray  # (a) descending per-SM cycles, expansion
    sm_utilization: float
    lbi: float
    thread_bin_fractions: np.ndarray  # (b) share of blocks per effective-thread bin
    expansion_fraction: float  # (c)
    merge_fraction: float


def run(datasets: list[str] | None = None, gpu: GPUConfig = TITAN_XP) -> list[Fig03Row]:
    """Profile the outer-product baseline on every dataset."""
    sim = GPUSimulator(gpu)
    algo = OuterProductSpGEMM()
    rows = []
    for name in datasets or DATASETS:
        ctx = get_context(name)
        trace = algo.build_trace(ctx, gpu)
        stats = sim.run(trace)

        busy = stats.sm_busy_cycles("expansion")
        sm_sorted = np.sort(busy)[::-1]

        expansion_blocks = trace.phases[0].blocks
        eff = expansion_blocks.effective_threads
        counts = np.zeros(len(_THREAD_BINS), dtype=np.int64)
        prev = 0
        for i, edge in enumerate(_THREAD_BINS):
            counts[i] = int(np.count_nonzero((eff > prev) & (eff <= edge)))
            prev = edge
        fractions = counts / max(1, counts.sum())

        t_exp = stats.stage_seconds("expansion")
        t_merge = stats.stage_seconds("merge")
        total = t_exp + t_merge
        rows.append(
            Fig03Row(
                dataset=name,
                sm_times_sorted=sm_sorted,
                sm_utilization=stats.sm_utilization("expansion"),
                lbi=stats.lbi("expansion"),
                thread_bin_fractions=fractions,
                expansion_fraction=t_exp / total if total else 0.0,
                merge_fraction=t_merge / total if total else 0.0,
            )
        )
    return rows


def format_result(rows: list[Fig03Row]) -> str:
    """Render the three panels as tables."""
    parts = []
    headers = ["dataset", "SM util", "LBI", "max/min SM"]
    a_rows = []
    for r in rows:
        lo = r.sm_times_sorted[-1]
        ratio = float(r.sm_times_sorted[0] / lo) if lo > 0 else float("inf")
        a_rows.append([r.dataset, r.sm_utilization, r.lbi, ratio])
    parts.append(
        format_table(
            headers, a_rows, title="Fig 3(a): SM-level imbalance of outer-product expansion"
        )
    )

    bin_labels = ["=1", "2", "3-4", "5-8", "9-16", "17-32", ">32"]
    b_rows = [[r.dataset] + [float(f * 100) for f in r.thread_bin_fractions] for r in rows]
    parts.append(format_table(["dataset"] + bin_labels, b_rows,
                              title="\nFig 3(b): thread blocks by effective threads (% of blocks)",
                              col_width=7))

    c_rows = [[r.dataset, r.expansion_fraction * 100, r.merge_fraction * 100] for r in rows]
    parts.append(format_table(["dataset", "expansion %", "merge %"], c_rows,
                              title="\nFig 3(c): execution-time split"))
    return "\n".join(parts)


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
