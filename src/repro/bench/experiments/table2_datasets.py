"""Table II: real-world datasets.

For each of the 28 datasets the paper evaluates, prints the paper's published
(dimension, nnz(A), nnz(C)) next to the generated stand-in's realised
statistics — dimension, nnz(A), nnz(C), intermediate products nnz(C-hat) and
the row-degree Gini coefficient — making the documented scale substitution
visible in every bench run.
"""

from __future__ import annotations

from repro.bench.runner import get_context
from repro.bench.tables import format_table
from repro.datasets.catalog import get_spec
from repro.datasets.florida import FLORIDA_NAMES
from repro.datasets.stanford import STANFORD_NAMES
from repro.sparse.stats import degree_stats

__all__ = ["run", "format_result", "main", "ALL_REAL_WORLD"]

ALL_REAL_WORLD = FLORIDA_NAMES + STANFORD_NAMES


def run(datasets: list[str] | None = None) -> list[dict]:
    """Collect paper-vs-stand-in statistics for every dataset."""
    rows = []
    for name in datasets or ALL_REAL_WORLD:
        spec = get_spec(name)
        ctx = get_context(name)
        st = degree_stats(ctx.a_csr.row_nnz())
        rows.append(
            {
                "name": name,
                "collection": spec.collection,
                "paper_dim": spec.paper_dim,
                "paper_nnz_a": spec.paper_nnz_a,
                "paper_nnz_c": spec.paper_nnz_c,
                "dim": ctx.a_csr.n_rows,
                "nnz_a": ctx.a_csr.nnz,
                "nnz_c": ctx.nnz_c,
                "nnz_chat": ctx.total_work,
                "gini": st.gini,
            }
        )
    return rows


def format_result(rows: list[dict]) -> str:
    """Render Table II with paper and stand-in columns."""
    headers = ["name", "coll", "paper dim", "paper nnzA", "paper nnzC",
               "dim", "nnz(A)", "nnz(C)", "nnz(Chat)", "gini"]
    table_rows = [
        [r["name"], r["collection"][:4], r["paper_dim"], r["paper_nnz_a"], r["paper_nnz_c"],
         r["dim"], r["nnz_a"], r["nnz_c"], r["nnz_chat"], r["gini"]]
        for r in rows
    ]
    return format_table(headers, table_rows,
                        title="Table II: real-world datasets (paper stats vs generated stand-ins)")


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
