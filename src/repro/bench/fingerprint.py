"""Content fingerprints for the bench layer's persistent result cache.

A bench cell — one ``(dataset, algorithm, GPU, cost model)`` simulation — is
deterministic, so its result can be content-addressed: hash every input that
affects the outcome and use the digest as the cache key.  This module builds
those keys.

The key covers, canonically and recursively:

* the dataset's full generation recipe (generator, params, seed, operation),
  **not** just its name — respecifying a dataset must invalidate its cells;
* the algorithm's :meth:`~repro.spgemm.base.SpGEMMAlgorithm.fingerprint`
  (class, name, cost model, scheme options such as
  :class:`~repro.core.reorganizer.ReorganizerOptions`, and the plan
  signature — the lowering plus its
  :class:`~repro.plan.passes.PlanPass` pipeline — so reorganising a
  pipeline invalidates cached cells);
* the :class:`~repro.gpusim.config.GPUConfig` and the simulator's
  :class:`~repro.gpusim.costs.CostModel`, field by field;
* a schema stamp (:data:`SCHEMA_VERSION` plus the package version), so a
  format or semantics change orphans old entries instead of corrupting reads.

Anything that cannot be canonicalised (stateful tuners, exotic parameter
types) raises :class:`~repro.errors.FingerprintError`, and the caller simply
bypasses the cache for that cell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any

from repro import __version__
from repro.errors import FingerprintError

if TYPE_CHECKING:  # pragma: no cover - type-only imports keep this module light
    from repro.datasets.catalog import DatasetSpec
    from repro.gpusim.config import GPUConfig
    from repro.gpusim.costs import CostModel
    from repro.spgemm.base import SpGEMMAlgorithm

__all__ = [
    "SCHEMA_VERSION",
    "canonical",
    "digest",
    "dataset_fingerprint",
    "cell_key",
    "context_key",
]

#: Bump when the cached payload format or the simulation semantics captured by
#: the key change incompatibly; every existing cache entry becomes a miss.
#: v2: algorithm fingerprints gained the plan signature, and traces carry a
#: ``plan_shape`` digest in their meta (serialised into cached stats).
SCHEMA_VERSION = 2


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-able structure with deterministic ordering.

    Dataclasses flatten field by field, mappings sort by key, sequences keep
    order.  Anything else raises :class:`FingerprintError` rather than
    guessing at identity.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise FingerprintError(f"cannot fingerprint a value of type {type(obj).__name__}")


def digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``."""
    blob = json.dumps(canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def dataset_fingerprint(spec: DatasetSpec) -> dict:
    """The full generation recipe of a dataset — everything :func:`load` uses."""
    return {
        "name": spec.name,
        "generator": spec.generator,
        "params": canonical(spec.params),
        "seed": spec.seed,
        "operation": spec.operation,
    }


def context_key(spec: DatasetSpec) -> str:
    """Key for in-process :class:`MultiplyContext` caching.

    Covers the recipe, not just the name, so a respecified dataset can never
    be served a stale context.
    """
    return digest({"schema": SCHEMA_VERSION, "dataset": dataset_fingerprint(spec)})


def cell_key(
    spec: DatasetSpec,
    algorithm: SpGEMMAlgorithm,
    label: str,
    gpu: GPUConfig,
    sim_costs: CostModel,
) -> str:
    """Content address of one bench cell.

    ``label`` is the caller's display name for the algorithm (it is stored in
    the :class:`BenchResult`, so it participates in the key to keep cached
    results byte-identical to freshly computed ones).  ``sim_costs`` is the
    simulator's cost model, which may differ from ``algorithm.costs``.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "version": __version__,
        "dataset": dataset_fingerprint(spec),
        "algorithm": algorithm.fingerprint(),
        "label": label,
        "gpu": canonical(gpu),
        "sim_costs": canonical(sim_costs),
    }
    return digest(payload)
