"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SparseFormatError(ReproError):
    """A sparse matrix structure is malformed (bad indptr, out-of-range index, ...)."""


class ShapeMismatchError(ReproError):
    """Operand shapes are incompatible for the requested operation."""


class DatasetError(ReproError):
    """A dataset name is unknown or a generator parameter is invalid."""


class SimulationError(ReproError):
    """The GPU simulator was given an inconsistent trace or configuration."""


class ConfigurationError(ReproError):
    """An algorithm or simulator option is out of its valid range."""


class PlanError(ReproError):
    """An :class:`~repro.plan.ir.ExecutionPlan` is malformed or its numeric
    kernels are inconsistent with its block descriptors (a phase emitted a
    different number of products than its blocks account for)."""


class FingerprintError(ReproError):
    """A bench-cell component cannot be content-addressed (stateful scheme,
    non-serialisable parameter), so its results must bypass the result cache."""


class CacheError(ReproError):
    """The persistent bench result cache hit an unrecoverable condition."""


class KernelBackendError(ReproError):
    """A kernel backend is unknown, unavailable (missing optional dependency),
    or failed its selection-time bit-identity verification against the NumPy
    reference implementation."""


class OutOfCoreError(ReproError):
    """The out-of-core executor cannot honour its configuration: an
    unparseable memory budget, an unusable spill directory, or a spilled
    partial that cannot be read back."""
