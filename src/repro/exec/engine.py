"""The multicore execution engine: partitioned numeric kernels, bit-identical.

An :class:`ExecEngine` owns a process pool plus a shared-memory
:class:`~repro.exec.shm.SharedArrayRegistry` and parallelises the four
primitives every numeric path in the library is built from:

* :meth:`ExecEngine.expand_outer_indices` / :meth:`expand_row_indices` —
  the symbolic expansions, partitioned over pairs / A-entries by the
  precalculated per-segment product counts (the paper's workload vectors);
* :meth:`ExecEngine.merge` — the coalescing sort, partitioned over
  **contiguous output-row buckets** so each bucket's stable sort reproduces
  the global stable sort restricted to its rows;
* :meth:`ExecEngine.segmented_sum` / :meth:`gather_multiply_sum` — the
  numeric halves of merge and recipe replay, partitioned over the sorted
  product stream at **group boundaries** so every output entry is summed by
  exactly one worker, in stream order.

Bit-exactness argument, shared by all primitives: partitions are contiguous
ranges (:mod:`repro.exec.partition`), each worker performs the *same*
integer index arithmetic and the *same* float64 operations in the *same*
order as the serial kernel restricted to its range, and results are
assembled by concatenation in range order.  No reduction ever crosses a
partition boundary, so the combined output is the serial output, bit for
bit — asserted across all seven schemes by ``tests/test_exec_equivalence``.

Every primitive degrades gracefully: below :attr:`ExecEngine.min_items`, or
after any pool/shared-memory failure (the engine then marks itself broken),
primitives return ``None`` and the caller runs its serial code — results
are identical either way, the engine only affects wall-clock.

Instrumentation: each primitive records an ``exec.<op>`` span in the parent
and — when tracing is on — one ``exec.partition[<op>]`` span per partition,
recorded inside the worker and adopted into the parent trace on its own
process lane, exactly like the bench engine's shard traces.
"""

from __future__ import annotations

import functools
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pickle import PicklingError
from typing import TYPE_CHECKING

import multiprocessing
import numpy as np

from repro import kernels, obs
from repro.errors import ConfigurationError, ShapeMismatchError
from repro.exec import shm as shm_module
from repro.exec.partition import (
    PARTITIONER_NAMES,
    lpt_order,
    stream_blocks,
    weight_blocks,
)
from repro.exec.shm import SharedArrayRegistry, ShmRef, attach

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an exec<->merge cycle
    from repro.sparse.csc import CSCMatrix
    from repro.sparse.csr import CSRMatrix
    from repro.spgemm.merge import MergeRecipe

__all__ = [
    "DEFAULT_PARTITIONER",
    "ExecEngine",
    "ExecStats",
    "default_exec_workers",
]

#: Streams below this many items run serially: pool latency would dominate.
DEFAULT_MIN_ITEMS = 1 << 16

#: Default cut discipline (see :mod:`repro.exec.partition`): merge-path
#: bounds both items and work per block, replacing weight-only LPT cuts.
DEFAULT_PARTITIONER = "merge-path"

#: Chrome-trace process lane of the first exec partition (bench shards use
#: small positive lanes; exec partitions park far above them).
EXEC_LANE_BASE = 1000

_POOL_ERRORS = (BrokenProcessPool, PicklingError, OSError)


def default_exec_workers() -> int:
    """Worker count for ``--exec-workers 0`` / "use the machine"."""
    return max(1, os.cpu_count() or 1)


class _Fallback(Exception):
    """Internal: the pool failed; the caller must run its serial path."""


def _serialized(method):
    """Serialize a public primitive across threads (one call at a time).

    One engine may be shared by many serving worker threads, but a call
    owns per-call scratch in the :class:`SharedArrayRegistry` (created by
    ``_outputs``, released by ``release_scratch``) — two interleaved calls
    would release each other's output segments mid-read.  A coarse re-entrant
    lock around each primitive keeps the registry single-writer; the process
    pool underneath still runs that call's partitions in parallel.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._call_lock:
            return method(self, *args, **kwargs)

    return wrapper


@dataclass
class ExecStats:
    """Execution counters for one engine (mirrors ``PlanCacheStats``).

    ``parallel_calls`` primitives ran partitioned; ``serial_calls`` fell
    below the size threshold; ``fallbacks`` hit a pool/shared-memory failure
    and were re-run serially by the caller; ``estimate_overflows`` count
    estimation-sized merges whose estimate undershot (re-run exactly by the
    caller).  ``partitions``/``items`` total the partitioned work;
    ``publish_hits``/``publish_misses`` count shared-memory reuse of stable
    arrays (operands, recipe gathers).  ``per_op`` breaks the partitioned
    calls down by primitive, recording the cut discipline and kernel backend
    each op actually used so traces and bench artifacts are self-describing.
    """

    parallel_calls: int = 0
    serial_calls: int = 0
    fallbacks: int = 0
    estimate_overflows: int = 0
    partitions: int = 0
    items: int = 0
    publish_hits: int = 0
    publish_misses: int = 0
    per_op: dict = field(default_factory=dict)

    def note_op(
        self, op: str, *, partitions: int, items: int, partitioner: str, backend: str
    ) -> None:
        """Record one partitioned call of ``op`` in the per-op breakdown."""
        entry = self.per_op.setdefault(
            op, {"calls": 0, "partitions": 0, "items": 0}
        )
        entry["calls"] += 1
        entry["partitions"] += partitions
        entry["items"] += items
        entry["partitioner"] = partitioner
        entry["backend"] = backend

    def as_dict(self) -> dict:
        """JSON-able snapshot, used by bench artifacts and ``repro run``."""
        return {
            "parallel_calls": self.parallel_calls,
            "serial_calls": self.serial_calls,
            "fallbacks": self.fallbacks,
            "estimate_overflows": self.estimate_overflows,
            "partitions": self.partitions,
            "items": self.items,
            "publish_hits": self.publish_hits,
            "publish_misses": self.publish_misses,
            "per_op": {op: dict(entry) for op, entry in self.per_op.items()},
        }


def _cleanup(holder: dict) -> None:
    """Finalizer body: release the pool and every shared segment."""
    pool = holder.get("pool")
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
        holder["pool"] = None
    registry = holder.get("registry")
    if registry is not None:
        registry.close()


class ExecEngine:
    """A process pool + shared-memory registry running partitioned kernels.

    Attributes:
        workers: pool width (1 disables parallelism entirely).
        min_items: streams shorter than this run serially (pool latency
            would dominate); tests set 0 to force the partitioned path.
        partitioner: default cut discipline for every op
            (:data:`~repro.exec.partition.PARTITIONER_NAMES`); individual
            ops can deviate via ``partitioner_overrides`` (op name → name).
        stats: the engine's :class:`ExecStats` counters.
    """

    def __init__(
        self,
        workers: int,
        *,
        min_items: int = DEFAULT_MIN_ITEMS,
        publish_budget: int | None = None,
        partitioner: str = DEFAULT_PARTITIONER,
        partitioner_overrides: dict[str, str] | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.min_items = max(0, int(min_items))
        for name in (partitioner, *(partitioner_overrides or {}).values()):
            if name not in PARTITIONER_NAMES:
                raise ConfigurationError(
                    f"unknown partitioner {name!r}; known: {list(PARTITIONER_NAMES)}"
                )
        self.partitioner = partitioner
        self.partitioner_overrides = dict(partitioner_overrides or {})
        self.stats = ExecStats()
        registry = (
            SharedArrayRegistry(publish_budget)
            if publish_budget is not None
            else SharedArrayRegistry()
        )
        self.registry = registry
        self._holder: dict = {"pool": None, "registry": registry}
        self._call_lock = threading.RLock()
        self._broken = False
        self._finalize = weakref.finalize(self, _cleanup, self._holder)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink every shared segment."""
        _cleanup(self._holder)

    def _pool(self) -> ProcessPoolExecutor:
        pool = self._holder["pool"]
        if pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(ctx.get_start_method() != "fork",),
            )
            self._holder["pool"] = pool
        return pool

    def _should(self, n_items: int) -> bool:
        """Is the partitioned path worth taking for a stream of this size?"""
        if self.workers <= 1 or self._broken or n_items <= 0:
            return False
        if n_items < self.min_items:
            self.stats.serial_calls += 1
            return False
        return True

    def _n_blocks(self) -> int:
        # Two blocks per worker: enough slack for LPT submission to absorb
        # one overloaded partition without oversubscribing the pool.
        return self.workers * 2

    def _partitioner_for(self, op: str) -> str:
        """Cut discipline for ``op``: per-op override or the engine default."""
        return self.partitioner_overrides.get(op, self.partitioner)

    def _run_tasks(self, op: str, tasks: list[dict]) -> list:
        """Run one primitive's partition tasks; results in partition order.

        Tasks are submitted heaviest-first (LPT) onto the dynamic pool and
        reassembled by partition index.  Pool-level failures poison the
        engine and raise :class:`_Fallback`; errors raised by the kernel
        code itself propagate unchanged.
        """
        trace = obs.is_enabled()
        try:
            pool = self._pool()
            order = lpt_order([task.get("weight", 0) for task in tasks])
            futures = {i: pool.submit(_run_task, op, tasks[i], trace) for i in order}
            results: list = [None] * len(tasks)
            for i, future in futures.items():
                results[i], spans = future.result()
                if spans:
                    obs.adopt(spans, pid=EXEC_LANE_BASE + i)
        except _POOL_ERRORS:
            self._broken = True
            self.stats.fallbacks += 1
            raise _Fallback from None
        self.stats.parallel_calls += 1
        self.stats.partitions += len(tasks)
        self.stats.publish_hits = self.registry.publish_hits
        self.stats.publish_misses = self.registry.publish_misses
        return results

    # -- expansion primitives ------------------------------------------
    @_serialized
    def expand_outer_indices(
        self, a_csc: "CSCMatrix", b_csr: "CSRMatrix"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Partitioned symbolic outer-product expansion, or ``None``.

        Partitions the pair axis by the precalculated per-pair product
        counts (``col_nnz(A) * row_nnz(B)``, the paper's block-wise nnz);
        each worker reproduces the serial index arithmetic for its
        contiguous pair range and writes into the global output at the
        range's precomputed offset.
        """
        counts = np.diff(a_csc.indptr) * np.diff(b_csr.indptr)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        total = int(offsets[-1])
        if not self._should(total):
            return None
        part = self._partitioner_for("expand_outer")
        blocks = weight_blocks(counts, self._n_blocks(), partitioner=part)
        with obs.span("exec.expand_outer", "exec", items=total, partitions=len(blocks)):
            try:
                inputs = {
                    "a_indptr": self.registry.publish(a_csc.indptr),
                    "a_indices": self.registry.publish(a_csc.indices),
                    "b_indptr": self.registry.publish(b_csr.indptr),
                    "b_indices": self.registry.publish(b_csr.indices),
                }
                out_refs, out_views = self._outputs(total, 4)
                tasks = [
                    {
                        **inputs,
                        "out": out_refs,
                        "lo": lo,
                        "hi": hi,
                        "out_off": int(offsets[lo]),
                        "weight": int(offsets[hi] - offsets[lo]),
                    }
                    for lo, hi in blocks
                ]
                self._run_tasks("expand_outer", tasks)
                self.stats.items += total
                self.stats.note_op(
                    "expand_outer", partitions=len(blocks), items=total,
                    partitioner=part, backend="numpy",
                )
                return tuple(view.copy() for view in out_views)
            except _Fallback:
                return None
            finally:
                self.registry.release_scratch()

    @_serialized
    def expand_row_indices(
        self, a_csr: "CSRMatrix", b_csr: "CSRMatrix"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Partitioned symbolic row-product expansion, or ``None``.

        Partitions the stored entries of ``A`` (Gustavson's outer loop is
        per A-entry) by each entry's product count ``row_nnz(B)[col]``.
        """
        per_entry = np.diff(b_csr.indptr)[a_csr.indices]
        offsets = np.concatenate(([0], np.cumsum(per_entry)))
        total = int(offsets[-1])
        if not self._should(total):
            return None
        part = self._partitioner_for("expand_row")
        blocks = weight_blocks(per_entry, self._n_blocks(), partitioner=part)
        with obs.span("exec.expand_row", "exec", items=total, partitions=len(blocks)):
            try:
                inputs = {
                    "a_indptr": self.registry.publish(a_csr.indptr),
                    "a_indices": self.registry.publish(a_csr.indices),
                    "b_indptr": self.registry.publish(b_csr.indptr),
                    "b_indices": self.registry.publish(b_csr.indices),
                }
                out_refs, out_views = self._outputs(total, 4)
                tasks = [
                    {
                        **inputs,
                        "out": out_refs,
                        "lo": lo,
                        "hi": hi,
                        "out_off": int(offsets[lo]),
                        "weight": int(offsets[hi] - offsets[lo]),
                    }
                    for lo, hi in blocks
                ]
                self._run_tasks("expand_row", tasks)
                self.stats.items += total
                self.stats.note_op(
                    "expand_row", partitions=len(blocks), items=total,
                    partitioner=part, backend="numpy",
                )
                return tuple(view.copy() for view in out_views)
            except _Fallback:
                return None
            finally:
                self.registry.release_scratch()

    def _outputs(self, total: int, n: int) -> tuple[list[ShmRef], list[np.ndarray]]:
        """Allocate ``n`` int64 scratch output columns of length ``total``."""
        refs, views = [], []
        for _ in range(n):
            ref, view = self.registry.scratch((total,), np.int64)
            refs.append(ref)
            views.append(view)
        return refs, views

    # -- merge primitives ----------------------------------------------
    @_serialized
    def merge(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        shape: tuple[int, int],
        *,
        est_row_nnz: np.ndarray | None = None,
    ) -> "MergeRecipe | None":
        """Partitioned coalescing sort: the symbolic half of the merge.

        Output rows are partitioned into contiguous buckets balanced by
        per-row triplet counts; each worker selects its bucket's triplets
        (preserving emission order), stable-sorts them by output coordinate
        and numbers its duplicate groups.  Because bucket key ranges are
        disjoint and ascending, concatenating the buckets *is* the global
        stable sort — the recipe is field-for-field identical to
        :func:`repro.spgemm.merge.plan_merge`.

        ``est_row_nnz`` (Ocean-style estimation sizing) is a per-row upper
        bound on output nnz: when given, each bucket's unique-column segment
        is allocated from the estimate instead of its triplet count, shrinking
        the scratch footprint from the product-stream size to (roughly) the
        output size.  A bucket whose uniques overflow its estimated segment
        aborts the call — the engine counts an ``estimate_overflow`` and
        returns ``None`` so the caller re-runs the exact serial pass; results
        are identical either way.
        """
        from repro.spgemm.merge import MergeRecipe

        n = len(rows)
        if not self._should(n):
            return None
        n_rows, n_cols = shape
        if int(rows.max()) >= n_rows or int(cols.max()) >= n_cols:
            raise ShapeMismatchError("triplet coordinate out of range")
        trip_per_row = np.bincount(rows, minlength=n_rows)
        part = self._partitioner_for("merge")
        blocks = weight_blocks(trip_per_row, self._n_blocks(), partitioner=part)
        bucket_counts = [int(trip_per_row[lo:hi].sum()) for lo, hi in blocks]
        seg_offs = np.concatenate(([0], np.cumsum(bucket_counts)))
        if est_row_nnz is not None:
            # A row never produces more uniques than triplets, so tighten the
            # caller's bound before sizing the segments.
            cap = np.minimum(np.asarray(est_row_nnz, dtype=np.int64), trip_per_row)
            est_counts = [int(cap[lo:hi].sum()) for lo, hi in blocks]
        else:
            est_counts = bucket_counts
        est_offs = np.concatenate(([0], np.cumsum(est_counts)))
        with obs.span("exec.merge", "exec", items=n, partitions=len(blocks)):
            try:
                rows_ref = self.registry.share_scratch(rows)
                cols_ref = self.registry.share_scratch(cols)
                order_ref, order_view = self.registry.scratch((n,), np.int64)
                group_ref, group_view = self.registry.scratch((n,), np.int64)
                ucols_ref, ucols_view = self.registry.scratch(
                    (max(1, int(est_offs[-1])),), np.int64
                )
                rnnz_ref, rnnz_view = self.registry.scratch((n_rows,), np.int64)
                tasks = [
                    {
                        "rows": rows_ref,
                        "cols": cols_ref,
                        "order": order_ref,
                        "group": group_ref,
                        "ucols": ucols_ref,
                        "rownnz": rnnz_ref,
                        "n_cols": int(n_cols),
                        "r_lo": lo,
                        "r_hi": hi,
                        "seg_off": int(seg_offs[i]),
                        "count": bucket_counts[i],
                        "est_off": int(est_offs[i]),
                        "est_count": est_counts[i],
                        "weight": bucket_counts[i],
                    }
                    for i, (lo, hi) in enumerate(blocks)
                ]
                uniques = self._run_tasks("merge_bucket", tasks)
                self.stats.items += n
                if any(nu < 0 for nu in uniques):
                    # An estimated segment overflowed: the bound was not an
                    # upper bound for this stream.  Fall back to the exact
                    # symbolic pass rather than resize mid-flight.
                    self.stats.estimate_overflows += 1
                    return None
                self.stats.note_op(
                    "merge", partitions=len(blocks), items=n,
                    partitioner=part, backend="numpy",
                )
                # Renumber bucket-local duplicate groups into the global
                # sequence and splice each bucket's unique columns out of
                # its estimate-sized segment.
                n_groups = 0
                parts = []
                for i, nu in enumerate(uniques):
                    seg = slice(int(seg_offs[i]), int(seg_offs[i + 1]))
                    if n_groups:
                        group_view[seg] += n_groups
                    est_lo = int(est_offs[i])
                    parts.append(ucols_view[est_lo : est_lo + nu])
                    n_groups += nu
                indices = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
                indptr = np.zeros(n_rows + 1, dtype=np.int64)
                np.cumsum(rnnz_view, out=indptr[1:])
                return MergeRecipe(
                    shape, order_view.copy(), group_view.copy(), n_groups, indptr, indices
                )
            except _Fallback:
                return None
            finally:
                self.registry.release_scratch()

    @_serialized
    def segmented_sum(
        self, vals: np.ndarray, order: np.ndarray, group: np.ndarray, n_groups: int
    ) -> np.ndarray | None:
        """Partitioned numeric merge: ``sum vals[order] by group``, or ``None``.

        The product stream is cut at group boundaries, so each output entry
        is accumulated by exactly one worker in stream order — bit-identical
        to the serial ``np.add.at``.  ``order``/``group`` are a recipe's
        long-lived arrays (published once); ``vals`` is per-call.
        """
        return self._sum_by_group(
            "segmented_sum", {"vals": self.registry.share_scratch}, {"vals": vals},
            order=order, group=group, n_groups=n_groups,
        )

    @_serialized
    def gather_multiply_sum(
        self,
        a_data: np.ndarray,
        b_data: np.ndarray,
        a_gather: np.ndarray,
        b_gather: np.ndarray,
        group: np.ndarray,
        n_groups: int,
    ) -> np.ndarray | None:
        """Partitioned numeric replay: gather, multiply and sum by group.

        The whole hot path of :meth:`NumericRecipe.replay` in one primitive:
        workers gather their slice of both operands' values, multiply, and
        segment-sum — the same float64 operations in the same order as the
        serial replay.  The gather/group arrays are published once per
        recipe; only the fresh operand values cross into shared memory per
        call.
        """
        return self._sum_by_group(
            "gather_sum",
            {
                "a_gather": self.registry.publish,
                "b_gather": self.registry.publish,
                "a_data": self.registry.share_scratch,
                "b_data": self.registry.share_scratch,
            },
            {"a_gather": a_gather, "b_gather": b_gather, "a_data": a_data, "b_data": b_data},
            order=None, group=group, n_groups=n_groups,
        )

    def _sum_by_group(
        self, op, sharers, arrays, *, order, group, n_groups
    ) -> np.ndarray | None:
        """Common body of the two group-summing primitives.

        Workers accumulate through the ambient kernel backend
        (:func:`repro.kernels.active`), shipped by name per task — any
        selected backend is bit-identical by construction, so this only
        affects per-partition wall-clock.
        """
        n = len(group)
        if not self._should(n):
            return None
        part = self._partitioner_for(op)
        backend = kernels.active_name()
        blocks = stream_blocks(group, self._n_blocks(), partitioner=part)
        with obs.span(f"exec.{op}", "exec", items=n, partitions=len(blocks)):
            try:
                inputs = {key: share(arrays[key]) for key, share in sharers.items()}
                inputs["group"] = self.registry.publish(group)
                if order is not None:
                    inputs["order"] = self.registry.publish(order)
                out_ref, out_view = self.registry.scratch((max(1, n_groups),), np.float64)
                tasks = [
                    {
                        **inputs,
                        "out": out_ref,
                        "backend": backend,
                        "lo": lo,
                        "hi": hi,
                        "g_lo": int(group[lo]),
                        "g_hi": int(group[hi - 1]) + 1,
                        "weight": hi - lo,
                    }
                    for lo, hi in blocks
                ]
                self._run_tasks(op, tasks)
                self.stats.items += n
                self.stats.note_op(
                    op, partitions=len(blocks), items=n,
                    partitioner=part, backend=backend,
                )
                return out_view[:n_groups].copy()
            except _Fallback:
                return None
            finally:
                self.registry.release_scratch()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExecEngine workers={self.workers} min_items={self.min_items} "
            f"partitioner={self.partitioner!r}>"
        )


# ----------------------------------------------------------------------
# Worker side: one function per op, each the serial kernel restricted to a
# contiguous range.  The index arithmetic deliberately mirrors
# repro.spgemm.expansion / repro.spgemm.merge line for line — the
# equivalence tests hold the two in lockstep.
# ----------------------------------------------------------------------
def _worker_init(own_tracker: bool) -> None:
    """Per-worker setup: drop the recorder a fork child inherited (recording
    into that copy would be lost; tasks install their own when tracing) and
    configure shared-memory tracker accounting for the pool's start method."""
    obs.uninstall()
    shm_module.set_unregister_on_attach(own_tracker)


def _run_task(op: str, task: dict, trace: bool) -> tuple[object, list[dict] | None]:
    """Worker entry: run one partition, optionally under a shipped span."""
    if not trace:
        return _OPS[op](task), None
    recorder = obs.install()
    try:
        with obs.span(f"exec.partition[{op}]", "exec", items=int(task.get("weight", 0))):
            result = _OPS[op](task)
    finally:
        obs.uninstall()
    return result, recorder.to_dicts()


def _segment_offsets_local(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``repro.kernels.numpy_backend._segment_offsets`` for a local slice."""
    total = int(counts.sum())
    seg_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return seg_of, offsets


def _op_expand_outer(task: dict) -> int:
    """Outer-product expansion of pairs ``[lo, hi)`` into the shared output."""
    a_indptr = attach(task["a_indptr"])
    a_indices = attach(task["a_indices"])
    b_indptr = attach(task["b_indptr"])
    b_indices = attach(task["b_indices"])
    lo, hi = task["lo"], task["hi"]
    na = a_indptr[lo + 1 : hi + 1] - a_indptr[lo:hi]
    nb = b_indptr[lo + 1 : hi + 1] - b_indptr[lo:hi]
    counts = na * nb
    pair_of, offsets = _segment_offsets_local(counts)
    nb_per = nb[pair_of]
    a_pos = offsets // np.maximum(nb_per, 1)
    b_pos = offsets % np.maximum(nb_per, 1)
    a_idx = a_indptr[lo:hi][pair_of] + a_pos
    b_idx = b_indptr[lo:hi][pair_of] + b_pos
    out = slice(task["out_off"], task["out_off"] + len(a_idx))
    rows_out, cols_out, aidx_out, bidx_out = (attach(ref) for ref in task["out"])
    rows_out[out] = a_indices[a_idx]
    cols_out[out] = b_indices[b_idx]
    aidx_out[out] = a_idx
    bidx_out[out] = b_idx
    return len(a_idx)


def _op_expand_row(task: dict) -> int:
    """Row-product expansion of A entries ``[lo, hi)`` into the shared output."""
    a_indptr = attach(task["a_indptr"])
    a_indices = attach(task["a_indices"])
    b_indptr = attach(task["b_indptr"])
    b_indices = attach(task["b_indices"])
    lo, hi = task["lo"], task["hi"]
    b_cols = a_indices[lo:hi]
    per_entry = b_indptr[b_cols + 1] - b_indptr[b_cols]
    entry_of, offsets = _segment_offsets_local(per_entry)
    # Row of each A entry: the serial kernel's repeat(arange, row_nnz)
    # gather, recomputed for the slice by inverting the row pointers.
    entry_rows = (
        np.searchsorted(a_indptr, np.arange(lo, hi, dtype=np.int64), side="right") - 1
    )
    b_idx = b_indptr[b_cols[entry_of]] + offsets
    out = slice(task["out_off"], task["out_off"] + len(b_idx))
    rows_out, cols_out, aidx_out, bidx_out = (attach(ref) for ref in task["out"])
    rows_out[out] = entry_rows[entry_of]
    cols_out[out] = b_indices[b_idx]
    aidx_out[out] = entry_of + lo
    bidx_out[out] = b_idx
    return len(b_idx)


def _op_merge_bucket(task: dict) -> int:
    """Stable-sort one contiguous row bucket of the triplet stream.

    Writes the bucket's slice of the global sort permutation, duplicate
    groups (bucket-local numbering; the parent renumbers), unique output
    columns and per-row unique counts.  Returns the bucket's unique count,
    or ``-1`` if the uniques overflow the bucket's estimated segment (the
    parent then abandons the call and falls back to the exact pass).
    """
    rows = attach(task["rows"])
    cols = attach(task["cols"])
    r_lo, r_hi, n_cols = task["r_lo"], task["r_hi"], task["n_cols"]
    idx = np.flatnonzero((rows >= r_lo) & (rows < r_hi))
    if len(idx) != task["count"]:  # pragma: no cover - internal invariant
        raise RuntimeError(
            f"merge bucket [{r_lo},{r_hi}) selected {len(idx)} triplets, "
            f"expected {task['count']}"
        )
    seg = slice(task["seg_off"], task["seg_off"] + len(idx))
    rownnz_out = attach(task["rownnz"])
    if len(idx) == 0:
        rownnz_out[r_lo:r_hi] = 0
        return 0
    keys = rows[idx].astype(np.int64) * np.int64(n_cols) + cols[idx]
    local_order = np.argsort(keys, kind="stable")
    keys = keys[local_order]
    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = keys[1:] != keys[:-1]
    attach(task["order"])[seg] = idx[local_order]
    attach(task["group"])[seg] = np.cumsum(boundaries) - 1
    unique_keys = keys[boundaries]
    nu = len(unique_keys)
    if nu > task["est_count"]:
        return -1
    est = slice(task["est_off"], task["est_off"] + nu)
    ucols_out = attach(task["ucols"])
    ucols_out[est] = unique_keys % n_cols
    urows = (unique_keys // n_cols).astype(np.int64)
    rownnz_out[r_lo:r_hi] = np.bincount(urows - r_lo, minlength=r_hi - r_lo)
    return nu


def _op_segmented_sum(task: dict) -> int:
    """Sum ``vals[order]`` by group over products ``[lo, hi)`` (group-aligned).

    Dispatches through the shipped kernel backend; every backend performs
    the same float64 additions in the same stream order (verified at
    selection time), so the choice cannot change the result.
    """
    lo, hi, g_lo, g_hi = task["lo"], task["hi"], task["g_lo"], task["g_hi"]
    backend = kernels.get_backend(task.get("backend", "numpy"))
    vals = attach(task["vals"])
    order = attach(task["order"])
    group = attach(task["group"])
    local = backend.segmented_sum(
        vals, order[lo:hi], group[lo:hi] - g_lo, g_hi - g_lo
    )
    attach(task["out"])[g_lo:g_hi] = local
    return hi - lo


def _op_gather_sum(task: dict) -> int:
    """Gather-multiply-sum one group-aligned slice of a replay's products."""
    lo, hi, g_lo, g_hi = task["lo"], task["hi"], task["g_lo"], task["g_hi"]
    backend = kernels.get_backend(task.get("backend", "numpy"))
    a_data = attach(task["a_data"])
    b_data = attach(task["b_data"])
    group = attach(task["group"])
    local = backend.gather_multiply_sum(
        a_data, b_data,
        attach(task["a_gather"])[lo:hi], attach(task["b_gather"])[lo:hi],
        group[lo:hi] - g_lo, g_hi - g_lo,
    )
    attach(task["out"])[g_lo:g_hi] = local
    return hi - lo


_OPS = {
    "expand_outer": _op_expand_outer,
    "expand_row": _op_expand_row,
    "merge_bucket": _op_merge_bucket,
    "segmented_sum": _op_segmented_sum,
    "gather_sum": _op_gather_sum,
}
