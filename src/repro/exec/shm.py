"""Shared-memory array plumbing for the multicore numeric plane.

Worker processes must read operand CSR/CSC arrays and write partition
results without serialising megabytes through pickle pipes, so the engine
moves every large array through :mod:`multiprocessing.shared_memory`
segments and ships only tiny :class:`ShmRef` descriptors with each task.

Two sides:

* **Parent** — a :class:`SharedArrayRegistry` owns the segments.  Stable
  arrays (operand columns, a recipe's gather/group arrays) are *published*
  once and found again by object identity on later calls, so an iterative
  replay pays the copy-in exactly once per structure; scratch segments
  (per-call triplet streams and outputs) are allocated per primitive call
  and unlinked as soon as the call assembles its result.
* **Worker** — :func:`attach` maps a ref back to an ndarray view, caching
  attachments per process (LRU) so repeated tasks against the same operand
  segment re-map nothing.

Cleanup: the registry unlinks everything it created on :meth:`close` (the
engine registers this with :mod:`weakref` finalisation).  Resource-tracker
accounting depends on the pool's start method: forked workers share the
parent's tracker (attaching is a harmless re-register of a known name), but
spawned workers own a private tracker that would *unlink parent-owned
segments* when the worker exits — so the pool initializer flips
:func:`set_unregister_on_attach` and workers then withdraw each attachment
from their own tracker.
"""

from __future__ import annotations

import secrets
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory
from typing import NamedTuple

import numpy as np

__all__ = ["ShmRef", "SharedArrayRegistry", "attach"]

#: Parent-side cap on bytes held for published (stable) arrays before the
#: least-recently-used segments are evicted.
DEFAULT_PUBLISH_BUDGET = 1 << 30

#: Worker-side cap on cached attachments (segments, not bytes).
_ATTACH_CACHE_SIZE = 64


class ShmRef(NamedTuple):
    """A picklable handle to one ndarray living in a shared-memory segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str


def _as_array(ref: ShmRef, shm: shared_memory.SharedMemory) -> np.ndarray:
    """An ndarray view over a segment's buffer (no copy)."""
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)


class SharedArrayRegistry:
    """Parent-side owner of shared-memory segments (published + scratch)."""

    def __init__(self, publish_budget: int = DEFAULT_PUBLISH_BUDGET) -> None:
        self.publish_budget = int(publish_budget)
        # id(array) -> (array strong ref, ShmRef, shm); the strong ref keeps
        # the id stable for as long as the cache entry lives.
        self._published: OrderedDict[int, tuple[np.ndarray, ShmRef, shared_memory.SharedMemory]]
        self._published = OrderedDict()
        self._published_bytes = 0
        self._scratch: list[shared_memory.SharedMemory] = []
        self.publish_hits = 0
        self.publish_misses = 0

    # -- published (stable) arrays -------------------------------------
    def publish(self, array: np.ndarray) -> ShmRef:
        """Copy ``array`` into shared memory once; reuse on identity hits.

        Keyed by object identity: callers publish long-lived arrays (operand
        columns, recipe gathers) whose object survives across calls, so the
        second and later calls cost a dict lookup, not a copy.
        """
        key = id(array)
        entry = self._published.get(key)
        if entry is not None and entry[0] is array:
            self._published.move_to_end(key)
            self.publish_hits += 1
            return entry[1]
        self.publish_misses += 1
        array = np.ascontiguousarray(array)
        ref, shm = self._create(array.shape, array.dtype)
        _as_array(ref, shm)[...] = array
        self._published[key] = (array, ref, shm)
        self._published_bytes += shm.size
        self._evict()
        return ref

    def _evict(self) -> None:
        while self._published_bytes > self.publish_budget and len(self._published) > 1:
            _, (_, _, shm) = self._published.popitem(last=False)
            self._published_bytes -= shm.size
            _destroy(shm)

    # -- scratch (per-call) arrays -------------------------------------
    def scratch(self, shape: tuple[int, ...], dtype) -> tuple[ShmRef, np.ndarray]:
        """Allocate an output segment for one primitive call.

        Returns the ref (for workers) and the parent's writable view; freed
        on the next :meth:`release_scratch`.
        """
        ref, shm = self._create(shape, np.dtype(dtype))
        self._scratch.append(shm)
        return ref, _as_array(ref, shm)

    def share_scratch(self, array: np.ndarray) -> ShmRef:
        """Copy an ephemeral input (e.g. a triplet stream) into scratch."""
        ref, view = self.scratch(array.shape, array.dtype)
        view[...] = array
        return ref

    def release_scratch(self) -> None:
        """Unlink every scratch segment of the completed call."""
        scratch, self._scratch = self._scratch, []
        for shm in scratch:
            _destroy(shm)

    # -- lifecycle ------------------------------------------------------
    def _create(self, shape, dtype) -> tuple[ShmRef, shared_memory.SharedMemory]:
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize)
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=f"repro-exec-{secrets.token_hex(8)}"
        )
        return ShmRef(shm.name, tuple(int(s) for s in shape), np.dtype(dtype).str), shm

    def close(self) -> None:
        """Unlink every segment this registry still owns."""
        for _, _, shm in self._published.values():
            _destroy(shm)
        self._published.clear()
        self._published_bytes = 0
        self.release_scratch()


def _destroy(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment, tolerating an already-gone file."""
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a live view pins the mapping
        return
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_ATTACHED: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()

#: When True (spawned workers: private resource tracker), each attachment is
#: withdrawn from this process's tracker so a worker exit cannot unlink
#: segments the parent still owns.  Forked workers share the parent's tracker
#: and must NOT unregister — that would erase the parent's own registration.
_UNREGISTER_ON_ATTACH = False


def set_unregister_on_attach(flag: bool) -> None:
    """Configure worker-side tracker accounting (see the module docstring)."""
    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = bool(flag)


def attach(ref: ShmRef) -> np.ndarray:
    """Map a ref to an ndarray view inside a worker process.

    Attachments are cached per process so repeated tasks against the same
    published segment re-map nothing; the cache is LRU-bounded and eviction
    tolerates views that are still alive.  The *parent* owns every segment's
    lifetime; tracker accounting follows :func:`set_unregister_on_attach`.
    """
    shm = _ATTACHED.get(ref.name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=ref.name)
        if _UNREGISTER_ON_ATTACH:
            try:  # the parent owns this segment's lifetime, not this worker
                resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
            except Exception:  # pragma: no cover - tracker internals vary
                pass
        _ATTACHED[ref.name] = shm
        while len(_ATTACHED) > _ATTACH_CACHE_SIZE:
            _, old = _ATTACHED.popitem(last=False)
            try:
                old.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
    else:
        _ATTACHED.move_to_end(ref.name)
    return _as_array(ref, shm)
