"""Deterministic work partitioning for the multicore numeric plane.

The paper's Block Reorganizer balances thread-block work across SMs by
classifying blocks as overloaded/underloaded and redistributing them; the
execution plane applies the same idea one level up, spreading *kernel* work
across worker processes.  Partitions are always **contiguous** index ranges —
contiguity is what makes the parallel results bit-identical to serial
execution, because every combining step is then a plain concatenation in
range order — and are sized by per-item cost estimates (per-row or per-pair
flop counts), not item counts, mirroring the paper's precalculated workload
vectors.

Two cut disciplines are provided, selectable per engine:

* ``lpt`` — :func:`contiguous_blocks` / :func:`group_aligned_blocks`: cuts on
  the *weight* prefix sum (or even item counts for group streams).  Balances
  estimated flops but can hand one block a million zero-weight rows and
  another a single hub row, so per-block *item* traffic is unbounded.
* ``merge-path`` — :func:`merge_path_blocks` /
  :func:`merge_path_group_blocks`: cuts on the ``items + work`` diagonal, the
  two-dimensional balancing of Merrill–Garland merge-based SpMV as applied to
  SpGEMM by Yang–Buluç–Owens ("Design Principles for Sparse Matrix
  Multiplication on the GPU").  Every block is bounded in *both* the number
  of items it touches and the work it performs, which is what keeps hub rows
  from serialising a block while empty-row runs pad another.

Scheduling follows the bench engine's idiom: partitions are *submitted*
largest-first (LPT order) onto a dynamic pool, so one overloaded partition
does not serialise the tail of the call, while *assembly* always happens in
range order.  Both disciplines emit contiguous ranges, so they are
interchangeable without affecting results — only balance.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PARTITIONER_NAMES",
    "contiguous_blocks",
    "group_aligned_blocks",
    "lpt_order",
    "merge_path_blocks",
    "merge_path_group_blocks",
    "weight_blocks",
    "stream_blocks",
]

#: Cut disciplines an :class:`~repro.exec.engine.ExecEngine` can select.
PARTITIONER_NAMES = ("merge-path", "lpt")


def contiguous_blocks(
    weights: np.ndarray, n_blocks: int
) -> list[tuple[int, int]]:
    """Split ``[0, len(weights))`` into contiguous ranges of near-equal load.

    Cuts are placed on the weight prefix sum at the ideal per-block load, so
    a hub row (one item heavier than a whole block's budget) gets a block of
    its own and the remainder rebalances around it — the overloaded /
    underloaded split of the paper's classification, applied to ranges.
    Always covers the full index range (trailing zero-weight items included)
    and never returns an empty range; the result is a pure function of
    ``(weights, n_blocks)``.
    """
    n = len(weights)
    if n == 0:
        return []
    n_blocks = max(1, min(int(n_blocks), n))
    if n_blocks == 1:
        return [(0, n)]
    cum = np.cumsum(weights, dtype=np.float64)
    total = float(cum[-1])
    if total <= 0.0:
        # No cost signal: fall back to even item counts.
        bounds = np.linspace(0, n, n_blocks + 1).astype(np.int64)
    else:
        targets = total * np.arange(1, n_blocks, dtype=np.float64) / n_blocks
        cuts = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.concatenate(([0], cuts, [n]))
    bounds = np.unique(np.clip(bounds, 0, n))
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def group_aligned_blocks(
    group: np.ndarray, n_blocks: int
) -> list[tuple[int, int]]:
    """Split a *group-sorted* stream into contiguous, group-aligned ranges.

    ``group`` is a non-decreasing array mapping each stream element to its
    summation target (a merge recipe's ``group`` column).  Cuts are placed at
    even stream positions and then snapped left to the nearest group
    boundary, so every group lies entirely inside one range — the property
    that makes per-range segmented sums combine into the serial result by
    concatenation, with every group still summed in stream order.
    """
    n = len(group)
    if n == 0:
        return []
    n_blocks = max(1, min(int(n_blocks), n))
    if n_blocks == 1:
        return [(0, n)]
    raw = np.linspace(0, n, n_blocks + 1).astype(np.int64)[1:-1]
    snapped = np.searchsorted(group, group[raw], side="left")
    bounds = np.unique(np.concatenate(([0], snapped, [n])))
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def merge_path_blocks(
    weights: np.ndarray, n_blocks: int
) -> list[tuple[int, int]]:
    """Split ``[0, len(weights))`` by even cuts of the items + work diagonal.

    The merge-path view: walking the stream consumes one *item* step per
    element plus ``weights[i]`` *work* steps.  Cutting the combined walk
    ``cumsum(weights + 1)`` evenly bounds both quantities per block — a block
    can hold at most its diagonal share of items (so zero-weight runs spread
    out instead of piling into one range) and at most its share of work plus
    one item's overshoot (so a hub row still claims a block of its own).
    Like :func:`contiguous_blocks` this is a pure function of the inputs,
    covers the full range, and never returns an empty range.
    """
    n = len(weights)
    if n == 0:
        return []
    n_blocks = max(1, min(int(n_blocks), n))
    if n_blocks == 1:
        return [(0, n)]
    diag = np.cumsum(np.asarray(weights, dtype=np.float64) + 1.0)
    total = float(diag[-1])
    targets = total * np.arange(1, n_blocks, dtype=np.float64) / n_blocks
    cuts = np.searchsorted(diag, targets, side="left") + 1
    bounds = np.unique(np.clip(np.concatenate(([0], cuts, [n])), 0, n))
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def merge_path_group_blocks(
    group: np.ndarray, n_blocks: int
) -> list[tuple[int, int]]:
    """Group-aligned split of a sorted stream by the items + groups diagonal.

    The reduction analogue of :func:`merge_path_blocks`: each stream element
    is one item step, each *new* group one output step, and cuts fall at even
    positions of the combined walk before snapping left to the enclosing
    group boundary.  Compared with :func:`group_aligned_blocks` (items only),
    a block is bounded in output entries too, so a range of singleton groups
    (scatter-heavy) cannot be handed the same item budget as one giant group
    (stream-heavy).  Group-alignment — and therefore bit-identical combined
    sums — is preserved.
    """
    n = len(group)
    if n == 0:
        return []
    n_blocks = max(1, min(int(n_blocks), n))
    if n_blocks == 1:
        return [(0, n)]
    diag = np.arange(1, n + 1, dtype=np.float64) + np.asarray(group, dtype=np.float64)
    total = float(diag[-1])
    targets = total * np.arange(1, n_blocks, dtype=np.float64) / n_blocks
    raw = np.clip(np.searchsorted(diag, targets, side="left"), 0, n - 1)
    snapped = np.searchsorted(group, group[raw], side="left")
    bounds = np.unique(np.concatenate(([0], snapped, [n])))
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def weight_blocks(
    weights: np.ndarray, n_blocks: int, *, partitioner: str = "merge-path"
) -> list[tuple[int, int]]:
    """Dispatch a weighted-range split to the named cut discipline."""
    if partitioner == "merge-path":
        return merge_path_blocks(weights, n_blocks)
    if partitioner == "lpt":
        return contiguous_blocks(weights, n_blocks)
    raise ValueError(
        f"unknown partitioner {partitioner!r}; known: {list(PARTITIONER_NAMES)}"
    )


def stream_blocks(
    group: np.ndarray, n_blocks: int, *, partitioner: str = "merge-path"
) -> list[tuple[int, int]]:
    """Dispatch a group-aligned stream split to the named cut discipline."""
    if partitioner == "merge-path":
        return merge_path_group_blocks(group, n_blocks)
    if partitioner == "lpt":
        return group_aligned_blocks(group, n_blocks)
    raise ValueError(
        f"unknown partitioner {partitioner!r}; known: {list(PARTITIONER_NAMES)}"
    )


def lpt_order(block_weights: list[float]) -> list[int]:
    """Submission order for blocks: heaviest first, index-stable on ties.

    With a dynamic pool this is longest-processing-time scheduling — the
    same discipline the bench engine uses for dataset shards — and it is
    deterministic: equal weights keep their range order.
    """
    return sorted(range(len(block_weights)), key=lambda i: (-float(block_weights[i]), i))
