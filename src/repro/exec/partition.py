"""Deterministic work partitioning for the multicore numeric plane.

The paper's Block Reorganizer balances thread-block work across SMs by
classifying blocks as overloaded/underloaded and redistributing them; the
execution plane applies the same idea one level up, spreading *kernel* work
across worker processes.  Partitions are always **contiguous** index ranges —
contiguity is what makes the parallel results bit-identical to serial
execution, because every combining step is then a plain concatenation in
range order — and are sized by per-item cost estimates (per-row or per-pair
flop counts), not item counts, mirroring the paper's precalculated workload
vectors.

Scheduling follows the bench engine's idiom: partitions are *submitted*
largest-first (LPT order) onto a dynamic pool, so one overloaded partition
does not serialise the tail of the call, while *assembly* always happens in
range order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["contiguous_blocks", "group_aligned_blocks", "lpt_order"]


def contiguous_blocks(
    weights: np.ndarray, n_blocks: int
) -> list[tuple[int, int]]:
    """Split ``[0, len(weights))`` into contiguous ranges of near-equal load.

    Cuts are placed on the weight prefix sum at the ideal per-block load, so
    a hub row (one item heavier than a whole block's budget) gets a block of
    its own and the remainder rebalances around it — the overloaded /
    underloaded split of the paper's classification, applied to ranges.
    Always covers the full index range (trailing zero-weight items included)
    and never returns an empty range; the result is a pure function of
    ``(weights, n_blocks)``.
    """
    n = len(weights)
    if n == 0:
        return []
    n_blocks = max(1, min(int(n_blocks), n))
    if n_blocks == 1:
        return [(0, n)]
    cum = np.cumsum(weights, dtype=np.float64)
    total = float(cum[-1])
    if total <= 0.0:
        # No cost signal: fall back to even item counts.
        bounds = np.linspace(0, n, n_blocks + 1).astype(np.int64)
    else:
        targets = total * np.arange(1, n_blocks, dtype=np.float64) / n_blocks
        cuts = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.concatenate(([0], cuts, [n]))
    bounds = np.unique(np.clip(bounds, 0, n))
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def group_aligned_blocks(
    group: np.ndarray, n_blocks: int
) -> list[tuple[int, int]]:
    """Split a *group-sorted* stream into contiguous, group-aligned ranges.

    ``group`` is a non-decreasing array mapping each stream element to its
    summation target (a merge recipe's ``group`` column).  Cuts are placed at
    even stream positions and then snapped left to the nearest group
    boundary, so every group lies entirely inside one range — the property
    that makes per-range segmented sums combine into the serial result by
    concatenation, with every group still summed in stream order.
    """
    n = len(group)
    if n == 0:
        return []
    n_blocks = max(1, min(int(n_blocks), n))
    if n_blocks == 1:
        return [(0, n)]
    raw = np.linspace(0, n, n_blocks + 1).astype(np.int64)[1:-1]
    snapped = np.searchsorted(group, group[raw], side="left")
    bounds = np.unique(np.concatenate(([0], snapped, [n])))
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def lpt_order(block_weights: list[float]) -> list[int]:
    """Submission order for blocks: heaviest first, index-stable on ties.

    With a dynamic pool this is longest-processing-time scheduling — the
    same discipline the bench engine uses for dataset shards — and it is
    deterministic: equal weights keep their range order.
    """
    return sorted(range(len(block_weights)), key=lambda i: (-float(block_weights[i]), i))
