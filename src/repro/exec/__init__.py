"""repro.exec — the multicore numeric execution plane.

The paper spreads thread-block work evenly across SMs; this package applies
the same load-balancing discipline to the *numeric* hot path of the
simulator's host-side kernels.  An :class:`ExecEngine` partitions each
primitive's work into contiguous ranges sized by per-item flop estimates,
runs the ranges across a process pool over :mod:`multiprocessing.shared_memory`
operands, and reassembles results in range order — **bit-identical** to
serial execution (see :mod:`repro.exec.engine` for the argument).

Like :mod:`repro.obs`, the engine is ambient: drivers install one for the
duration of a run and the numeric kernels (:mod:`repro.spgemm.expansion`,
:mod:`repro.spgemm.merge`, :mod:`repro.plan.cache`) consult :func:`active`
and fall back to their serial bodies when it returns ``None`` — so every
caller of every scheme gains parallelism with no API change beyond the
``exec_workers`` knobs.

Usage (drivers)::

    from repro import exec as rexec

    with rexec.engine_scope(4):
        c = algo.multiply(a, b)        # partitioned, bit-identical

:func:`active` is pid-guarded: a forked child (e.g. a bench shard worker)
inheriting the parent's module state sees ``None``, never the parent's pool —
process pools do not survive a fork, and nesting pools would oversubscribe
the machine.

The ambient slot is **thread-local**.  The serving layer runs pooled
multiplies on micro-batcher worker threads, each wrapping its work in
``engine_scope(shared_engine)``; with a process-global slot, one thread's
scope exit would restore *its* saved previous value and uninstall the
engine out from under a concurrent thread mid-multiply, silently dropping
that request to the serial path.  Thread-local state makes install/restore
per-thread (one :class:`ExecEngine` may still be shared across threads —
its public primitives serialize internally; see
:attr:`ExecEngine._call_lock`).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.exec.engine import (
    DEFAULT_MIN_ITEMS,
    DEFAULT_PARTITIONER,
    ExecEngine,
    ExecStats,
    default_exec_workers,
)
from repro.exec.partition import PARTITIONER_NAMES

__all__ = [
    "DEFAULT_MIN_ITEMS",
    "DEFAULT_PARTITIONER",
    "PARTITIONER_NAMES",
    "ExecEngine",
    "ExecStats",
    "active",
    "default_exec_workers",
    "engine_scope",
    "install",
    "uninstall",
]

_STATE = threading.local()


def active() -> ExecEngine | None:
    """This thread's installed engine, or ``None``.

    Always ``None`` in forked children (the pid guard) and in threads that
    never installed one — worker threads must enter their own
    :func:`engine_scope` rather than inherit another thread's.
    """
    engine = getattr(_STATE, "engine", None)
    if engine is not None and getattr(_STATE, "pid", -1) == os.getpid():
        return engine
    return None


def install(engine: ExecEngine) -> ExecEngine:
    """Install ``engine`` as this thread's ambient execution engine."""
    _STATE.engine = engine
    _STATE.pid = os.getpid()
    return engine


def uninstall() -> ExecEngine | None:
    """Remove and return this thread's engine (the caller owns its lifetime)."""
    engine = active()
    _STATE.engine = None
    return engine


@contextmanager
def engine_scope(
    workers: int | ExecEngine | None,
    *,
    min_items: int = DEFAULT_MIN_ITEMS,
    partitioner: str = DEFAULT_PARTITIONER,
):
    """Install an execution engine for the duration of a ``with`` block.

    ``workers`` may be ``None``/``0``/``1`` (no-op scope: kernels stay
    serial), an integer pool width (a fresh engine is created and closed on
    exit), or an existing :class:`ExecEngine` (installed but left open, so a
    session can reuse one pool across iterations; ``partitioner`` is then
    ignored — the engine keeps its own).  Scopes nest *per thread*; this
    thread's previous ambient engine is restored on exit.  Yields the
    installed engine or ``None``.
    """
    if isinstance(workers, ExecEngine):
        engine, owned = workers, False
    elif workers is not None and int(workers) > 1:
        engine, owned = (
            ExecEngine(int(workers), min_items=min_items, partitioner=partitioner),
            True,
        )
    else:
        yield None
        return
    previous = getattr(_STATE, "engine", None)
    previous_pid = getattr(_STATE, "pid", -1)
    install(engine)
    try:
        yield engine
    finally:
        _STATE.engine, _STATE.pid = previous, previous_pid
        if owned:
            engine.close()
