"""Shutdown hooks: close runtimes on SIGINT/SIGTERM/interpreter exit.

A warm :class:`~repro.exec.ExecEngine` pool owns ``multiprocessing.shared_memory``
segments (named ``repro-exec-*``).  ``weakref.finalize`` covers orderly
interpreter exit, but a SIGTERM delivered mid-request used to kill the
process before finalizers ran, leaking segments in ``/dev/shm``.
:func:`install` registers a signal-chaining handler plus an ``atexit`` hook
that close every registered :class:`~repro.runtime.core.Runtime` — draining
pools and unlinking segments — before the process dies with the original
signal's conventional exit status.

Usage (the CLI and ``repro serve`` both do this)::

    runtime = Runtime(config)
    lifecycle.install(runtime)
    try:
        ...
    finally:
        lifecycle.uninstall(runtime)   # also closes it
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import weakref

__all__ = ["HANDLED_SIGNALS", "install", "installed_count", "uninstall"]

#: Signals that trigger a runtime sweep before the process exits.
HANDLED_SIGNALS = (signal.SIGINT, signal.SIGTERM)

_lock = threading.Lock()
# Registered runtimes, weakly held: a runtime that is garbage collected
# (its own finalizers already ran) must not be kept alive by the hook.
_runtimes: "weakref.WeakSet" = weakref.WeakSet()
_previous: dict[int, object] = {}
_installed = False


def install(runtime) -> None:
    """Register ``runtime`` for cleanup on signal or interpreter exit.

    Idempotent per runtime.  The process-wide handlers are installed on
    first use and only from the main thread (signal module restriction);
    off-main-thread callers still get ``atexit`` coverage.
    """
    global _installed
    with _lock:
        _runtimes.add(runtime)
        if _installed:
            return
        _installed = True
    atexit.register(close_all)
    if threading.current_thread() is threading.main_thread():
        for sig in HANDLED_SIGNALS:
            _previous[sig] = signal.signal(sig, _handle)


def uninstall(runtime) -> None:
    """Close ``runtime`` and stop tracking it (signal handlers stay)."""
    with _lock:
        _runtimes.discard(runtime)
    runtime.close()


def installed_count() -> int:
    """How many live runtimes the hooks are currently guarding."""
    with _lock:
        return len(_runtimes)


def close_all() -> None:
    """Close every registered runtime (idempotent, exception-swallowing)."""
    with _lock:
        runtimes = list(_runtimes)
    for runtime in runtimes:
        try:
            runtime.close()
        except Exception:  # pragma: no cover - best effort during teardown
            pass


def _handle(signum, frame) -> None:
    """Chain: sweep runtimes, then deliver the signal's default outcome."""
    close_all()
    previous = _previous.get(signum)
    if callable(previous):
        # Includes signal.default_int_handler, which raises KeyboardInterrupt.
        previous(signum, frame)
        return
    # Re-deliver with the default disposition so the exit status is the
    # conventional 128+signum that supervisors (and our tests) expect.
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _reset_for_tests() -> None:
    """Restore pristine module state (test helper; not part of the API)."""
    global _installed
    with _lock:
        _runtimes.clear()
        _installed = False
    for sig, previous in list(_previous.items()):
        try:
            signal.signal(sig, previous)  # type: ignore[arg-type]
        except (ValueError, TypeError):  # pragma: no cover - non-main thread
            pass
    _previous.clear()
