"""Configuration for a :class:`~repro.runtime.Runtime`.

Before this layer existed, execution configuration was scattered: the CLI
mutated process-wide bench-runner defaults, installed ambient exec engines
with ``engine_scope``, scoped kernel backends with ``kernels.use`` and wired
trace recorders by hand — each subcommand slightly differently.
:class:`RuntimeConfig` is the one place all of those knobs now live; a
:class:`~repro.runtime.core.Runtime` built from it owns their lifetimes.

:func:`RuntimeConfig.from_args` maps an argparse namespace (any ``repro``
subcommand's) onto a config, so every CLI entry point — and ``repro serve``
— resolves flags the same way.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace

from repro import exec as rexec
from repro.errors import ConfigurationError, ReproError
from repro.gpusim.config import ALL_GPUS, TITAN_XP, GPUConfig

__all__ = ["RuntimeConfig", "gpu_by_name"]

#: Default LRU bound for each pooled session's :class:`PlanCache` — small,
#: because pooled sessions are keyed by structure fingerprint and therefore
#: hold entries for a handful of structures each (plan + semiring variants).
DEFAULT_PLAN_CACHE_ENTRIES = 64

#: Default per-tenant cap on pooled warm sessions (the per-tenant plan-cache
#: quota: evicting a session drops its cached plans and recipes).
DEFAULT_SESSIONS_PER_TENANT = 32


def gpu_by_name(name: str) -> GPUConfig:
    """Resolve a GPU by (whitespace-insensitive) name, e.g. ``"Tesla V100"``."""
    for gpu in ALL_GPUS:
        if gpu.name.lower().replace(" ", "") == name.lower().replace(" ", ""):
            return gpu
    raise ReproError(f"unknown GPU {name!r}; known: {[g.name for g in ALL_GPUS]}")


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything a :class:`Runtime` needs to know about how to execute.

    Attributes:
        gpu: default lowering/simulation target.
        workers: bench-grid process-pool width (0 = all cores).
        cache_dir: persistent result-cache directory (``None`` = default).
        use_result_cache: consult/populate the persistent bench result cache.
        shard_timeout: bench-shard no-progress window in seconds (``None``
            keeps the runner's default).
        exec_workers: :mod:`repro.exec` pool width for the numeric kernels
            (0 = all cores, <=1 = serial; bit-identical either way).
        exec_partitioner: the exec plane's cut discipline.
        kernel_backend: numeric-primitive backend name, or ``None`` for the
            ambient default (``$REPRO_KERNEL_BACKEND`` or numpy).
        plan_cache_entries: LRU ``max_entries`` for each pooled session's
            :class:`~repro.plan.cache.PlanCache` (``None`` = unbounded).
        sessions_per_tenant: LRU cap on warm sessions pooled per tenant.
        mem_budget: out-of-core memory budget in bytes (``None`` = in-memory
            execution); numeric multiplies route through
            :func:`repro.oocore.chunked_multiply` when set.
        spill_dir: base directory for the out-of-core spill store
            (``None`` = ``$TMPDIR``).
        full_scale: resolve dataset names at the paper's published scale
            (the catalog's ``@full`` variants) instead of the stand-ins.
    """

    gpu: GPUConfig = field(default_factory=lambda: TITAN_XP)
    workers: int = 1
    cache_dir: str | None = None
    use_result_cache: bool = True
    shard_timeout: float | None = None
    exec_workers: int = 1
    exec_partitioner: str = rexec.DEFAULT_PARTITIONER
    kernel_backend: str | None = None
    plan_cache_entries: int | None = DEFAULT_PLAN_CACHE_ENTRIES
    sessions_per_tenant: int = DEFAULT_SESSIONS_PER_TENANT
    mem_budget: int | None = None
    spill_dir: str | None = None
    full_scale: bool = False

    def __post_init__(self) -> None:
        if self.exec_partitioner not in rexec.PARTITIONER_NAMES:
            raise ConfigurationError(
                f"unknown partitioner {self.exec_partitioner!r}; "
                f"known: {list(rexec.PARTITIONER_NAMES)}"
            )
        if self.sessions_per_tenant < 1:
            raise ConfigurationError(
                f"sessions_per_tenant must be >= 1, got {self.sessions_per_tenant}"
            )
        if self.mem_budget is not None and self.mem_budget <= 0:
            raise ConfigurationError(
                f"mem_budget must be positive, got {self.mem_budget}"
            )

    @property
    def resolved_workers(self) -> int:
        """Bench-grid pool width with 0 resolved to the core count."""
        from repro.bench.parallel import default_workers

        return default_workers() if self.workers == 0 else max(1, self.workers)

    @property
    def resolved_exec_workers(self) -> int:
        """Exec-plane pool width with 0 resolved to the core count."""
        if self.exec_workers == 0:
            return rexec.default_exec_workers()
        return max(1, self.exec_workers)

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "RuntimeConfig":
        """Build a config from any ``repro`` subcommand's parsed flags.

        Flags a subcommand does not define fall back to the dataclass
        defaults, so one mapping serves ``run`` (exec flags only), the
        grid commands (full execution flags) and ``serve``.
        """
        base = cls()
        fields: dict = {}
        if getattr(args, "gpu", None) is not None:
            fields["gpu"] = gpu_by_name(args.gpu)
        for attr, flag in [
            ("workers", "workers"),
            ("cache_dir", "cache_dir"),
            ("shard_timeout", "shard_timeout"),
            ("exec_workers", "exec_workers"),
            ("exec_partitioner", "exec_partitioner"),
            ("kernel_backend", "kernel_backend"),
            ("plan_cache_entries", "plan_cache_entries"),
            ("sessions_per_tenant", "sessions_per_tenant"),
            ("spill_dir", "spill_dir"),
        ]:
            value = getattr(args, flag, None)
            if value is not None:
                fields[attr] = value
        budget = getattr(args, "mem_budget", None)
        if budget is not None:
            # Lazy import: repro.oocore pulls in the runtime package, so a
            # top-level import here would be circular.
            from repro.oocore.budget import parse_mem_budget

            fields["mem_budget"] = parse_mem_budget(budget)
        if getattr(args, "no_cache", False):
            fields["use_result_cache"] = False
        if getattr(args, "full_scale", False):
            fields["full_scale"] = True
        return replace(base, **fields)
