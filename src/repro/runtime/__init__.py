"""repro.runtime — the reusable execution layer beneath every front-end.

The CLI subcommands and the :mod:`repro.serve` server are both thin
adapters over one :class:`Runtime`: a facade owning dataset contexts,
fingerprint-keyed :class:`~repro.spgemm.session.IterativeSession` pools,
the shared exec-plane process pool, kernel-backend selection and trace
wiring, with deterministic startup/shutdown (see
:mod:`repro.runtime.lifecycle` for the signal-safe teardown path).
"""

from repro.runtime.config import (
    DEFAULT_PLAN_CACHE_ENTRIES,
    DEFAULT_SESSIONS_PER_TENANT,
    RuntimeConfig,
    gpu_by_name,
)
from repro.runtime.core import (
    IterationReport,
    MultiplyOutcome,
    PooledSession,
    Runtime,
    RuntimeStats,
)

__all__ = [
    "DEFAULT_PLAN_CACHE_ENTRIES",
    "DEFAULT_SESSIONS_PER_TENANT",
    "IterationReport",
    "MultiplyOutcome",
    "PooledSession",
    "Runtime",
    "RuntimeConfig",
    "RuntimeStats",
    "gpu_by_name",
]
