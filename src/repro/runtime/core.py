"""The :class:`Runtime` facade: one object that owns engine/session lifecycle.

Everything a front-end needs to execute work — dataset contexts, algorithm
instances, warm :class:`~repro.spgemm.session.IterativeSession` pools keyed
by sparsity-structure fingerprint, the shared :class:`~repro.exec.ExecEngine`
process pool, kernel-backend selection, bench-runner defaults and trace
recording — is constructed, cached and (crucially) *shut down* here.  The
CLI subcommands and the :mod:`repro.serve` front-end are thin adapters over
this one class; neither constructs an engine, session or pool directly.

Lifecycle::

    with Runtime(RuntimeConfig(exec_workers=4)) as rt:
        stats = rt.simulate("poisson3da", "block-reorganizer")
        c, meta = rt.multiply("row-product", a, b, tenant="alice")
    # pools closed, shared-memory segments unlinked, backend scope exited

Sessions are pooled per ``(tenant, algorithm, structure fingerprint)`` with
a per-tenant LRU bound (:attr:`RuntimeConfig.sessions_per_tenant`): one
tenant's structure churn evicts its *own* oldest warm session — dropping
that session's cached plans and recipes, which is exactly the per-tenant
plan-cache quota — and can never evict another tenant's.  Each pooled
session carries a lock so concurrent callers of the same structure
serialise while distinct structures proceed in parallel.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field

from repro import exec as rexec
from repro import kernels, obs
from repro.bench import runner
from repro.bench.cache import ResultCache
from repro.errors import ReproError
from repro.gpusim.config import GPUConfig
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.stats import KernelStats
from repro.obs.serving import NULL_REQUEST_TRACE
from repro.plan.cache import PlanCache, PlanCacheStats, structure_fingerprint
from repro.runtime.config import RuntimeConfig
from repro.sparse.csr import CSRMatrix
from repro.spgemm.base import SpGEMMAlgorithm
from repro.spgemm.session import IterativeSession

__all__ = [
    "IterationReport",
    "MultiplyOutcome",
    "PooledSession",
    "Runtime",
    "RuntimeStats",
]


@dataclass
class PooledSession:
    """One warm session plus the bookkeeping the pool needs around it."""

    session: IterativeSession
    lock: threading.Lock = field(default_factory=threading.Lock)
    requests: int = 0


@dataclass(frozen=True)
class MultiplyOutcome:
    """A multiply result plus how the runtime served it."""

    result: CSRMatrix
    fingerprint: str
    replayed: bool
    tenant: str


@dataclass
class RuntimeStats:
    """A point-in-time snapshot of one runtime's serving state.

    ``exec`` is the shared exec pool's :meth:`~repro.exec.ExecStats.as_dict`
    snapshot, or ``None`` while the runtime is serial (no pool built).
    """

    sessions: int
    sessions_evicted: int
    tenants: dict[str, int]
    plan_cache: PlanCacheStats
    requests: int
    exec: dict | None = None

    def as_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "sessions_evicted": self.sessions_evicted,
            "tenants": dict(self.tenants),
            "plan_cache": self.plan_cache.as_dict(),
            "requests": self.requests,
            "exec": dict(self.exec) if self.exec is not None else None,
        }


@dataclass(frozen=True)
class IterationReport:
    """Wall-clock record of an N-iteration fixed-structure numeric loop."""

    seconds: list[float]
    stats: PlanCacheStats

    @property
    def cold_seconds(self) -> float:
        return self.seconds[0]

    @property
    def warm_mean_seconds(self) -> float:
        warm = self.seconds[1:]
        return sum(warm) / len(warm) if warm else 0.0


class Runtime:
    """Owns every execution resource; front-ends stay declarative.

    Thread-safety: session pooling and stats are guarded by an internal
    lock, and each pooled session serialises its own multiplies, so one
    runtime can serve concurrent request streams (``repro.serve`` does).
    ``close()`` is idempotent and safe to call from signal handlers.
    """

    def __init__(self, config: RuntimeConfig | None = None) -> None:
        self.config = config if config is not None else RuntimeConfig()
        self._lock = threading.RLock()
        self._sessions: OrderedDict[tuple[str, str, str], PooledSession] = OrderedDict()
        self._retired_stats = PlanCacheStats()
        self._sessions_evicted = 0
        self._requests = 0
        self._engine: rexec.ExecEngine | None = None
        self._algos: dict[str, SpGEMMAlgorithm] | None = None
        self._last_ooc_stats = None
        self._closed = False
        self._scopes = ExitStack()
        # Backend selection verifies bit-identity up front: an unavailable
        # or diverging backend fails at runtime construction, before any
        # request or subcommand runs.
        self._scopes.enter_context(kernels.use(self.config.kernel_backend))
        self._result_cache: ResultCache | None = (
            ResultCache(self.config.cache_dir) if self.config.use_result_cache else None
        )

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every owned resource: sessions, pools, shared memory.

        Idempotent; also invoked by the shutdown hooks
        (:mod:`repro.runtime.lifecycle`) on SIGINT/SIGTERM/exit so an
        interrupted process cannot leak ``multiprocessing.shared_memory``
        segments from a warm exec pool.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions, self._sessions = self._sessions, OrderedDict()
        for pooled in sessions.values():
            pooled.session.close()
            with self._lock:
                self._retired_stats.merge(pooled.session.stats)
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        self._scopes.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ReproError("runtime is closed")

    # -- execution resources -------------------------------------------
    def exec_engine(self) -> rexec.ExecEngine | None:
        """The shared exec-plane pool (lazily created), or ``None`` (serial)."""
        self._require_open()
        width = self.config.resolved_exec_workers
        if width <= 1:
            return None
        with self._lock:
            if self._engine is None:
                self._engine = rexec.ExecEngine(
                    width, partitioner=self.config.exec_partitioner
                )
            return self._engine

    @contextmanager
    def exec_scope(self):
        """Install the runtime's exec engine as ambient for a block."""
        with rexec.engine_scope(self.exec_engine()) as engine:
            yield engine

    def exec_stats(self) -> rexec.ExecStats | None:
        """Counters of the shared exec pool, or ``None`` when serial."""
        return self._engine.stats if self._engine is not None else None

    @contextmanager
    def runner_scope(self):
        """Apply this runtime's bench-runner defaults, restoring on exit.

        The experiment modules call :func:`repro.bench.runner.run_matrix`
        with no arguments and rely on process-wide defaults; this scope is
        how a runtime's configuration reaches them without leaking into
        later in-process callers (tests, embedders).
        """
        self._require_open()
        d = runner._DEFAULTS
        saved = (d.workers, d.cache, d.shard_timeout, d.exec_workers, d.exec_partitioner)
        kwargs = dict(
            workers=self.config.resolved_workers,
            cache=self._result_cache,
            exec_workers=self.config.resolved_exec_workers,
            exec_partitioner=self.config.exec_partitioner,
        )
        if self.config.shard_timeout is not None:
            kwargs["shard_timeout"] = self.config.shard_timeout
        runner.configure(**kwargs)
        try:
            yield self
        finally:
            runner.configure(
                workers=saved[0], cache=saved[1], shard_timeout=saved[2],
                exec_workers=saved[3], exec_partitioner=saved[4],
            )

    @property
    def result_cache(self) -> ResultCache | None:
        """The persistent bench result cache, or ``None`` when disabled."""
        return self._result_cache

    # -- datasets and algorithms ---------------------------------------
    def resolve_dataset(self, dataset: str) -> str:
        """Apply the config's full-scale switch to a dataset name.

        With :attr:`RuntimeConfig.full_scale` set, bare catalog names gain
        the ``@full`` suffix so every load in this runtime resolves at the
        paper's published scale; already-suffixed names pass through.
        """
        from repro.datasets.catalog import FULL_SCALE_SUFFIX

        if self.config.full_scale and not dataset.endswith(FULL_SCALE_SUFFIX):
            return dataset + FULL_SCALE_SUFFIX
        return dataset

    def context(self, dataset: str):
        """Load a dataset's (cached) multiply context."""
        self._require_open()
        return runner.get_context(self.resolve_dataset(dataset))

    def algorithms(self) -> dict[str, SpGEMMAlgorithm]:
        """The seven paper schemes, resolved once and shared.

        One instance per name per runtime, so non-fingerprintable schemes
        keep a stable cache identity across requests.
        """
        with self._lock:
            if self._algos is None:
                self._algos = {a.name: a for a in runner.paper_algorithms()}
            return self._algos

    def algorithm(self, name: str) -> SpGEMMAlgorithm:
        """Resolve a scheme by CLI/request name."""
        algos = self.algorithms()
        if name not in algos:
            raise ReproError(
                f"unknown algorithm {name!r}; known: {sorted(algos)}"
            )
        return algos[name]

    # -- performance plane ---------------------------------------------
    def simulate(
        self, dataset: str, algorithm: str, gpu: GPUConfig | None = None
    ) -> KernelStats:
        """Simulate one (dataset, algorithm) cell on the configured GPU."""
        self._require_open()
        algo = self.algorithm(algorithm)
        with self.exec_scope():
            ctx = self.context(dataset)
            return algo.simulate(ctx, GPUSimulator(gpu or self.config.gpu))

    # -- numeric plane: warm sessions ----------------------------------
    def session(
        self,
        algorithm: str | SpGEMMAlgorithm,
        *,
        structure: str,
        tenant: str = "default",
    ) -> PooledSession:
        """A warm session for (tenant, algorithm, structure fingerprint).

        Creating, reusing and evicting sessions all happens here: a cache
        hit refreshes LRU recency; a miss builds a fresh session whose
        :class:`PlanCache` is bounded by
        :attr:`RuntimeConfig.plan_cache_entries`; and when the owning
        tenant exceeds :attr:`RuntimeConfig.sessions_per_tenant`, that
        tenant's least-recently-used session is closed and its counters
        folded into the retired totals.  Callers must hold the returned
        :attr:`PooledSession.lock` while multiplying on it.
        """
        self._require_open()
        algo = (
            self.algorithm(algorithm) if isinstance(algorithm, str) else algorithm
        )
        key = (tenant, algo.name, structure)
        with self._lock:
            pooled = self._sessions.get(key)
            if pooled is not None:
                self._sessions.move_to_end(key)
                return pooled
            pooled = PooledSession(
                session=IterativeSession(
                    algo,
                    cache=PlanCache(max_entries=self.config.plan_cache_entries),
                    config=self.config.gpu,
                )
            )
            self._sessions[key] = pooled
            evicted = self._evict_tenant_overflow(tenant)
        for old in evicted:
            with old.lock:  # let an in-flight multiply finish first
                old.session.close()
            with self._lock:
                self._retired_stats.merge(old.session.stats)
        return pooled

    def _evict_tenant_overflow(self, tenant: str) -> list[PooledSession]:
        """Pop this tenant's LRU sessions beyond the quota (lock held)."""
        held = [k for k in self._sessions if k[0] == tenant]
        evicted = []
        for key in held[: max(0, len(held) - self.config.sessions_per_tenant)]:
            evicted.append(self._sessions.pop(key))
            self._sessions_evicted += 1
        return evicted

    def multiply(
        self,
        algorithm: str | SpGEMMAlgorithm,
        a: CSRMatrix,
        b: CSRMatrix | None = None,
        *,
        tenant: str = "default",
        trace=NULL_REQUEST_TRACE,
    ) -> MultiplyOutcome:
        """``a @ b`` on a warm session pooled by structure fingerprint.

        The outcome records whether the request was served by numeric
        replay (a prior request with this structure paid the symbolic
        work) — the amortisation signal ``repro.serve`` reports per batch.
        ``trace`` (a :class:`~repro.obs.serving.RequestTrace`) receives the
        ``session`` (pool lookup + lock wait) and ``numeric`` (multiply on
        the warm session, exec scope installed) stages.
        """
        fp = structure_fingerprint(a, a if b is None else b)
        if self.config.mem_budget is not None:
            with trace.stage("numeric"):
                result, _ = self.multiply_chunked_operands(algorithm, a, b)
            with self._lock:
                self._requests += 1
            trace.add(replayed=0)
            return MultiplyOutcome(
                result=result, fingerprint=fp, replayed=False, tenant=tenant
            )
        with trace.stage("session"):
            pooled = self.session(algorithm, structure=fp, tenant=tenant)
            pooled.lock.acquire()
        try:
            hits_before = pooled.session.stats.hits
            with trace.stage("numeric"), self.exec_scope():
                result = pooled.session.multiply(a, b)
            pooled.requests += 1
        finally:
            pooled.lock.release()
        with self._lock:
            self._requests += 1
        replayed = pooled.session.stats.hits > hits_before
        trace.add(replayed=int(replayed))
        return MultiplyOutcome(
            result=result,
            fingerprint=fp,
            replayed=replayed,
            tenant=tenant,
        )

    # -- numeric plane: out-of-core ------------------------------------
    def multiply_chunked_operands(
        self,
        algorithm: str | SpGEMMAlgorithm,
        a: CSRMatrix,
        b: CSRMatrix | None = None,
    ):
        """``a @ b`` through the out-of-core chunked executor.

        Uses the config's :attr:`~RuntimeConfig.mem_budget` and
        :attr:`~RuntimeConfig.spill_dir`; returns ``(result, OocStats)``
        (bit-identical to the in-memory path).  The stats of the most
        recent chunked multiply are kept for :meth:`ooc_stats`.
        """
        from repro.oocore import chunked_multiply

        self._require_open()
        if self.config.mem_budget is None:
            raise ReproError("runtime has no mem_budget configured")
        algo = (
            self.algorithm(algorithm) if isinstance(algorithm, str) else algorithm
        )
        with self.exec_scope():
            result, stats = chunked_multiply(
                algo,
                a,
                b,
                mem_budget=self.config.mem_budget,
                spill_dir=self.config.spill_dir,
            )
        with self._lock:
            self._last_ooc_stats = stats
        return result, stats

    def multiply_chunked(self, dataset: str, algorithm: str):
        """One dataset through the out-of-core executor, by name.

        Loads the operands directly from :mod:`repro.datasets.loader` —
        *not* through the bench runner's context cache, whose
        :class:`MultiplyContext` materialises the full reference expansion;
        at full scale only the panel path is affordable.  Returns
        ``(result, OocStats)``.
        """
        from repro.datasets import loader

        self._require_open()
        loaded = loader.load(self.resolve_dataset(dataset))
        return self.multiply_chunked_operands(algorithm, loaded.a, loaded.b)

    def ooc_stats(self):
        """The most recent chunked multiply's :class:`OocStats`, or ``None``."""
        with self._lock:
            return self._last_ooc_stats

    # -- graph apps on warm sessions -----------------------------------
    def pagerank(
        self,
        algorithm: str | SpGEMMAlgorithm,
        adjacency: CSRMatrix,
        *,
        damping: float = 0.85,
        tol: float = 1e-10,
        max_iter: int = 200,
        tenant: str = "default",
        trace=NULL_REQUEST_TRACE,
    ):
        """PageRank as fixed-structure spGEMM on a pooled warm session.

        All requests sharing one adjacency structure land on the same
        session, so only the first pays the symbolic pass; later callers
        (and iterations 2..N within a call) replay numerically.
        """
        from repro.apps.pagerank import pagerank_spgemm

        fp = "pagerank:" + structure_fingerprint(adjacency, adjacency)
        with trace.stage("session"):
            pooled = self.session(algorithm, structure=fp, tenant=tenant)
        with pooled.lock, trace.stage("numeric"), self.exec_scope():
            result = pagerank_spgemm(
                adjacency,
                pooled.session,
                damping=damping,
                tol=tol,
                max_iter=max_iter,
            )
            pooled.requests += 1
        with self._lock:
            self._requests += 1
        return result

    def reachability(
        self,
        algorithm: str | SpGEMMAlgorithm,
        adjacency: CSRMatrix,
        k: int,
        *,
        tenant: str = "default",
        trace=NULL_REQUEST_TRACE,
    ) -> CSRMatrix:
        """Boolean k-hop reachability on a pooled warm session."""
        from repro.apps.reachability import k_hop_reachability

        fp = f"reach:{k}:" + structure_fingerprint(adjacency, adjacency)
        with trace.stage("session"):
            pooled = self.session(algorithm, structure=fp, tenant=tenant)
        with pooled.lock, trace.stage("numeric"), self.exec_scope():
            result = k_hop_reachability(adjacency, k, pooled.session)
            pooled.requests += 1
        with self._lock:
            self._requests += 1
        return result

    def similarity(
        self,
        algorithm: str | SpGEMMAlgorithm,
        adjacency: CSRMatrix,
        metric: str = "common",
        *,
        tenant: str = "default",
        trace=NULL_REQUEST_TRACE,
    ) -> CSRMatrix:
        """Node-similarity matrix (``common``/``cosine``/``jaccard``)."""
        from repro.apps import similarity as sim

        metrics = {
            "common": sim.common_neighbors,
            "cosine": sim.cosine_similarity,
            "jaccard": sim.jaccard_similarity,
        }
        if metric not in metrics:
            raise ReproError(
                f"unknown similarity metric {metric!r}; known: {sorted(metrics)}"
            )
        fp = f"sim:{metric}:" + structure_fingerprint(adjacency, adjacency)
        with trace.stage("session"):
            pooled = self.session(algorithm, structure=fp, tenant=tenant)
        with pooled.lock, trace.stage("numeric"), self.exec_scope():
            result = metrics[metric](adjacency, pooled.session)
            pooled.requests += 1
        with self._lock:
            self._requests += 1
        return result

    def iterate(self, dataset: str, algorithm: str, iterations: int) -> IterationReport:
        """Run the numeric plane N times on one fixed structure (CLI demo)."""
        self._require_open()
        ctx = self.context(dataset)
        a, b = ctx.a_csr, ctx.b_csr
        fp = structure_fingerprint(a, b)
        pooled = self.session(algorithm, structure=fp, tenant="default")
        seconds = []
        with pooled.lock, self.exec_scope():
            for _ in range(iterations):
                start = time.perf_counter()
                pooled.session.multiply(a, b)
                seconds.append(time.perf_counter() - start)
        return IterationReport(seconds=seconds, stats=pooled.session.stats)

    # -- observability --------------------------------------------------
    @contextmanager
    def tracing(self, path: str | None, *, meta: dict | None = None):
        """Record the block with :mod:`repro.obs`; write a Chrome trace.

        ``path=None`` is a no-op scope so callers need no conditionals.
        The trace is written only when the block exits cleanly.
        """
        if not path:
            yield None
            return
        recorder = obs.install()
        try:
            yield recorder
            obs.write_trace(path, recorder, meta=meta or {})
        finally:
            obs.uninstall()

    @contextmanager
    def recording(self):
        """Install a trace recorder for the block and yield it (trace cmd)."""
        recorder = obs.install()
        try:
            yield recorder
        finally:
            obs.uninstall()

    # -- stats ----------------------------------------------------------
    def stats(self) -> RuntimeStats:
        """Aggregate serving counters across live and retired sessions."""
        with self._lock:
            merged = PlanCacheStats()
            merged.merge(self._retired_stats)
            tenants: dict[str, int] = {}
            for (tenant, _, _), pooled in self._sessions.items():
                merged.merge(pooled.session.stats)
                tenants[tenant] = tenants.get(tenant, 0) + 1
            exec_stats = self._engine.stats.as_dict() if self._engine else None
            return RuntimeStats(
                sessions=len(self._sessions),
                sessions_evicted=self._sessions_evicted,
                tenants=tenants,
                plan_cache=merged,
                requests=self._requests,
                exec=exec_stats,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{len(self._sessions)} sessions"
        return f"<Runtime {state} exec_workers={self.config.resolved_exec_workers}>"
