"""Synthetic datasets (Table III).

Four families, generated with R-MAT exactly as the paper describes:

* **S (scalability)** — growing dimension and density, skewed parameters
  ``(0.45, 0.15, 0.15, 0.25)``.
* **P (skewness)** — fixed size, probabilities sweeping from uniform
  ``(0.25, 0.25, 0.25, 0.25)`` to Graph500-grade skew ``(0.57, 0.19, 0.19, 0.05)``.
* **SP (sparsity)** — fixed size and uniform probabilities, density falling
  from 4M to 1M entries.
* **AB (C = A B)** — Graph500 pairs at scales 15-18 with edge factor 16; A and
  B are independent draws.

Every family is scaled down by ``SYNTH_SCALE = 4`` in dimension and entry
count (AB scales shift down by 2) so the full bench suite runs on a laptop;
the specs record the paper's original sizes.
"""

from __future__ import annotations

from repro.datasets.catalog import DatasetSpec, register

__all__ = ["SYNTH_SCALE", "S_NAMES", "P_NAMES", "SP_NAMES", "AB_NAMES", "AB_SCALE_SHIFT"]

SYNTH_SCALE = 4
"""Linear scale-down factor applied to the Table III S/P/SP families."""

AB_SCALE_SHIFT = 5
"""R-MAT scale reduction for the C = A B pairs (paper: 15-18; we run 10-13)."""

_SKEWED = (0.45, 0.15, 0.15, 0.25)
_UNIFORM = (0.25, 0.25, 0.25, 0.25)


def _rmat_spec(
    name: str,
    paper_dim: int,
    paper_nnz: int,
    probs: tuple[float, float, float, float],
    seed: int,
) -> DatasetSpec:
    return register(
        DatasetSpec(
            name=name,
            collection="synthetic",
            operation="A@A",
            generator="rmat_general",
            params={
                "n": paper_dim // SYNTH_SCALE,
                "n_edges": paper_nnz // SYNTH_SCALE,
                "probs": probs,
            },
            seed=seed,
            paper_dim=paper_dim,
            paper_nnz_a=paper_nnz,
            skew_class="irregular" if probs != _UNIFORM else "regular",
        )
    )


# --- S: scalability -------------------------------------------------------
_S_ENTRIES = [
    ("s1", 250_000, 62_500),
    ("s2", 500_000, 250_000),
    ("s3", 750_000, 562_500),
    ("s4", 1_000_000, 1_000_000),
]
S_NAMES = [e[0] for e in _S_ENTRIES]
for _i, (_n, _dim, _nnz) in enumerate(_S_ENTRIES):
    _rmat_spec(_n, _dim, _nnz, _SKEWED, seed=3_000 + _i)

# --- P: skewness ----------------------------------------------------------
_P_ENTRIES = [
    ("p1", (0.25, 0.25, 0.25, 0.25)),
    ("p2", (0.45, 0.15, 0.15, 0.25)),
    ("p3", (0.55, 0.15, 0.15, 0.15)),
    ("p4", (0.57, 0.19, 0.19, 0.05)),
]
P_NAMES = [e[0] for e in _P_ENTRIES]
for _i, (_n, _probs) in enumerate(_P_ENTRIES):
    _rmat_spec(_n, 1_000_000, 1_000_000, _probs, seed=3_100 + _i)

# --- SP: sparsity ---------------------------------------------------------
_SP_ENTRIES = [
    ("sp1", 4_000_000),
    ("sp2", 3_000_000),
    ("sp3", 2_000_000),
    ("sp4", 1_000_000),
]
SP_NAMES = [e[0] for e in _SP_ENTRIES]
for _i, (_n, _nnz) in enumerate(_SP_ENTRIES):
    _rmat_spec(_n, 1_000_000, _nnz, _UNIFORM, seed=3_200 + _i)

# --- AB: C = A B Graph500 pairs --------------------------------------------
AB_NAMES = []
for _i, _scale in enumerate((15, 16, 17, 18)):
    _name = f"ab{_scale}"
    AB_NAMES.append(_name)
    register(
        DatasetSpec(
            name=_name,
            collection="synthetic",
            operation="A@B",
            generator="rmat_graph500_pair",
            params={"scale": _scale - AB_SCALE_SHIFT, "edge_factor": 16},
            seed=3_300 + _i,
            paper_dim=1 << _scale,
            paper_nnz_a=16 << _scale,
            skew_class="irregular",
        )
    )
