"""Dataset catalog and loaders for the paper's evaluation matrices."""

from repro.datasets.catalog import DatasetSpec, get_spec, list_names, list_specs
from repro.datasets.florida import FLORIDA_NAMES
from repro.datasets.loader import LoadedDataset, clear_cache, load
from repro.datasets.stanford import STANFORD_NAMES
from repro.datasets.synthetic import (
    AB_NAMES,
    AB_SCALE_SHIFT,
    P_NAMES,
    S_NAMES,
    SP_NAMES,
    SYNTH_SCALE,
)

__all__ = [
    "DatasetSpec",
    "get_spec",
    "list_names",
    "list_specs",
    "LoadedDataset",
    "load",
    "clear_cache",
    "FLORIDA_NAMES",
    "STANFORD_NAMES",
    "S_NAMES",
    "P_NAMES",
    "SP_NAMES",
    "AB_NAMES",
    "SYNTH_SCALE",
    "AB_SCALE_SHIFT",
]
