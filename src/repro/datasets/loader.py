"""Dataset loader: turn a catalog spec into concrete matrices.

Generation is deterministic (seeded), and loaded datasets are cached in-process
because benches touch the same matrix under several algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import DatasetError
from repro.datasets.catalog import DatasetSpec, get_spec
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import total_expansion_work
from repro.sparse.random import banded_regular, power_law
from repro.sparse.rmat import RMATParams, rmat_general, rmat_graph500

__all__ = ["LoadedDataset", "load", "clear_cache"]


@dataclass(frozen=True)
class LoadedDataset:
    """A generated dataset ready for multiplication.

    Attributes:
        spec: the catalog entry this was generated from.
        a: left operand in CSR.
        a_csc: left operand in CSC (outer-product schemes read columns of A).
        b: right operand in CSR (same object as ``a`` for ``C = A^2``).
    """

    spec: DatasetSpec
    a: CSRMatrix
    a_csc: CSCMatrix
    b: CSRMatrix

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def expansion_work(self) -> int:
        """nnz(C-hat): total intermediate products of ``a @ b``."""
        return total_expansion_work(self.a_csc, self.b)


#: Keyed by ``(name, recipe fingerprint)``: a respecified dataset (changed
#: generator params or seed under the same name) regenerates instead of
#: serving the stale matrices.
_CACHE: dict[tuple[str, str], LoadedDataset] = {}


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()


def load(name: str) -> LoadedDataset:
    """Generate (or fetch from cache) the dataset registered under ``name``."""
    from repro.bench.fingerprint import context_key

    spec = get_spec(name)
    key = (name, context_key(spec))
    if key in _CACHE:
        return _CACHE[key]
    with obs.span(f"dataset.load[{name}]", "data") as sp:
        a_coo, b_coo = _generate(spec)
        a = a_coo.to_csr()
        b = b_coo.to_csr() if b_coo is not None else a
        loaded = LoadedDataset(spec=spec, a=a, a_csc=a_coo.to_csc(), b=b)
        sp.add(nnz_a=a.nnz, nnz_b=b.nnz, rows=a.n_rows)
    _CACHE[key] = loaded
    return loaded


def _generate(spec: DatasetSpec):
    """Dispatch to the generator named in the spec.

    Returns ``(a_coo, b_coo)`` with ``b_coo`` None for ``C = A^2`` datasets.
    """
    params = dict(spec.params)
    if spec.generator == "banded_regular":
        return banded_regular(seed=spec.seed, **params), None
    if spec.generator == "power_law":
        return power_law(seed=spec.seed, **params), None
    if spec.generator == "rmat_general":
        probs = params.pop("probs")
        rmat_params = RMATParams(*probs)
        return rmat_general(params=rmat_params, seed=spec.seed, **params), None
    if spec.generator == "rmat_graph500_pair":
        a = rmat_graph500(seed=spec.seed, **params)
        b = rmat_graph500(seed=spec.seed + 50_000, **params)
        return a, b
    raise DatasetError(f"unknown generator {spec.generator!r} for {spec.name!r}")
