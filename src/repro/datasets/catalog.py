"""Dataset catalog: every matrix the paper evaluates, as a named spec.

Three collections mirror the paper:

* ``florida`` — 14 Florida SuiteSparse matrices (regular, mesh/FEM-like).
* ``stanford`` — 14 Stanford SNAP matrices (irregular, power-law).
* ``synthetic`` — Table III: the S (scalability), P (skewness) and SP
  (sparsity) families for ``C = A^2`` plus the R-MAT pairs for ``C = A B``.

Real-world entries are **stand-ins**: the original downloads are unavailable
offline, so each spec records the paper's published ``(dimension, nnz(A),
nnz(C))`` alongside the generator parameters of a deterministic synthetic
matrix in the same regularity class, scaled down so the intermediate expansion
fits in laptop memory (see DESIGN.md).  The bench harness prints both sets of
numbers so the substitution is always visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import DatasetError

__all__ = [
    "DatasetSpec",
    "FULL_SCALE_SUFFIX",
    "full_scale_spec",
    "register",
    "get_spec",
    "list_names",
    "list_specs",
]

#: Appending this to a catalog name (``loc_gowalla@full``) selects the
#: dataset at the *paper's* published scale instead of the stand-in scale.
FULL_SCALE_SUFFIX = "@full"


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset with provenance and generation parameters.

    Attributes:
        name: catalog key (paper's dataset name, lowercased).
        collection: ``"florida"``, ``"stanford"`` or ``"synthetic"``.
        operation: ``"A@A"`` (the paper's ``C = A^2``) or ``"A@B"``.
        generator: name of the generator in :mod:`repro.datasets.loader`.
        params: keyword arguments for the generator.
        seed: base RNG seed (``A@B`` datasets derive a second seed for B).
        paper_dim: dimension reported in Table II/III (0 when not reported).
        paper_nnz_a: nnz(A) reported in the paper.
        paper_nnz_c: nnz(C) reported in the paper (0 when not reported).
        skew_class: ``"regular"`` or ``"irregular"`` — the property the paper's
            analysis keys on; tests assert generated stand-ins land here.
    """

    name: str
    collection: str
    operation: str
    generator: str
    params: dict[str, Any] = field(hash=False)
    seed: int
    paper_dim: int = 0
    paper_nnz_a: int = 0
    paper_nnz_c: int = 0
    skew_class: str = "regular"

    def __post_init__(self) -> None:
        if self.collection not in ("florida", "stanford", "synthetic"):
            raise DatasetError(f"unknown collection {self.collection!r}")
        if self.operation not in ("A@A", "A@B"):
            raise DatasetError(f"unknown operation {self.operation!r}")
        if self.skew_class not in ("regular", "irregular"):
            raise DatasetError(f"unknown skew class {self.skew_class!r}")


_REGISTRY: dict[str, DatasetSpec] = {}


def register(spec: DatasetSpec) -> DatasetSpec:
    """Add a spec to the catalog; names must be unique."""
    if spec.name in _REGISTRY:
        raise DatasetError(f"dataset {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> DatasetSpec:
    """Look up a spec by name, raising :class:`DatasetError` if unknown.

    A ``@full`` suffix (see :data:`FULL_SCALE_SUFFIX`) resolves the base
    entry and rescales its generator to the paper's published dimensions via
    :func:`full_scale_spec`.  Full-scale specs are derived on demand and
    cached; they never appear in :func:`list_names`.
    """
    _ensure_populated()
    if name.endswith(FULL_SCALE_SUFFIX):
        return full_scale_spec(name[: -len(FULL_SCALE_SUFFIX)])
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None


#: Derived full-scale specs, keyed by base name (lazy, not in the registry).
_FULL_SCALE: dict[str, DatasetSpec] = {}


def full_scale_spec(base_name: str) -> DatasetSpec:
    """Derive the paper-scale variant of a registered stand-in dataset.

    The stand-in's generator keeps its shape parameters but is rescaled to
    the paper's Table II numbers: ``banded_regular`` grows ``n`` to
    ``paper_dim`` (per-row degree already matches the paper exactly);
    ``power_law`` grows ``n`` to ``paper_dim`` and its nnz target to
    ``paper_nnz_a``.  Entries without published dimensions (the synthetic
    families) have no full-scale form and raise
    :class:`~repro.errors.DatasetError`.
    """
    base = get_spec(base_name)
    name = base.name + FULL_SCALE_SUFFIX
    cached = _FULL_SCALE.get(base.name)
    if cached is not None:
        return cached
    if base.paper_dim <= 0:
        raise DatasetError(
            f"dataset {base.name!r} has no published paper scale; "
            "--full-scale applies to the florida/stanford stand-ins"
        )
    params = dict(base.params)
    if base.generator == "banded_regular":
        params["n"] = base.paper_dim
    elif base.generator == "power_law":
        params["n"] = base.paper_dim
        params["nnz"] = base.paper_nnz_a
    else:
        raise DatasetError(
            f"generator {base.generator!r} of {base.name!r} cannot be "
            "rescaled to paper dimensions"
        )
    spec = DatasetSpec(
        name=name,
        collection=base.collection,
        operation=base.operation,
        generator=base.generator,
        params=params,
        seed=base.seed,
        paper_dim=base.paper_dim,
        paper_nnz_a=base.paper_nnz_a,
        paper_nnz_c=base.paper_nnz_c,
        skew_class=base.skew_class,
    )
    _FULL_SCALE[base.name] = spec
    return spec


def list_names(collection: str | None = None) -> list[str]:
    """All registered dataset names, optionally filtered by collection."""
    _ensure_populated()
    return [
        s.name
        for s in _REGISTRY.values()
        if collection is None or s.collection == collection
    ]


def list_specs(collection: str | None = None) -> list[DatasetSpec]:
    """All registered specs, optionally filtered by collection."""
    _ensure_populated()
    return [
        s for s in _REGISTRY.values() if collection is None or s.collection == collection
    ]


def _ensure_populated() -> None:
    """Import the collection modules, which register their specs on import."""
    from repro.datasets import florida, stanford, synthetic  # noqa: F401
