"""Dataset catalog: every matrix the paper evaluates, as a named spec.

Three collections mirror the paper:

* ``florida`` — 14 Florida SuiteSparse matrices (regular, mesh/FEM-like).
* ``stanford`` — 14 Stanford SNAP matrices (irregular, power-law).
* ``synthetic`` — Table III: the S (scalability), P (skewness) and SP
  (sparsity) families for ``C = A^2`` plus the R-MAT pairs for ``C = A B``.

Real-world entries are **stand-ins**: the original downloads are unavailable
offline, so each spec records the paper's published ``(dimension, nnz(A),
nnz(C))`` alongside the generator parameters of a deterministic synthetic
matrix in the same regularity class, scaled down so the intermediate expansion
fits in laptop memory (see DESIGN.md).  The bench harness prints both sets of
numbers so the substitution is always visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import DatasetError

__all__ = ["DatasetSpec", "register", "get_spec", "list_names", "list_specs"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset with provenance and generation parameters.

    Attributes:
        name: catalog key (paper's dataset name, lowercased).
        collection: ``"florida"``, ``"stanford"`` or ``"synthetic"``.
        operation: ``"A@A"`` (the paper's ``C = A^2``) or ``"A@B"``.
        generator: name of the generator in :mod:`repro.datasets.loader`.
        params: keyword arguments for the generator.
        seed: base RNG seed (``A@B`` datasets derive a second seed for B).
        paper_dim: dimension reported in Table II/III (0 when not reported).
        paper_nnz_a: nnz(A) reported in the paper.
        paper_nnz_c: nnz(C) reported in the paper (0 when not reported).
        skew_class: ``"regular"`` or ``"irregular"`` — the property the paper's
            analysis keys on; tests assert generated stand-ins land here.
    """

    name: str
    collection: str
    operation: str
    generator: str
    params: dict[str, Any] = field(hash=False)
    seed: int
    paper_dim: int = 0
    paper_nnz_a: int = 0
    paper_nnz_c: int = 0
    skew_class: str = "regular"

    def __post_init__(self) -> None:
        if self.collection not in ("florida", "stanford", "synthetic"):
            raise DatasetError(f"unknown collection {self.collection!r}")
        if self.operation not in ("A@A", "A@B"):
            raise DatasetError(f"unknown operation {self.operation!r}")
        if self.skew_class not in ("regular", "irregular"):
            raise DatasetError(f"unknown skew class {self.skew_class!r}")


_REGISTRY: dict[str, DatasetSpec] = {}


def register(spec: DatasetSpec) -> DatasetSpec:
    """Add a spec to the catalog; names must be unique."""
    if spec.name in _REGISTRY:
        raise DatasetError(f"dataset {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> DatasetSpec:
    """Look up a spec by name, raising :class:`DatasetError` if unknown."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None


def list_names(collection: str | None = None) -> list[str]:
    """All registered dataset names, optionally filtered by collection."""
    _ensure_populated()
    return [
        s.name
        for s in _REGISTRY.values()
        if collection is None or s.collection == collection
    ]


def list_specs(collection: str | None = None) -> list[DatasetSpec]:
    """All registered specs, optionally filtered by collection."""
    _ensure_populated()
    return [
        s for s in _REGISTRY.values() if collection is None or s.collection == collection
    ]


def _ensure_populated() -> None:
    """Import the collection modules, which register their specs on import."""
    from repro.datasets import florida, stanford, synthetic  # noqa: F401
