"""Stanford SNAP stand-ins (Table II, right-hand collection).

Social/web/autonomous-system networks with power-law degree distributions: a
few hub rows own a large share of the edges.  This is the irregular class
where the paper's B-Splitting and B-Limiting earn their keep.  The stand-in
generator is :func:`repro.sparse.random.power_law`; parameters are tuned so the
**expansion ratio** ``nnz(C-hat)/nnz(A)`` — the quantity that decides how
overloaded the dominator blocks are — matches the paper's ratio for each
dataset (as-caida and loc-gowalla extreme, web graphs mild).
"""

from __future__ import annotations

from repro.datasets.catalog import DatasetSpec, register

__all__ = ["STANFORD_NAMES"]


def _stanford(
    name: str,
    paper_dim: int,
    paper_nnz_a: int,
    paper_nnz_c: int,
    standin_dim: int,
    standin_nnz: int,
    alpha: float,
    cap_fraction: float,
    col_bias: float,
    seed: int,
) -> DatasetSpec:
    return register(
        DatasetSpec(
            name=name,
            collection="stanford",
            operation="A@A",
            generator="power_law",
            params={
                "n": standin_dim,
                "nnz": standin_nnz,
                "alpha": alpha,
                "max_degree_fraction": cap_fraction,
                "col_bias": col_bias,
            },
            seed=seed,
            paper_dim=paper_dim,
            paper_nnz_a=paper_nnz_a,
            paper_nnz_c=paper_nnz_c,
            skew_class="irregular",
        )
    )


# name, paper dim, paper nnz(A), paper nnz(C),
#   stand-in dim, stand-in nnz, zipf alpha, hub degree cap (fraction of dim).
# Paper expansion ratios nnz(C)/nnz(A): as-caida ~246 and loc-gowalla ~253
# (extreme hubs), slashdot/email-enron ~85, youtube ~53, epinions ~39,
# mathoverflow ~36, web graphs ~10.  Alpha and the cap tune the stand-in's
# ratio toward the same ordering.
_ENTRIES = [
    ("youtube", 1_100_000, 2_800_000, 148_000_000, 40_000, 110_000, 1.45, 0.06, 2.5),
    ("as_caida", 26_000, 104_000, 25_600_000, 6_500, 26_000, 1.10, 0.35, 4.0),
    ("sx_mathoverflow", 87_000, 495_000, 17_700_000, 20_000, 110_000, 1.65, 0.05, 2.0),
    ("loc_gowalla", 192_000, 1_800_000, 456_000_000, 12_000, 48_000, 1.12, 0.30, 4.0),
    ("email_enron", 36_000, 359_000, 29_100_000, 9_000, 80_000, 1.35, 0.15, 2.5),
    ("slashdot", 76_000, 884_000, 75_200_000, 10_000, 90_000, 1.35, 0.15, 2.5),
    ("epinions", 74_000, 497_000, 19_600_000, 15_000, 90_000, 1.55, 0.08, 2.0),
    ("web_notredame", 318_000, 1_400_000, 16_000_000, 30_000, 140_000, 1.80, 0.02, 1.5),
    ("stanford_web", 275_000, 2_200_000, 19_800_000, 30_000, 160_000, 1.90, 0.02, 1.5),
]

STANFORD_NAMES = [entry[0] for entry in _ENTRIES]

for _i, _entry in enumerate(_ENTRIES):
    _stanford(*_entry, seed=2_000 + _i)
