"""Florida SuiteSparse stand-ins (Table II, left-hand collection).

These matrices come from mesh/FEM discretisations and circuit netlists, with
near-uniform row degree (the paper's "relatively regular distributions").  The
stand-in generator is :func:`repro.sparse.random.banded_regular`; each entry
keeps the **paper's average row degree exactly** (degree drives the
effective-thread counts that B-Gathering keys on) and scales the dimension down
so the intermediate expansion stays laptop-sized.
"""

from __future__ import annotations

from repro.datasets.catalog import DatasetSpec, register

__all__ = ["FLORIDA_NAMES"]


def _florida(
    name: str,
    paper_dim: int,
    paper_nnz_a: int,
    paper_nnz_c: int,
    standin_dim: int,
    seed: int,
) -> DatasetSpec:
    nnz_per_row = max(1, round(paper_nnz_a / paper_dim))
    return register(
        DatasetSpec(
            name=name,
            collection="florida",
            operation="A@A",
            generator="banded_regular",
            params={"n": standin_dim, "nnz_per_row": nnz_per_row},
            seed=seed,
            paper_dim=paper_dim,
            paper_nnz_a=paper_nnz_a,
            paper_nnz_c=paper_nnz_c,
            skew_class="regular",
        )
    )


# name, paper dim, paper nnz(A), paper nnz(C), stand-in dim.
# Stand-in dims keep per-row degree identical to the paper and target an
# intermediate expansion of roughly 0.3M-6M products per multiply.
_ENTRIES = [
    ("filter3d", 106_000, 2_700_000, 20_100_000, 8_000),
    ("ship", 140_000, 3_700_000, 23_000_000, 8_000),
    ("harbor", 46_000, 2_300_000, 7_500_000, 3_000),
    ("protein", 36_000, 2_100_000, 18_700_000, 2_400),
    ("sphere", 81_000, 2_900_000, 25_300_000, 4_000),
    ("2cube_sphere", 99_000, 854_000, 8_600_000, 16_000),
    ("accelerator", 118_000, 1_300_000, 17_800_000, 12_000),
    ("cage12", 127_000, 1_900_000, 14_500_000, 10_000),
    ("hood", 215_000, 5_200_000, 32_700_000, 8_000),
    ("m133-b3", 196_000, 782_000, 3_000_000, 24_000),
    ("majorbasis", 156_000, 1_700_000, 7_900_000, 16_000),
    ("mario002", 381_000, 1_100_000, 6_200_000, 40_000),
    ("mono_500hz", 165_000, 4_800_000, 39_500_000, 6_000),
    ("offshore", 254_000, 2_100_000, 22_200_000, 20_000),
    ("patents_main", 235_000, 548_000, 2_200_000, 30_000),
    ("poisson3da", 13_000, 344_000, 2_800_000, 4_000),
    ("qcd", 48_000, 1_800_000, 10_400_000, 4_000),
    ("scircuit", 167_000, 900_000, 5_000_000, 20_000),
    ("power197k", 193_000, 3_300_000, 38_000_000, 10_000),
]

FLORIDA_NAMES = [entry[0] for entry in _ENTRIES]

for _i, (_name, _dim, _nnza, _nnzc, _standin) in enumerate(_ENTRIES):
    _florida(_name, _dim, _nnza, _nnzc, _standin, seed=1_000 + _i)
