"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets``          — list the catalog (paper stats + generator class).
* ``run``               — simulate one algorithm on one dataset and print the
                          profile (optionally dump JSON); ``--iterations N``
                          additionally runs the numeric plane N times through
                          a warm session and prints the plan cache's
                          amortisation counters.
* ``compare``           — all seven schemes on one dataset, speedup table.
* ``bench``             — a (datasets × algorithms) grid through the shared
                          runner: sharded across ``--workers`` processes and
                          memoised in the persistent result cache.
* ``experiment``        — regenerate one of the paper's tables/figures.
* ``plan show``         — lower one algorithm for one dataset and print the
                          resulting :class:`ExecutionPlan` (phases, blocks,
                          kernels, metadata); ``--execute`` also runs the
                          numeric kernels with per-phase instrumentation.
* ``trace``             — run one dataset/algorithm cell with the
                          observability plane (:mod:`repro.obs`) on and print
                          the recorded span tree plus a per-category
                          wall-clock rollup; ``--out FILE`` writes a
                          Perfetto-loadable Chrome trace.
* ``serve``             — long-lived multiply-as-a-service HTTP front-end
                          (:mod:`repro.serve`): warm fingerprint-keyed
                          sessions, micro-batching, admission control.

Every command is a thin adapter over one :class:`repro.runtime.Runtime`,
which owns engines, sessions, caches and backend scopes; the CLI itself
constructs none of them.  ``compare``, ``bench`` and ``experiment`` accept
the execution flags ``--workers N`` (0 = all cores), ``--cache-dir PATH``,
``--no-cache``, ``--shard-timeout SECONDS`` (parallel no-progress window
before hung shards re-run serially), ``--exec-workers N`` (process-pool
width for the numeric kernels via :mod:`repro.exec`; bit-identical to
serial), ``--exec-partitioner {merge-path,lpt}`` (the exec plane's cut
discipline), ``--kernel-backend {numpy,numba}`` (numeric-primitive backend,
verified bit-identical at selection) and ``--trace FILE`` (record the whole
invocation and write a Chrome trace); ``run`` accepts ``--exec-workers``,
``--exec-partitioner``, ``--kernel-backend`` and ``--trace`` too.  Caching
defaults to on, under ``~/.cache/repro``.

``run``, ``compare`` and ``bench`` additionally accept the out-of-core
flags (:mod:`repro.oocore`): ``--mem-budget BYTES`` runs the numeric plane
chunked into row panels with disk spilling (bit-identical to in-memory),
``--spill-dir DIR`` places the crash-safe spill store, and ``--full-scale``
resolves datasets at the paper's published dimensions instead of the
stand-in scale.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from repro import exec as rexec
from repro import kernels
from repro.bench import runner
from repro.bench.cache import result_to_dict
from repro.bench.tables import format_table
from repro.datasets.catalog import list_names, list_specs
from repro.errors import ReproError
from repro.gpusim.config import TITAN_XP
from repro.gpusim.export import stats_to_json
from repro.metrics.obsprof import category_rollup, format_rollup
from repro.metrics.profiling import profile_report
from repro.plan.show import format_executions, format_plan
from repro.runtime import Runtime, RuntimeConfig, lifecycle

__all__ = ["build_parser", "main"]

_EXPERIMENTS = [
    "table1_systems", "table2_datasets", "table3_datasets",
    "fig03_motivation", "fig08_speedup", "fig09_gflops", "fig10_techniques",
    "fig11_lbi", "fig12_l2_split", "fig13_sync_stalls", "fig14_l2_limit",
    "fig15_scalability", "fig16_synthetic", "sec4e_youtube",
]


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by grid-running commands."""
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the bench grid (0 = all cores; default 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent result-cache directory (default ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache entirely",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="parallel no-progress window before hung shards are re-run "
             "serially (default 300)",
    )
    _add_exec_workers_flag(parser)
    _add_trace_flag(parser)


def _add_exec_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--exec-workers", type=int, default=1, metavar="N",
        help="process-pool width for the numeric kernels (repro.exec); "
             "results are bit-identical to serial (0 = all cores; default 1)",
    )
    parser.add_argument(
        "--exec-partitioner", choices=list(rexec.PARTITIONER_NAMES),
        default=rexec.DEFAULT_PARTITIONER,
        help="work-partitioning discipline for the exec plane: merge-path "
             "bounds items+work per block, lpt cuts on weight only "
             "(results identical; default merge-path)",
    )
    parser.add_argument(
        "--kernel-backend", choices=list(kernels.BACKEND_NAMES), default=None,
        help="kernel backend for the numeric primitives (default: "
             "$REPRO_KERNEL_BACKEND or numpy); non-numpy backends are "
             "verified bit-identical at selection time",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record the run with repro.obs and write a Chrome trace "
             "(open in Perfetto or chrome://tracing)",
    )


#: The out-of-core flag set, exposed for tools/check_docs.py.
OOCORE_FLAGS = ("--mem-budget", "--full-scale", "--spill-dir")


def _add_oocore_flags(parser: argparse.ArgumentParser) -> None:
    """Out-of-core execution flags shared by run/compare/bench."""
    parser.add_argument(
        "--mem-budget", default=None, metavar="BYTES",
        help="run the numeric plane out of core under this memory budget "
             "(e.g. 4G, 512M): A is cut into row panels sized by the "
             "precalculated workload sums and partials spill to disk; "
             "results are bit-identical to the in-memory path",
    )
    parser.add_argument(
        "--full-scale", action="store_true",
        help="resolve datasets at the paper's published dimensions "
             "(the catalog's @full variants) instead of the scaled stand-ins",
    )
    parser.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="base directory for out-of-core spill files "
             "(default $TMPDIR; cleaned up on exit and on SIGTERM)",
    )


def _cmd_datasets(args: argparse.Namespace, runtime: Runtime) -> int:
    rows = [
        [s.name, s.collection, s.operation, s.generator, s.paper_dim, s.paper_nnz_a]
        for s in list_specs(args.collection)
    ]
    print(format_table(
        ["name", "collection", "op", "generator", "paper dim", "paper nnz(A)"], rows
    ))
    return 0


def _cmd_run(args: argparse.Namespace, runtime: Runtime) -> int:
    if args.mem_budget is not None:
        return _run_out_of_core(args, runtime)
    stats = runtime.simulate(args.dataset, args.algorithm)
    if args.json:
        print(stats_to_json(stats))
        return 0
    report = profile_report(stats)
    print(f"{report.algorithm} on {report.gpu} / {args.dataset}:")
    print(f"  total {report.total_seconds * 1e6:.1f} us, {report.gflops:.2f} GFLOPS")
    for stage in report.stages:
        print(
            f"  {stage.stage:10s} {stage.seconds * 1e6:9.1f} us  LBI={stage.lbi:.2f}  "
            f"stalls={stage.sync_stall_pct:.0f}%  L2 read={stage.l2_read_gbs:.0f} GB/s"
        )
    if args.iterations > 1:
        _print_iterative(runtime.iterate(args.dataset, args.algorithm, args.iterations))
    engine_stats = runtime.exec_stats()
    if engine_stats is not None:
        from repro.metrics.execprof import format_exec_stats

        print(f"  {format_exec_stats(engine_stats)}")
    return 0


def _run_out_of_core(args: argparse.Namespace, runtime: Runtime) -> int:
    """``run --mem-budget``: the numeric plane through the chunked executor.

    Skips the simulator and the bench runner's context cache entirely — at
    full scale the in-memory reference expansion those paths materialise is
    exactly what the budget forbids.
    """
    import time

    from repro.metrics.oocprof import format_ooc_stats

    name = runtime.resolve_dataset(args.dataset)
    start = time.perf_counter()
    result, ooc = runtime.multiply_chunked(args.dataset, args.algorithm)
    seconds = time.perf_counter() - start
    if args.json:
        print(json.dumps({
            "dataset": name,
            "algorithm": args.algorithm,
            "seconds": seconds,
            "nnz_c": result.nnz,
            "oocore": ooc.as_dict(),
        }, indent=2))
        return 0
    print(f"{args.algorithm} on {name} (out of core):")
    print(f"  total {seconds * 1e3:.1f} ms, nnz(C) = {result.nnz}")
    for line in format_ooc_stats(ooc).splitlines():
        print(f"  {line}")
    engine_stats = runtime.exec_stats()
    if engine_stats is not None:
        from repro.metrics.execprof import format_exec_stats

        print(f"  {format_exec_stats(engine_stats)}")
    return 0


def _print_iterative(report) -> None:
    """Render the numeric-plane iteration demo (fixed structure, N passes).

    Iteration 1 pays the full pipeline (context, lowering, symbolic
    expansion); iterations 2..N are structure hits served by numeric replay.
    Printed timings make the amortisation visible; the cache counters prove
    the symbolic work ran exactly once.
    """
    from repro.metrics.planprof import format_cache_stats

    n = len(report.seconds)
    warm_mean = report.warm_mean_seconds
    print(f"iterative numeric plane ({n} iterations, fixed structure):")
    print(f"  cold iteration   {report.cold_seconds * 1e3:9.2f} ms")
    print(f"  warm iterations  {warm_mean * 1e3:9.2f} ms mean "
          f"(x{report.cold_seconds / max(warm_mean, 1e-12):.1f} faster)")
    print(f"  {format_cache_stats(report.stats)}")


def _cmd_compare(args: argparse.Namespace, runtime: Runtime) -> int:
    if args.mem_budget is not None:
        return _compare_out_of_core(args, runtime)
    algorithms = list(runtime.algorithms().values())
    gpu = runtime.config.gpu
    with runtime.runner_scope():
        results = runner.run_matrix([args.dataset], algorithms, gpu)
    base = results[(args.dataset, "row-product")].seconds
    rows = [
        [algo.name, res.seconds * 1e6, res.gflops, base / res.seconds]
        for algo in algorithms
        for res in [results[(args.dataset, algo.name)]]
    ]
    print(format_table(
        ["algorithm", "time us", "GFLOPS", "speedup"], rows,
        title=f"{args.dataset} on {gpu.name} (speedup vs row-product)",
    ))
    return 0


def _compare_out_of_core(args: argparse.Namespace, runtime: Runtime) -> int:
    """``compare --mem-budget``: every scheme chunked vs in-memory.

    Runs each of the seven schemes both ways on the same operands and
    asserts the out-of-core result is bit-identical (indptr, indices and
    data all ``array_equal``); exits non-zero on any divergence.
    """
    import numpy as np

    ctx = runtime.context(args.dataset)
    rows = []
    mismatches = 0
    for algo in runtime.algorithms().values():
        with runtime.exec_scope():
            reference = algo.multiply(ctx)
        chunked, ooc = runtime.multiply_chunked_operands(algo, ctx.a_csr, ctx.b_csr)
        identical = (
            np.array_equal(reference.indptr, chunked.indptr)
            and np.array_equal(reference.indices, chunked.indices)
            and np.array_equal(reference.data, chunked.data)
        )
        mismatches += not identical
        rows.append([
            algo.name,
            "yes" if identical else "NO",
            ooc.n_panels,
            ooc.spill_count,
            ooc.merge_rounds,
        ])
    print(format_table(
        ["algorithm", "bit-identical", "panels", "spills", "merge rounds"], rows,
        title=f"{args.dataset}: out-of-core ({args.mem_budget}) vs in-memory",
    ))
    if mismatches:
        print(f"error: {mismatches} scheme(s) diverged out of core", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace, runtime: Runtime) -> int:
    if args.mem_budget is not None:
        return _bench_out_of_core(args, runtime)
    gpu = runtime.config.gpu
    datasets = args.datasets or list_names(args.collection)
    if not datasets:
        raise ReproError("no datasets selected; pass names or --collection")
    with runtime.runner_scope():
        results = runner.run_matrix(
            datasets, list(runtime.algorithms().values()), gpu
        )
    rows = [
        [name, algo, res.seconds * 1e6, res.gflops]
        for (name, algo), res in results.items()
    ]
    print(format_table(
        ["dataset", "algorithm", "time us", "GFLOPS"], rows,
        title=f"bench grid on {gpu.name} ({len(datasets)} datasets)",
    ))
    cache = runtime.result_cache
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses ({cache.cache_dir})")
    summary = runner.last_run_summary()
    if summary.shard_timeouts or summary.pool_failures:
        print(
            f"degraded: {summary.shard_timeouts} shard timeout(s), "
            f"{summary.pool_failures} pool failure(s) — affected shards re-ran serially"
        )
    if args.out:
        payload = [result_to_dict(res) for res in results.values()]
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {len(payload)} results to {args.out}")
    return 0


def _bench_out_of_core(args: argparse.Namespace, runtime: Runtime) -> int:
    """``bench --mem-budget``: the numeric grid through the chunked executor.

    No simulator and no result cache — the interesting numbers here are
    wall-clock and the memory envelope (panels, spills, peak RSS), which are
    host-dependent and therefore never memoised.  ``--out`` records each
    cell's full ooc stats.
    """
    import time

    datasets = args.datasets or list_names(args.collection)
    if not datasets:
        raise ReproError("no datasets selected; pass names or --collection")
    rows, payload = [], []
    for dataset in datasets:
        name = runtime.resolve_dataset(dataset)
        for algo in runtime.algorithms().values():
            start = time.perf_counter()
            result, ooc = runtime.multiply_chunked(dataset, algo.name)
            seconds = time.perf_counter() - start
            rows.append([
                name, algo.name, seconds * 1e3, ooc.n_panels,
                ooc.spill_count, ooc.peak_rss_bytes // (1 << 20),
            ])
            payload.append({
                "dataset": name,
                "algorithm": algo.name,
                "seconds": seconds,
                "nnz_c": result.nnz,
                "oocore": ooc.as_dict(),
            })
    print(format_table(
        ["dataset", "algorithm", "time ms", "panels", "spills", "peak RSS MiB"],
        rows,
        title=f"out-of-core bench grid (budget {args.mem_budget})",
    ))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {len(payload)} results to {args.out}")
    return 0


def _cmd_plan_show(args: argparse.Namespace, runtime: Runtime) -> int:
    ctx = runtime.context(args.dataset)
    algo = runtime.algorithm(args.algorithm)
    gpu = runtime.config.gpu
    plan = algo.lower(ctx, gpu)
    print(f"{args.dataset} lowered for {gpu.name}:")
    print(format_plan(plan))
    if args.execute:
        _, records = algo.profile_plan(ctx, gpu)
        print()
        print("numeric execution:")
        print(format_executions(records))
    return 0


def _cmd_experiment(args: argparse.Namespace, runtime: Runtime) -> int:
    module = importlib.import_module(f"repro.bench.experiments.{args.name}")
    with runtime.runner_scope():
        module.main()
    return 0


def _cmd_trace(args: argparse.Namespace, runtime: Runtime) -> int:
    """Trace one dataset/algorithm cell end to end and print the span tree.

    The recorder is installed *before* the context build so the trace covers
    dataset generation and symbolic expansion, not just the simulation; a
    warm in-process cache would hide those stages, so this command clears it
    first.
    """
    from repro import obs
    from repro.datasets import loader

    gpu = runtime.config.gpu
    loader.clear_cache()
    runner.clear_context_cache()
    with runtime.recording() as recorder:
        stats = runtime.simulate(args.dataset, args.algorithm)
    print(f"trace: {args.algorithm} on {gpu.name} / {args.dataset} "
          f"({stats.total_seconds * 1e6:.1f} simulated us)")
    print(obs.format_span_tree(recorder.roots))
    rollup = category_rollup(recorder.roots)
    print("wall-clock by category (self time):")
    print(format_rollup(rollup))
    if args.out:
        obs.write_trace(args.out, recorder, meta=_trace_meta(args))
        print(f"wrote Chrome trace to {args.out} (open in Perfetto)")
    return 0


def _cmd_serve(args: argparse.Namespace, runtime: Runtime) -> int:
    from repro import serve

    try:
        admission = serve.AdmissionConfig(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            batch_window=args.batch_window,
            max_batch=args.max_batch,
            request_timeout=args.request_timeout,
            max_inflight_flops=args.max_inflight_flops,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from None
    serve.run(
        runtime,
        serve.ServeConfig(
            host=args.host,
            port=args.port,
            admission=admission,
            trace_dir=args.trace_dir,
            trace_slow_ms=args.trace_slow_ms,
        ),
    )
    return 0


def _trace_meta(args: argparse.Namespace) -> dict:
    """Run context embedded in a Chrome trace's ``otherData`` section."""
    return {
        "tool": "repro",
        "command": args.command,
        "argv": [a for a in (sys.argv[1:] if sys.argv else []) if a],
    }


def build_parser() -> argparse.ArgumentParser:
    """Construct the full ``repro`` argparse tree (no side effects).

    Exposed separately from :func:`main` so tooling — notably
    ``tools/check_docs.py`` — can validate documented command lines against
    the real parser without executing anything.
    """
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list the dataset catalog")
    p.add_argument("--collection", choices=["florida", "stanford", "synthetic"], default=None)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("run", help="simulate one algorithm on one dataset")
    p.add_argument("dataset")
    p.add_argument("--algorithm", default="block-reorganizer")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument("--json", action="store_true", help="dump raw counters as JSON")
    p.add_argument(
        "--iterations", type=int, default=1, metavar="N",
        help="also run the numeric plane N times through a warm session "
             "and print plan-cache amortisation counters",
    )
    _add_exec_workers_flag(p)
    _add_trace_flag(p)
    _add_oocore_flags(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("compare", help="all schemes on one dataset")
    p.add_argument("dataset")
    p.add_argument("--gpu", default=TITAN_XP.name)
    _add_exec_flags(p)
    _add_oocore_flags(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("bench", help="run a dataset x algorithm grid via the shared runner")
    p.add_argument("datasets", nargs="*", help="dataset names (default: --collection)")
    p.add_argument("--collection", choices=["florida", "stanford", "synthetic"], default=None)
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument("--out", default=None, metavar="FILE", help="write results as JSON")
    _add_exec_flags(p)
    _add_oocore_flags(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("plan", help="inspect ExecutionPlan lowerings")
    plan_sub = p.add_subparsers(dest="plan_command", required=True)
    p = plan_sub.add_parser("show", help="print one dataset/algorithm lowering")
    p.add_argument("dataset")
    p.add_argument("algorithm")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument(
        "--execute", action="store_true",
        help="also run the numeric kernels and print per-phase instrumentation",
    )
    p.set_defaults(func=_cmd_plan_show)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=_EXPERIMENTS)
    _add_exec_flags(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "trace", help="trace one dataset/algorithm cell through the pipeline"
    )
    p.add_argument("dataset")
    p.add_argument("algorithm")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the recorded spans as a Chrome trace (Perfetto-loadable)",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "serve", help="serve multiply/app requests over HTTP from warm sessions"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p.add_argument(
        "--port", type=int, default=8077, metavar="N",
        help="bind port (0 = pick a free one; the chosen port is printed; default 8077)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=4, metavar="N",
        help="requests executing concurrently (executor width; default 4)",
    )
    p.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admitted requests waiting beyond max-inflight before 503 (default 64)",
    )
    p.add_argument(
        "--batch-window", type=float, default=0.002, metavar="SECONDS",
        help="how long a request waits for structural twins to share a "
             "micro-batch (default 0.002)",
    )
    p.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="micro-batch size cap per structure fingerprint (default 16)",
    )
    p.add_argument(
        "--request-timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-request wall-clock bound before 504 (default 60)",
    )
    p.add_argument(
        "--max-inflight-flops", type=int, default=0, metavar="FLOPS",
        help="cost-aware admission: estimated-flop budget for admitted, "
             "unfinished work; requests beyond it are shed with 503 + "
             "Retry-After (0 = disabled; default 0)",
    )
    p.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="export Chrome traces of slow requests into DIR "
             "(default: disabled)",
    )
    p.add_argument(
        "--trace-slow-ms", type=float, default=250.0, metavar="MS",
        help="latency threshold for --trace-dir sampling; 0 traces every "
             "request (default 250)",
    )
    p.add_argument(
        "--plan-cache-entries", type=int, default=None, metavar="N",
        help="LRU bound on each warm session's plan cache (default 64)",
    )
    p.add_argument(
        "--sessions-per-tenant", type=int, default=None, metavar="N",
        help="warm sessions pooled per tenant before LRU eviction (default 32)",
    )
    p.add_argument("--gpu", default=TITAN_XP.name)
    _add_exec_workers_flag(p)
    p.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Builds one :class:`~repro.runtime.Runtime` from the parsed flags,
    registers it with the shutdown hooks (so SIGINT/SIGTERM cannot leak
    warm pools), runs the command as a thin adapter over it, and tears it
    down — every engine, session, backend scope and trace recorder lives
    inside the runtime, not here.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    runtime = None
    try:
        runtime = Runtime(RuntimeConfig.from_args(args))
        lifecycle.install(runtime)
        with runtime.tracing(trace_path, meta=_trace_meta(args)):
            code = args.func(args, runtime)
        if trace_path and code == 0:
            print(f"wrote Chrome trace to {trace_path} (open in Perfetto)")
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if runtime is not None:
            lifecycle.uninstall(runtime)


if __name__ == "__main__":
    raise SystemExit(main())
