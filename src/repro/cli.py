"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets``          — list the catalog (paper stats + generator class).
* ``run``               — simulate one algorithm on one dataset and print the
                          profile (optionally dump JSON); ``--iterations N``
                          additionally runs the numeric plane N times through
                          an :class:`~repro.spgemm.session.IterativeSession`
                          and prints the plan cache's amortisation counters.
* ``compare``           — all seven schemes on one dataset, speedup table.
* ``bench``             — a (datasets × algorithms) grid through the shared
                          runner: sharded across ``--workers`` processes and
                          memoised in the persistent result cache.
* ``experiment``        — regenerate one of the paper's tables/figures.
* ``plan show``         — lower one algorithm for one dataset and print the
                          resulting :class:`ExecutionPlan` (phases, blocks,
                          kernels, metadata); ``--execute`` also runs the
                          numeric kernels with per-phase instrumentation.
* ``trace``             — run one dataset/algorithm cell with the
                          observability plane (:mod:`repro.obs`) on and print
                          the recorded span tree plus a per-category
                          wall-clock rollup; ``--out FILE`` writes a
                          Perfetto-loadable Chrome trace.

``compare``, ``bench`` and ``experiment`` accept the execution flags
``--workers N`` (0 = all cores), ``--cache-dir PATH``, ``--no-cache``,
``--shard-timeout SECONDS`` (parallel no-progress window before hung shards
re-run serially), ``--exec-workers N`` (process-pool width for the numeric
kernels via :mod:`repro.exec`; bit-identical to serial),
``--exec-partitioner {merge-path,lpt}`` (the exec plane's cut discipline),
``--kernel-backend {numpy,numba}`` (numeric-primitive backend, verified
bit-identical at selection) and ``--trace FILE`` (record the whole
invocation and write a Chrome trace); ``run`` accepts ``--exec-workers``,
``--exec-partitioner``, ``--kernel-backend`` and ``--trace`` too.  Caching
defaults to on, under ``~/.cache/repro``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from repro import exec as rexec
from repro import kernels, obs
from repro.bench import runner
from repro.bench.cache import ResultCache, result_to_dict
from repro.bench.parallel import default_workers
from repro.bench.runner import get_context, paper_algorithms, run_matrix
from repro.bench.tables import format_table
from repro.datasets.catalog import list_names, list_specs
from repro.errors import ReproError
from repro.gpusim.config import ALL_GPUS, TITAN_XP
from repro.gpusim.export import stats_to_json
from repro.gpusim.simulator import GPUSimulator
from repro.metrics.obsprof import category_rollup, format_rollup
from repro.metrics.profiling import profile_report
from repro.plan.show import format_executions, format_plan

__all__ = ["build_parser", "main"]

_EXPERIMENTS = [
    "table1_systems", "table2_datasets", "table3_datasets",
    "fig03_motivation", "fig08_speedup", "fig09_gflops", "fig10_techniques",
    "fig11_lbi", "fig12_l2_split", "fig13_sync_stalls", "fig14_l2_limit",
    "fig15_scalability", "fig16_synthetic", "sec4e_youtube",
]


def _gpu_by_name(name: str):
    for gpu in ALL_GPUS:
        if gpu.name.lower().replace(" ", "") == name.lower().replace(" ", ""):
            return gpu
    raise ReproError(f"unknown GPU {name!r}; known: {[g.name for g in ALL_GPUS]}")


def _algo_by_name(name: str):
    for algo in paper_algorithms():
        if algo.name == name:
            return algo
    raise ReproError(
        f"unknown algorithm {name!r}; known: {[a.name for a in paper_algorithms()]}"
    )


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by grid-running commands."""
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the bench grid (0 = all cores; default 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent result-cache directory (default ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache entirely",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="parallel no-progress window before hung shards are re-run "
             "serially (default 300)",
    )
    _add_exec_workers_flag(parser)
    _add_trace_flag(parser)


def _add_exec_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--exec-workers", type=int, default=1, metavar="N",
        help="process-pool width for the numeric kernels (repro.exec); "
             "results are bit-identical to serial (0 = all cores; default 1)",
    )
    parser.add_argument(
        "--exec-partitioner", choices=list(rexec.PARTITIONER_NAMES),
        default=rexec.DEFAULT_PARTITIONER,
        help="work-partitioning discipline for the exec plane: merge-path "
             "bounds items+work per block, lpt cuts on weight only "
             "(results identical; default merge-path)",
    )
    parser.add_argument(
        "--kernel-backend", choices=list(kernels.BACKEND_NAMES), default=None,
        help="kernel backend for the numeric primitives (default: "
             "$REPRO_KERNEL_BACKEND or numpy); non-numpy backends are "
             "verified bit-identical at selection time",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record the run with repro.obs and write a Chrome trace "
             "(open in Perfetto or chrome://tracing)",
    )


def _exec_workers_of(args: argparse.Namespace) -> int:
    """Resolve the ``--exec-workers`` flag (0 = all cores)."""
    n = getattr(args, "exec_workers", 1)
    return rexec.default_exec_workers() if n == 0 else max(1, n)


def _exec_partitioner_of(args: argparse.Namespace) -> str:
    """Resolve the ``--exec-partitioner`` flag."""
    return getattr(args, "exec_partitioner", rexec.DEFAULT_PARTITIONER)


def _configure_runner(args: argparse.Namespace) -> ResultCache | None:
    """Apply the execution flags as process-wide runner defaults."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    workers = default_workers() if args.workers == 0 else args.workers
    exec_workers = _exec_workers_of(args)
    exec_partitioner = _exec_partitioner_of(args)
    if args.shard_timeout is not None:
        runner.configure(
            workers=workers, cache=cache, shard_timeout=args.shard_timeout,
            exec_workers=exec_workers, exec_partitioner=exec_partitioner,
        )
    else:
        runner.configure(
            workers=workers, cache=cache, exec_workers=exec_workers,
            exec_partitioner=exec_partitioner,
        )
    return cache


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = [
        [s.name, s.collection, s.operation, s.generator, s.paper_dim, s.paper_nnz_a]
        for s in list_specs(args.collection)
    ]
    print(format_table(
        ["name", "collection", "op", "generator", "paper dim", "paper nnz(A)"], rows
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    exec_workers = _exec_workers_of(args)
    with rexec.engine_scope(
        exec_workers if exec_workers > 1 else None,
        partitioner=_exec_partitioner_of(args),
    ) as engine:
        ctx = get_context(args.dataset)
        algo = _algo_by_name(args.algorithm)
        sim = GPUSimulator(_gpu_by_name(args.gpu))
        stats = algo.simulate(ctx, sim)
        if args.json:
            print(stats_to_json(stats))
            return 0
        report = profile_report(stats)
        print(f"{report.algorithm} on {report.gpu} / {args.dataset}:")
        print(f"  total {report.total_seconds * 1e6:.1f} us, {report.gflops:.2f} GFLOPS")
        for stage in report.stages:
            print(
                f"  {stage.stage:10s} {stage.seconds * 1e6:9.1f} us  LBI={stage.lbi:.2f}  "
                f"stalls={stage.sync_stall_pct:.0f}%  L2 read={stage.l2_read_gbs:.0f} GB/s"
            )
        if args.iterations > 1:
            _run_iterative(ctx, algo, args.iterations)
        if engine is not None:
            from repro.metrics.execprof import format_exec_stats

            print(f"  {format_exec_stats(engine.stats)}")
    return 0


def _run_iterative(ctx, algo, iterations: int) -> None:
    """Numeric-plane iteration demo: same structure N times through a session.

    Iteration 1 pays the full pipeline (context, lowering, symbolic
    expansion); iterations 2..N are structure hits served by numeric replay.
    Printed timings make the amortisation visible; the cache counters prove
    the symbolic work ran exactly once.
    """
    import time

    from repro.metrics.planprof import format_cache_stats
    from repro.spgemm.session import IterativeSession

    session = IterativeSession(algo)
    a, b = ctx.a_csr, ctx.b_csr
    seconds = []
    for _ in range(iterations):
        start = time.perf_counter()
        session.multiply(a, b)
        seconds.append(time.perf_counter() - start)
    warm = seconds[1:]
    print(f"iterative numeric plane ({iterations} iterations, fixed structure):")
    print(f"  cold iteration   {seconds[0] * 1e3:9.2f} ms")
    print(f"  warm iterations  {sum(warm) / len(warm) * 1e3:9.2f} ms mean "
          f"(x{seconds[0] / max(sum(warm) / len(warm), 1e-12):.1f} faster)")
    print(f"  {format_cache_stats(session.stats)}")


def _cmd_compare(args: argparse.Namespace) -> int:
    _configure_runner(args)
    gpu = _gpu_by_name(args.gpu)
    results = run_matrix([args.dataset], paper_algorithms(), gpu)
    base = results[(args.dataset, "row-product")].seconds
    rows = [
        [algo.name, res.seconds * 1e6, res.gflops, base / res.seconds]
        for algo in paper_algorithms()
        for res in [results[(args.dataset, algo.name)]]
    ]
    print(format_table(
        ["algorithm", "time us", "GFLOPS", "speedup"], rows,
        title=f"{args.dataset} on {gpu.name} (speedup vs row-product)",
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    cache = _configure_runner(args)
    gpu = _gpu_by_name(args.gpu)
    datasets = args.datasets or list_names(args.collection)
    if not datasets:
        raise ReproError("no datasets selected; pass names or --collection")
    results = run_matrix(datasets, paper_algorithms(), gpu)
    rows = [
        [name, algo, res.seconds * 1e6, res.gflops]
        for (name, algo), res in results.items()
    ]
    print(format_table(
        ["dataset", "algorithm", "time us", "GFLOPS"], rows,
        title=f"bench grid on {gpu.name} ({len(datasets)} datasets)",
    ))
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses ({cache.cache_dir})")
    summary = runner.last_run_summary()
    if summary.shard_timeouts or summary.pool_failures:
        print(
            f"degraded: {summary.shard_timeouts} shard timeout(s), "
            f"{summary.pool_failures} pool failure(s) — affected shards re-ran serially"
        )
    if args.out:
        payload = [result_to_dict(res) for res in results.values()]
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {len(payload)} results to {args.out}")
    return 0


def _cmd_plan_show(args: argparse.Namespace) -> int:
    ctx = get_context(args.dataset)
    algo = _algo_by_name(args.algorithm)
    gpu = _gpu_by_name(args.gpu)
    plan = algo.lower(ctx, gpu)
    print(f"{args.dataset} lowered for {gpu.name}:")
    print(format_plan(plan))
    if args.execute:
        _, records = algo.profile_plan(ctx, gpu)
        print()
        print("numeric execution:")
        print(format_executions(records))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    _configure_runner(args)
    module = importlib.import_module(f"repro.bench.experiments.{args.name}")
    module.main()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one dataset/algorithm cell end to end and print the span tree.

    The recorder is installed *before* the context build so the trace covers
    dataset generation and symbolic expansion, not just the simulation; a
    warm in-process cache would hide those stages, so this command clears it
    first.
    """
    from repro.datasets import loader

    algo = _algo_by_name(args.algorithm)
    gpu = _gpu_by_name(args.gpu)
    loader.clear_cache()
    runner.clear_context_cache()
    recorder = obs.install()
    try:
        ctx = get_context(args.dataset)
        stats = algo.simulate(ctx, GPUSimulator(gpu))
    finally:
        obs.uninstall()
    print(f"trace: {args.algorithm} on {gpu.name} / {args.dataset} "
          f"({stats.total_seconds * 1e6:.1f} simulated us)")
    print(obs.format_span_tree(recorder.roots))
    rollup = category_rollup(recorder.roots)
    print("wall-clock by category (self time):")
    print(format_rollup(rollup))
    if args.out:
        obs.write_trace(args.out, recorder, meta=_trace_meta(args))
        print(f"wrote Chrome trace to {args.out} (open in Perfetto)")
    return 0


def _trace_meta(args: argparse.Namespace) -> dict:
    """Run context embedded in a Chrome trace's ``otherData`` section."""
    return {
        "tool": "repro",
        "command": args.command,
        "argv": [a for a in (sys.argv[1:] if sys.argv else []) if a],
    }


def build_parser() -> argparse.ArgumentParser:
    """Construct the full ``repro`` argparse tree (no side effects).

    Exposed separately from :func:`main` so tooling — notably
    ``tools/check_docs.py`` — can validate documented command lines against
    the real parser without executing anything.
    """
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list the dataset catalog")
    p.add_argument("--collection", choices=["florida", "stanford", "synthetic"], default=None)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("run", help="simulate one algorithm on one dataset")
    p.add_argument("dataset")
    p.add_argument("--algorithm", default="block-reorganizer")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument("--json", action="store_true", help="dump raw counters as JSON")
    p.add_argument(
        "--iterations", type=int, default=1, metavar="N",
        help="also run the numeric plane N times through an IterativeSession "
             "and print plan-cache amortisation counters",
    )
    _add_exec_workers_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("compare", help="all schemes on one dataset")
    p.add_argument("dataset")
    p.add_argument("--gpu", default=TITAN_XP.name)
    _add_exec_flags(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("bench", help="run a dataset x algorithm grid via the shared runner")
    p.add_argument("datasets", nargs="*", help="dataset names (default: --collection)")
    p.add_argument("--collection", choices=["florida", "stanford", "synthetic"], default=None)
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument("--out", default=None, metavar="FILE", help="write results as JSON")
    _add_exec_flags(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("plan", help="inspect ExecutionPlan lowerings")
    plan_sub = p.add_subparsers(dest="plan_command", required=True)
    p = plan_sub.add_parser("show", help="print one dataset/algorithm lowering")
    p.add_argument("dataset")
    p.add_argument("algorithm")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument(
        "--execute", action="store_true",
        help="also run the numeric kernels and print per-phase instrumentation",
    )
    p.set_defaults(func=_cmd_plan_show)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=_EXPERIMENTS)
    _add_exec_flags(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "trace", help="trace one dataset/algorithm cell through the pipeline"
    )
    p.add_argument("dataset")
    p.add_argument("algorithm")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the recorded spans as a Chrome trace (Perfetto-loadable)",
    )
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Commands apply their execution flags as process-wide runner defaults;
    # snapshot and restore them so in-process callers (tests, embedders) are
    # not left with this invocation's cache/workers settings.
    saved_workers, saved_cache = runner._DEFAULTS.workers, runner._DEFAULTS.cache
    saved_timeout = runner._DEFAULTS.shard_timeout
    saved_exec = runner._DEFAULTS.exec_workers
    saved_part = runner._DEFAULTS.exec_partitioner
    # --trace wraps the whole invocation in a recorder (the `trace` command
    # owns its own recorder instead, so it can print the tree itself).
    trace_path = getattr(args, "trace", None)
    recorder = obs.install() if trace_path else None
    try:
        # --kernel-backend scopes the numeric-primitive backend around the
        # whole command; selection verifies bit-identity, so an unavailable
        # or diverging backend fails here, before any work runs.
        with kernels.use(getattr(args, "kernel_backend", None)):
            code = args.func(args)
        if recorder is not None and code == 0:
            obs.write_trace(trace_path, recorder, meta=_trace_meta(args))
            print(f"wrote Chrome trace to {trace_path} (open in Perfetto)")
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            obs.uninstall()
        runner.configure(
            workers=saved_workers, cache=saved_cache, shard_timeout=saved_timeout,
            exec_workers=saved_exec, exec_partitioner=saved_part,
        )


if __name__ == "__main__":
    raise SystemExit(main())
