"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets``          — list the catalog (paper stats + generator class).
* ``run``               — simulate one algorithm on one dataset and print the
                          profile (optionally dump JSON).
* ``compare``           — all seven schemes on one dataset, speedup table.
* ``experiment``        — regenerate one of the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.bench.runner import get_context, paper_algorithms, run_matrix
from repro.bench.tables import format_table
from repro.datasets.catalog import list_specs
from repro.errors import ReproError
from repro.gpusim.config import ALL_GPUS, TITAN_XP
from repro.gpusim.export import stats_to_json
from repro.gpusim.simulator import GPUSimulator
from repro.metrics.profiling import profile_report

__all__ = ["main"]

_EXPERIMENTS = [
    "table1_systems", "table2_datasets", "table3_datasets",
    "fig03_motivation", "fig08_speedup", "fig09_gflops", "fig10_techniques",
    "fig11_lbi", "fig12_l2_split", "fig13_sync_stalls", "fig14_l2_limit",
    "fig15_scalability", "fig16_synthetic", "sec4e_youtube",
]


def _gpu_by_name(name: str):
    for gpu in ALL_GPUS:
        if gpu.name.lower().replace(" ", "") == name.lower().replace(" ", ""):
            return gpu
    raise ReproError(f"unknown GPU {name!r}; known: {[g.name for g in ALL_GPUS]}")


def _algo_by_name(name: str):
    for algo in paper_algorithms():
        if algo.name == name:
            return algo
    raise ReproError(
        f"unknown algorithm {name!r}; known: {[a.name for a in paper_algorithms()]}"
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = [
        [s.name, s.collection, s.operation, s.generator, s.paper_dim, s.paper_nnz_a]
        for s in list_specs(args.collection)
    ]
    print(format_table(
        ["name", "collection", "op", "generator", "paper dim", "paper nnz(A)"], rows
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ctx = get_context(args.dataset)
    algo = _algo_by_name(args.algorithm)
    sim = GPUSimulator(_gpu_by_name(args.gpu))
    stats = algo.simulate(ctx, sim)
    if args.json:
        print(stats_to_json(stats))
        return 0
    report = profile_report(stats)
    print(f"{report.algorithm} on {report.gpu} / {args.dataset}:")
    print(f"  total {report.total_seconds * 1e6:.1f} us, {report.gflops:.2f} GFLOPS")
    for stage in report.stages:
        print(
            f"  {stage.stage:10s} {stage.seconds * 1e6:9.1f} us  LBI={stage.lbi:.2f}  "
            f"stalls={stage.sync_stall_pct:.0f}%  L2 read={stage.l2_read_gbs:.0f} GB/s"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    gpu = _gpu_by_name(args.gpu)
    results = run_matrix([args.dataset], paper_algorithms(), gpu)
    base = results[(args.dataset, "row-product")].seconds
    rows = [
        [algo.name, res.seconds * 1e6, res.gflops, base / res.seconds]
        for algo in paper_algorithms()
        for res in [results[(args.dataset, algo.name)]]
    ]
    print(format_table(
        ["algorithm", "time us", "GFLOPS", "speedup"], rows,
        title=f"{args.dataset} on {gpu.name} (speedup vs row-product)",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = importlib.import_module(f"repro.bench.experiments.{args.name}")
    module.main()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list the dataset catalog")
    p.add_argument("--collection", choices=["florida", "stanford", "synthetic"], default=None)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("run", help="simulate one algorithm on one dataset")
    p.add_argument("dataset")
    p.add_argument("--algorithm", default="block-reorganizer")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.add_argument("--json", action="store_true", help="dump raw counters as JSON")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("compare", help="all schemes on one dataset")
    p.add_argument("dataset")
    p.add_argument("--gpu", default=TITAN_XP.name)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=_EXPERIMENTS)
    p.set_defaults(func=_cmd_experiment)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
