"""Category rollup over recorded trace spans (:mod:`repro.obs`).

The span tree answers "where did this run's wall-clock go?" region by
region; the rollup condenses it to the categories the pipeline is
instrumented with (``data``, ``plan``, ``expansion``/``merge`` numeric
stages, ``simulate``, ``bench``).  Self-time attribution — a span's
duration minus its children's — keeps nested spans from double-counting,
so category totals sum to the traced wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.recorder import Span

__all__ = ["CategoryRollup", "category_rollup", "format_rollup"]


@dataclass
class CategoryRollup:
    """Aggregated share of one span category.

    Attributes:
        category: the span category rolled up.
        spans: number of spans recorded in this category.
        self_seconds: wall-clock attributed to the category (span durations
            minus child durations, so nesting never double-counts).
    """

    category: str
    spans: int = 0
    self_seconds: float = 0.0


def category_rollup(spans: Sequence[Span]) -> list[CategoryRollup]:
    """Roll a span tree up into per-category self-time totals.

    Returns rollups sorted by descending self-time (ties by name) —
    the order a profile report prints in.
    """
    totals: dict[str, CategoryRollup] = {}

    def visit(tree: Iterable[Span]) -> None:
        for span in tree:
            entry = totals.setdefault(span.category, CategoryRollup(span.category))
            entry.spans += 1
            child_dur = sum(child.dur for child in span.children)
            entry.self_seconds += max(0.0, span.dur - child_dur)
            visit(span.children)

    visit(spans)
    return sorted(totals.values(), key=lambda r: (-r.self_seconds, r.category))


def format_rollup(rollups: Sequence[CategoryRollup]) -> str:
    """Render the rollup as an aligned table fragment for the CLI."""
    total = sum(r.self_seconds for r in rollups) or 1.0
    lines = [
        f"  {r.category:<12s} {r.self_seconds * 1e3:9.3f} ms "
        f"({100.0 * r.self_seconds / total:5.1f}%)  spans={r.spans}"
        for r in rollups
    ]
    return "\n".join(lines)
