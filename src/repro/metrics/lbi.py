"""Load Balancing Index (Equation 3 of the paper).

``LBI = (Σ_i cycles(SM_i) / max_j cycles(SM_j)) / N`` — the mean per-SM
execution time normalised to the slowest SM.  1.0 means perfectly balanced;
the paper measures 0.17 for unsplit dominators on skewed inputs, recovering
to 0.96 after B-Splitting (Figure 11).
"""

from __future__ import annotations

import numpy as np

__all__ = ["load_balancing_index"]


def load_balancing_index(sm_cycles: np.ndarray) -> float:
    """LBI of a vector of per-SM busy cycles (1.0 when all idle or equal)."""
    sm_cycles = np.asarray(sm_cycles, dtype=np.float64)
    if len(sm_cycles) == 0:
        return 1.0
    peak = float(sm_cycles.max())
    if peak <= 0.0:
        return 1.0
    return float(sm_cycles.mean() / peak)
