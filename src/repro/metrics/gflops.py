"""Throughput accounting.

The paper reports absolute performance in GFLOPS counting two floating-point
operations (multiply + add) per intermediate product, over the total kernel
time including preprocessing overheads (Figure 9).
"""

from __future__ import annotations

__all__ = ["FLOPS_PER_PRODUCT", "gflops"]

FLOPS_PER_PRODUCT = 2.0
"""One multiply and one accumulate per intermediate product."""


def gflops(total_products: int, seconds: float) -> float:
    """GFLOPS for ``total_products`` intermediate products in ``seconds``."""
    if seconds <= 0.0:
        return 0.0
    return FLOPS_PER_PRODUCT * total_products / seconds / 1e9
