"""Out-of-core profiling: render repro.oocore executor counters.

The chunked executor (:mod:`repro.oocore`) records how a budgeted multiply
actually ran — panel count and any oversized single-row panels, spill count
and bytes, merge-tree rounds, the resident-set peak its accounting tracked
and the process's lifetime peak RSS.  :func:`format_ooc_stats` renders an
:class:`~repro.oocore.OocStats` for ``repro run --mem-budget`` and the
out-of-core bench (``tools/bench_oocore.py``), mirroring
:func:`~repro.metrics.execprof.format_exec_stats` for the exec plane.
"""

from __future__ import annotations

from repro.oocore import OocStats

__all__ = ["OocStats", "format_ooc_stats", "format_bytes"]


def format_bytes(n: int) -> str:
    """Binary-unit rendering (``"1.5 GiB"``); exact bytes below 1 KiB."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_ooc_stats(stats: OocStats) -> str:
    """Human-readable rendering of one chunked multiply's counters.

    One summary line for the panel decomposition, one for the spill/merge
    activity, one for the memory envelope — the numbers the oocore CI leg
    and BENCH artifacts assert against.
    """
    oversized = (
        f" ({stats.n_oversized} oversized)" if stats.n_oversized else ""
    )
    lines = [
        f"oocore: {stats.n_panels} panels{oversized}, "
        f"{stats.total_products} products under a "
        f"{format_bytes(stats.budget_bytes)} budget "
        f"({stats.max_products} products resident)",
        f"  spills: {stats.spill_count} ({format_bytes(stats.bytes_spilled)} "
        f"written), merge rounds: {stats.merge_rounds}",
        f"  memory: resident peak {format_bytes(stats.resident_peak_bytes)}, "
        f"process peak RSS {format_bytes(stats.peak_rss_bytes)}",
    ]
    return "\n".join(lines)
