"""Metrics: LBI (Eq. 3), GFLOPS, profiling reports, Prometheus exposition."""

from repro.metrics.gflops import FLOPS_PER_PRODUCT, gflops
from repro.metrics.promtext import (
    parse_exposition,
    render_metrics,
    validate_exposition,
)
from repro.metrics.lbi import load_balancing_index
from repro.metrics.obsprof import CategoryRollup, category_rollup, format_rollup
from repro.metrics.planprof import (
    PlanCacheStats,
    PlanProfile,
    PlanStageProfile,
    format_cache_stats,
    plan_profile,
)
from repro.metrics.profiling import ProfileReport, StageProfile, profile_report

__all__ = [
    "FLOPS_PER_PRODUCT",
    "gflops",
    "load_balancing_index",
    "CategoryRollup",
    "category_rollup",
    "format_rollup",
    "PlanCacheStats",
    "PlanProfile",
    "PlanStageProfile",
    "format_cache_stats",
    "plan_profile",
    "ProfileReport",
    "StageProfile",
    "profile_report",
    "parse_exposition",
    "render_metrics",
    "validate_exposition",
]
